//! The STONNE User Interface.
//!
//! The paper ships a prompt-based tool "in which the user is presented
//! with a prompt and a set of well-defined commands to load any layer and
//! tile parameters onto a selected instance of the simulator, and run it
//! with random weights and input values", enabling rapid prototyping
//! without the DL-framework front-end. This binary is that interface:
//!
//! ```text
//! stonne gemm --m 64 --n 128 --k 32 --arch sigma --ms 128 --bw 128
//! stonne conv --in-c 6 --out-c 6 --hw 7 --kernel 3 --arch maeri --ms 32 --bw 4
//! stonne model --name squeezenet --scale tiny --arch sigma
//! stonne shell            # interactive prompt
//! ```
//!
//! Tensors are filled with seeded random values (`--seed`), weights are
//! optionally pruned (`--sparsity`), and results print as the Output
//! Module's JSON summary (`--json`) or counter file (`--counters`).

use std::collections::HashMap;
use std::io::{BufRead, Write as _};
use std::process::ExitCode;

use stonne::core::{
    chrome_trace_json, counter_file, summary_json, trace, AcceleratorConfig, SimStats, Stonne,
};
use stonne::core::{NaturalOrder, SimCache};
use stonne::energy::{area_um2, EnergyModel};
use stonne::models::{zoo, ModelId, ModelScale};
use stonne::nn::params::{generate_input, ModelParams};
use stonne::nn::runner::{run_model_simulated_with, RunOptions};
use stonne::tensor::{prune_matrix_to_sparsity, Conv2dGeom, Matrix, SeededRng, Tensor4};
use stonne_serve::{ArchSpec, ModelSel, SweepRequest};

fn usage() -> &'static str {
    "STONNE User Interface — cycle-level DNN accelerator simulation\n\
     \n\
     USAGE:\n\
       stonne <command> [--key value]...\n\
     \n\
     COMMANDS:\n\
       gemm    --m M --n N --k K           run a GEMM with random operands\n\
       conv    --in-c C --out-c K --hw H   run a convolution\n\
               [--kernel 3 --stride 1 --pad 0 --groups 1]\n\
       model   --name NAME --scale SCALE   run a full DNN model\n\
               (names: mobilenet|squeezenet|alexnet|resnet50|vgg16|ssd|bert;\n\
                scales: standard|reduced|tiny)\n\
       sweep   --archs A[:ms[:bw]],...     run a config x model x sparsity\n\
               --models NAME[:scale],...   grid; results stream as JSON lines\n\
               [--sparsities F,...]        (same bytes as the serve API)\n\
               [--store DIR]               persist/reuse layer results on disk\n\
               [--workers N]               local worker threads\n\
               [--remote HOST:PORT]        submit to a running stonne-serve\n\
       cluster --instances A[:ms[:bw]],... simulate a multi-accelerator,\n\
               --models NAME[:scale],...   multi-tenant serving cluster:\n\
               [--classes N[:w[:p[:sla]]],...]  Poisson arrivals, batching,\n\
               [--requests N] [--rates F,...]   priority classes, shared-DRAM\n\
               [--batch N] [--policy P]    arbitration (round-robin|priority);\n\
               [--dram CH[:gbps[:lat]]]    prints the full JSON report\n\
               [--remote HOST:PORT]        POST to a running stonne-serve\n\
       shell                               interactive prompt\n\
       help                                this text\n\
     \n\
     COMMON OPTIONS:\n\
       --arch tpu|maeri|sigma   accelerator preset        [default: maeri]\n\
       --ms N                   multiplier switches       [default: 256]\n\
       --bw N                   GB bandwidth (elems/cyc)  [default: 128]\n\
       --sparsity F             prune weights to F zeros  [default: 0]\n\
       --seed N                 RNG seed                  [default: 1]\n\
       --sim-cache on|off       layer-simulation memoization (model runs;\n\
                                bitwise-identical results)  [default: on]\n\
       --fidelity exact|fast    model/sweep runs: `fast` estimates cycles\n\
                                with the committed predictor; sweeps then\n\
                                re-score the Pareto frontier exactly\n\
                                (see docs/PREDICT.md)    [default: exact]\n\
       --json                   print the JSON stats summary\n\
       --counters               print the counter file\n\
       --energy                 print the energy/area estimate\n\
       --cycle-breakdown        print the per-phase cycle split\n\
       --trace PATH             write a Chrome-trace (Perfetto) timeline\n"
}

/// Parsed `--key value` arguments (flags map to "true").
struct Args {
    map: HashMap<String, String>,
}

impl Args {
    fn parse(tokens: &[String]) -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            let Some(key) = t.strip_prefix("--") else {
                return Err(format!("unexpected token `{t}` (expected --key)"));
            };
            let flag = matches!(key, "json" | "counters" | "energy" | "cycle-breakdown");
            if flag {
                map.insert(key.to_owned(), "true".to_owned());
                i += 1;
            } else {
                let value = tokens
                    .get(i + 1)
                    .ok_or_else(|| format!("missing value for --{key}"))?;
                map.insert(key.to_owned(), value.clone());
                i += 2;
            }
        }
        Ok(Self { map })
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number `{v}`")),
        }
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.map.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number `{v}`")),
        }
    }

    fn get_str(&self, key: &str, default: &str) -> String {
        self.map
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    }

    fn flag(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    fn get_opt(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }
}

/// Starts trace recording when `--trace PATH` was given; returns the path.
fn maybe_start_trace(args: &Args) -> Option<String> {
    let path = args.get_opt("trace")?.to_owned();
    trace::start(trace::DEFAULT_CAPACITY);
    Some(path)
}

/// Finishes recording and writes the Chrome-trace JSON to `path`.
fn write_trace(path: Option<String>) -> Result<(), String> {
    let Some(path) = path else { return Ok(()) };
    let captured = trace::finish().ok_or("tracing was not active")?;
    std::fs::write(&path, chrome_trace_json(&captured))
        .map_err(|e| format!("--trace {path}: {e}"))?;
    eprintln!(
        "trace: {} events written to {path} (open in ui.perfetto.dev){}",
        captured.events().len(),
        if captured.dropped() > 0 {
            format!("; {} oldest events dropped", captured.dropped())
        } else {
            String::new()
        }
    );
    Ok(())
}

fn build_config(args: &Args) -> Result<AcceleratorConfig, String> {
    let ms = args.get_usize("ms", 256)?;
    let bw = args.get_usize("bw", 128)?;
    let cfg = match args.get_str("arch", "maeri").as_str() {
        "tpu" => {
            let dim = (ms as f64).sqrt().round() as usize;
            if dim * dim != ms {
                return Err(format!("--ms {ms}: TPU arrays must be square"));
            }
            AcceleratorConfig::tpu_like(dim)
        }
        "maeri" => AcceleratorConfig::maeri_like(ms, bw),
        "sigma" => AcceleratorConfig::sigma_like(ms, bw),
        other => return Err(format!("unknown --arch `{other}` (tpu|maeri|sigma)")),
    };
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

fn report(args: &Args, cfg: &AcceleratorConfig, stats: &SimStats) {
    println!(
        "[{}] {}: {} cycles, utilization {:.1}%, {} mults",
        stats.accelerator,
        stats.operation,
        stats.cycles,
        stats.ms_utilization() * 100.0,
        stats.counters.multiplications
    );
    if args.flag("cycle-breakdown") {
        let b = &stats.breakdown;
        println!(
            "cycle breakdown: fill {} / steady {} / drain {} / stalls: dram {} fifo {} reduction {} (sum {})",
            b.fill_cycles,
            b.steady_cycles,
            b.drain_cycles,
            b.dram_stall_cycles,
            b.fifo_stall_cycles,
            b.reduction_stall_cycles,
            b.total()
        );
    }
    if args.flag("json") {
        println!("{}", summary_json(stats));
    }
    if args.flag("counters") {
        print!("{}", counter_file(stats));
    }
    if args.flag("energy") {
        let e = EnergyModel::for_config(cfg).breakdown(stats);
        let a = area_um2(cfg);
        println!(
            "energy: {:.3} µJ (GB {:.3} / DN {:.3} / MN {:.3} / RN {:.3} / static {:.3})",
            e.total_uj(),
            e.gb_uj,
            e.dn_uj,
            e.mn_uj,
            e.rn_uj,
            e.static_uj
        );
        println!(
            "area: {:.0} µm² (GB {:.0}%, DN {:.0} µm², MN {:.0} µm², RN {:.0} µm²)",
            a.total(),
            a.gb_fraction() * 100.0,
            a.dn_um2,
            a.mn_um2,
            a.rn_um2
        );
    }
}

fn cmd_gemm(args: &Args) -> Result<(), String> {
    let m = args.get_usize("m", 64)?;
    let n = args.get_usize("n", 64)?;
    let k = args.get_usize("k", 64)?;
    let sparsity = args.get_f64("sparsity", 0.0)?;
    let seed = args.get_usize("seed", 1)? as u64;
    let cfg = build_config(args)?;
    let mut rng = SeededRng::new(seed);
    let mut a = Matrix::random(m, k, &mut rng);
    if sparsity > 0.0 {
        prune_matrix_to_sparsity(&mut a, sparsity);
    }
    let b = Matrix::random(k, n, &mut rng);
    let mut sim = Stonne::new(cfg.clone()).map_err(|e| e.to_string())?;
    let trace_path = maybe_start_trace(args);
    let (_, stats) = sim.run_gemm(&format!("gemm {m}x{n}x{k}"), &a, &b);
    write_trace(trace_path)?;
    report(args, &cfg, &stats);
    Ok(())
}

fn cmd_conv(args: &Args) -> Result<(), String> {
    let in_c = args.get_usize("in-c", 3)?;
    let out_c = args.get_usize("out-c", 8)?;
    let hw = args.get_usize("hw", 16)?;
    let kernel = args.get_usize("kernel", 3)?;
    let stride = args.get_usize("stride", 1)?;
    let pad = args.get_usize("pad", 0)?;
    let groups = args.get_usize("groups", 1)?;
    let sparsity = args.get_f64("sparsity", 0.0)?;
    let seed = args.get_usize("seed", 1)? as u64;
    let cfg = build_config(args)?;

    if in_c % groups != 0 || out_c % groups != 0 {
        return Err("--groups must divide --in-c and --out-c".into());
    }
    let geom = Conv2dGeom::new(in_c, out_c, kernel, kernel, stride, pad, groups);
    let mut rng = SeededRng::new(seed);
    let input = Tensor4::random(1, in_c, hw, hw, &mut rng);
    let mut weights = Tensor4::random(out_c, in_c / groups, kernel, kernel, &mut rng);
    if sparsity > 0.0 {
        stonne::tensor::prune_tensor_to_sparsity(&mut weights, sparsity);
    }
    let mut sim = Stonne::new(cfg.clone()).map_err(|e| e.to_string())?;
    let trace_path = maybe_start_trace(args);
    let (_, stats) = sim.run_conv(
        &format!("conv {in_c}->{out_c} {kernel}x{kernel}/{stride} @{hw}"),
        &input,
        &weights,
        &geom,
        None,
    );
    write_trace(trace_path)?;
    report(args, &cfg, &stats);
    Ok(())
}

fn cmd_model(args: &Args) -> Result<(), String> {
    let id = match args.get_str("name", "squeezenet").as_str() {
        "mobilenet" => ModelId::MobileNetV1,
        "squeezenet" => ModelId::SqueezeNet,
        "alexnet" => ModelId::AlexNet,
        "resnet50" => ModelId::ResNet50,
        "vgg16" => ModelId::Vgg16,
        "ssd" => ModelId::SsdMobileNet,
        "bert" => ModelId::Bert,
        other => return Err(format!("unknown model `{other}`")),
    };
    let scale = match args.get_str("scale", "tiny").as_str() {
        "standard" => ModelScale::Standard,
        "reduced" => ModelScale::Reduced,
        "tiny" => ModelScale::Tiny,
        other => return Err(format!("unknown scale `{other}`")),
    };
    let seed = args.get_usize("seed", 1)? as u64;
    let sim_cache = match args.get_str("sim-cache", "on").as_str() {
        "on" => Some(SimCache::new()),
        "off" => None,
        other => return Err(format!("--sim-cache `{other}` (expected on|off)")),
    };
    let cfg = build_config(args)?;
    let model = zoo::build(id, scale);
    let sparsity = args.get_f64("sparsity", model.weight_sparsity())?;
    let params = ModelParams::generate_with_sparsity(&model, seed, sparsity);
    let input = generate_input(&model, seed ^ 1);

    eprintln!(
        "simulating {} ({:?} scale, {:.0}% weight sparsity) on {} …",
        id,
        scale,
        sparsity * 100.0,
        cfg.name
    );
    let trace_path = maybe_start_trace(args);
    let mut options = match &sim_cache {
        Some(cache) => RunOptions::new().with_cache(cache.clone()),
        None => RunOptions::new().uncached(),
    };
    if parse_fidelity_arg(args)? == "fast" {
        options = options.with_predictor(stonne::predict::Model::committed());
        eprintln!(
            "fast fidelity: cycles are the committed predictor's estimates (docs/PREDICT.md)"
        );
    }
    let run = run_model_simulated_with(
        &model,
        &params,
        &input,
        cfg.clone(),
        std::sync::Arc::new(NaturalOrder),
        options,
    )
    .map_err(|e| e.to_string())?;
    write_trace(trace_path)?;
    for layer in &run.layers {
        println!(
            "  {:<28} {:>12} cycles  util {:>5.1}%",
            layer.name,
            layer.stats.cycles,
            layer.stats.ms_utilization() * 100.0
        );
    }
    report(args, &cfg, &run.total);
    if let Some(cache) = &sim_cache {
        println!(
            "sim cache: {} hits / {} misses / {} entries; {} engine invocations for {} layers",
            run.total.sim_cache_hits,
            run.total.sim_cache_misses,
            cache.len(),
            run.total.engine_invocations,
            run.layers.len()
        );
    }
    println!(
        "model energy: {:.3} µJ (GB {:.3} / DN {:.3} / MN {:.3} / RN {:.3})",
        run.energy.total_uj(),
        run.energy.gb_uj,
        run.energy.dn_uj,
        run.energy.mn_uj,
        run.energy.rn_uj
    );
    Ok(())
}

/// Parses `--fidelity exact|fast` (the serve API's grammar), defaulting
/// to exact.
fn parse_fidelity_arg(args: &Args) -> Result<String, String> {
    let fidelity = args.get_str("fidelity", "exact");
    stonne_serve::parse_fidelity(&fidelity)?;
    Ok(fidelity)
}

/// Parses the `--archs` / `--models` / `--sparsities` grid axes into a
/// sweep request shared with the serve API.
fn build_sweep_request(args: &Args) -> Result<SweepRequest, String> {
    let mut archs = Vec::new();
    for spec in args.get_str("archs", "maeri").split(',') {
        let mut parts = spec.split(':');
        let arch = parts.next().unwrap_or_default().to_owned();
        let ms = match parts.next() {
            None => 0,
            Some(v) => v.parse().map_err(|_| format!("--archs: bad ms `{v}`"))?,
        };
        let bw = match parts.next() {
            None => 0,
            Some(v) => v.parse().map_err(|_| format!("--archs: bad bw `{v}`"))?,
        };
        archs.push(ArchSpec { arch, ms, bw });
    }
    let mut models = Vec::new();
    for spec in args.get_str("models", "squeezenet").split(',') {
        let mut parts = spec.split(':');
        models.push(ModelSel {
            name: parts.next().unwrap_or_default().to_owned(),
            scale: parts.next().unwrap_or_default().to_owned(),
        });
    }
    let mut sparsities = Vec::new();
    if let Some(list) = args.get_opt("sparsities") {
        for v in list.split(',') {
            sparsities.push(
                v.parse()
                    .map_err(|_| format!("--sparsities: bad number `{v}`"))?,
            );
        }
    }
    Ok(SweepRequest {
        name: args.get_str("name", ""),
        archs,
        models,
        sparsities,
        seed: args.get_usize("seed", 1)? as u64,
        fidelity: parse_fidelity_arg(args)?,
    })
}

/// Runs a sweep grid locally (optionally store-backed) or, with
/// `--remote HOST:PORT`, against a running `stonne-serve` instance.
/// Either way the results print as one JSON line per point, in grid
/// order, byte-identical between the two modes.
fn cmd_sweep(args: &Args) -> Result<(), String> {
    let request = build_sweep_request(args)?;
    if let Some(remote) = args.get_opt("remote") {
        let client = stonne_serve::Client::new(remote);
        let (job, points) = client.submit(&request)?;
        eprintln!("submitted {job} ({points} points) to {}", client.addr());
        client.stream_results(&job, |line| println!("{line}"))?;
        let status = client.get(&format!("/v1/jobs/{job}"))?;
        eprintln!("status: {status}");
        return Ok(());
    }
    let store = match args.get_opt("store") {
        Some(dir) => {
            Some(stonne::core::DiskStore::open(dir).map_err(|e| format!("--store {dir}: {e}"))?)
        }
        None => None,
    };
    let workers = args.get_usize(
        "workers",
        std::thread::available_parallelism().map_or(4, usize::from),
    )?;
    let manager = stonne_serve::JobManager::new(workers, store);
    let job = manager.submit(&request)?;
    for index in 0..job.points.len() {
        match job.result_at(index) {
            Some(result) => println!(
                "{}",
                serde_json::to_string(&result).map_err(|e| e.to_string())?
            ),
            None => println!("{{\"index\":{index},\"error\":\"point failed\"}}"),
        }
    }
    let status = job.status();
    eprintln!(
        "sweep: {}/{} points ok; {} engine invocations, sim cache {} hits / {} misses",
        status.completed,
        status.total,
        status.counters.engine_invocations,
        status.counters.sim_cache_hits,
        status.counters.sim_cache_misses,
    );
    if status.store_enabled {
        eprintln!(
            "store: {} hits / {} misses / {} writes / {} evictions / {} corrupt (fingerprint {})",
            status.store.hits,
            status.store.misses,
            status.store.writes,
            status.store.evictions,
            status.store.corrupt,
            status.fingerprint,
        );
    }
    for error in job.errors() {
        eprintln!("error: {error}");
    }
    manager.shutdown();
    if status.failed > 0 {
        return Err(format!("{} points failed", status.failed));
    }
    Ok(())
}

/// Parses the cluster flags into the request shared with the
/// `/v1/cluster` route. Axis grammars mirror `sweep` (colon-separated
/// fields, comma-separated lists): `--instances maeri:64:32,tpu:16`,
/// `--classes interactive:1:2:400000,batch:3`
/// (name[:weight[:priority[:sla_cycles]]]), `--dram 1:8:100`
/// (channels[:GB/s[:latency]]).
fn build_cluster_request(args: &Args) -> Result<stonne_cluster::ClusterRequest, String> {
    let mut instances = Vec::new();
    for spec in args.get_str("instances", "maeri").split(',') {
        let mut parts = spec.split(':');
        let arch = parts.next().unwrap_or_default().to_owned();
        let ms = match parts.next() {
            None => 0,
            Some(v) => v
                .parse()
                .map_err(|_| format!("--instances: bad ms `{v}`"))?,
        };
        let bw = match parts.next() {
            None => 0,
            Some(v) => v
                .parse()
                .map_err(|_| format!("--instances: bad bw `{v}`"))?,
        };
        instances.push(stonne_cluster::InstanceSpec { arch, ms, bw });
    }
    let mut models = Vec::new();
    for spec in args.get_str("models", "squeezenet").split(',') {
        let mut parts = spec.split(':');
        models.push(stonne_cluster::ModelRef {
            name: parts.next().unwrap_or_default().to_owned(),
            scale: parts.next().unwrap_or_default().to_owned(),
        });
    }
    let mut classes = Vec::new();
    if let Some(list) = args.get_opt("classes") {
        for spec in list.split(',') {
            let mut parts = spec.split(':');
            let name = parts.next().unwrap_or_default().to_owned();
            let weight = match parts.next() {
                None => 0.0,
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("--classes: bad weight `{v}`"))?,
            };
            let priority = match parts.next() {
                None => 0,
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("--classes: bad priority `{v}`"))?,
            };
            let sla_cycles = match parts.next() {
                None => 0,
                Some(v) => v.parse().map_err(|_| format!("--classes: bad sla `{v}`"))?,
            };
            classes.push(stonne_cluster::ClassSpec {
                name,
                weight,
                priority,
                sla_cycles,
            });
        }
    }
    let mut rates = Vec::new();
    if let Some(list) = args.get_opt("rates") {
        for v in list.split(',') {
            rates.push(
                v.parse()
                    .map_err(|_| format!("--rates: bad number `{v}`"))?,
            );
        }
    }
    let dram = match args.get_opt("dram") {
        None => None,
        Some(spec) => {
            let mut parts = spec.split(':');
            let channels = match parts.next() {
                None | Some("") => 0,
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("--dram: bad channels `{v}`"))?,
            };
            let bandwidth_gbps = match parts.next() {
                None => 0.0,
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("--dram: bad bandwidth `{v}`"))?,
            };
            let latency_cycles = match parts.next() {
                None => 0,
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("--dram: bad latency `{v}`"))?,
            };
            Some(stonne_cluster::DramSpec {
                channels,
                bandwidth_gbps,
                latency_cycles,
            })
        }
    };
    let sparsity = match args.get_opt("sparsity") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("--sparsity: bad number `{v}`"))?,
        ),
    };
    Ok(stonne_cluster::ClusterRequest {
        name: args.get_str("name", ""),
        instances,
        models,
        classes,
        requests: args.get_usize("requests", 0)?,
        rates,
        batch: args.get_usize("batch", 0)?,
        policy: args.get_str("policy", ""),
        seed: args.get_usize("seed", 1)? as u64,
        sparsity,
        dram,
    })
}

/// Runs a multi-accelerator serving scenario locally (profiling on the
/// worker pool, optionally store-backed) or, with `--remote HOST:PORT`,
/// on a running `stonne-serve` instance — the printed report is
/// byte-identical between the two modes.
fn cmd_cluster(args: &Args) -> Result<(), String> {
    let request = build_cluster_request(args)?;
    if let Some(remote) = args.get_opt("remote") {
        let client = stonne_serve::Client::new(remote);
        let body = serde_json::to_string(&request).map_err(|e| e.to_string())?;
        let (status, report) = client
            .request("POST", "/v1/cluster", &body)
            .map_err(|e| e.to_string())?;
        if status != 200 {
            return Err(format!("remote cluster run failed ({status}): {report}"));
        }
        println!("{report}");
        return Ok(());
    }
    let mut cache = SimCache::new();
    if let Some(dir) = args.get_opt("store") {
        let store =
            stonne::core::DiskStore::open(dir).map_err(|e| format!("--store {dir}: {e}"))?;
        cache = cache.backed_by(store);
    }
    let outcome = stonne_cluster::run_cluster(&request, &cache, stonne_cluster::ExecMode::Pool)?;
    println!("{}", outcome.report.render());
    for scenario in &outcome.report.scenarios {
        eprintln!(
            "rate {}: p50 {} / p99 {} cycles over {} requests, {} dram-wait cycles",
            scenario.rate_rpmc,
            scenario.latency.p50,
            scenario.latency.p99,
            scenario.requests,
            scenario
                .instances
                .iter()
                .map(|i| i.dram_wait_cycles)
                .sum::<u64>(),
        );
    }
    Ok(())
}

fn dispatch(command: &str, args: &Args) -> Result<(), String> {
    match command {
        "gemm" => cmd_gemm(args),
        "conv" => cmd_conv(args),
        "model" => cmd_model(args),
        "sweep" => cmd_sweep(args),
        "cluster" => cmd_cluster(args),
        "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; try `help`")),
    }
}

fn shell() -> Result<(), String> {
    println!("STONNE User Interface — type commands, `help`, or `exit`.");
    let stdin = std::io::stdin();
    loop {
        print!("stonne> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin
            .lock()
            .read_line(&mut line)
            .map_err(|e| e.to_string())?
            == 0
        {
            return Ok(()); // EOF
        }
        let tokens: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
        let Some((command, rest)) = tokens.split_first() else {
            continue;
        };
        if command == "exit" || command == "quit" {
            return Ok(());
        }
        match Args::parse(rest).and_then(|args| dispatch(command, &args)) {
            Ok(()) => {}
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    };
    let result = if command == "shell" {
        shell()
    } else {
        Args::parse(rest).and_then(|args| dispatch(command, &args))
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `stonne help` for usage");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        let tokens: Vec<String> = s.split_whitespace().map(str::to_owned).collect();
        Args::parse(&tokens).unwrap()
    }

    #[test]
    fn parse_key_values_and_flags() {
        let a = args("--m 64 --arch sigma --json");
        assert_eq!(a.get_usize("m", 0).unwrap(), 64);
        assert_eq!(a.get_str("arch", "x"), "sigma");
        assert!(a.flag("json"));
        assert!(!a.flag("counters"));
        assert_eq!(a.get_usize("n", 7).unwrap(), 7); // default
    }

    #[test]
    fn parse_rejects_missing_value() {
        let tokens = vec!["--m".to_owned()];
        assert!(Args::parse(&tokens).is_err());
    }

    #[test]
    fn parse_rejects_bare_token() {
        let tokens = vec!["gemm".to_owned()];
        assert!(Args::parse(&tokens).is_err());
    }

    #[test]
    fn parse_rejects_bad_number() {
        let a = args("--m abc");
        assert!(a.get_usize("m", 0).is_err());
    }

    #[test]
    fn config_presets_resolve() {
        assert_eq!(
            build_config(&args("--arch tpu --ms 256")).unwrap().ms_size,
            256
        );
        assert!(build_config(&args("--arch maeri --ms 64 --bw 8")).is_ok());
        assert!(build_config(&args("--arch sigma")).is_ok());
        assert!(build_config(&args("--arch hypercube")).is_err());
        // Non-square TPU rejected.
        assert!(build_config(&args("--arch tpu --ms 200")).is_err());
    }

    #[test]
    fn gemm_command_runs_end_to_end() {
        let a = args("--m 8 --n 8 --k 8 --arch maeri --ms 32 --bw 8");
        cmd_gemm(&a).unwrap();
    }

    #[test]
    fn conv_command_runs_end_to_end() {
        let a = args("--in-c 2 --out-c 3 --hw 6 --kernel 3 --arch sigma --ms 32 --bw 32");
        cmd_conv(&a).unwrap();
    }

    #[test]
    fn conv_command_validates_groups() {
        let a = args("--in-c 3 --out-c 4 --groups 2");
        assert!(cmd_conv(&a).is_err());
    }

    #[test]
    fn cycle_breakdown_is_a_flag_and_trace_takes_a_value() {
        let a = args("--cycle-breakdown --trace /tmp/t.json --m 4");
        assert!(a.flag("cycle-breakdown"));
        assert_eq!(a.get_opt("trace"), Some("/tmp/t.json"));
        assert_eq!(a.get_usize("m", 0).unwrap(), 4);
    }

    #[test]
    fn gemm_with_trace_writes_chrome_json() {
        let dir = std::env::temp_dir().join("stonne-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gemm.json");
        let a = args(&format!(
            "--m 8 --n 8 --k 8 --arch tpu --ms 16 --cycle-breakdown --trace {}",
            path.display()
        ));
        cmd_gemm(&a).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"ph\": \"X\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sim_cache_takes_a_value_and_rejects_junk() {
        let a = args("--sim-cache off --m 4");
        assert_eq!(a.get_str("sim-cache", "on"), "off");
        assert_eq!(a.get_usize("m", 0).unwrap(), 4);
        let err = cmd_model(&args("--sim-cache maybe")).unwrap_err();
        assert!(err.contains("sim-cache"), "{err}");
    }

    #[test]
    fn unknown_command_is_reported() {
        assert!(dispatch("frobnicate", &args("")).is_err());
        assert!(dispatch("help", &args("")).is_ok());
    }

    #[test]
    fn sweep_request_parses_grid_axes() {
        let a = args(
            "--archs maeri:32:16,tpu:16 --models alexnet:tiny,bert --sparsities 0,0.5 --seed 9",
        );
        let r = build_sweep_request(&a).unwrap();
        assert_eq!(r.archs.len(), 2);
        assert_eq!(
            (r.archs[0].arch.as_str(), r.archs[0].ms, r.archs[0].bw),
            ("maeri", 32, 16)
        );
        assert_eq!(
            (r.archs[1].arch.as_str(), r.archs[1].ms, r.archs[1].bw),
            ("tpu", 16, 0)
        );
        assert_eq!(r.models[1].name, "bert");
        assert_eq!(r.models[0].scale, "tiny");
        assert_eq!(r.sparsities, vec![0.0, 0.5]);
        assert_eq!(r.seed, 9);
        assert!(build_sweep_request(&args("--archs maeri:huge")).is_err());
        assert!(build_sweep_request(&args("--sparsities many")).is_err());
    }

    #[test]
    fn sweep_command_runs_a_local_grid() {
        let a = args("--archs maeri:32:16 --models alexnet:tiny --sparsities 0 --workers 2");
        cmd_sweep(&a).unwrap();
        // An invalid grid is rejected before any simulation starts.
        let bad = args("--archs hypercube --models alexnet");
        assert!(cmd_sweep(&bad).is_err());
    }

    #[test]
    fn cluster_request_parses_every_axis() {
        let a = args(
            "--instances maeri:64:32,tpu:16 --models alexnet:tiny,squeezenet \
             --classes interactive:1:2:400000,batch:3 --requests 16 --rates 0.5,2 \
             --batch 2 --policy priority --seed 7 --dram 1:8:50",
        );
        let r = build_cluster_request(&a).unwrap();
        r.validate().unwrap();
        assert_eq!(r.instances.len(), 2);
        assert_eq!(
            (
                r.instances[0].arch.as_str(),
                r.instances[0].ms,
                r.instances[0].bw
            ),
            ("maeri", 64, 32)
        );
        assert_eq!(r.models[1].name, "squeezenet");
        assert_eq!(r.classes.len(), 2);
        assert_eq!(
            (r.classes[0].priority, r.classes[0].sla_cycles),
            (2, 400_000)
        );
        assert_eq!(r.classes[1].weight, 3.0);
        assert_eq!(r.effective_requests(), 16);
        assert_eq!(r.rates, vec![0.5, 2.0]);
        assert_eq!(r.effective_batch(), 2);
        let dram = r.dram.unwrap();
        assert_eq!(
            (dram.channels, dram.bandwidth_gbps, dram.latency_cycles),
            (1, 8.0, 50)
        );
        assert!(build_cluster_request(&args("--instances maeri:big")).is_err());
        assert!(build_cluster_request(&args("--classes a:heavy")).is_err());
        assert!(build_cluster_request(&args("--rates fast")).is_err());
    }

    #[test]
    fn cluster_command_runs_a_small_scenario() {
        let a =
            args("--instances maeri:32:16 --models alexnet:tiny --requests 4 --rates 1 --seed 3");
        cmd_cluster(&a).unwrap();
        // Validation failures surface before any profiling runs.
        let bad = args("--instances hypercube --models alexnet");
        assert!(cmd_cluster(&bad).is_err());
        let bad = args("--instances maeri --models alexnet --policy lottery");
        assert!(cmd_cluster(&bad).is_err());
    }
}
