//! Scheduling analyses behind Figures 7 and 9 of the paper.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use stonne_core::{AcceleratorConfig, RowSchedule};
use stonne_models::{ModelSpec, OpSpec};
use stonne_nn::params::ModelParams;
use stonne_nn::runner::run_model_simulated_scheduled;
use stonne_nn::Value;

/// Average number of *whole* filters that fit simultaneously onto an
/// `ms_size`-multiplier flexible sparse architecture, averaged over every
/// offloaded layer of the model (Fig. 7a).
///
/// A filter's mapped size is its non-zero count, capped at the array size
/// (larger filters fold and occupy the whole array).
pub fn avg_filters_mappable(model: &ModelSpec, params: &ModelParams, ms_size: usize) -> f64 {
    let mut per_layer: Vec<f64> = Vec::new();
    for id in model.offloaded_nodes() {
        if !matches!(
            model.nodes()[id].op,
            OpSpec::Conv2d { .. } | OpSpec::Linear { .. }
        ) {
            continue;
        }
        let Some(w) = params.get(id) else { continue };
        let sizes = w.filter_nnz();
        // Greedy fill in natural order, whole filters only.
        let mut fits_per_round: Vec<usize> = Vec::new();
        let mut used = 0usize;
        let mut count = 0usize;
        for &s in &sizes {
            if s == 0 {
                continue;
            }
            let s = s.min(ms_size);
            if used + s > ms_size {
                fits_per_round.push(count);
                used = 0;
                count = 0;
            }
            used += s;
            count += 1;
        }
        if count > 0 {
            fits_per_round.push(count);
        }
        if !fits_per_round.is_empty() {
            let avg = fits_per_round.iter().sum::<usize>() as f64 / fits_per_round.len() as f64;
            per_layer.push(avg);
        }
    }
    if per_layer.is_empty() {
        0.0
    } else {
        per_layer.iter().sum::<f64>() / per_layer.len() as f64
    }
}

/// Sizes (non-zero counts, capped at `ms_size`) of every filter of the
/// model's first offloaded layer (Fig. 7b).
pub fn first_layer_filter_sizes(
    model: &ModelSpec,
    params: &ModelParams,
    ms_size: usize,
) -> Vec<usize> {
    for id in model.offloaded_nodes() {
        if let Some(w) = params.get(id) {
            return w.filter_nnz().into_iter().map(|s| s.min(ms_size)).collect();
        }
    }
    Vec::new()
}

/// Per-layer sensitivity record for Fig. 9c: cycles and utilization under
/// two schedules for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSensitivity {
    /// Layer name.
    pub name: String,
    /// Cycles under the baseline (NS) schedule.
    pub baseline_cycles: u64,
    /// Cycles under the evaluated schedule.
    pub scheduled_cycles: u64,
    /// Baseline multiplier utilization.
    pub baseline_utilization: f64,
    /// Scheduled multiplier utilization.
    pub scheduled_utilization: f64,
}

impl LayerSensitivity {
    /// Runtime gain of the schedule vs the baseline, in `[0, 1)`
    /// (0.10 = 10 % fewer cycles).
    pub fn runtime_gain(&self) -> f64 {
        if self.baseline_cycles == 0 {
            return 0.0;
        }
        1.0 - self.scheduled_cycles as f64 / self.baseline_cycles as f64
    }

    /// Utilization improvement in absolute percentage points.
    pub fn utilization_gain(&self) -> f64 {
        self.scheduled_utilization - self.baseline_utilization
    }
}

/// Runs a model under the baseline (NS) and the given schedule and
/// reports the per-layer sensitivity (the Fig. 9c analysis).
///
/// # Panics
///
/// Panics if the configuration is invalid or the two runs offload
/// different layer sequences (impossible for pure reordering policies).
pub fn layer_sensitivity(
    model: &ModelSpec,
    params: &ModelParams,
    input: &Value,
    config: AcceleratorConfig,
    schedule: Arc<dyn RowSchedule + Send + Sync>,
) -> Vec<LayerSensitivity> {
    let base = run_model_simulated_scheduled(
        model,
        params,
        input,
        config.clone(),
        Arc::new(stonne_core::NaturalOrder),
    )
    .expect("valid config");
    let sched = run_model_simulated_scheduled(model, params, input, config, schedule)
        .expect("valid config");
    assert_eq!(
        base.layers.len(),
        sched.layers.len(),
        "schedules must offload identical layer sequences"
    );
    base.layers
        .iter()
        .zip(sched.layers.iter())
        .map(|(b, s)| LayerSensitivity {
            name: b.name.clone(),
            baseline_cycles: b.stats.cycles,
            scheduled_cycles: s.stats.cycles,
            baseline_utilization: b.stats.ms_utilization(),
            scheduled_utilization: s.stats.ms_utilization(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LargestFilterFirst;
    use stonne_models::{zoo, ModelScale};
    use stonne_nn::params::generate_input;

    #[test]
    fn fig7a_mappable_filters_vary_by_model() {
        // BERT's huge 768-wide rows (60% sparse ⇒ ~307 nnz) map fewer
        // whole filters than SqueezeNet's small squeeze filters.
        let squeeze = zoo::squeezenet(ModelScale::Tiny);
        let sp = ModelParams::generate(&squeeze, 1);
        let bert = zoo::bert(ModelScale::Tiny);
        let bp = ModelParams::generate(&bert, 1);
        let s = avg_filters_mappable(&squeeze, &sp, 256);
        let b = avg_filters_mappable(&bert, &bp, 256);
        assert!(
            s > b,
            "squeezenet {s} should map more filters than bert {b}"
        );
        assert!(b >= 1.0);
    }

    #[test]
    fn fig7b_first_layer_sizes_are_capped() {
        let model = zoo::alexnet(ModelScale::Tiny);
        let params = ModelParams::generate(&model, 2);
        let sizes = first_layer_filter_sizes(&model, &params, 256);
        assert_eq!(sizes.len(), 64); // AlexNet conv1 has 64 filters
        assert!(sizes.iter().all(|&s| s <= 256));
        assert!(sizes.iter().any(|&s| s > 0));
    }

    #[test]
    fn sensitivity_reports_cover_all_layers() {
        let model = zoo::squeezenet(ModelScale::Tiny);
        let params = ModelParams::generate(&model, 3);
        let input = generate_input(&model, 4);
        let rows = layer_sensitivity(
            &model,
            &params,
            &input,
            stonne_core::AcceleratorConfig::sigma_like(64, 64),
            Arc::new(LargestFilterFirst),
        );
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                r.scheduled_cycles <= r.baseline_cycles,
                "{}: LFF slower ({} > {})",
                r.name,
                r.scheduled_cycles,
                r.baseline_cycles
            );
            assert!(r.runtime_gain() >= 0.0);
        }
    }
}
