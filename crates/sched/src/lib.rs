//! Filter scheduling for flexible sparse accelerators — the paper's use
//! case C (Section VI-C), a *front-end* extension of the simulator.
//!
//! When weights are pruned, the non-zero count of each filter varies
//! wildly; the order in which the sparse controller issues filters
//! determines how well variable-size clusters pack onto the multiplier
//! network, and therefore compute utilization and runtime. This crate
//! provides the paper's three static policies as [`RowSchedule`]
//! implementations —
//!
//! * [`NaturalOrder`] (re-exported) — *No Scheduling* (NS) baseline;
//! * [`RandomOrder`] — RDM: a seeded shuffle (shown not to help);
//! * [`LargestFilterFirst`] — LFF: issue the largest remaining filter
//!   that fits, backfilling residual multipliers with smaller ones —
//!
//! plus the [`analysis`] helpers behind Figs. 7 and 9 (filters mappable
//! per iteration, first-layer filter sizes, per-layer sensitivity).

pub mod analysis;

pub use analysis::{
    avg_filters_mappable, first_layer_filter_sizes, layer_sensitivity, LayerSensitivity,
};
pub use stonne_core::NaturalOrder;

use stonne_core::RowSchedule;
use stonne_tensor::SeededRng;

/// The paper's Largest-Filter-First static heuristic: filters issue in
/// descending non-zero order, and the controller may skip a filter that
/// does not fit the residual multipliers in favour of the next smaller
/// one ("the scheduler selects as many available filters as possible in
/// descending size order").
#[derive(Debug, Clone, Copy, Default)]
pub struct LargestFilterFirst;

impl RowSchedule for LargestFilterFirst {
    fn order(&self, row_nnz: &[usize]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..row_nnz.len()).collect();
        // Stable sort keeps the natural order among equal sizes, making
        // the schedule deterministic.
        idx.sort_by(|&a, &b| row_nnz[b].cmp(&row_nnz[a]));
        idx
    }

    fn name(&self) -> &str {
        "LFF"
    }

    fn allow_skip(&self) -> bool {
        true
    }
}

/// Best-Fit-Decreasing: an *extension beyond the paper* (its conclusion
/// calls for "more intelligent heuristics"). Filters are issued largest
/// first like LFF, but instead of greedily backfilling with the *next*
/// fitting filter, the controller picks the remaining filter that fills
/// the residual multipliers *best* — classic best-fit bin packing, which
/// can only tighten LFF's packing.
///
/// Implemented as a schedule-order transformation: the order is computed
/// by simulating best-fit packing over the given row sizes, then emitted
/// as a flat order with skip-ahead enabled, so the engine's in-order
/// packing reconstructs the same bins.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFitDecreasing {
    /// Multiplier count the packing is optimized for.
    pub ms_size: usize,
}

impl BestFitDecreasing {
    /// Creates the heuristic for an `ms_size`-multiplier array.
    pub fn new(ms_size: usize) -> Self {
        Self { ms_size }
    }
}

impl RowSchedule for BestFitDecreasing {
    fn order(&self, row_nnz: &[usize]) -> Vec<usize> {
        let ms = self.ms_size.max(1);
        // Work on capped sizes (rows longer than the array fold anyway).
        let mut remaining: Vec<(usize, usize)> = row_nnz
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > 0)
            .map(|(i, &s)| (i, s.min(ms)))
            .collect();
        remaining.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut order = Vec::with_capacity(row_nnz.len());
        while !remaining.is_empty() {
            // Open a bin with the largest remaining filter…
            let (idx, size) = remaining.remove(0);
            order.push(idx);
            let mut free = ms - size;
            // …then repeatedly take the largest filter that still fits
            // (best fill of the residual capacity).
            while free > 0 {
                let Some(pos) = remaining.iter().position(|&(_, s)| s <= free) else {
                    break;
                };
                let (idx, size) = remaining.remove(pos);
                order.push(idx);
                free -= size;
            }
        }
        // Zero rows go last (they are skipped by the controller anyway).
        order.extend(
            row_nnz
                .iter()
                .enumerate()
                .filter(|(_, &s)| s == 0)
                .map(|(i, _)| i),
        );
        order
    }

    fn name(&self) -> &str {
        "BFD"
    }

    fn cache_token(&self) -> String {
        // Packing depends on the target array size, so two BFD instances
        // tuned for different arrays must not share cache entries.
        format!("BFD:{}", self.ms_size)
    }

    fn allow_skip(&self) -> bool {
        true
    }
}

/// The RDM baseline: a deterministic random permutation of the filters.
#[derive(Debug, Clone, Copy)]
pub struct RandomOrder {
    seed: u64,
}

impl RandomOrder {
    /// Creates a random order from a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl RowSchedule for RandomOrder {
    fn order(&self, row_nnz: &[usize]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..row_nnz.len()).collect();
        let mut rng = SeededRng::new(self.seed);
        rng.shuffle(&mut idx);
        idx
    }

    fn name(&self) -> &str {
        "RDM"
    }

    fn cache_token(&self) -> String {
        // The permutation is a pure function of the seed; fold it into the
        // token so differently-seeded orders never share cache entries.
        format!("RDM:{}", self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stonne_core::{AcceleratorConfig, Stonne};
    use stonne_tensor::{CsrMatrix, Matrix, SeededRng};

    fn sparse_weights(m: usize, k: usize, sparsity: f64, seed: u64) -> Matrix {
        let mut rng = SeededRng::new(seed);
        let mut a = Matrix::random(m, k, &mut rng);
        for r in 0..m {
            for c in 0..k {
                if rng.chance(sparsity) {
                    a.set(r, c, 0.0);
                }
            }
        }
        a
    }

    #[test]
    fn bfd_orders_are_permutations_and_pack_tightly() {
        let sizes = vec![20usize, 20, 4, 4, 12, 0, 8];
        let order = BestFitDecreasing::new(32).order(&sizes);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
        // First bin: 20 + 12 (best fit for the 12 free slots over 8/4).
        assert_eq!(&order[..2], &[0, 4]);
    }

    #[test]
    fn bfd_never_needs_more_iterations_than_lff() {
        for seed in 0..6 {
            let a = sparse_weights(40, 64, 0.85, 200 + seed);
            let b = Matrix::random(64, 4, &mut SeededRng::new(300 + seed));
            let csr = CsrMatrix::from_dense(&a);
            let cfg = AcceleratorConfig::sigma_like(64, 64);
            let mut sim = Stonne::new(cfg.clone()).unwrap();
            let lff = sim.run_spmm_scheduled("lff", &csr, &b, &LargestFilterFirst);
            let mut sim = Stonne::new(cfg).unwrap();
            let bfd = sim.run_spmm_scheduled("bfd", &csr, &b, &BestFitDecreasing::new(64));
            assert!(
                bfd.iterations.len() <= lff.iterations.len(),
                "seed {seed}: BFD {} iters > LFF {}",
                bfd.iterations.len(),
                lff.iterations.len()
            );
            stonne_tensor::assert_slices_close(bfd.output.as_slice(), lff.output.as_slice());
        }
    }

    #[test]
    fn lff_orders_descending() {
        let order = LargestFilterFirst.order(&[3, 9, 1, 9, 5]);
        assert_eq!(order, vec![1, 3, 4, 0, 2]);
        assert!(LargestFilterFirst.allow_skip());
    }

    #[test]
    fn random_is_a_deterministic_permutation() {
        let nnz = vec![1usize; 20];
        let a = RandomOrder::new(5).order(&nnz);
        let b = RandomOrder::new(5).order(&nnz);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(a, RandomOrder::new(6).order(&nnz));
    }

    #[test]
    fn lff_never_needs_more_iterations_than_ns() {
        // The paper's core claim: LFF packs at least as densely.
        for seed in 0..8 {
            let a = sparse_weights(48, 64, 0.8, seed);
            let b = Matrix::random(64, 8, &mut SeededRng::new(seed ^ 99));
            let csr = CsrMatrix::from_dense(&a);
            let cfg = AcceleratorConfig::sigma_like(128, 128);
            let mut sim = Stonne::new(cfg.clone()).unwrap();
            let ns = sim.run_spmm_scheduled("ns", &csr, &b, &NaturalOrder);
            let mut sim = Stonne::new(cfg).unwrap();
            let lff = sim.run_spmm_scheduled("lff", &csr, &b, &LargestFilterFirst);
            assert!(
                lff.iterations.len() <= ns.iterations.len(),
                "seed {seed}: LFF {} iters > NS {}",
                lff.iterations.len(),
                ns.iterations.len()
            );
            assert!(lff.stats.cycles <= ns.stats.cycles);
            // Functional equivalence regardless of order.
            assert_eq!(lff.output, ns.output);
        }
    }

    #[test]
    fn lff_improves_utilization_on_skewed_filters() {
        // Handcrafted sizes where NS wastes capacity: 20,20,4,4 on 32 MS.
        let mut a = Matrix::zeros(4, 24);
        for (r, nnz) in [(0usize, 20usize), (1, 20), (2, 4), (3, 4)] {
            for c in 0..nnz {
                a.set(r, c, 1.0 + r as f32);
            }
        }
        let csr = CsrMatrix::from_dense(&a);
        let b = Matrix::from_rows(&[&[1.0f32; 4]; 24].map(|r| &r[..]));
        let cfg = AcceleratorConfig::sigma_like(32, 32);
        let mut sim = Stonne::new(cfg.clone()).unwrap();
        let ns = sim.run_spmm_scheduled("ns", &csr, &b, &NaturalOrder);
        let mut sim = Stonne::new(cfg).unwrap();
        let lff = sim.run_spmm_scheduled("lff", &csr, &b, &LargestFilterFirst);
        assert!(lff.iterations[0].ms_occupied >= ns.iterations[0].ms_occupied);
        assert!(lff.stats.ms_utilization() >= ns.stats.ms_utilization());
    }

    #[test]
    fn fig8_example_lff_balances_clusters() {
        // The worked example of Fig. 8: four 1×5 filters with effective
        // sizes 4,2,4,2 on an 8-MS SIGMA-like engine. LFF maps the two
        // size-4 filters together (perfect balance); NS maps {F0,F1} then
        // {F2,F3}.
        let mut a = Matrix::zeros(4, 5);
        for (r, cols) in [
            (0usize, vec![0usize, 1, 2, 3]),
            (1, vec![0, 4]),
            (2, vec![1, 2, 3, 4]),
            (3, vec![2, 3]),
        ] {
            for c in cols {
                a.set(r, c, 1.0);
            }
        }
        let csr = CsrMatrix::from_dense(&a);
        // Two streaming columns keep the mapper in weight-stationary mode
        // (a single column would trigger the GEMV input-stationary path).
        let b = Matrix::from_rows(&[
            &[1.0, 1.5],
            &[2.0, 0.5],
            &[3.0, 2.5],
            &[4.0, 0.25],
            &[5.0, 1.0],
        ]);
        let cfg = AcceleratorConfig::sigma_like(8, 8);
        let mut sim = Stonne::new(cfg.clone()).unwrap();
        let lff = sim.run_spmm_scheduled("lff", &csr, &b, &LargestFilterFirst);
        assert_eq!(lff.iterations[0].ms_occupied, 8);
        let mut sim = Stonne::new(cfg).unwrap();
        let ns = sim.run_spmm_scheduled("ns", &csr, &b, &NaturalOrder);
        assert!(lff.stats.cycles <= ns.stats.cycles);
        assert_eq!(lff.output, ns.output);
    }
}
