//! Checkpoint/resume acceptance tests: interrupted full-model runs must
//! restart at the last layer boundary and finish **bitwise-identical**
//! to an uninterrupted run — outputs, per-layer stats (including cache
//! counters), aggregate stats, energy, and the run state hash — and a
//! corrupt or deliberately mutated checkpoint must be rejected by the
//! state hash and healed by falling back to the previous boundary.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use stonne_core::{AcceleratorConfig, NaturalOrder};
use stonne_models::{zoo, ModelScale};
use stonne_nn::params::{generate_input, ModelParams};
use stonne_nn::runner::{
    run_model_simulated_traced_with, run_model_simulated_with, ModelRun, RunOptions,
};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stonne-nn-ckpt-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

fn run_alexnet(options: RunOptions) -> ModelRun {
    let model = zoo::alexnet(ModelScale::Tiny);
    let params = ModelParams::generate(&model, 1);
    let input = generate_input(&model, 2);
    run_model_simulated_with(
        &model,
        &params,
        &input,
        AcceleratorConfig::maeri_like(32, 16),
        Arc::new(NaturalOrder),
        options,
    )
    .unwrap()
}

/// Bitwise equality: output bits, the full JSON report (per-layer +
/// aggregate stats + energy), and the state hash.
fn assert_bitwise_equal(a: &ModelRun, b: &ModelRun) {
    assert_eq!(a.outputs.len(), b.outputs.len());
    for (i, (x, y)) in a.outputs.iter().zip(&b.outputs).enumerate() {
        let (xs, ys) = (x.as_slice(), y.as_slice());
        assert_eq!(xs.len(), ys.len(), "node {i} element count");
        for (j, (p, q)) in xs.iter().zip(ys).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "node {i} element {j}");
        }
    }
    assert_eq!(a.report_json(), b.report_json(), "stats/energy report");
    assert_eq!(a.state_hash(), b.state_hash());
}

fn checkpoint_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    files
}

#[test]
fn checkpointing_does_not_perturb_the_run() {
    let dir = tmp_dir("noperturb");
    let straight = run_alexnet(RunOptions::new());
    let checkpointed = run_alexnet(RunOptions::new().checkpoint_every(3, &dir));
    assert_bitwise_equal(&straight, &checkpointed);
    assert!(
        checkpoint_files(&dir).len() >= 3,
        "alexnet has >= 11 boundaries; every 3rd checkpoints"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_after_interruption_is_bitwise_identical() {
    let dir = tmp_dir("resume");
    let straight = run_alexnet(RunOptions::new());
    run_alexnet(RunOptions::new().checkpoint_every(2, &dir));
    // Simulate a crash after the second checkpoint: drop every later one.
    let files = checkpoint_files(&dir);
    assert!(files.len() >= 3, "need >= 3 checkpoints, got {files:?}");
    for f in &files[2..] {
        fs::remove_file(f).unwrap();
    }
    let resumed = run_alexnet(RunOptions::new().resume_from(&dir));
    assert_bitwise_equal(&straight, &resumed);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_from_final_checkpoint_replays_without_work() {
    let dir = tmp_dir("final");
    let straight = run_alexnet(RunOptions::new());
    // every=1: the newest checkpoint sits at the last layer boundary.
    run_alexnet(RunOptions::new().checkpoint_every(1, &dir));
    let resumed = run_alexnet(RunOptions::new().resume_from(&dir));
    assert_bitwise_equal(&straight, &resumed);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_no_checkpoints_starts_clean() {
    let dir = tmp_dir("clean");
    let straight = run_alexnet(RunOptions::new());
    let resumed = run_alexnet(RunOptions::new().resume_from(&dir)); // dir absent
    assert_bitwise_equal(&straight, &resumed);
}

/// Satellite: corrupt-checkpoint healing. A truncated newest checkpoint
/// must be skipped in favor of the boundary before it, and the resumed
/// run must still match the uninterrupted one bitwise.
#[test]
fn truncated_checkpoint_heals_to_previous_boundary() {
    let dir = tmp_dir("truncated");
    let straight = run_alexnet(RunOptions::new());
    run_alexnet(RunOptions::new().checkpoint_every(2, &dir));
    let files = checkpoint_files(&dir);
    assert!(files.len() >= 2);
    let newest = files.last().unwrap();
    let text = fs::read_to_string(newest).unwrap();
    fs::write(newest, &text[..text.len() / 2]).unwrap();
    let resumed = run_alexnet(RunOptions::new().resume_from(&dir));
    assert_bitwise_equal(&straight, &resumed);
    fs::remove_dir_all(&dir).ok();
}

/// The deliberate-mutation smoke test of the acceptance criteria: flip
/// one digit of one serialized value inside the newest checkpoint (the
/// JSON stays well-formed) and the recomputed state hash must reject
/// it. Were the mutated snapshot accepted, the resumed outputs would
/// inherit the flipped bits and diverge from the straight run.
#[test]
fn mutated_checkpoint_is_rejected_by_the_state_hash() {
    let dir = tmp_dir("mutated");
    let straight = run_alexnet(RunOptions::new());
    run_alexnet(RunOptions::new().checkpoint_every(2, &dir));
    let files = checkpoint_files(&dir);
    assert!(files.len() >= 2);
    let newest = files.last().unwrap();
    let text = fs::read_to_string(newest).unwrap();
    // Inside the payload the values serialize as `\"bits\":[NNN,...]`;
    // bump the last digit of the first bit pattern (mod 10 keeps the
    // number in u32 range and the JSON valid).
    let bits_at = text.find("bits").expect("payload carries bit patterns");
    let digits_start = text[bits_at..].find('[').unwrap() + bits_at + 1;
    let digits_end = digits_start
        + text[digits_start..]
            .find(|c: char| !c.is_ascii_digit())
            .unwrap();
    assert!(digits_end > digits_start, "first bit pattern present");
    let mut mutated = text.clone();
    let last = text.as_bytes()[digits_end - 1];
    mutated.replace_range(
        digits_end - 1..digits_end,
        if last == b'9' { "0" } else { "9" },
    );
    assert_ne!(mutated, text);
    fs::write(newest, mutated).unwrap();

    let resumed = run_alexnet(RunOptions::new().resume_from(&dir));
    assert_bitwise_equal(&straight, &resumed);
    fs::remove_dir_all(&dir).ok();
}

/// The state hash is stable across the serial, wave-parallel and
/// intra-tile runners — the cross-runner oracle the fuzz matrix pins.
#[test]
fn state_hash_is_stable_across_runners() {
    let serial = run_alexnet(RunOptions::new());
    let parallel = run_alexnet(RunOptions::new().parallel());
    let intra = run_alexnet(RunOptions::new().intra_layer_parallel());
    assert_eq!(serial.state_hash(), parallel.state_hash());
    assert_eq!(serial.state_hash(), intra.state_hash());
    // And it is not vacuous: a different input changes it.
    let model = zoo::alexnet(ModelScale::Tiny);
    let params = ModelParams::generate(&model, 1);
    let other_input = generate_input(&model, 3);
    let other = run_model_simulated_with(
        &model,
        &params,
        &other_input,
        AcceleratorConfig::maeri_like(32, 16),
        Arc::new(NaturalOrder),
        RunOptions::new(),
    )
    .unwrap();
    assert_ne!(serial.state_hash(), other.state_hash());
}

/// Checkpoint writing must not perturb the recorded trace: a traced
/// checkpointed run and a traced plain run export identical timelines.
#[test]
fn checkpointing_preserves_the_trace_byte_for_byte() {
    let dir = tmp_dir("trace");
    let model = zoo::alexnet(ModelScale::Tiny);
    let params = ModelParams::generate(&model, 1);
    let input = generate_input(&model, 2);
    let capacity = stonne_core::trace::DEFAULT_CAPACITY;
    let cfg = AcceleratorConfig::maeri_like(32, 16);
    let (plain_run, plain_trace) =
        run_model_simulated_traced_with(&model, &params, &input, cfg.clone(), capacity, {
            RunOptions::new()
        })
        .unwrap();
    let (ckpt_run, ckpt_trace) = run_model_simulated_traced_with(
        &model,
        &params,
        &input,
        cfg,
        capacity,
        RunOptions::new().checkpoint_every(2, &dir),
    )
    .unwrap();
    assert_bitwise_equal(&plain_run, &ckpt_run);
    assert_eq!(
        stonne_core::chrome_trace_json(&plain_trace),
        stonne_core::chrome_trace_json(&ckpt_trace),
    );
    fs::remove_dir_all(&dir).ok();
}
