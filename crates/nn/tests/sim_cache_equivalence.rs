//! The simulation cache's correctness gate: cached, uncached, and
//! parallel full-model runs must be indistinguishable — bitwise-identical
//! outputs and identical per-layer cycle statistics — while the cached
//! run performs far fewer cycle-level engine invocations.

use std::sync::Arc;
use stonne_core::{summary_json, AcceleratorConfig, NaturalOrder, SimCache, SimStats};
use stonne_models::{zoo, ModelId, ModelScale};
use stonne_nn::params::{generate_input, ModelParams};
use stonne_nn::runner::{run_model_simulated_with, ModelRun, RunOptions};

/// Zeroes the cache bookkeeping fields so stats compare field-by-field.
fn strip_cache_counters(mut s: SimStats) -> SimStats {
    s.sim_cache_hits = 0;
    s.sim_cache_misses = 0;
    s.sim_cache_inserts = 0;
    s.engine_invocations = 0;
    s.tile_cache_hits = 0;
    s.tile_cache_misses = 0;
    s.tile_cache_assembled = 0;
    s
}

fn run_bert(config: AcceleratorConfig, options: RunOptions) -> ModelRun {
    let model = zoo::build(ModelId::Bert, ModelScale::Tiny);
    let params = ModelParams::generate(&model, 17);
    let input = generate_input(&model, 18);
    run_model_simulated_with(
        &model,
        &params,
        &input,
        config,
        Arc::new(NaturalOrder),
        options,
    )
    .expect("valid preset")
}

fn assert_equivalent(reference: &ModelRun, candidate: &ModelRun, label: &str) {
    assert_eq!(
        reference.outputs.len(),
        candidate.outputs.len(),
        "{label}: node count"
    );
    for (i, (a, b)) in reference
        .outputs
        .iter()
        .zip(candidate.outputs.iter())
        .enumerate()
    {
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "{label}: node {i} output must be bitwise identical"
        );
    }
    assert_eq!(
        reference.layers.len(),
        candidate.layers.len(),
        "{label}: layer count"
    );
    for (a, b) in reference.layers.iter().zip(candidate.layers.iter()) {
        assert_eq!(a.name, b.name, "{label}: layer order");
        assert_eq!(
            strip_cache_counters(a.stats.clone()),
            strip_cache_counters(b.stats.clone()),
            "{label}: layer `{}` stats",
            a.name
        );
    }
    assert_eq!(
        strip_cache_counters(reference.total.clone()),
        strip_cache_counters(candidate.total.clone()),
        "{label}: aggregate stats"
    );
}

#[test]
fn cached_bert_run_is_bitwise_identical_and_much_cheaper() {
    let config = AcceleratorConfig::maeri_like(64, 16);
    let uncached = run_bert(config.clone(), RunOptions::new().uncached());
    let cached = run_bert(config, RunOptions::new());

    assert_equivalent(&uncached, &cached, "cached-vs-uncached");

    // Every offloaded op of the uncached run hits the engine; the cached
    // run simulates each distinct shape once. BERT's 12 identical
    // encoders make the gap at least 5× (the ISSUE's acceptance floor).
    assert_eq!(
        uncached.total.engine_invocations,
        uncached.layers.len() as u64
    );
    assert_eq!(uncached.total.sim_cache_hits, 0);
    assert!(
        cached.total.engine_invocations * 5 <= uncached.total.engine_invocations,
        "cached {} engine invocations vs uncached {}",
        cached.total.engine_invocations,
        uncached.total.engine_invocations
    );
    assert_eq!(
        cached.total.sim_cache_hits + cached.total.sim_cache_misses,
        cached.layers.len() as u64
    );
    assert_eq!(
        cached.total.sim_cache_inserts,
        cached.total.engine_invocations
    );

    // The cache counters flow into the Output Module's JSON summary.
    let json = summary_json(&cached.total);
    assert!(json.contains("\"sim_cache_hits\""), "{json}");
    assert!(json.contains("\"engine_invocations\""), "{json}");
}

#[test]
fn parallel_bert_run_matches_the_sequential_run() {
    let config = AcceleratorConfig::maeri_like(64, 16);
    let sequential = run_bert(config.clone(), RunOptions::new());
    let parallel = run_bert(config, RunOptions::new().parallel());
    assert_equivalent(&sequential, &parallel, "parallel-vs-sequential");
}

#[test]
fn parallel_uncached_squeezenet_matches_sequential() {
    // SqueezeNet's fire modules have genuinely parallel branches; run it
    // uncached so every branch actually exercises its own engine instance.
    let config = AcceleratorConfig::sigma_like(64, 64);
    let model = zoo::build(ModelId::SqueezeNet, ModelScale::Tiny);
    let params = ModelParams::generate(&model, 5);
    let input = generate_input(&model, 6);
    let run = |options: RunOptions| {
        run_model_simulated_with(
            &model,
            &params,
            &input,
            config.clone(),
            Arc::new(NaturalOrder),
            options,
        )
        .expect("valid preset")
    };
    let sequential = run(RunOptions::new().uncached());
    let parallel = run(RunOptions::new().uncached().parallel());
    assert_equivalent(&sequential, &parallel, "squeezenet-parallel");
}

#[test]
fn shared_cache_carries_across_runs() {
    // The bench harnesses share one cache across sweep points; a second
    // identical run must be (almost) all hits.
    let config = AcceleratorConfig::maeri_like(64, 16);
    let cache = SimCache::new();
    let first = run_bert(config.clone(), RunOptions::new().with_cache(cache.clone()));
    let entries_after_first = cache.len();
    let second = run_bert(config, RunOptions::new().with_cache(cache.clone()));
    assert_equivalent(&first, &second, "shared-cache");
    assert_eq!(second.total.engine_invocations, 0, "all layers replay");
    assert_eq!(second.total.sim_cache_hits, second.layers.len() as u64);
    assert_eq!(cache.len(), entries_after_first, "no new entries");
}
