//! Fast-fidelity model runs: a [`CyclePredictor`] attached via
//! [`RunOptions::with_predictor`] replaces every cycle-level engine
//! invocation while layer outputs stay bitwise-exact, and the parallel
//! dispatch path agrees with the sequential one.

use std::sync::Arc;

use stonne_core::predict::{CyclePredictor, LayerFeatures};
use stonne_core::{AcceleratorConfig, NaturalOrder};
use stonne_models::{zoo, ModelId, ModelScale};
use stonne_nn::params::{generate_input, ModelParams};
use stonne_nn::runner::{run_model_simulated_with, ModelRun, RunOptions};

/// A deterministic toy predictor: one cycle per 8 MACs plus a constant.
#[derive(Debug)]
struct Flat;

impl CyclePredictor for Flat {
    fn predict_cycles(&self, f: &LayerFeatures) -> u64 {
        f.macs / 8 + 5
    }
}

fn run_bert(options: RunOptions) -> ModelRun {
    let model = zoo::build(ModelId::Bert, ModelScale::Tiny);
    let params = ModelParams::generate(&model, 17);
    let input = generate_input(&model, 18);
    run_model_simulated_with(
        &model,
        &params,
        &input,
        AcceleratorConfig::maeri_like(64, 16),
        Arc::new(NaturalOrder),
        options,
    )
    .expect("valid preset")
}

#[test]
fn fast_run_skips_every_engine_invocation_but_keeps_exact_outputs() {
    let exact = run_bert(RunOptions::new());
    let fast = run_bert(RunOptions::new().with_predictor(Arc::new(Flat)));

    assert_eq!(fast.total.engine_invocations, 0, "fast path fell through");
    assert!(fast.total.cycles > 0);
    assert_eq!(fast.layers.len(), exact.layers.len());
    // Outputs are computed functionally, not predicted: bitwise equal.
    assert_eq!(exact.outputs.len(), fast.outputs.len());
    for (i, (a, b)) in exact.outputs.iter().zip(fast.outputs.iter()).enumerate() {
        assert_eq!(a.as_slice(), b.as_slice(), "node {i} output drifted");
    }
    // Predicted stats are never memoized alongside exact cache entries.
    assert_eq!(fast.total.sim_cache_inserts, 0);
    assert_eq!(fast.total.sim_cache_hits, 0);
}

#[test]
fn parallel_fast_run_matches_the_sequential_fast_run() {
    let sequential = run_bert(RunOptions::new().with_predictor(Arc::new(Flat)));
    let parallel = run_bert(RunOptions::new().with_predictor(Arc::new(Flat)).parallel());

    assert_eq!(parallel.total.engine_invocations, 0);
    assert_eq!(sequential.layers.len(), parallel.layers.len());
    for (a, b) in sequential.layers.iter().zip(parallel.layers.iter()) {
        assert_eq!(a.name, b.name, "layer order");
        assert_eq!(a.stats, b.stats, "layer `{}` stats", a.name);
    }
    assert_eq!(sequential.total, parallel.total, "aggregate stats");
    for (i, (a, b)) in sequential
        .outputs
        .iter()
        .zip(parallel.outputs.iter())
        .enumerate()
    {
        assert_eq!(a.as_slice(), b.as_slice(), "node {i} output drifted");
    }
}
