//! Checkpoint/resume for full-model simulated runs.
//!
//! Because every engine is bitwise-deterministic, a run's state at a
//! *layer boundary* — the node values produced so far, the per-layer
//! statistics history, and the simulation cache contents — fully
//! determines the rest of the run. This module serializes that state
//! into a [`stonne_core::Checkpoint`] (values as exact `f32` bit
//! patterns, the cache as a [`stonne_core::SimCache::export_json`]
//! snapshot) and restores it, so an interrupted run restarts at the
//! last boundary and produces outputs, per-layer stats, aggregate
//! stats and energy **bitwise-identical** to an uninterrupted run —
//! including the cache hit/miss counters, which only replay
//! identically because the cache snapshot travels with the checkpoint.
//!
//! Every checkpoint carries a [`StateHash`] over the canonical state
//! bytes; the loader recomputes it and rejects any file that drifted
//! (bit-rot, tampering, a non-deterministic producer), falling back to
//! the previous boundary or a clean start. Checkpointed runs execute
//! sequentially (wave-parallel dispatch has no layer-boundary order);
//! intra-layer tile parallelism composes fine, since it is
//! bitwise-identical to serial execution by construction.

use crate::backend::SimBackend;
use crate::executor::{execute_node, is_offloaded_op};
use crate::params::ModelParams;
use crate::runner::{LayerReport, ModelRun, RunOptions};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;
use stonne_core::{
    code_fingerprint, AcceleratorConfig, Checkpoint, ConfigError, RowSchedule, SimCache, SimStats,
    StateHash, Stonne, CHECKPOINT_SCHEMA,
};
use stonne_energy::EnergyModel;
use stonne_models::ModelSpec;
use stonne_tensor::{Matrix, Tensor4};

/// Serialized form of one node value: shape plus exact `f32` bit
/// patterns, so decoding reproduces the value bitwise on any platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ValueRepr {
    /// 0 = NCHW feature map, 1 = token matrix.
    kind: u8,
    /// `[n, c, h, w]` for features, `[rows, cols]` for tokens.
    dims: Vec<usize>,
    /// Element bit patterns (`f32::to_bits`), row-major.
    bits: Vec<u32>,
}

fn encode_value(v: &Value) -> ValueRepr {
    let (kind, dims) = match v {
        Value::Feature(t) => {
            let (n, c, h, w) = t.shape();
            (0, vec![n, c, h, w])
        }
        Value::Tokens(m) => (1, vec![m.rows(), m.cols()]),
    };
    ValueRepr {
        kind,
        dims,
        bits: v.as_slice().iter().map(|x| x.to_bits()).collect(),
    }
}

fn decode_value(r: &ValueRepr) -> Result<Value, String> {
    let elems: Vec<f32> = r.bits.iter().map(|&b| f32::from_bits(b)).collect();
    match (r.kind, r.dims.as_slice()) {
        (0, &[n, c, h, w]) => {
            if n * c * h * w != elems.len() {
                return Err("feature element count mismatch".to_owned());
            }
            Ok(Value::Feature(Tensor4::from_vec(n, c, h, w, elems)))
        }
        (1, &[rows, cols]) => {
            if rows * cols != elems.len() {
                return Err("token element count mismatch".to_owned());
            }
            Ok(Value::Tokens(Matrix::from_vec(rows, cols, elems)))
        }
        _ => Err(format!("unknown value kind {} / dims {:?}", r.kind, r.dims)),
    }
}

/// The runner-specific checkpoint payload.
#[derive(Debug, Serialize, Deserialize)]
struct RunPayload {
    /// Every node value produced before the boundary, in node order.
    values: Vec<ValueRepr>,
    /// Simulation-cache snapshot at the boundary
    /// ([`SimCache::export_json`]); empty for uncached runs.
    cache: String,
    /// Tile-record snapshot at the boundary
    /// ([`stonne_core::SimContext::export_tiles_json`]). Restoring it
    /// gives the resumed suffix the same tile cache state the straight
    /// run had, so the tile hit/miss counters replay identically too.
    #[serde(default)]
    tiles: String,
}

/// A [`SimStats`] clone with the volatile counters zeroed. Cache
/// hit/miss/insert and engine-invocation counts depend on *how* a
/// result was obtained (cached, parallel, resumed), not on what the
/// simulated hardware did, so the state hash excludes them — which is
/// exactly what makes the hash stable across the serial, wave-parallel
/// and intra-tile runners.
fn canonical_stats(s: &SimStats) -> SimStats {
    let mut s = s.clone();
    s.sim_cache_hits = 0;
    s.sim_cache_misses = 0;
    s.sim_cache_inserts = 0;
    s.engine_invocations = 0;
    // Tile-grain counters are volatile for the same reason: under
    // wave-parallel dispatch the tile hit/miss split depends on which
    // worker derived a shared record first.
    s.tile_cache_hits = 0;
    s.tile_cache_misses = 0;
    s.tile_cache_assembled = 0;
    s
}

fn hash_value(h: &mut StateHash, v: &Value) {
    match v {
        Value::Feature(t) => {
            let (n, c, hh, w) = t.shape();
            h.update_u64(0);
            for d in [n, c, hh, w] {
                h.update_u64(d as u64);
            }
        }
        Value::Tokens(m) => {
            h.update_u64(1);
            for d in [m.rows(), m.cols()] {
                h.update_u64(d as u64);
            }
        }
    }
    for &x in v.as_slice() {
        h.update_u32(x.to_bits());
    }
}

/// FNV-1a over the canonical run state: node values (exact bits),
/// per-layer stats (volatile counters zeroed), and the verbatim cache
/// and tile snapshot texts (a tampered tile record would replay wrong
/// timing into the resumed suffix, so it must fail validation).
fn state_hash_of(
    values: &[Value],
    stats: &[SimStats],
    cache_snapshot: &str,
    tiles_snapshot: &str,
) -> u64 {
    let mut h = StateHash::new();
    h.update_u64(values.len() as u64);
    for v in values {
        hash_value(&mut h, v);
    }
    h.update_u64(stats.len() as u64);
    for s in stats {
        h.update_str(&serde_json::to_string(&canonical_stats(s)).expect("stats serialize"));
    }
    h.update_str(cache_snapshot);
    h.update_str(tiles_snapshot);
    h.finish()
}

/// The state hash of a completed run: its outputs plus per-layer stats
/// (volatile counters zeroed). Exposed through
/// [`ModelRun::state_hash`].
pub(crate) fn run_state_hash(run: &ModelRun) -> u64 {
    let stats: Vec<SimStats> = run.layers.iter().map(|l| l.stats.clone()).collect();
    state_hash_of(&run.outputs, &stats, "", "")
}

/// Restores the newest checkpoint in `dir` whose recomputed state hash
/// matches — skipping (with a stderr note) truncated, mismatched or
/// tampered files, which is the healing path. Returns the decoded
/// values, the stats history, the boundary count, the resume node, and
/// the cache snapshot.
#[allow(clippy::type_complexity)]
fn restore_latest(
    dir: &Path,
    fingerprint: &str,
    config_sig: &str,
) -> Option<(Vec<Value>, Vec<SimStats>, usize, usize, String, String)> {
    let ckpt = Checkpoint::latest_valid(
        dir,
        fingerprint,
        config_sig,
        |c| match serde_json::from_str::<RunPayload>(&c.payload) {
            Ok(payload) => {
                let Ok(values) = payload
                    .values
                    .iter()
                    .map(decode_value)
                    .collect::<Result<Vec<Value>, String>>()
                else {
                    return false;
                };
                state_hash_of(&values, &c.stats, &payload.cache, &payload.tiles) == c.state_hash
            }
            Err(_) => false,
        },
    )?;
    let payload: RunPayload = serde_json::from_str(&ckpt.payload).expect("validated above");
    let values: Vec<Value> = payload
        .values
        .iter()
        .map(decode_value)
        .collect::<Result<_, _>>()
        .expect("validated above");
    Some((
        values,
        ckpt.stats,
        ckpt.boundary,
        ckpt.next_node,
        payload.cache,
        payload.tiles,
    ))
}

/// Writes one checkpoint (best-effort: failures log to stderr and the
/// run continues — checkpointing must never abort a healthy run).
#[allow(clippy::too_many_arguments)]
fn write_checkpoint(
    dir: &Path,
    fingerprint: &str,
    config_sig: &str,
    boundary: usize,
    next_node: usize,
    values: &[Value],
    stats: Vec<SimStats>,
    cache: Option<&SimCache>,
    context: &stonne_core::SimContext,
) {
    let payload = RunPayload {
        values: values.iter().map(encode_value).collect(),
        cache: cache.map(SimCache::export_json).unwrap_or_default(),
        tiles: context.export_tiles_json(),
    };
    let state_hash = state_hash_of(values, &stats, &payload.cache, &payload.tiles);
    let ckpt = Checkpoint {
        schema: CHECKPOINT_SCHEMA.to_owned(),
        fingerprint: fingerprint.to_owned(),
        config: config_sig.to_owned(),
        boundary,
        next_node,
        stats,
        cache_signatures: cache.map(SimCache::key_signatures).unwrap_or_default(),
        state_hash,
        payload: serde_json::to_string(&payload).expect("payload serializes"),
    };
    if let Err(e) = ckpt.save(dir) {
        eprintln!(
            "stonne-nn: failed to checkpoint boundary {boundary} into {}: {e}",
            dir.display()
        );
    }
}

/// The checkpoint/resume path of
/// [`crate::runner::run_model_simulated_with`]: a sequential graph walk
/// that snapshots at layer boundaries and/or restarts from the newest
/// valid snapshot. See the module docs for the determinism argument.
pub(crate) fn run_checkpointed(
    model: &ModelSpec,
    params: &ModelParams,
    input: &Value,
    config: AcceleratorConfig,
    schedule: Arc<dyn RowSchedule + Send + Sync>,
    options: &RunOptions,
    energy_model: EnergyModel,
) -> Result<ModelRun, ConfigError> {
    // Validate the configuration before touching any checkpoint state.
    drop(Stonne::new(config.clone())?);
    model
        .infer_shapes()
        .unwrap_or_else(|e| panic!("invalid graph: {e}"));
    let fingerprint = code_fingerprint();
    let config_sig = config.to_cfg_string();
    let ms_size = config.ms_size;
    let cache = options.cache_handle().cloned();

    let context = options.run_context();
    let mut values: Vec<Value> = Vec::with_capacity(model.nodes().len());
    let mut restored_stats: Vec<SimStats> = Vec::new();
    let mut boundary = 0usize;
    let mut start = 0usize;
    if let Some(dir) = options.resume_dir() {
        if let Some((vals, stats, b, next, cache_snapshot, tiles_snapshot)) =
            restore_latest(dir, fingerprint, &config_sig)
        {
            if let (Some(cache), false) = (&cache, cache_snapshot.is_empty()) {
                cache
                    .import_json(&cache_snapshot)
                    .expect("snapshot validated by state hash");
            }
            if !tiles_snapshot.is_empty() {
                context
                    .import_tiles_json(&tiles_snapshot)
                    .expect("snapshot validated by state hash");
            }
            values = vals;
            restored_stats = stats;
            boundary = b;
            start = next;
        }
    }

    // Context before cache: `with_cache` backs the instance's context
    // with the cache's disk store (when it has one).
    let mut sim = Stonne::new(config)?
        .with_intra_tiles(options.intra_worker_budget())
        .with_context(context.clone());
    if let Some(cache) = cache.clone() {
        sim = sim.with_cache(cache);
    }
    let mut backend = SimBackend::new(sim).with_schedule(schedule);
    for id in start..model.nodes().len() {
        let ins: Vec<&Value> = model.nodes()[id]
            .inputs
            .iter()
            .map(|&i| &values[i])
            .collect();
        let out = execute_node(model, id, params, input, &ins, &mut backend);
        values.push(out);
        if !is_offloaded_op(&model.nodes()[id].op) {
            continue;
        }
        boundary += 1;
        if let Some((every, dir)) = options.checkpoint_policy() {
            if boundary % every == 0 {
                let mut stats = restored_stats.clone();
                stats.extend_from_slice(backend.layer_stats());
                write_checkpoint(
                    dir,
                    fingerprint,
                    &config_sig,
                    boundary,
                    id + 1,
                    &values,
                    stats,
                    cache.as_ref(),
                    &context,
                );
            }
        }
    }

    let mut all_stats = restored_stats;
    all_stats.extend_from_slice(backend.into_sim().history());
    let mut total = SimStats {
        operation: "aggregate".to_owned(),
        ms_size,
        ..SimStats::default()
    };
    for s in &all_stats {
        total.merge(s);
    }
    let layers: Vec<LayerReport> = all_stats
        .into_iter()
        .map(|s| LayerReport {
            name: s.operation.clone(),
            stats: s,
        })
        .collect();
    let energy = energy_model.breakdown(&total);
    Ok(ModelRun {
        outputs: values,
        layers,
        total,
        energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_roundtrip_bitwise_through_the_repr() {
        let t = Tensor4::from_vec(1, 2, 1, 2, vec![1.5, -0.0, f32::MIN_POSITIVE, 3.25e-7]);
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[0.1, -0.1]]);
        for v in [Value::Feature(t), Value::Tokens(m)] {
            let back = decode_value(&encode_value(&v)).unwrap();
            assert_eq!(back.shape(), v.shape());
            let (a, b) = (v.as_slice(), back.as_slice());
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "bit-exact roundtrip");
            }
        }
    }

    #[test]
    fn decode_rejects_malformed_reprs() {
        let bad = ValueRepr {
            kind: 0,
            dims: vec![1, 1, 1, 3],
            bits: vec![0; 2],
        };
        assert!(decode_value(&bad).is_err());
        let unknown = ValueRepr {
            kind: 9,
            dims: vec![1],
            bits: vec![],
        };
        assert!(decode_value(&unknown).is_err());
    }

    #[test]
    fn state_hash_tracks_value_bits_and_stats() {
        let v = vec![Value::Tokens(Matrix::from_rows(&[&[1.0, 2.0]]))];
        let s = vec![SimStats {
            operation: "l0".to_owned(),
            cycles: 10,
            ..SimStats::default()
        }];
        let base = state_hash_of(&v, &s, "", "");
        assert_eq!(base, state_hash_of(&v, &s, "", ""), "deterministic");
        let mut v2 = v.clone();
        if let Value::Tokens(m) = &mut v2[0] {
            m.set(0, 0, 1.0000001);
        }
        assert_ne!(base, state_hash_of(&v2, &s, "", ""), "value bits matter");
        let mut s2 = s.clone();
        s2[0].cycles = 11;
        assert_ne!(base, state_hash_of(&v, &s2, "", ""), "stats matter");
        // Volatile counters are canonicalized away.
        let mut s3 = s.clone();
        s3[0].sim_cache_hits = 5;
        s3[0].engine_invocations = 2;
        assert_eq!(base, state_hash_of(&v, &s3, "", ""), "counters excluded");
    }
}
