//! Full-model inference runs: the paper's layer-by-layer offload flow
//! with per-layer statistics, aggregate energy, and functional
//! validation.

use crate::backend::{ReferenceBackend, SimBackend};
use crate::executor::{execute_graph, execute_node, is_offloaded_op};
use crate::parallel::run_parallel;
use crate::params::ModelParams;
use crate::value::Value;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use stonne_core::predict::CyclePredictor;
use stonne_core::{
    AcceleratorConfig, ConfigError, NaturalOrder, RowSchedule, SimCache, SimContext, SimStats,
    Stonne,
};
use stonne_energy::{EnergyBreakdown, EnergyModel};

/// Statistics of one offloaded layer inside a model run.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Operation name (layer name, possibly suffixed by group/head).
    pub name: String,
    /// Cycle-level statistics of this layer.
    pub stats: SimStats,
}

/// Result of a full-model run on the reference (native) backend.
#[derive(Debug, Clone)]
pub struct ReferenceRun {
    /// Every node's output value.
    pub outputs: Vec<Value>,
}

/// Result of a full-model run on the simulated accelerator.
#[derive(Debug, Clone)]
pub struct ModelRun {
    /// Every node's output value (functionally comparable to the
    /// reference run).
    pub outputs: Vec<Value>,
    /// Per-offloaded-operation statistics, in execution order.
    pub layers: Vec<LayerReport>,
    /// Aggregate statistics over the whole model.
    pub total: SimStats,
    /// Component energy breakdown over the whole model.
    pub energy: EnergyBreakdown,
}

impl ModelRun {
    /// The final (classifier) output of the model.
    ///
    /// # Panics
    ///
    /// Panics if the run produced no values (impossible for valid graphs).
    pub fn final_output(&self) -> &Value {
        self.outputs.last().expect("non-empty graph")
    }

    /// Serializes the run's statistics (per-layer + aggregate + energy)
    /// as a pretty JSON report — the full-model analogue of the Output
    /// Module's per-operation summary file.
    ///
    /// # Panics
    ///
    /// Never panics in practice (all fields are serializable).
    pub fn report_json(&self) -> String {
        #[derive(serde::Serialize)]
        struct Report<'a> {
            total: &'a SimStats,
            energy: &'a stonne_energy::EnergyBreakdown,
            layers: Vec<&'a SimStats>,
        }
        let report = Report {
            total: &self.total,
            energy: &self.energy,
            layers: self.layers.iter().map(|l| &l.stats).collect(),
        };
        serde_json::to_string_pretty(&report).expect("report serializes")
    }

    /// FNV-1a state hash over the run's canonical state: every output
    /// value's exact `f32` bits plus the per-layer statistics with
    /// volatile counters (cache hits/misses/inserts, engine
    /// invocations) zeroed. Two runs of the same model/config agree on
    /// this hash exactly when they agree bitwise on outputs and
    /// hardware-level stats — across the serial, wave-parallel and
    /// intra-tile runners, and across straight, checkpointed and
    /// resumed executions.
    pub fn state_hash(&self) -> u64 {
        crate::checkpoint::run_state_hash(self)
    }
}

/// Knobs of a simulated full-model run: layer-simulation memoization and
/// independent-layer parallelism.
///
/// The default enables a fresh [`SimCache`] (repeated layer shapes — e.g.
/// BERT's 12 identical encoders — simulate once and replay bitwise
/// identically) and runs layers sequentially. Cached and uncached runs
/// produce identical cycle counts and outputs; disabling the cache only
/// trades time for memory.
#[derive(Debug, Clone)]
pub struct RunOptions {
    cache: Option<SimCache>,
    parallel: bool,
    intra_tiles: bool,
    checkpoint: Option<(usize, PathBuf)>,
    resume: Option<PathBuf>,
    predictor: Option<Arc<dyn CyclePredictor>>,
    context: Option<SimContext>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            cache: Some(SimCache::new()),
            parallel: false,
            intra_tiles: false,
            checkpoint: None,
            resume: None,
            predictor: None,
            context: None,
        }
    }
}

impl RunOptions {
    /// The default options: a fresh per-run cache, sequential execution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Disables the simulation cache (every layer re-simulates).
    #[must_use]
    pub fn uncached(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Uses an explicit (possibly shared) cache — e.g. one cache across
    /// every sweep point of a bench harness, or a disk-backed cache
    /// (`SimCache::backed_by`) whose entries outlive the process (the
    /// `stonne-serve` result store builds on exactly this).
    #[must_use]
    pub fn with_cache(mut self, cache: SimCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The cache these options run with (`None` after
    /// [`RunOptions::uncached`]). Callers use this to inspect hit/miss
    /// counters or the attached disk store after a run.
    pub fn cache_handle(&self) -> Option<&SimCache> {
        self.cache.as_ref()
    }

    /// Dispatches independent ready layers (BERT's q/k/v projections,
    /// SqueezeNet's fire branches) across a worker pool. Per-layer and
    /// aggregate statistics are identical to a sequential run; layer
    /// reports stay in graph (node-index) order.
    #[must_use]
    pub fn parallel(mut self) -> Self {
        self.parallel = true;
        self
    }

    /// Fans the independent k-chunk tiles *inside* each dense layer
    /// across the worker pool (see `docs/PERFORMANCE.md` for the
    /// disjoint-tile invariant). Outputs, cycles, and statistics are
    /// bitwise-identical to a serial run; composes with
    /// [`RunOptions::parallel`] and the cache.
    #[must_use]
    pub fn intra_layer_parallel(mut self) -> Self {
        self.intra_tiles = true;
        self
    }

    /// Snapshots the run into `dir` every `every` layer boundaries (an
    /// offloaded operation finishing is a boundary; `every` is clamped
    /// to ≥ 1). Checkpointed runs execute sequentially — the layer
    /// boundary order that defines a snapshot has no meaning under
    /// wave-parallel dispatch — but compose with the cache and with
    /// [`RunOptions::intra_layer_parallel`], and the snapshots do not
    /// perturb the run: outputs, stats and traces are bitwise-identical
    /// to a run without checkpointing. See [`crate::checkpoint`].
    #[must_use]
    pub fn checkpoint_every(mut self, every: usize, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some((every.max(1), dir.into()));
        self
    }

    /// Resumes from the newest valid checkpoint in `dir` (written by a
    /// prior [`RunOptions::checkpoint_every`] run of the same model,
    /// configuration and build), restarting at its layer boundary. A
    /// truncated or hash-mismatched checkpoint is skipped in favor of
    /// the boundary before it; with no valid checkpoint the run starts
    /// clean. The resumed run's outputs, stats and energy are
    /// bitwise-identical to an uninterrupted run.
    #[must_use]
    pub fn resume_from(mut self, dir: impl Into<PathBuf>) -> Self {
        self.resume = Some(dir.into());
        self
    }

    /// Runs every offloaded layer at fast fidelity: the predictor
    /// estimates cycles instead of the cycle-level engines
    /// (`stats.engine_invocations` stays 0), while layer outputs are
    /// still computed exactly. Predicted stats are never memoized, so a
    /// cache attached alongside keeps only exact entries.
    ///
    /// Checkpointed runs ([`RunOptions::checkpoint_every`] /
    /// [`RunOptions::resume_from`]) ignore the predictor and stay exact:
    /// a checkpoint's state hash certifies cycle-level simulation, and a
    /// predicted prefix would make the resumed totals unverifiable.
    #[must_use]
    pub fn with_predictor(mut self, predictor: Arc<dyn CyclePredictor>) -> Self {
        self.predictor = Some(predictor);
        self
    }

    /// The attached cycle predictor, when fast fidelity is enabled.
    pub fn predictor_handle(&self) -> Option<&Arc<dyn CyclePredictor>> {
        self.predictor.as_ref()
    }

    /// Uses an explicit (possibly shared) [`SimContext`] — tile-grain
    /// records and pooled scratch buffers survive across runs that share
    /// it (e.g. every sweep point of a worker). Without this, each run
    /// creates one context and shares it across all of its own simulator
    /// instances. Contexts never change results — only how much work is
    /// re-derived.
    #[must_use]
    pub fn with_context(mut self, context: SimContext) -> Self {
        self.context = Some(context);
        self
    }

    /// The simulation context these options run with, if explicitly set.
    pub fn context_handle(&self) -> Option<&SimContext> {
        self.context.as_ref()
    }

    /// The context threaded through this run's simulator instances: the
    /// explicit one when set, else a fresh per-run context.
    pub(crate) fn run_context(&self) -> SimContext {
        self.context.clone().unwrap_or_default()
    }

    /// The checkpoint cadence and directory, when enabled.
    pub(crate) fn checkpoint_policy(&self) -> Option<(usize, &Path)> {
        self.checkpoint
            .as_ref()
            .map(|(every, dir)| (*every, dir.as_path()))
    }

    /// The resume directory, when enabled.
    pub(crate) fn resume_dir(&self) -> Option<&Path> {
        self.resume.as_deref()
    }

    /// Worker budget handed to [`Stonne::with_intra_tiles`]: the host's
    /// available parallelism when intra-layer tiling is on, else 1.
    pub(crate) fn intra_worker_budget(&self) -> usize {
        if self.intra_tiles {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            1
        }
    }
}

/// Runs a model natively on the CPU (the paper's correctness baseline).
pub fn run_model_reference(
    model: &stonne_models::ModelSpec,
    params: &ModelParams,
    input: &Value,
) -> ReferenceRun {
    let mut backend = ReferenceBackend;
    ReferenceRun {
        outputs: execute_graph(model, params, input, &mut backend),
    }
}

/// Runs a model on a simulated accelerator with the default (natural)
/// filter order.
///
/// # Errors
///
/// Returns [`ConfigError`] when the accelerator configuration is invalid.
pub fn run_model_simulated(
    model: &stonne_models::ModelSpec,
    params: &ModelParams,
    input: &Value,
    config: AcceleratorConfig,
) -> Result<ModelRun, ConfigError> {
    run_model_simulated_with(
        model,
        params,
        input,
        config,
        Arc::new(NaturalOrder),
        RunOptions::default(),
    )
}

/// Runs a model on a simulated accelerator with an explicit filter
/// schedule (sparse configurations; use case 3 of the paper).
///
/// # Errors
///
/// Returns [`ConfigError`] when the accelerator configuration is invalid.
pub fn run_model_simulated_scheduled(
    model: &stonne_models::ModelSpec,
    params: &ModelParams,
    input: &Value,
    config: AcceleratorConfig,
    schedule: Arc<dyn RowSchedule + Send + Sync>,
) -> Result<ModelRun, ConfigError> {
    run_model_simulated_with(
        model,
        params,
        input,
        config,
        schedule,
        RunOptions::default(),
    )
}

/// Runs a model on a simulated accelerator with explicit [`RunOptions`]
/// (cache sharing/disabling, independent-layer parallelism).
///
/// # Errors
///
/// Returns [`ConfigError`] when the accelerator configuration is invalid.
pub fn run_model_simulated_with(
    model: &stonne_models::ModelSpec,
    params: &ModelParams,
    input: &Value,
    config: AcceleratorConfig,
    schedule: Arc<dyn RowSchedule + Send + Sync>,
    options: RunOptions,
) -> Result<ModelRun, ConfigError> {
    let energy_model = EnergyModel::for_config(&config);
    if options.checkpoint.is_some() || options.resume.is_some() {
        return crate::checkpoint::run_checkpointed(
            model,
            params,
            input,
            config,
            schedule,
            &options,
            energy_model,
        );
    }
    if options.parallel {
        return run_parallel_waves(
            model,
            params,
            input,
            config,
            schedule,
            options,
            energy_model,
        );
    }
    // Context before cache: `with_cache` backs the instance's context
    // with the cache's disk store (when it has one).
    let mut sim = Stonne::new(config)?
        .with_intra_tiles(options.intra_worker_budget())
        .with_context(options.run_context());
    if let Some(cache) = options.cache {
        sim = sim.with_cache(cache);
    }
    if let Some(predictor) = options.predictor {
        sim = sim.with_predictor(predictor);
    }
    let mut backend = SimBackend::new(sim).with_schedule(schedule);
    let outputs = execute_graph(model, params, input, &mut backend);
    let sim = backend.into_sim();

    let layers: Vec<LayerReport> = sim
        .history()
        .iter()
        .map(|s| LayerReport {
            name: s.operation.clone(),
            stats: s.clone(),
        })
        .collect();
    let total = sim.aggregate_stats();
    let energy = energy_model.breakdown(&total);
    Ok(ModelRun {
        outputs,
        layers,
        total,
        energy,
    })
}

/// The parallel path of [`run_model_simulated_with`]: executes the graph
/// in dependency waves, dispatching the offloaded ops of each wave (each
/// on its own simulator instance sharing the run's cache) across the
/// worker pool of [`crate::parallel::run_parallel`]. Non-offloaded ops
/// run inline. Per-layer statistics land in graph (node-index) order, so
/// reports match a sequential run layer for layer.
#[allow(clippy::too_many_arguments)]
fn run_parallel_waves(
    model: &stonne_models::ModelSpec,
    params: &ModelParams,
    input: &Value,
    config: AcceleratorConfig,
    schedule: Arc<dyn RowSchedule + Send + Sync>,
    options: RunOptions,
    energy_model: EnergyModel,
) -> Result<ModelRun, ConfigError> {
    // Validate the configuration once up front; worker instances reuse it.
    drop(Stonne::new(config.clone())?);
    model
        .infer_shapes()
        .unwrap_or_else(|e| panic!("invalid graph: {e}"));
    let n = model.nodes().len();
    // One context for the whole run: every per-op instance below shares
    // its tile records and scratch pool instead of rebuilding them.
    let context = options.run_context();
    let mut values: Vec<Option<Value>> = vec![None; n];
    let mut node_stats: Vec<Vec<SimStats>> = vec![Vec::new(); n];
    let mut remaining = n;
    while remaining > 0 {
        let ready: Vec<usize> = (0..n)
            .filter(|&id| {
                values[id].is_none()
                    && model.nodes()[id]
                        .inputs
                        .iter()
                        .all(|&dep| values[dep].is_some())
            })
            .collect();
        assert!(!ready.is_empty(), "graph is not a DAG");
        let (offloaded, native): (Vec<usize>, Vec<usize>) = ready
            .into_iter()
            .partition(|&id| is_offloaded_op(&model.nodes()[id].op));
        for id in native {
            let ins: Vec<&Value> = model.nodes()[id]
                .inputs
                .iter()
                .map(|&dep| values[dep].as_ref().expect("dependency ready"))
                .collect();
            // Native ops never touch the backend; the reference backend is
            // a zero-state placeholder.
            let out = execute_node(model, id, params, input, &ins, &mut ReferenceBackend);
            values[id] = Some(out);
            remaining -= 1;
        }
        if offloaded.is_empty() {
            continue;
        }
        let tasks: Vec<_> = offloaded
            .iter()
            .map(|&id| {
                let ins: Vec<&Value> = model.nodes()[id]
                    .inputs
                    .iter()
                    .map(|&dep| values[dep].as_ref().expect("dependency ready"))
                    .collect();
                let config = config.clone();
                let schedule = Arc::clone(&schedule);
                let cache = options.cache.clone();
                let predictor = options.predictor.clone();
                let context = context.clone();
                let intra_workers = options.intra_worker_budget();
                move || {
                    let mut sim = Stonne::new(config)
                        .expect("config validated above")
                        .with_intra_tiles(intra_workers)
                        .with_context(context);
                    if let Some(cache) = cache {
                        sim = sim.with_cache(cache);
                    }
                    if let Some(predictor) = predictor {
                        sim = sim.with_predictor(predictor);
                    }
                    let mut backend = SimBackend::new(sim).with_schedule(schedule);
                    let out = execute_node(model, id, params, input, &ins, &mut backend);
                    (out, backend.into_sim().history().to_vec())
                }
            })
            .collect();
        let results = run_parallel(tasks).unwrap_or_else(|e| panic!("{e}"));
        for (&id, (out, stats)) in offloaded.iter().zip(results) {
            values[id] = Some(out);
            node_stats[id] = stats;
            remaining -= 1;
        }
    }
    let outputs: Vec<Value> = values
        .into_iter()
        .map(|v| v.expect("all nodes executed"))
        .collect();
    let layers: Vec<LayerReport> = node_stats
        .into_iter()
        .flatten()
        .map(|s| LayerReport {
            name: s.operation.clone(),
            stats: s,
        })
        .collect();
    let mut total = SimStats {
        operation: "aggregate".to_owned(),
        ms_size: config.ms_size,
        ..SimStats::default()
    };
    for l in &layers {
        total.merge(&l.stats);
    }
    let energy = energy_model.breakdown(&total);
    Ok(ModelRun {
        outputs,
        layers,
        total,
        energy,
    })
}

/// Runs a model on a simulated accelerator while recording a cycle-level
/// trace of every offloaded layer (one continuous timeline; see
/// [`stonne_core::trace`]). `capacity` bounds the trace ring buffer in
/// events — pass [`stonne_core::trace::DEFAULT_CAPACITY`] when unsure.
///
/// # Errors
///
/// Returns [`ConfigError`] when the accelerator configuration is invalid.
pub fn run_model_simulated_traced(
    model: &stonne_models::ModelSpec,
    params: &ModelParams,
    input: &Value,
    config: AcceleratorConfig,
    capacity: usize,
) -> Result<(ModelRun, stonne_core::Trace), ConfigError> {
    run_model_simulated_traced_with(
        model,
        params,
        input,
        config,
        capacity,
        RunOptions::default(),
    )
}

/// [`run_model_simulated_traced`] with explicit [`RunOptions`] — used to
/// assert that checkpointing does not perturb the recorded timeline
/// (checkpoint-enabled and plain runs trace byte-identically). The
/// trace buffer is thread-local, so options should keep the run
/// sequential ([`RunOptions::parallel`] layers trace nothing).
///
/// # Errors
///
/// Returns [`ConfigError`] when the accelerator configuration is invalid.
pub fn run_model_simulated_traced_with(
    model: &stonne_models::ModelSpec,
    params: &ModelParams,
    input: &Value,
    config: AcceleratorConfig,
    capacity: usize,
    options: RunOptions,
) -> Result<(ModelRun, stonne_core::Trace), ConfigError> {
    stonne_core::trace::start(capacity);
    let run = run_model_simulated_with(
        model,
        params,
        input,
        config,
        Arc::new(NaturalOrder),
        options,
    );
    let trace = stonne_core::trace::finish().unwrap_or_default();
    Ok((run?, trace))
}

/// Compares a simulated run against the reference run node by node,
/// panicking on the first functional mismatch — the paper's functional
/// validation ("they perfectly match for all cases").
///
/// # Panics
///
/// Panics with the offending node index when outputs differ beyond the
/// floating-point tolerance.
pub fn assert_functionally_equal(reference: &ReferenceRun, run: &ModelRun) {
    assert_eq!(
        reference.outputs.len(),
        run.outputs.len(),
        "node count mismatch"
    );
    for (i, (r, s)) in reference.outputs.iter().zip(run.outputs.iter()).enumerate() {
        assert_eq!(r.shape(), s.shape(), "node {i} shape mismatch");
        let (rs, ss) = (r.as_slice(), s.as_slice());
        for (j, (a, b)) in rs.iter().zip(ss.iter()).enumerate() {
            assert!(
                stonne_tensor::approx_eq(*a, *b),
                "node {i} element {j}: reference {a} vs simulated {b}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::generate_input;
    use stonne_models::{zoo, ModelScale};

    #[test]
    fn tiny_alexnet_runs_and_validates_on_maeri() {
        let model = zoo::alexnet(ModelScale::Tiny);
        let params = ModelParams::generate(&model, 1);
        let input = generate_input(&model, 2);
        let reference = run_model_reference(&model, &params, &input);
        let run = run_model_simulated(
            &model,
            &params,
            &input,
            AcceleratorConfig::maeri_like(64, 32),
        )
        .unwrap();
        assert_functionally_equal(&reference, &run);
        assert!(run.total.cycles > 0);
        assert!(!run.layers.is_empty());
        assert!(run.energy.total_uj() > 0.0);
    }

    #[test]
    fn layer_reports_cover_offloaded_nodes() {
        let model = zoo::alexnet(ModelScale::Tiny);
        let params = ModelParams::generate(&model, 1);
        let input = generate_input(&model, 2);
        let run =
            run_model_simulated(&model, &params, &input, AcceleratorConfig::tpu_like(8)).unwrap();
        // 5 convs + 3 linears + 3 offloaded pools.
        assert!(run.layers.len() >= 8, "got {} layers", run.layers.len());
        let total_cycles: u64 = run.layers.iter().map(|l| l.stats.cycles).sum();
        assert_eq!(total_cycles, run.total.cycles);
    }

    #[test]
    fn sigma_beats_maeri_on_sparse_model() {
        // The headline of Fig. 5a: sparsity support wins on pruned models.
        let model = zoo::alexnet(ModelScale::Tiny);
        let params = ModelParams::generate(&model, 3); // 78% sparse weights
        let input = generate_input(&model, 4);
        let sigma = run_model_simulated(
            &model,
            &params,
            &input,
            AcceleratorConfig::sigma_like(64, 64),
        )
        .unwrap();
        let maeri = run_model_simulated(
            &model,
            &params,
            &input,
            AcceleratorConfig::maeri_like(64, 64),
        )
        .unwrap();
        assert!(
            sigma.total.cycles < maeri.total.cycles,
            "sigma {} !< maeri {}",
            sigma.total.cycles,
            maeri.total.cycles
        );
    }

    #[test]
    fn traced_model_run_covers_every_offloaded_cycle() {
        let model = zoo::alexnet(ModelScale::Tiny);
        let params = ModelParams::generate(&model, 1);
        let input = generate_input(&model, 2);
        let (run, trace) = run_model_simulated_traced(
            &model,
            &params,
            &input,
            AcceleratorConfig::maeri_like(64, 32),
            stonne_core::trace::DEFAULT_CAPACITY,
        )
        .unwrap();
        assert_eq!(trace.dropped(), 0);
        assert_eq!(
            trace.span_cycles(stonne_core::Component::Controller),
            run.total.cycles,
            "controller spans must tile the whole model timeline"
        );
    }

    #[test]
    fn json_report_includes_layers_and_energy() {
        let model = zoo::alexnet(ModelScale::Tiny);
        let params = ModelParams::generate(&model, 7);
        let input = generate_input(&model, 8);
        let run = run_model_simulated(
            &model,
            &params,
            &input,
            AcceleratorConfig::maeri_like(32, 16),
        )
        .unwrap();
        let json = run.report_json();
        assert!(json.contains("\"layers\""));
        assert!(json.contains("\"gb_uj\""));
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["layers"].as_array().unwrap().len(), run.layers.len());
    }

    #[test]
    fn final_output_is_classifier_logits() {
        let model = zoo::alexnet(ModelScale::Tiny);
        let params = ModelParams::generate(&model, 5);
        let input = generate_input(&model, 6);
        let run = run_model_simulated(
            &model,
            &params,
            &input,
            AcceleratorConfig::maeri_like(32, 16),
        )
        .unwrap();
        match run.final_output() {
            Value::Tokens(m) => assert_eq!(m.cols(), 10), // tiny scale: 10 classes
            Value::Feature(_) => panic!("classifier must emit tokens"),
        }
    }
}
