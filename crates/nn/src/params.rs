//! Synthetic model parameters: deterministic weights pruned to the
//! paper's Table I sparsity ratios.
//!
//! The paper runs models trained on ImageNet/COCO/SQuAD and pruned with
//! Zhu & Gupta's unstructured magnitude method. We cannot ship those
//! checkpoints; what the experiments actually depend on is (a) the exact
//! layer shapes — encoded in `stonne-models` — and (b) the statistical
//! distribution of zeros produced by unstructured magnitude pruning.
//! [`ModelParams::generate`] reproduces (b): seeded uniform weights,
//! magnitude-pruned per layer to the model's target ratio.

use crate::value::Value;
use std::collections::HashMap;
use stonne_models::{ModelSpec, NodeId, OpSpec, TensorShape};
use stonne_tensor::{
    prune_matrix_to_sparsity, prune_tensor_to_sparsity, Matrix, SeededRng, Tensor4,
};

/// Log-scale standard deviation of per-filter weight magnitudes.
const FILTER_SPREAD: f32 = 0.8;

/// Weights of one offloaded node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeWeights {
    /// KCHW convolution filters.
    Conv(Tensor4),
    /// `out × in` linear weights.
    Linear(Matrix),
}

impl NodeWeights {
    /// Borrows the convolution filters.
    ///
    /// # Panics
    ///
    /// Panics if the weights are linear.
    pub fn as_conv(&self) -> &Tensor4 {
        match self {
            NodeWeights::Conv(t) => t,
            NodeWeights::Linear(_) => panic!("expected conv weights"),
        }
    }

    /// Borrows the linear weights.
    ///
    /// # Panics
    ///
    /// Panics if the weights are convolutional.
    pub fn as_linear(&self) -> &Matrix {
        match self {
            NodeWeights::Linear(m) => m,
            NodeWeights::Conv(_) => panic!("expected linear weights"),
        }
    }

    /// Fraction of zero weights.
    pub fn sparsity(&self) -> f64 {
        match self {
            NodeWeights::Conv(t) => t.sparsity(),
            NodeWeights::Linear(m) => m.sparsity(),
        }
    }

    /// Non-zero count per output filter/neuron (the "filter sizes" of the
    /// paper's Figs. 7–9).
    pub fn filter_nnz(&self) -> Vec<usize> {
        match self {
            NodeWeights::Conv(t) => {
                let per_filter = t.c() * t.h() * t.w();
                (0..t.n())
                    .map(|k| {
                        t.as_slice()[k * per_filter..(k + 1) * per_filter]
                            .iter()
                            .filter(|v| **v != 0.0)
                            .count()
                    })
                    .collect()
            }
            NodeWeights::Linear(m) => (0..m.rows()).map(|r| m.row_nnz(r)).collect(),
        }
    }
}

/// All weights of a model, keyed by node id.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelParams {
    weights: HashMap<NodeId, NodeWeights>,
    target_sparsity: f64,
}

impl ModelParams {
    /// Generates seeded weights for every offloaded node of `model`,
    /// pruned per layer to the model's weight-sparsity target.
    pub fn generate(model: &ModelSpec, seed: u64) -> Self {
        Self::generate_with_sparsity(model, seed, model.weight_sparsity())
    }

    /// Like [`Self::generate`] with an explicit sparsity target
    /// (0.0 keeps all weights dense — useful for dense baselines).
    pub fn generate_with_sparsity(model: &ModelSpec, seed: u64, sparsity: f64) -> Self {
        Self::generate_with(model, seed, sparsity, 0.0)
    }

    /// Like [`Self::generate_with_sparsity`], additionally shifting every
    /// weight by `-bias × mean(|w|)`.
    ///
    /// Trained CNNs are strongly ReLU-sparse — 50–90 % of pre-activation
    /// values are negative, driven by bias terms and folded batch-norm
    /// shifts — which is precisely the headroom SNAPEA's early-negative
    /// termination exploits. Symmetric synthetic weights only produce
    /// ~50 % negative outputs; a mild negative shift (`bias ≈ 0.2–0.4`)
    /// restores the realistic skew. Use `bias = 0.0` elsewhere.
    pub fn generate_relu_biased(model: &ModelSpec, seed: u64, sparsity: f64, bias: f32) -> Self {
        Self::generate_with(model, seed, sparsity, bias)
    }

    fn generate_with(model: &ModelSpec, seed: u64, sparsity: f64, bias: f32) -> Self {
        let mut rng = SeededRng::new(seed);
        let mut weights = HashMap::new();
        for (id, node) in model.nodes().iter().enumerate() {
            match node.op {
                OpSpec::Conv2d { geom } => {
                    // Filter-wise magnitude scales reproduce the highly
                    // variable per-filter nnz of really pruned models
                    // (Fig. 7b of the paper); fan-in normalization keeps
                    // activations O(1) through deep stacks, like trained
                    // weights would.
                    let mut w = Tensor4::random_filterwise(
                        geom.out_c,
                        geom.in_c_per_group(),
                        geom.kh,
                        geom.kw,
                        FILTER_SPREAD,
                        &mut rng,
                    );
                    let fan_in = geom.dot_product_len() as f32;
                    let norm = (2.0 / fan_in).sqrt();
                    w.as_mut_slice().iter_mut().for_each(|v| *v *= norm);
                    apply_bias(w.as_mut_slice(), bias);
                    prune_tensor_to_sparsity(&mut w, sparsity);
                    weights.insert(id, NodeWeights::Conv(w));
                }
                OpSpec::Linear {
                    in_features,
                    out_features,
                } => {
                    let mut w = Matrix::random_filterwise(
                        out_features,
                        in_features,
                        FILTER_SPREAD,
                        &mut rng,
                    );
                    let norm = (2.0 / in_features as f32).sqrt();
                    w.as_mut_slice().iter_mut().for_each(|v| *v *= norm);
                    apply_bias(w.as_mut_slice(), bias);
                    prune_matrix_to_sparsity(&mut w, sparsity);
                    weights.insert(id, NodeWeights::Linear(w));
                }
                _ => {}
            }
        }
        Self {
            weights,
            target_sparsity: sparsity,
        }
    }

    /// Weights of node `id`, if it has any.
    pub fn get(&self, id: NodeId) -> Option<&NodeWeights> {
        self.weights.get(&id)
    }

    /// The sparsity target the weights were pruned to.
    pub fn target_sparsity(&self) -> f64 {
        self.target_sparsity
    }

    /// Number of parameterized nodes.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the model has no parameterized nodes.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Overrides one node's weights (used by the SNAPEA reordering pass).
    ///
    /// # Panics
    ///
    /// Panics if the node had no weights.
    pub fn set(&mut self, id: NodeId, w: NodeWeights) {
        assert!(self.weights.contains_key(&id), "node {id} has no weights");
        self.weights.insert(id, w);
    }
}

/// Shifts weights by `-bias × mean(|w|)` (see
/// [`ModelParams::generate_relu_biased`]).
fn apply_bias(data: &mut [f32], bias: f32) {
    if bias == 0.0 || data.is_empty() {
        return;
    }
    let mean_abs = data.iter().map(|v| v.abs()).sum::<f32>() / data.len() as f32;
    let shift = bias * mean_abs;
    data.iter_mut().for_each(|v| *v -= shift);
}

/// Generates a deterministic input sample matching the model's input
/// shape (an "image" or "token embedding" stand-in).
pub fn generate_input(model: &ModelSpec, seed: u64) -> Value {
    let mut rng = SeededRng::new(seed ^ 0x5eed_1a7e);
    match model.input_shape() {
        TensorShape::Feature { c, h, w } => Value::Feature(Tensor4::random(1, c, h, w, &mut rng)),
        TensorShape::Tokens { seq, dim } => Value::Tokens(Matrix::random(seq, dim, &mut rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stonne_models::{zoo, ModelScale};

    #[test]
    fn generated_weights_cover_all_offloaded_nodes() {
        let model = zoo::squeezenet(ModelScale::Tiny);
        let params = ModelParams::generate(&model, 7);
        for id in model.offloaded_nodes() {
            if matches!(
                model.nodes()[id].op,
                OpSpec::Conv2d { .. } | OpSpec::Linear { .. }
            ) {
                assert!(params.get(id).is_some(), "node {id} missing weights");
            }
        }
    }

    #[test]
    fn weights_hit_the_sparsity_target() {
        let model = zoo::vgg16(ModelScale::Tiny);
        let params = ModelParams::generate(&model, 1);
        for id in model.offloaded_nodes() {
            if let Some(w) = params.get(id) {
                let s = w.sparsity();
                assert!(
                    (s - 0.90).abs() < 0.03,
                    "node {id}: sparsity {s} far from VGG's 90%"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let model = zoo::alexnet(ModelScale::Tiny);
        assert_eq!(
            ModelParams::generate(&model, 3),
            ModelParams::generate(&model, 3)
        );
        assert_ne!(
            ModelParams::generate(&model, 3),
            ModelParams::generate(&model, 4)
        );
    }

    #[test]
    fn dense_override_keeps_weights() {
        let model = zoo::alexnet(ModelScale::Tiny);
        let params = ModelParams::generate_with_sparsity(&model, 1, 0.0);
        for id in model.offloaded_nodes() {
            if let Some(w) = params.get(id) {
                assert!(w.sparsity() < 0.01);
            }
        }
    }

    #[test]
    fn filter_nnz_counts_per_filter() {
        let mut w = Matrix::zeros(3, 4);
        w.set(0, 0, 1.0);
        w.set(2, 1, 1.0);
        w.set(2, 3, -1.0);
        let nw = NodeWeights::Linear(w);
        assert_eq!(nw.filter_nnz(), vec![1, 0, 2]);
    }

    #[test]
    fn relu_bias_shifts_weights_negative() {
        let model = zoo::alexnet(ModelScale::Tiny);
        let neutral = ModelParams::generate_with_sparsity(&model, 9, 0.0);
        let biased = ModelParams::generate_relu_biased(&model, 9, 0.0, 0.3);
        let id = model.offloaded_nodes()[0];
        let sum = |p: &ModelParams| match p.get(id).unwrap() {
            NodeWeights::Conv(t) => t.as_slice().iter().sum::<f32>(),
            NodeWeights::Linear(m) => m.as_slice().iter().sum::<f32>(),
        };
        assert!(sum(&biased) < sum(&neutral));
    }

    #[test]
    fn input_matches_model_shape() {
        let cnn = zoo::alexnet(ModelScale::Tiny);
        assert!(matches!(generate_input(&cnn, 1), Value::Feature(_)));
        let bert = zoo::bert(ModelScale::Tiny);
        assert!(matches!(generate_input(&bert, 1), Value::Tokens(_)));
    }
}
