//! Compute back-ends: native CPU reference vs the simulated accelerator.
//!
//! The [`Backend`] trait is the seam the paper's `Simulated*` PyTorch ops
//! introduce: identical call sites, with the implementation deciding
//! whether the math runs natively or cycle-by-cycle on a simulated
//! accelerator.

use std::sync::Arc;
use stonne_core::{NaturalOrder, RowSchedule, SimStats, Stonne};
use stonne_tensor::{
    conv2d_reference, gemm_reference, maxpool2d_reference, Conv2dGeom, Matrix, Tensor4,
};

/// A compute provider for the offloadable operations of a model graph.
pub trait Backend {
    /// 2-D (grouped) convolution; weights in KCHW layout.
    fn conv2d(
        &mut self,
        name: &str,
        input: &Tensor4,
        weights: &Tensor4,
        geom: &Conv2dGeom,
    ) -> Tensor4;

    /// Fully-connected layer: `input (seq×in) × weightsᵀ (out×in)`.
    fn linear(&mut self, name: &str, input: &Matrix, weights: &Matrix) -> Matrix;

    /// General matrix multiplication (attention score/context products).
    fn matmul(&mut self, name: &str, a: &Matrix, b: &Matrix) -> Matrix;

    /// Square-window max pooling.
    fn maxpool(&mut self, name: &str, input: &Tensor4, window: usize, stride: usize) -> Tensor4;
}

/// The native CPU reference (the paper's "run on the CPU" path used for
/// functional validation).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceBackend;

impl Backend for ReferenceBackend {
    fn conv2d(
        &mut self,
        _name: &str,
        input: &Tensor4,
        weights: &Tensor4,
        geom: &Conv2dGeom,
    ) -> Tensor4 {
        conv2d_reference(input, weights, geom)
    }

    fn linear(&mut self, _name: &str, input: &Matrix, weights: &Matrix) -> Matrix {
        gemm_reference(input, &weights.transposed())
    }

    fn matmul(&mut self, _name: &str, a: &Matrix, b: &Matrix) -> Matrix {
        gemm_reference(a, b)
    }

    fn maxpool(&mut self, _name: &str, input: &Tensor4, window: usize, stride: usize) -> Tensor4 {
        maxpool2d_reference(input, window, stride)
    }
}

/// The simulated-accelerator backend: every call becomes a STONNE API
/// sequence (configure + data + run) on the held instance, and the
/// per-layer statistics accumulate in the instance history.
pub struct SimBackend {
    sim: Stonne,
    schedule: Arc<dyn RowSchedule + Send + Sync>,
    offload_pooling: bool,
}

impl std::fmt::Debug for SimBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBackend")
            .field("accelerator", &self.sim.config().name)
            .field("schedule", &self.schedule.name())
            .field("offload_pooling", &self.offload_pooling)
            .finish()
    }
}

impl SimBackend {
    /// Wraps a simulator instance with the default (natural) schedule.
    pub fn new(sim: Stonne) -> Self {
        Self {
            sim,
            schedule: Arc::new(NaturalOrder),
            offload_pooling: true,
        }
    }

    /// Sets the filter schedule used on sparse configurations.
    pub fn with_schedule(mut self, schedule: Arc<dyn RowSchedule + Send + Sync>) -> Self {
        self.schedule = schedule;
        self
    }

    /// Chooses whether pooling offloads to the accelerator (default) or
    /// runs natively.
    pub fn with_pooling_offload(mut self, offload: bool) -> Self {
        self.offload_pooling = offload;
        self
    }

    /// The underlying simulator (per-layer history lives here).
    pub fn sim(&self) -> &Stonne {
        &self.sim
    }

    /// Consumes the backend, returning the simulator.
    pub fn into_sim(self) -> Stonne {
        self.sim
    }

    /// Stats of every offloaded operation so far.
    pub fn layer_stats(&self) -> &[SimStats] {
        self.sim.history()
    }
}

impl Backend for SimBackend {
    fn conv2d(
        &mut self,
        name: &str,
        input: &Tensor4,
        weights: &Tensor4,
        geom: &Conv2dGeom,
    ) -> Tensor4 {
        let (out, _) =
            self.sim
                .run_conv_scheduled(name, input, weights, geom, None, self.schedule.as_ref());
        out
    }

    fn linear(&mut self, name: &str, input: &Matrix, weights: &Matrix) -> Matrix {
        let (out, _) = self
            .sim
            .run_linear_scheduled(name, input, weights, self.schedule.as_ref());
        out
    }

    fn matmul(&mut self, name: &str, a: &Matrix, b: &Matrix) -> Matrix {
        let (out, _) = self
            .sim
            .run_gemm_scheduled(name, a, b, self.schedule.as_ref());
        out
    }

    fn maxpool(&mut self, name: &str, input: &Tensor4, window: usize, stride: usize) -> Tensor4 {
        if self.offload_pooling {
            let (out, _) = self.sim.run_maxpool(name, input, window, stride);
            out
        } else {
            maxpool2d_reference(input, window, stride)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stonne_core::AcceleratorConfig;
    use stonne_tensor::{assert_slices_close, SeededRng};

    #[test]
    fn sim_backend_matches_reference_backend() {
        let mut rng = SeededRng::new(1);
        let input = Tensor4::random(1, 3, 6, 6, &mut rng);
        let weights = Tensor4::random(4, 3, 3, 3, &mut rng);
        let geom = Conv2dGeom::new(3, 4, 3, 3, 1, 1, 1);

        let mut r = ReferenceBackend;
        let expected = r.conv2d("c", &input, &weights, &geom);

        let sim = Stonne::new(AcceleratorConfig::maeri_like(64, 16)).unwrap();
        let mut s = SimBackend::new(sim);
        let actual = s.conv2d("c", &input, &weights, &geom);
        assert_slices_close(actual.as_slice(), expected.as_slice());
        assert_eq!(s.layer_stats().len(), 1);
    }

    #[test]
    fn linear_transposes_weights() {
        let mut rng = SeededRng::new(2);
        let input = Matrix::random(2, 8, &mut rng);
        let weights = Matrix::random(5, 8, &mut rng);
        let mut r = ReferenceBackend;
        let out = r.linear("fc", &input, &weights);
        assert_eq!((out.rows(), out.cols()), (2, 5));
    }

    #[test]
    fn pooling_can_run_natively() {
        let mut rng = SeededRng::new(3);
        let input = Tensor4::random(1, 2, 4, 4, &mut rng);
        let sim = Stonne::new(AcceleratorConfig::maeri_like(32, 8)).unwrap();
        let mut s = SimBackend::new(sim).with_pooling_offload(false);
        s.maxpool("p", &input, 2, 2);
        assert!(
            s.layer_stats().is_empty(),
            "native pooling must not offload"
        );
    }
}
