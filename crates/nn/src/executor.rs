//! Graph execution: walks a [`ModelSpec`] DAG in SSA order, offloading
//! compute-intensive ops to the [`Backend`] and running everything else
//! natively — the execution discipline of Fig. 2b of the paper.

use crate::backend::Backend;
use crate::params::ModelParams;
use crate::value::Value;
use stonne_models::{ModelSpec, OpSpec};
use stonne_tensor::{Elem, Matrix, Tensor4};

/// Executes the model and returns every node's output value (node 0 is
/// the input itself).
///
/// # Panics
///
/// Panics when the graph fails shape inference, a parameterized node is
/// missing weights, or a value kind mismatches its op.
pub fn execute_graph<B: Backend>(
    model: &ModelSpec,
    params: &ModelParams,
    input: &Value,
    backend: &mut B,
) -> Vec<Value> {
    model
        .infer_shapes()
        .unwrap_or_else(|e| panic!("invalid graph: {e}"));
    let mut values: Vec<Value> = Vec::with_capacity(model.nodes().len());
    for id in 0..model.nodes().len() {
        let ins: Vec<&Value> = model.nodes()[id]
            .inputs
            .iter()
            .map(|&i| &values[i])
            .collect();
        let out = execute_node(model, id, params, input, &ins, backend);
        values.push(out);
    }
    values
}

/// Executes a single node given the values of its inputs (`inputs[i]` is
/// the value of `node.inputs[i]`). Extracted from [`execute_graph`] so the
/// parallel runner can dispatch ready nodes independently.
///
/// # Panics
///
/// Panics when a parameterized node is missing weights or a value kind
/// mismatches its op.
pub(crate) fn execute_node<B: Backend>(
    model: &ModelSpec,
    id: usize,
    params: &ModelParams,
    input: &Value,
    inputs: &[&Value],
    backend: &mut B,
) -> Value {
    let node = &model.nodes()[id];
    let get = |i: usize| inputs[i];
    match node.op {
        OpSpec::Input => input.clone(),
        OpSpec::Conv2d { geom } => {
            let w = params
                .get(id)
                .unwrap_or_else(|| panic!("node {id} ({}) missing weights", node.name));
            Value::Feature(backend.conv2d(&node.name, get(0).as_feature(), w.as_conv(), &geom))
        }
        OpSpec::Linear { .. } => {
            let w = params
                .get(id)
                .unwrap_or_else(|| panic!("node {id} ({}) missing weights", node.name));
            Value::Tokens(backend.linear(&node.name, get(0).as_tokens(), w.as_linear()))
        }
        OpSpec::MaxPool { window, stride } => {
            Value::Feature(backend.maxpool(&node.name, get(0).as_feature(), window, stride))
        }
        OpSpec::GlobalAvgPool => Value::Feature(global_avg_pool(get(0).as_feature())),
        OpSpec::Relu => map_value(get(0), |v| v.max(0.0)),
        OpSpec::Gelu => map_value(get(0), gelu),
        OpSpec::Add => add_values(get(0), get(1)),
        OpSpec::Concat => {
            let parts: Vec<&Tensor4> = inputs.iter().map(|v| v.as_feature()).collect();
            Value::Feature(concat_channels(&parts))
        }
        OpSpec::Flatten => {
            let t = get(0).as_feature();
            Value::Tokens(Matrix::from_vec(1, t.len(), t.as_slice().to_vec()))
        }
        OpSpec::Attention { heads } => Value::Tokens(attention(
            backend,
            &node.name,
            get(0).as_tokens(),
            get(1).as_tokens(),
            get(2).as_tokens(),
            heads,
        )),
        OpSpec::Softmax => Value::Tokens(softmax_rows(get(0).as_tokens(), false)),
        OpSpec::LogSoftmax => Value::Tokens(softmax_rows(get(0).as_tokens(), true)),
        OpSpec::LayerNorm => Value::Tokens(layer_norm(get(0).as_tokens())),
    }
}

/// Whether an op offloads work to the backend (and therefore benefits
/// from running on its own simulator instance in the parallel runner).
pub(crate) fn is_offloaded_op(op: &OpSpec) -> bool {
    matches!(
        op,
        OpSpec::Conv2d { .. }
            | OpSpec::Linear { .. }
            | OpSpec::MaxPool { .. }
            | OpSpec::Attention { .. }
    )
}

fn map_value(v: &Value, f: impl Fn(Elem) -> Elem) -> Value {
    match v {
        Value::Feature(t) => {
            let mut out = t.clone();
            out.as_mut_slice().iter_mut().for_each(|x| *x = f(*x));
            Value::Feature(out)
        }
        Value::Tokens(m) => {
            let mut out = m.clone();
            out.as_mut_slice().iter_mut().for_each(|x| *x = f(*x));
            Value::Tokens(out)
        }
    }
}

/// Tanh-approximation GeLU (the BERT activation).
fn gelu(x: Elem) -> Elem {
    const SQRT_2_OVER_PI: Elem = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

fn add_values(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Feature(x), Value::Feature(y)) => {
            assert_eq!(x.shape(), y.shape(), "add shape mismatch");
            let mut out = x.clone();
            for (o, v) in out.as_mut_slice().iter_mut().zip(y.as_slice()) {
                *o += v;
            }
            Value::Feature(out)
        }
        (Value::Tokens(x), Value::Tokens(y)) => {
            assert_eq!((x.rows(), x.cols()), (y.rows(), y.cols()));
            let mut out = x.clone();
            for (o, v) in out.as_mut_slice().iter_mut().zip(y.as_slice()) {
                *o += v;
            }
            Value::Tokens(out)
        }
        _ => panic!("add requires matching value kinds"),
    }
}

fn concat_channels(parts: &[&Tensor4]) -> Tensor4 {
    let (n, h, w) = (parts[0].n(), parts[0].h(), parts[0].w());
    let c_total: usize = parts.iter().map(|t| t.c()).sum();
    let mut out = Tensor4::zeros(n, c_total, h, w);
    let mut c_off = 0;
    for t in parts {
        assert_eq!((t.n(), t.h(), t.w()), (n, h, w), "concat spatial mismatch");
        for nn in 0..n {
            for c in 0..t.c() {
                for y in 0..h {
                    for x in 0..w {
                        out.set(nn, c_off + c, y, x, t.get(nn, c, y, x));
                    }
                }
            }
        }
        c_off += t.c();
    }
    out
}

fn global_avg_pool(t: &Tensor4) -> Tensor4 {
    let mut out = Tensor4::zeros(t.n(), t.c(), 1, 1);
    let denom = (t.h() * t.w()) as Elem;
    for n in 0..t.n() {
        for c in 0..t.c() {
            let mut sum = 0.0;
            for y in 0..t.h() {
                for x in 0..t.w() {
                    sum += t.get(n, c, y, x);
                }
            }
            out.set(n, c, 0, 0, sum / denom);
        }
    }
    out
}

fn softmax_rows(m: &Matrix, log: bool) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        let row = m.row(r);
        let max = row.iter().cloned().fold(Elem::NEG_INFINITY, Elem::max);
        let sum: Elem = row.iter().map(|v| (v - max).exp()).sum();
        for (c, &v) in row.iter().enumerate() {
            let p = (v - max).exp() / sum;
            out.set(r, c, if log { p.ln() } else { p });
        }
    }
    out
}

fn layer_norm(m: &Matrix) -> Matrix {
    const EPS: Elem = 1e-5;
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        let row = m.row(r);
        let mean = row.iter().sum::<Elem>() / row.len() as Elem;
        let var = row.iter().map(|v| (v - mean).powi(2)).sum::<Elem>() / row.len() as Elem;
        let inv = 1.0 / (var + EPS).sqrt();
        for (c, &v) in row.iter().enumerate() {
            out.set(r, c, (v - mean) * inv);
        }
    }
    out
}

/// Multi-head scaled dot-product attention; the per-head score and
/// context products go through the backend (they are the offloaded
/// `sparse_mm`/`Dmm` work of BERT's transformer layers).
fn attention<B: Backend>(
    backend: &mut B,
    name: &str,
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    heads: usize,
) -> Matrix {
    let (seq, dim) = (q.rows(), q.cols());
    assert_eq!(dim % heads, 0, "dim {dim} not divisible by {heads} heads");
    let dh = dim / heads;
    let scale = 1.0 / (dh as Elem).sqrt();
    let mut out = Matrix::zeros(seq, dim);
    for h in 0..heads {
        let slice = |m: &Matrix| -> Matrix {
            let mut s = Matrix::zeros(seq, dh);
            for r in 0..seq {
                for c in 0..dh {
                    s.set(r, c, m.get(r, h * dh + c));
                }
            }
            s
        };
        let qh = slice(q);
        let kh = slice(k);
        let vh = slice(v);
        let mut scores = backend.matmul(&format!("{name}.h{h}.qk"), &qh, &kh.transposed());
        scores.as_mut_slice().iter_mut().for_each(|x| *x *= scale);
        let probs = softmax_rows(&scores, false);
        let ctx = backend.matmul(&format!("{name}.h{h}.sv"), &probs, &vh);
        for r in 0..seq {
            for c in 0..dh {
                out.set(r, h * dh + c, ctx.get(r, c));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ReferenceBackend;
    use crate::params::generate_input;
    use stonne_models::{zoo, ModelScale};
    use stonne_tensor::SeededRng;

    #[test]
    fn gelu_fixed_points() {
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]);
        let s = softmax_rows(&m, false);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let m = Matrix::from_rows(&[&[0.5, -1.0, 2.0]]);
        let s = softmax_rows(&m, false);
        let ls = softmax_rows(&m, true);
        for c in 0..3 {
            assert!((ls.get(0, c) - s.get(0, c).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut rng = SeededRng::new(1);
        let m = Matrix::random(3, 32, &mut rng);
        let n = layer_norm(&m);
        for r in 0..3 {
            let mean: f32 = n.row(r).iter().sum::<f32>() / 32.0;
            let var: f32 = n.row(r).iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 32.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn concat_stacks_channels_in_order() {
        let a = Tensor4::from_vec(1, 1, 1, 2, vec![1.0, 2.0]);
        let b = Tensor4::from_vec(1, 2, 1, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let out = concat_channels(&[&a, &b]);
        assert_eq!(out.shape(), (1, 3, 1, 2));
        assert_eq!(out.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn global_avg_pool_averages() {
        let t = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 6.0]);
        let out = global_avg_pool(&t);
        assert_eq!(out.get(0, 0, 0, 0), 3.0);
    }

    #[test]
    fn attention_identity_values_pass_through() {
        // With identical rows, softmax weights are uniform and the context
        // equals the (single) value row.
        let q = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0]]);
        let v = Matrix::from_rows(&[&[5.0, 7.0], &[5.0, 7.0]]);
        let mut b = ReferenceBackend;
        let out = attention(&mut b, "a", &q, &q, &v, 1);
        for r in 0..2 {
            assert!((out.get(r, 0) - 5.0).abs() < 1e-5);
            assert!((out.get(r, 1) - 7.0).abs() < 1e-5);
        }
    }

    #[test]
    fn every_zoo_model_executes_on_the_reference_backend() {
        for model in zoo::all_models(ModelScale::Tiny) {
            let params = ModelParams::generate(&model, 11);
            let input = generate_input(&model, 12);
            let mut backend = ReferenceBackend;
            let values = execute_graph(&model, &params, &input, &mut backend);
            assert_eq!(values.len(), model.nodes().len(), "{}", model.id());
            // Shapes of produced values match inference.
            let shapes = model.infer_shapes().unwrap();
            for (i, v) in values.iter().enumerate() {
                assert_eq!(v.shape(), shapes[i], "{} node {i}", model.id());
            }
        }
    }
}
