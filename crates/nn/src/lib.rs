//! DL-framework front-end for STONNE-rs.
//!
//! The original STONNE plugs into PyTorch as an accelerator device: the
//! framework executes a model layer by layer, offloading compute-intensive
//! operations (convolutions, linear layers, matrix multiplications) to the
//! simulated accelerator and running everything else natively (Fig. 2 of
//! the paper). This crate is that front-end, natively in Rust:
//!
//! * [`params`] — deterministic synthetic weights, magnitude-pruned to
//!   each model's Table I sparsity ratio.
//! * [`backend`] — the compute [`Backend`] trait with a CPU
//!   [`ReferenceBackend`] (the "native PyTorch" path) and a
//!   [`SimBackend`] that drives a [`stonne_core::Stonne`] instance through
//!   the STONNE API, mirroring the `Simulated*` ops of Fig. 2d.
//! * [`executor`] — graph execution over [`stonne_models::ModelSpec`]
//!   DAGs, including native ReLU/GeLU/softmax/layer-norm/pooling and
//!   multi-head attention whose inner matmuls go through the backend.
//! * [`runner`] — full-model inference: per-layer statistics, aggregate
//!   cycles/energy, and functional validation against the reference.
//!   [`RunOptions`] controls layer-simulation memoization (on by default;
//!   see [`stonne_core::SimCache`]), independent-layer parallelism, and
//!   checkpoint/resume (`checkpoint_every` / `resume_from`).
//! * [`checkpoint`] — deterministic snapshot/resume at layer boundaries:
//!   interrupted runs restart at the last boundary and finish
//!   bitwise-identical to uninterrupted ones, guarded by a state hash.
//! * [`parallel`] — the bounded worker pool behind the parallel runner
//!   and the bench-harness figure sweeps.
//!
//! # Example
//!
//! ```
//! use stonne_core::AcceleratorConfig;
//! use stonne_models::{zoo, ModelScale};
//! use stonne_nn::runner::{run_model_reference, run_model_simulated};
//! use stonne_nn::params::ModelParams;
//!
//! let model = zoo::alexnet(ModelScale::Tiny);
//! let params = ModelParams::generate(&model, 1);
//! let input = stonne_nn::params::generate_input(&model, 2);
//! let reference = run_model_reference(&model, &params, &input);
//! let run = run_model_simulated(
//!     &model, &params, &input,
//!     AcceleratorConfig::maeri_like(64, 16),
//! ).unwrap();
//! // Functional validation: the simulated run covers every node.
//! assert_eq!(reference.outputs.len(), run.outputs.len());
//! assert!(run.total.cycles > 0);
//! ```

pub mod backend;
pub mod checkpoint;
pub mod executor;
pub mod parallel;
pub mod params;
pub mod runner;
pub mod value;

pub use backend::{Backend, ReferenceBackend, SimBackend};
pub use executor::execute_graph;
pub use parallel::{run_parallel, ParallelError};
pub use params::{generate_input, ModelParams, NodeWeights};
pub use runner::{
    run_model_reference, run_model_simulated, run_model_simulated_traced,
    run_model_simulated_traced_with, run_model_simulated_with, LayerReport, ModelRun, ReferenceRun,
    RunOptions,
};
pub use value::Value;
