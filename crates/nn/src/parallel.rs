//! A bounded worker pool for independent simulation tasks.
//!
//! Lives in the front-end crate so both the parallel full-model runner
//! ([`crate::runner`]) and the figure sweeps of the bench crate share one
//! implementation (the bench crate re-exports it).

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A worker task of [`run_parallel`] panicked.
#[derive(Debug)]
pub struct ParallelError {
    /// Index of the task (in submission order) that panicked.
    pub task_index: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl fmt::Display for ParallelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation task {} panicked: {}",
            self.task_index, self.message
        )
    }
}

impl std::error::Error for ParallelError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs independent simulation tasks on a worker pool capped at
/// `available_parallelism()`, returning their results in submission
/// order.
///
/// The figure sweeps (7 models × 3 architectures and similar) previously
/// spawned one unbounded OS thread per combination; this runner bounds
/// the fan-out to the machine's core count and converts worker panics
/// into a [`ParallelError`] instead of panicking on `join`.
///
/// # Errors
///
/// Returns the first (lowest-index) panicking task. The remaining tasks
/// still run to completion — workers drain the queue regardless.
pub fn run_parallel<T, F>(tasks: Vec<F>) -> Result<Vec<T>, ParallelError>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(n);
    let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<std::thread::Result<T>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = slots[i]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("each slot is claimed exactly once");
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                *results[i].lock().expect("result lock") = Some(outcome);
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    for (i, cell) in results.into_iter().enumerate() {
        match cell.into_inner().expect("result lock").expect("task ran") {
            Ok(value) => out.push(value),
            Err(payload) => {
                return Err(ParallelError {
                    task_index: i,
                    message: panic_message(payload),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_parallel_preserves_submission_order() {
        let tasks: Vec<_> = (0..40usize).map(|i| move || i * i).collect();
        let out = run_parallel(tasks).unwrap();
        assert_eq!(out, (0..40usize).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(run_parallel::<u8, fn() -> u8>(vec![]).unwrap(), vec![]);
    }

    #[test]
    fn run_parallel_reports_the_first_panicking_task() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("boom-a")),
            Box::new(|| 3),
            Box::new(|| panic!("boom-b")),
        ];
        let err = run_parallel(tasks).unwrap_err();
        std::panic::set_hook(hook);
        assert_eq!(err.task_index, 1);
        assert!(err.message.contains("boom-a"), "{}", err.message);
        assert!(err.to_string().contains("task 1"));
    }
}
