//! Runtime values flowing between graph nodes.

use stonne_models::TensorShape;
use stonne_tensor::{Matrix, Tensor4};

/// A value produced by a graph node: either a feature map or a token
/// matrix, matching [`TensorShape`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// NCHW feature map (batch fixed at 1 in model graphs).
    Feature(Tensor4),
    /// `seq × dim` token matrix.
    Tokens(Matrix),
}

impl Value {
    /// The shape descriptor of this value.
    ///
    /// # Panics
    ///
    /// Panics on a feature map with batch ≠ 1 (model graphs are batch-1).
    pub fn shape(&self) -> TensorShape {
        match self {
            Value::Feature(t) => {
                assert_eq!(t.n(), 1, "model graphs carry batch-1 tensors");
                TensorShape::Feature {
                    c: t.c(),
                    h: t.h(),
                    w: t.w(),
                }
            }
            Value::Tokens(m) => TensorShape::Tokens {
                seq: m.rows(),
                dim: m.cols(),
            },
        }
    }

    /// Borrows the feature map.
    ///
    /// # Panics
    ///
    /// Panics if the value is a token matrix.
    pub fn as_feature(&self) -> &Tensor4 {
        match self {
            Value::Feature(t) => t,
            Value::Tokens(_) => panic!("expected a feature map, got tokens"),
        }
    }

    /// Borrows the token matrix.
    ///
    /// # Panics
    ///
    /// Panics if the value is a feature map.
    pub fn as_tokens(&self) -> &Matrix {
        match self {
            Value::Tokens(m) => m,
            Value::Feature(_) => panic!("expected tokens, got a feature map"),
        }
    }

    /// Flat view of the underlying elements (for output comparison).
    pub fn as_slice(&self) -> &[f32] {
        match self {
            Value::Feature(t) => t.as_slice(),
            Value::Tokens(m) => m.as_slice(),
        }
    }
}

impl From<Tensor4> for Value {
    fn from(t: Tensor4) -> Self {
        Value::Feature(t)
    }
}

impl From<Matrix> for Value {
    fn from(m: Matrix) -> Self {
        Value::Tokens(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_variants() {
        let f = Value::Feature(Tensor4::zeros(1, 2, 3, 4));
        assert_eq!(f.shape(), TensorShape::Feature { c: 2, h: 3, w: 4 });
        let t = Value::Tokens(Matrix::zeros(5, 6));
        assert_eq!(t.shape(), TensorShape::Tokens { seq: 5, dim: 6 });
    }

    #[test]
    #[should_panic(expected = "expected tokens")]
    fn wrong_accessor_panics() {
        Value::Feature(Tensor4::zeros(1, 1, 1, 1)).as_tokens();
    }

    #[test]
    fn as_slice_exposes_elements() {
        let m = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(Value::Tokens(m).as_slice(), &[1.0, 2.0]);
    }
}
