//! Analytical cost models for DNN accelerators — the baselines STONNE is
//! compared against in Figure 1 of the paper.
//!
//! Three models are provided, mirroring the tools the paper cites:
//!
//! * [`scalesim`] — a SCALE-Sim-style closed-form model of an
//!   output-stationary systolic array (rigid architectures);
//! * [`maeri`] — the MAERI authors' analytical model of the flexible
//!   tree-based architecture (idealized multicast reuse);
//! * [`sigma`] — the SIGMA authors' analytical model of the sparse
//!   architecture (perfectly balanced cluster packing).
//!
//! Analytical models are exact for rigid, regular executions but cannot
//! see bandwidth conflicts (Fig. 1b) or the actual distribution of zeros
//! (Fig. 1c); the integration tests in this workspace reproduce both
//! effects against the cycle-level engine.

pub mod band;
pub mod maeri;
pub mod scalesim;
pub mod sigma;

pub use band::{divergence_pct, within_pct, Band};
pub use maeri::maeri_cycles;
pub use scalesim::scalesim_os_cycles;
pub use sigma::{sigma_cycles, sigma_cycles_uniform};
