//! SCALE-Sim-style analytical model of an output-stationary systolic
//! array.
//!
//! SCALE-Sim computes runtimes from closed-form pipeline equations: an
//! `R × C` array computing a `tm × tn` output tile over inner dimension
//! `K` takes `K + tm + tn - 2` cycles (skewed fill + wavefront), and
//! output tiles are processed back to back. The model is exact for rigid
//! arrays with full operand bandwidth — which is why Fig. 1a of the paper
//! shows a near-perfect match with cycle-level simulation — but it knows
//! nothing about the per-tile command/drain overhead a real pipeline pays.

/// Analytical cycle count for `C = A (M×K) × B (K×N)` on a `dim × dim`
/// output-stationary systolic array at full bandwidth.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn scalesim_os_cycles(dim: usize, m: usize, n: usize, k: usize) -> u64 {
    assert!(
        dim > 0 && m > 0 && n > 0 && k > 0,
        "dimensions must be positive"
    );
    let mut total = 0u64;
    for tile_i in 0..m.div_ceil(dim) {
        for tile_j in 0..n.div_ceil(dim) {
            let tm = (m - tile_i * dim).min(dim);
            let tn = (n - tile_j * dim).min(dim);
            total += (k + tm + tn - 2) as u64;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tile_formula() {
        assert_eq!(scalesim_os_cycles(16, 16, 16, 32), 32 + 16 + 16 - 2);
    }

    #[test]
    fn tiles_serialize() {
        // 4 tiles of (16,16,16).
        assert_eq!(scalesim_os_cycles(16, 32, 32, 16), 4 * 46);
    }

    #[test]
    fn ragged_tiles_shrink() {
        // 1 full + 1 ragged column tile.
        let c = scalesim_os_cycles(4, 4, 6, 8);
        assert_eq!(c, (8 + 4 + 4 - 2) + (8 + 4 + 2 - 2));
    }

    #[test]
    fn model_is_close_to_cycle_level_engine() {
        // Fig. 1a: the analytical model and the cycle-level simulator
        // nearly coincide on rigid arrays. Our engine adds 4 fixed
        // overhead cycles per tile.
        for (dim, m, n, k) in [(16, 16, 16, 32), (16, 64, 64, 32), (8, 24, 24, 100)] {
            let analytical = scalesim_os_cycles(dim, m, n, k);
            let tiles = (m.div_ceil(dim) * n.div_ceil(dim)) as u64;
            let engine = analytical + 4 * tiles;
            let diff = (engine as f64 - analytical as f64) / engine as f64;
            assert!(diff < 0.12, "divergence {diff} too large for a rigid array");
        }
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dims_panic() {
        scalesim_os_cycles(16, 0, 1, 1);
    }
}
