//! MAERI-style analytical model of the flexible tree-based architecture.
//!
//! The MAERI authors describe expected runtime with utilization formulas:
//! virtual neurons of the tile's cluster size replicate across the
//! multiplier array, every mapping step completes one multiply-reduce
//! wave in a single cycle, and the distribution tree's single-cycle
//! multicast is assumed to keep every virtual neuron fed. Bandwidth
//! enters the model only through the stationary weight-loading phases.
//!
//! That idealization is exact at full bandwidth — the paper's Fig. 1b
//! reports a 1.03 % average difference from cycle-level simulation — but
//! it cannot see the per-step delivery stalls that appear when the
//! global-buffer bandwidth drops below the live operand footprint: the
//! conflicts in the distribution and reduction networks that a
//! cycle-level simulator captures and that reach ~400 % underestimation
//! at 32 elements/cycle in the paper.

use stonne_tensor::Conv2dGeom;

/// Layer/tile description consumed by the analytical model (a mirror of
/// the simulator's mapping, kept dependency-free on purpose: the authors'
/// model only sees shapes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaeriWorkload {
    /// Filters (GEMM `M`).
    pub m: usize,
    /// Output positions (GEMM `N`).
    pub n: usize,
    /// Dot-product length (GEMM `K`).
    pub k: usize,
    /// Cluster (virtual neuron) size mapped per output.
    pub cluster: usize,
    /// Simultaneous filters.
    pub t_k: usize,
    /// Simultaneous output positions.
    pub t_pos: usize,
}

impl MaeriWorkload {
    /// Builds the workload from GEMM dims with the same auto-tiling rule
    /// the simulator's mapper uses (whole dot product as one cluster when
    /// it fits, filters-first replication).
    pub fn from_gemm(m: usize, n: usize, k: usize, ms_size: usize) -> Self {
        let cluster = k.min(ms_size).max(1);
        let budget = (ms_size / cluster).max(1);
        let t_k = budget.min(m).max(1);
        let t_pos = (budget / t_k).max(1).min(n);
        Self {
            m,
            n,
            k,
            cluster,
            t_k,
            t_pos,
        }
    }

    /// Builds the workload for a convolution layer (dims lowered via
    /// im2col, as the MAERI mapping utility does).
    pub fn from_conv(geom: &Conv2dGeom, in_h: usize, in_w: usize, ms_size: usize) -> Self {
        let (oh, ow) = geom.out_hw(in_h, in_w);
        Self::from_gemm(
            geom.out_c_per_group(),
            oh * ow,
            geom.dot_product_len(),
            ms_size,
        )
    }
}

/// Analytical cycle estimate for the flexible tree architecture with
/// `bandwidth` elements/cycle of global-buffer delivery.
///
/// Per mapping step the model charges **one** cycle — multicast delivery
/// is assumed conflict-free — plus the stationary weight loads per fold
/// (the only place bandwidth enters) and a reduction-tree drain per
/// filter chunk.
///
/// # Panics
///
/// Panics if `bandwidth` is zero.
pub fn maeri_cycles(w: &MaeriWorkload, bandwidth: usize) -> u64 {
    assert!(bandwidth > 0, "bandwidth must be positive");
    let bw = bandwidth as u64;
    let folds = (w.k.div_ceil(w.cluster)) as u64;
    let k_chunks = (w.m.div_ceil(w.t_k)) as u64;
    let pos_steps = (w.n.div_ceil(w.t_pos)) as u64;

    // Stationary weights per fold: T_K filters × cluster elements.
    let weight_cycles = ((w.t_k * w.cluster) as u64).div_ceil(bw).max(1);
    // log2 drain of the reduction tree per filter chunk.
    let drain = (usize::BITS - (w.cluster.max(2) - 1).leading_zeros()) as u64 + 1;

    // One idealized cycle per compute step.
    k_chunks * (folds * (weight_cycles + pos_steps) + drain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_are_single_cycle_regardless_of_bandwidth() {
        let w = MaeriWorkload::from_gemm(16, 64, 64, 128);
        let full = maeri_cycles(&w, 128);
        let low = maeri_cycles(&w, 32);
        // Only weight loads grow: 2 filters × 64 cluster = 128 elements,
        // 1 cycle at bw 128 vs 4 at bw 32, once per (chunk, fold).
        assert_eq!(low - full, 8 * (4 - 1));
    }

    #[test]
    fn lower_bandwidth_increases_estimate_via_weight_loads() {
        let w = MaeriWorkload::from_gemm(16, 64, 64, 128);
        assert!(maeri_cycles(&w, 32) > maeri_cycles(&w, 128));
    }

    #[test]
    fn auto_tile_matches_mapper_intuition() {
        let w = MaeriWorkload::from_gemm(6, 25, 54, 32);
        // Dot product 54 exceeds 32: cluster capped at 32.
        assert_eq!(w.cluster, 32);
        assert_eq!(w.t_k, 1);
    }

    #[test]
    fn conv_lowering_matches_gemm_dims() {
        let geom = Conv2dGeom::new(6, 6, 3, 3, 1, 0, 1);
        let w = MaeriWorkload::from_conv(&geom, 7, 7, 64);
        assert_eq!((w.m, w.n, w.k), (6, 25, 54));
    }

    #[test]
    fn estimate_counts_compute_steps() {
        // 4 filters, one per chunk? t_k: cluster=8, budget=2 -> t_k=2.
        let w = MaeriWorkload::from_gemm(4, 10, 8, 16);
        // chunks=2, folds=1, pos_steps=10, weights=1, drain=4.
        assert_eq!(maeri_cycles(&w, 16), 2 * (1 + 10 + 4));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        maeri_cycles(&MaeriWorkload::from_gemm(2, 2, 2, 8), 0);
    }
}
