//! Tolerance bands for comparing cycle-level results against the
//! analytical models.
//!
//! Every Fig. 1 claim in the paper is a statement of the form "the
//! analytical model is within X % of the cycle-level simulator" (or
//! "diverges by at least X %"). This module gives those statements one
//! vocabulary: a signed [`divergence_pct`] (positive when the cycle-level
//! simulator reports *more* cycles than the model — the model
//! underestimates) and a [`Band`] that classifies a measured divergence
//! as inside or outside a stated tolerance.

/// Signed divergence of a cycle-level measurement from an analytical
/// model, in percent.
///
/// Positive means the simulator reports more cycles than the model (the
/// model underestimates); negative means fewer. A zero-cycle model
/// prediction yields `f64::INFINITY` for any non-zero measurement.
///
/// ```
/// use stonne_analytical::band::divergence_pct;
/// assert_eq!(divergence_pct(150, 100), 50.0);
/// assert_eq!(divergence_pct(50, 100), -50.0);
/// ```
pub fn divergence_pct(cycle_level: u64, analytical: u64) -> f64 {
    if analytical == 0 {
        return if cycle_level == 0 { 0.0 } else { f64::INFINITY };
    }
    (cycle_level as f64 / analytical as f64 - 1.0) * 100.0
}

/// Whether a cycle-level measurement stays within `±max_pct` percent of
/// the analytical prediction.
///
/// ```
/// use stonne_analytical::band::within_pct;
/// assert!(within_pct(104, 100, 5.0));
/// assert!(!within_pct(120, 100, 5.0));
/// ```
pub fn within_pct(cycle_level: u64, analytical: u64, max_pct: f64) -> bool {
    divergence_pct(cycle_level, analytical).abs() <= max_pct
}

/// A symmetric or one-sided tolerance band around an analytical model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Most negative admissible divergence, in percent.
    pub min_pct: f64,
    /// Most positive admissible divergence, in percent.
    pub max_pct: f64,
}

impl Band {
    /// Symmetric band `±pct`.
    pub fn symmetric(pct: f64) -> Self {
        Band {
            min_pct: -pct,
            max_pct: pct,
        }
    }

    /// One-sided band: the model may underestimate by up to `pct` but
    /// never overestimate (the simulator never reports fewer cycles than
    /// the model — the model is a lower bound).
    pub fn lower_bound(pct: f64) -> Self {
        Band {
            min_pct: 0.0,
            max_pct: pct,
        }
    }

    /// Whether the `(cycle_level, analytical)` pair falls inside the band.
    pub fn contains(&self, cycle_level: u64, analytical: u64) -> bool {
        let d = divergence_pct(cycle_level, analytical);
        d >= self.min_pct && d <= self.max_pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_is_signed() {
        assert!(divergence_pct(150, 100) > 0.0);
        assert!(divergence_pct(50, 100) < 0.0);
        assert_eq!(divergence_pct(100, 100), 0.0);
    }

    #[test]
    fn zero_prediction_is_infinite_unless_both_zero() {
        assert_eq!(divergence_pct(0, 0), 0.0);
        assert!(divergence_pct(1, 0).is_infinite());
    }

    #[test]
    fn bands_classify() {
        assert!(Band::symmetric(10.0).contains(109, 100));
        assert!(!Band::symmetric(10.0).contains(111, 100));
        assert!(Band::lower_bound(20.0).contains(115, 100));
        assert!(!Band::lower_bound(20.0).contains(99, 100));
    }
}
