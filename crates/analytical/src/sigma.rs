//! SIGMA-style analytical model of the flexible sparse architecture.
//!
//! The SIGMA authors estimate runtime from aggregate non-zero counts: the
//! model assumes every MK row carries the *same* number of non-zeros
//! (`nnz / M`), packs those uniform clusters onto the multiplier array,
//! and streams the KN columns one per cycle. Under that assumption the
//! mapping is fully deterministic, so the estimate is exact for dense
//! operands — the paper's Fig. 1c shows a perfect match at 0 % sparsity.
//!
//! What the formula *cannot* represent is the actual distribution of the
//! zeros: real pruned rows have irregular sizes, the controller's
//! in-order packing leaves multipliers idle, and the union of stationary
//! column indices widens the streaming fetches — effects that only a
//! cycle-level, full-model simulation with real weight values captures
//! (divergence up to 92 % at 90 % sparsity in the paper).

use stonne_tensor::{CsrMatrix, Matrix};

fn ceil_log2(n: usize) -> u64 {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as u64
    }
}

/// Analytical estimate assuming `nnz` non-zeros spread uniformly over `m`
/// rows of a `(M×K)·(K×N)` SpMM on an `ms_size`-multiplier sparse engine
/// at `bandwidth` elements/cycle.
///
/// The model mirrors the controller's two mappings (weight-stationary row
/// packing and the input-stationary GEMV mode) under the uniform-row
/// assumption and returns the cheaper one.
///
/// # Panics
///
/// Panics if `m`, `ms_size` or `bandwidth` is zero.
pub fn sigma_cycles_uniform(
    m: usize,
    n: usize,
    k: usize,
    nnz: u64,
    ms_size: usize,
    bandwidth: usize,
) -> u64 {
    assert!(
        m > 0 && ms_size > 0 && bandwidth > 0,
        "sizes must be positive"
    );
    if nnz == 0 {
        return 0;
    }
    // Uniform row size: the model's core (and only) view of sparsity.
    let r = ((nnz as f64 / m as f64).round() as usize).max(1);
    let ws = uniform_weight_stationary(m, n, r, ms_size, bandwidth);
    let is = uniform_input_stationary(m, n, k, r, ms_size, bandwidth);
    ws.min(is)
}

fn uniform_weight_stationary(m: usize, n: usize, r: usize, ms: usize, bw: usize) -> u64 {
    let bw = bw as u64;
    let n = n as u64;
    if r >= ms {
        // Every row folds into ⌈r/ms⌉ segments; a trailing remainder
        // cannot pair with the next row's full segment, so each segment
        // occupies one mapping round.
        let full = (r / ms) as u64;
        let rem = r % ms;
        let full_iter = (ms as u64).div_ceil(bw).max(1) // load
            + n * (ms as u64).div_ceil(bw).max(1) // stream
            + ceil_log2(ms) + 1; // drain
        let mut total = m as u64 * full * full_iter;
        if rem > 0 {
            let rem_iter = (rem as u64).div_ceil(bw).max(1)
                + n * (rem as u64).div_ceil(bw).max(1)
                + ceil_log2(rem)
                + 1;
            total += m as u64 * rem_iter;
        }
        total
    } else {
        // Balanced packing: the model assumes clusters tile the array with
        // no fragmentation — ⌈m·r / ms⌉ rounds — which is exact when row
        // sizes divide the array (any dense layer of this suite) and
        // optimistic otherwise: real in-order packing of irregular pruned
        // rows leaves multipliers idle, which only the cycle-level
        // simulation sees.
        let iters = (m as u64 * r as u64).div_ceil(ms as u64);
        let per_iter = (ms / r).max(1);
        // Uniform rows share their column support perfectly in the
        // model's view: one multicast fetch per stationary index.
        let distinct = r.min(ms) as u64;
        let step = distinct
            .div_ceil(bw)
            .max((per_iter as u64).div_ceil(bw))
            .max(1);
        let per_iteration = (ms as u64).div_ceil(bw).max(1) + n * step + ceil_log2(r) + 1;
        iters * per_iteration
    }
}

fn uniform_input_stationary(m: usize, n: usize, k: usize, r: usize, ms: usize, bw: usize) -> u64 {
    if n != 1 || k > ms {
        return u64::MAX;
    }
    let bw = bw as u64;
    (k as u64).div_ceil(bw) + m as u64 * (r as u64).div_ceil(bw).max(1) + ceil_log2(ms) + 1
}

/// Analytical estimate from an actual sparse operand: counts its
/// non-zeros, then applies the uniform-distribution formula — discarding
/// exactly the information (the zero *positions*) the paper shows matters.
pub fn sigma_cycles(a: &CsrMatrix, b: &Matrix, ms_size: usize, bandwidth: usize) -> u64 {
    assert_eq!(a.cols(), b.rows(), "inner dims disagree");
    sigma_cycles_uniform(
        a.rows(),
        b.cols(),
        a.cols(),
        a.nnz() as u64,
        ms_size,
        bandwidth,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use stonne_tensor::{Matrix, SeededRng};

    #[test]
    fn dense_uniform_rows_are_deterministic() {
        // 64 rows of 32 nnz on 128 MS: 4 rows/round, 16 rounds, each
        // 1 load + 128 streams + log2(32)+1 drain.
        let cycles = sigma_cycles_uniform(64, 128, 32, 64 * 32, 128, 128);
        assert_eq!(cycles, 16 * (1 + 128 + 6));
    }

    #[test]
    fn folding_rows_cost_per_segment() {
        // 2 rows of 288 nnz on 128 MS: per row 2 full + 1 remainder(32).
        let cycles = sigma_cycles_uniform(2, 4, 288, 2 * 288, 128, 128);
        let full = 1 + 4 + 8;
        let rem = 1 + 4 + 6;
        assert_eq!(cycles, 2 * (2 * full + rem));
    }

    #[test]
    fn gemv_mode_wins_for_single_columns() {
        // SIGMA-4 shape: 128×1×64, dense.
        let cycles = sigma_cycles_uniform(128, 1, 64, 128 * 64, 128, 128);
        assert_eq!(cycles, 1 + 128 + 8);
    }

    #[test]
    fn sparsity_shrinks_the_estimate() {
        let dense = sigma_cycles_uniform(64, 64, 64, 4096, 128, 128);
        let sparse = sigma_cycles_uniform(64, 64, 64, 512, 128, 128);
        assert!(sparse < dense);
    }

    #[test]
    fn zero_nnz_is_free() {
        assert_eq!(sigma_cycles_uniform(8, 8, 8, 0, 128, 128), 0);
    }

    #[test]
    fn matches_the_cycle_level_engine_on_dense_operands() {
        // The paper's Fig. 1c anchor: perfect match at 0 % sparsity.
        use stonne_core::{AcceleratorConfig, Stonne};
        for (m, n, k) in [(64, 128, 32), (32, 16, 128), (16, 8, 288), (100, 1, 64)] {
            let mut rng = SeededRng::new(9);
            let a = Matrix::random(m, k, &mut rng);
            let b = Matrix::random(k, n, &mut rng);
            let csr = CsrMatrix::from_dense(&a);
            let mut sim = Stonne::new(AcceleratorConfig::sigma_like(128, 128)).unwrap();
            let (_, stats) = sim.run_spmm("t", &csr, &b);
            let analytical = sigma_cycles(&csr, &b, 128, 128);
            let err = (stats.cycles as f64 - analytical as f64).abs() / stats.cycles as f64;
            assert!(
                err < 0.02,
                "({m},{n},{k}): sim {} vs analytical {analytical}",
                stats.cycles
            );
        }
    }

    #[test]
    fn csr_wrapper_counts_nnz() {
        let mut rng = SeededRng::new(1);
        let mut a = Matrix::random(8, 8, &mut rng);
        for i in 0..8 {
            a.set(i, i, 0.0);
        }
        let csr = CsrMatrix::from_dense(&a);
        let b = Matrix::random(8, 4, &mut rng);
        assert_eq!(
            sigma_cycles(&csr, &b, 32, 32),
            sigma_cycles_uniform(8, 4, 8, 56, 32, 32)
        );
    }
}
