//! STONNE-rs: a Rust reproduction of *STONNE: Enabling Cycle-Level
//! Microarchitectural Simulation for DNN Inference Accelerators*
//! (Muñoz-Martínez, Abellán, Acacio, Krishna — IISWC 2021).
//!
//! This facade re-exports the whole workspace:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`core`] | `stonne-core` | cycle-level simulation engine (DN/MN/RN networks, controllers, STONNE API) |
//! | [`tensor`] | `stonne-tensor` | dense/sparse tensors, im2col, pruning |
//! | [`models`] | `stonne-models` | the seven DNN models of Table I + Fig. 1/Table V workloads |
//! | [`nn`] | `stonne-nn` | DL-framework front-end (reference + simulated backends) |
//! | [`analytical`] | `stonne-analytical` | SCALE-Sim/MAERI/SIGMA analytical baselines |
//! | [`energy`] | `stonne-energy` | table-based energy & area models |
//! | [`dram`] | `stonne-dram` | HBM2 bandwidth/latency + double buffering |
//! | [`snapea`] | `stonne-snapea` | use case B: SNAPEA back-end extension |
//! | [`sched`] | `stonne-sched` | use case C: filter scheduling front-end extension |
//! | [`predict`] | `stonne-predict` | learned cycle predictor (fast fidelity) distilled from the engines |
//!
//! # Quick start
//!
//! Simulate one GEMM on the three Table IV presets:
//!
//! ```
//! use stonne::core::{AcceleratorConfig, Stonne};
//! use stonne::tensor::{Matrix, SeededRng};
//!
//! # fn main() -> Result<(), stonne::core::ConfigError> {
//! let mut rng = SeededRng::new(1);
//! let a = Matrix::random(32, 64, &mut rng);
//! let b = Matrix::random(64, 16, &mut rng);
//! for cfg in [
//!     AcceleratorConfig::tpu_like(16),
//!     AcceleratorConfig::maeri_like(256, 128),
//!     AcceleratorConfig::sigma_like(256, 128),
//! ] {
//!     let mut sim = Stonne::new(cfg)?;
//!     let (_, stats) = sim.run_gemm("demo", &a, &b);
//!     println!("{}: {} cycles", stats.accelerator, stats.cycles);
//! }
//! # Ok(())
//! # }
//! ```
//!
//! Full-model simulation (the paper's PyTorch-style flow):
//!
//! ```
//! use stonne::core::AcceleratorConfig;
//! use stonne::models::{zoo, ModelScale};
//! use stonne::nn::params::{generate_input, ModelParams};
//! use stonne::nn::runner::run_model_simulated;
//!
//! let model = zoo::squeezenet(ModelScale::Tiny);
//! let params = ModelParams::generate(&model, 42);
//! let input = generate_input(&model, 43);
//! let run = run_model_simulated(
//!     &model, &params, &input,
//!     AcceleratorConfig::sigma_like(64, 64),
//! ).unwrap();
//! println!("{} cycles, {:.2} µJ", run.total.cycles, run.energy.total_uj());
//! ```

pub use stonne_analytical as analytical;
pub use stonne_core as core;
pub use stonne_dram as dram;
pub use stonne_energy as energy;
pub use stonne_models as models;
pub use stonne_nn as nn;
pub use stonne_predict as predict;
pub use stonne_sched as sched;
pub use stonne_snapea as snapea;
pub use stonne_tensor as tensor;
