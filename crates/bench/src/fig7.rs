//! Figure 7: filter-mapping analysis on a 256-MS flexible sparse
//! architecture — average whole filters mappable per model (7a) and the
//! per-filter sizes of each model's first layer (7b).

use serde::{Deserialize, Serialize};
use stonne::models::{zoo, ModelId, ModelScale};
use stonne::nn::params::ModelParams;
use stonne::sched::{avg_filters_mappable, first_layer_filter_sizes};

/// Per-model mapping summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// DNN model.
    pub model: ModelId,
    /// Average whole filters simultaneously mappable (Fig. 7a).
    pub avg_filters: f64,
    /// Filter sizes (nnz, capped at the array size) of the first layer
    /// (Fig. 7b).
    pub first_layer_sizes: Vec<usize>,
}

/// Runs the analysis for every model of Table I.
pub fn fig7(scale: ModelScale, ms_size: usize) -> Vec<Fig7Row> {
    ModelId::ALL
        .iter()
        .map(|&id| {
            let model = zoo::build(id, scale);
            let params = ModelParams::generate(&model, 51);
            Fig7Row {
                model: id,
                avg_filters: avg_filters_mappable(&model, &params, ms_size),
                first_layer_sizes: first_layer_filter_sizes(&model, &params, ms_size),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_models_map_multiple_filters() {
        // Fig. 7a: "between 4 and 8 filters can be entirely mapped
        // simultaneously in most cases", with AlexNet and BERT the
        // large-filter exceptions.
        let rows = fig7(ModelScale::Tiny, 256);
        assert_eq!(rows.len(), 7);
        let get = |id: ModelId| rows.iter().find(|r| r.model == id).unwrap().avg_filters;
        assert!(get(ModelId::SqueezeNet) > get(ModelId::Bert));
        assert!(get(ModelId::MobileNetV1) > 2.0);
        for row in &rows {
            assert!(row.avg_filters >= 1.0, "{}: {}", row.model, row.avg_filters);
        }
    }

    #[test]
    fn first_layer_sizes_are_bounded_by_array() {
        for row in fig7(ModelScale::Tiny, 256) {
            assert!(!row.first_layer_sizes.is_empty(), "{}", row.model);
            assert!(row.first_layer_sizes.iter().all(|&s| s <= 256));
        }
    }

    #[test]
    fn bert_filters_are_larger_than_mobilenet() {
        // The paper: BERT/AlexNet feature filters "up to 4.3× larger"
        // than MobileNets'.
        let rows = fig7(ModelScale::Tiny, 256);
        let max_size = |id: ModelId| {
            *rows
                .iter()
                .find(|r| r.model == id)
                .unwrap()
                .first_layer_sizes
                .iter()
                .max()
                .unwrap()
        };
        assert!(max_size(ModelId::Bert) > max_size(ModelId::MobileNetV1));
    }
}
