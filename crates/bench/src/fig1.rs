//! Figure 1: cycle-level simulation (ST) vs analytical models (AM).
//!
//! * **1a** — output-stationary systolic arrays (16²–64² PEs) vs a
//!   SCALE-Sim-style model: near match on rigid architectures.
//! * **1b** — a 128-multiplier MAERI-like architecture at 128/64/32
//!   elements/cycle vs the MAERI analytical model: the model matches at
//!   full bandwidth and underestimates (up to ~400 % in the paper) as
//!   bandwidth shrinks.
//! * **1c** — a SIGMA-like architecture at 0–90 % weight sparsity vs the
//!   SIGMA analytical model: match at 0 %, growing divergence with
//!   sparsity (up to ~92 % in the paper).

use serde::{Deserialize, Serialize};
use stonne::analytical::maeri::MaeriWorkload;
use stonne::analytical::{maeri_cycles, scalesim_os_cycles, sigma_cycles};
use stonne::core::{AcceleratorConfig, Stonne};
use stonne::models::{fig1_layers, ModelScale, NamedLayer};
use stonne::tensor::{prune_matrix_to_sparsity, CsrMatrix, Matrix, SeededRng};

/// One (layer, configuration) comparison point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Row {
    /// Layer label (`X-Y` notation of the paper).
    pub layer: String,
    /// Swept parameter value (PE-array side / bandwidth / sparsity %).
    pub param: String,
    /// Cycle count from the cycle-level simulator.
    pub stonne_cycles: u64,
    /// Cycle count from the analytical model.
    pub analytical_cycles: u64,
}

impl Fig1Row {
    /// How much the analytical model underestimates, as a percentage
    /// (positive = STONNE reports more cycles).
    pub fn divergence_pct(&self) -> f64 {
        (self.stonne_cycles as f64 / self.analytical_cycles as f64 - 1.0) * 100.0
    }
}

fn layer_operands(layer: &NamedLayer, sparsity: f64, seed: u64) -> (Matrix, Matrix) {
    let mut rng = SeededRng::new(seed);
    // Filter-wise magnitude scales so that global magnitude pruning
    // produces the irregular per-filter nnz of really pruned models.
    let mut a = Matrix::random_filterwise(layer.dims.m, layer.dims.k, 0.8, &mut rng);
    if sparsity > 0.0 {
        prune_matrix_to_sparsity(&mut a, sparsity);
    }
    let b = Matrix::random(layer.dims.k, layer.dims.n, &mut rng);
    (a, b)
}

/// Fig. 1a: OS systolic arrays of side `dims` over the eight layers.
pub fn fig1a(scale: ModelScale, dims: &[usize]) -> Vec<Fig1Row> {
    let mut rows = Vec::new();
    for layer in fig1_layers(scale) {
        let (a, b) = layer_operands(&layer, 0.0, 11);
        for &dim in dims {
            let mut sim = Stonne::new(AcceleratorConfig::tpu_like(dim)).expect("valid");
            let (_, stats) = sim.run_gemm(&layer.label, &a, &b);
            let analytical = scalesim_os_cycles(dim, layer.dims.m, layer.dims.n, layer.dims.k);
            rows.push(Fig1Row {
                layer: layer.label.clone(),
                param: format!("{dim}x{dim}"),
                stonne_cycles: stats.cycles,
                analytical_cycles: analytical,
            });
        }
    }
    rows
}

/// Fig. 1b: 128-multiplier MAERI-like architecture at the given
/// bandwidths.
pub fn fig1b(scale: ModelScale, bandwidths: &[usize]) -> Vec<Fig1Row> {
    let ms = 128;
    let mut rows = Vec::new();
    for layer in fig1_layers(scale) {
        let (a, b) = layer_operands(&layer, 0.0, 13);
        // The figure sweeps the hardware bandwidth under a FIXED layer
        // mapping (tile); re-optimizing the tile per bandwidth would
        // change the workload, not the architecture.
        let fixed_tile = stonne::core::Tile::auto(
            &stonne::core::LayerDims::from_gemm(layer.dims.m, layer.dims.n, layer.dims.k),
            ms,
        );
        for &bw in bandwidths {
            let mut sim = Stonne::new(AcceleratorConfig::maeri_like(ms, bw)).expect("valid");
            let (_, stats) = sim.run_gemm_tiled(&layer.label, &a, &b, &fixed_tile);
            let w = MaeriWorkload::from_gemm(layer.dims.m, layer.dims.n, layer.dims.k, ms);
            rows.push(Fig1Row {
                layer: layer.label.clone(),
                param: format!("bw{bw}"),
                stonne_cycles: stats.cycles,
                analytical_cycles: maeri_cycles(&w, bw),
            });
        }
    }
    rows
}

/// Fig. 1c: SIGMA-like architecture at full bandwidth over the given
/// sparsity ratios (fractions of zero weights).
pub fn fig1c(scale: ModelScale, sparsities: &[f64]) -> Vec<Fig1Row> {
    let (ms, bw) = (128, 128);
    let mut rows = Vec::new();
    for layer in fig1_layers(scale) {
        for &sp in sparsities {
            let (a, b) = layer_operands(&layer, sp, 17);
            let csr = CsrMatrix::from_dense(&a);
            let mut sim = Stonne::new(AcceleratorConfig::sigma_like(ms, bw)).expect("valid");
            let (_, stats) = sim.run_spmm(&layer.label, &csr, &b);
            rows.push(Fig1Row {
                layer: layer.label.clone(),
                param: format!("{:.0}%", sp * 100.0),
                stonne_cycles: stats.cycles,
                analytical_cycles: sigma_cycles(&csr, &b, ms, bw),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_rigid_arrays_nearly_match_analytical() {
        // The paper: "almost the same number of cycles for both".
        for row in fig1a(ModelScale::Tiny, &[16, 32]) {
            let d = row.divergence_pct().abs();
            assert!(d < 12.0, "{} {}: divergence {d:.1}%", row.layer, row.param);
        }
    }

    #[test]
    fn fig1b_full_bandwidth_matches_low_bandwidth_diverges() {
        let rows = fig1b(ModelScale::Tiny, &[128, 32]);
        let full: Vec<&Fig1Row> = rows.iter().filter(|r| r.param == "bw128").collect();
        let low: Vec<&Fig1Row> = rows.iter().filter(|r| r.param == "bw32").collect();
        let avg_full: f64 =
            full.iter().map(|r| r.divergence_pct().abs()).sum::<f64>() / full.len() as f64;
        let avg_low: f64 = low.iter().map(|r| r.divergence_pct()).sum::<f64>() / low.len() as f64;
        assert!(
            avg_full < 30.0,
            "full-bw divergence {avg_full:.1}% too large"
        );
        assert!(
            avg_low > avg_full,
            "low bandwidth ({avg_low:.1}%) must diverge more than full ({avg_full:.1}%)"
        );
    }

    #[test]
    fn fig1c_divergence_grows_with_sparsity() {
        let rows = fig1c(ModelScale::Tiny, &[0.0, 0.9]);
        let dense: f64 = rows
            .iter()
            .filter(|r| r.param == "0%")
            .map(|r| r.divergence_pct().abs())
            .sum::<f64>()
            / 8.0;
        let sparse: f64 = rows
            .iter()
            .filter(|r| r.param == "90%")
            .map(|r| r.divergence_pct())
            .sum::<f64>()
            / 8.0;
        assert!(dense < 20.0, "dense divergence {dense:.1}% too large");
        assert!(
            sparse > dense,
            "90% sparsity ({sparse:.1}%) must diverge more than dense ({dense:.1}%)"
        );
    }
}
