//! Experiment harnesses regenerating every table and figure of the STONNE
//! paper's evaluation.
//!
//! Each module returns structured rows; the `src/bin/*` binaries print
//! them in the same layout the paper reports, and the Criterion benches in
//! `benches/` exercise the same harnesses at reduced scale so
//! `cargo bench --workspace` covers every experiment.
//!
//! | Module | Regenerates |
//! |---|---|
//! | [`fig1`] | Fig. 1a/1b/1c — cycle-level vs analytical models |
//! | [`table5`] | Table V — timing validation against the published RTL counts |
//! | [`fig5`] | Fig. 5a/5b/5c — TPU vs MAERI vs SIGMA full models |
//! | [`fig6`] | Fig. 6a–d — SNAPEA vs baseline on the CNN models |
//! | [`fig7`] | Fig. 7a/7b — filter mappability and first-layer sizes |
//! | [`fig9`] | Fig. 9a/9b/9c — LFF/RDM/NS filter scheduling |
//! | [`ablations`] | design-choice sweeps (DN/RN kind, bandwidth, tiles, formats) |
//! | [`perf`] | simulator wall-clock trajectory (`BENCH.json`) |

pub mod ablations;
pub mod fig1;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig9;
pub mod perf;
pub mod table5;

// The bounded worker pool moved into the front-end crate (the parallel
// full-model runner uses it too); re-exported here so the sweeps and any
// external users keep their `stonne_bench::run_parallel` path.
pub use stonne::nn::parallel::{run_parallel, ParallelError};

/// Formats a ratio as a percentage delta string (`+23.4%`).
pub fn pct_delta(new: f64, old: f64) -> String {
    if old == 0.0 {
        return "n/a".to_owned();
    }
    format!("{:+.1}%", (new / old - 1.0) * 100.0)
}

/// Geometric mean of a non-empty slice.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    assert!(xs.iter().all(|&x| x > 0.0), "geomean needs positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_delta_formats() {
        assert_eq!(pct_delta(120.0, 100.0), "+20.0%");
        assert_eq!(pct_delta(80.0, 100.0), "-20.0%");
        assert_eq!(pct_delta(1.0, 0.0), "n/a");
    }

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}
