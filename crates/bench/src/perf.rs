//! Tracked simulator-performance benchmark (`perf` bin → `BENCH.json`).
//!
//! Times a fixed workload basket — one microbench per engine plus
//! uncached BERT and ResNet-50 full-model runs — and reports the
//! median-of-N wall-clock per entry together with the simulated cycle
//! count and engine-invocation count (which must stay invariant across
//! performance-only changes: a `cycles` drift in the trajectory means
//! behaviour changed, not just speed). The JSON schema is documented in
//! `docs/PERFORMANCE.md`; `results/BENCH.json` is the tracked trajectory.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use stonne::core::{AcceleratorConfig, Dataflow, NaturalOrder, Stonne};
use stonne::models::{zoo, ModelId, ModelScale};
use stonne::nn::params::{generate_input, ModelParams};
use stonne::nn::runner::{run_model_simulated_with, RunOptions};
use stonne::tensor::{prune_matrix_to_sparsity, CsrMatrix, Matrix, SeededRng, Tensor4};

/// Schema tag of the emitted JSON; bump on breaking layout changes.
pub const SCHEMA: &str = "stonne-bench-perf/1";

/// One timed basket entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Stable entry name (baselines are compared per name).
    pub name: String,
    /// Number of timed repetitions.
    pub reps: usize,
    /// Median wall-clock over the repetitions, in milliseconds.
    pub median_ms: f64,
    /// Fastest repetition, in milliseconds.
    pub min_ms: f64,
    /// Slowest repetition, in milliseconds.
    pub max_ms: f64,
    /// Simulated cycle count (identical every repetition; drifts only
    /// when simulated behaviour changes).
    pub cycles: u64,
    /// Engine invocations per repetition (cache is off everywhere, so
    /// this equals the offloaded-operation count).
    pub engine_invocations: u64,
    /// Peak resident set size of the process (KiB, `VmHWM`) after this
    /// entry's repetitions finished; 0 where the platform hides it.
    /// Roughly monotone along the basket, modulo the kernel's lazy
    /// split-RSS accounting (readings can lag by a few pages).
    /// Nondeterministic, so canonically zeroed.
    #[serde(default)]
    pub peak_rss_kb: u64,
    /// Median heap allocations per repetition, counted by the
    /// `alloc-count` global allocator the `perf` bin installs; 0 when
    /// the feature is off or the allocator is not installed (library
    /// tests). Canonically zeroed (allocator internals may vary).
    #[serde(default)]
    pub alloc_count: u64,
}

/// The full benchmark report serialized to `BENCH.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Worker threads available to the run
    /// (`std::thread::available_parallelism`).
    pub threads: usize,
    /// Peak resident set size of the process in KiB (`VmHWM`; 0 when
    /// the platform does not expose it).
    pub peak_rss_kb: u64,
    /// Timed entries, in fixed basket order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// Serializes the report as pretty-printed JSON.
    ///
    /// # Panics
    ///
    /// Never panics in practice (all fields are serializable).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Pretty JSON with every nondeterministic field zeroed — wall-clock
    /// timings, thread count and peak RSS. What remains (entry order,
    /// reps, `cycles`, `engine_invocations`) is deterministic for a
    /// fixed basket, so a sharded run merged with [`merge_reports`]
    /// must reproduce the single-process run's canonical bytes exactly.
    pub fn canonical_json(&self) -> String {
        let mut canonical = self.clone();
        canonical.threads = 0;
        canonical.peak_rss_kb = 0;
        for e in &mut canonical.entries {
            e.median_ms = 0.0;
            e.min_ms = 0.0;
            e.max_ms = 0.0;
            e.peak_rss_kb = 0;
            e.alloc_count = 0;
        }
        canonical.to_json()
    }

    /// Parses a report previously written by [`BenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the serde error when the text is not a valid report.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Looks up an entry by name.
    pub fn entry(&self, name: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.name == name)
    }
}

/// Basket parameters.
#[derive(Debug, Clone, Copy)]
pub struct PerfConfig {
    /// Timed repetitions per entry (median-of-N).
    pub reps: usize,
    /// Shrinks every workload (Tiny models, small microbenches) for CI
    /// smoke runs and tests; the tracked trajectory uses `quick: false`.
    pub quick: bool,
    /// Adds intra-layer tile-parallel model entries to the basket
    /// (meaningful on multi-core hosts; entries still run on one core).
    pub parallel: bool,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            reps: 3,
            quick: false,
            parallel: false,
        }
    }
}

/// Heap-allocation counting for `bench perf`, behind the `alloc-count`
/// feature. The `perf` bin installs [`alloc_counter::CountingAlloc`] as
/// its global allocator; [`allocations_so_far`] then exposes a process
/// allocation counter the basket turns into per-repetition deltas.
#[cfg(feature = "alloc-count")]
pub mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// A pass-through wrapper over [`System`] that counts every
    /// allocation-producing call (`alloc`, `alloc_zeroed`, `realloc`).
    pub struct CountingAlloc;

    // SAFETY: defers every operation verbatim to `System`; the counter
    // is a relaxed atomic side effect.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    /// Allocations made by this process so far (0 until the counting
    /// allocator is installed as the global allocator).
    pub fn allocations_so_far() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Process allocation count so far; 0 when `alloc-count` is compiled out.
pub fn allocations_so_far() -> u64 {
    #[cfg(feature = "alloc-count")]
    {
        alloc_counter::allocations_so_far()
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        0
    }
}

/// Times `body` `reps` times and folds the wall-clocks into an entry.
///
/// `body` returns `(cycles, engine_invocations)`; both must be identical
/// across repetitions (the simulator is deterministic) and the entry
/// records the last repetition's values, together with the median
/// per-repetition allocation delta and the process peak RSS at the end.
fn timed<F: FnMut() -> (u64, u64)>(name: &str, reps: usize, mut body: F) -> BenchEntry {
    assert!(reps > 0, "reps must be positive");
    let mut ms: Vec<f64> = Vec::with_capacity(reps);
    let mut allocs: Vec<u64> = Vec::with_capacity(reps);
    let mut cycles = 0;
    let mut invocations = 0;
    for _ in 0..reps {
        let allocs_before = allocations_so_far();
        let start = Instant::now();
        let (c, i) = body();
        ms.push(start.elapsed().as_secs_f64() * 1e3);
        allocs.push(allocations_so_far() - allocs_before);
        cycles = c;
        invocations = i;
    }
    ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    allocs.sort_unstable();
    let median_ms = if reps % 2 == 1 {
        ms[reps / 2]
    } else {
        (ms[reps / 2 - 1] + ms[reps / 2]) / 2.0
    };
    BenchEntry {
        name: name.to_owned(),
        reps,
        median_ms,
        min_ms: ms[0],
        max_ms: ms[reps - 1],
        cycles,
        engine_invocations: invocations,
        peak_rss_kb: peak_rss_kb(),
        alloc_count: allocs[reps / 2],
    }
}

/// Peak resident set size in KiB from `/proc/self/status` (`VmHWM`), or
/// 0 where unavailable.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

/// The flexible-engine microbench GEMM, shared by the WS and OS entries.
fn flexible_operands(quick: bool) -> (Matrix, Matrix) {
    let (m, n, k) = if quick { (16, 16, 32) } else { (128, 128, 256) };
    let mut rng = SeededRng::new(21);
    (
        Matrix::random(m, k, &mut rng),
        Matrix::random(k, n, &mut rng),
    )
}

fn micro_systolic(quick: bool, reps: usize) -> BenchEntry {
    let (dim, m, n, k) = if quick {
        (8, 16, 16, 32)
    } else {
        (64, 256, 256, 256)
    };
    let mut rng = SeededRng::new(19);
    let a = Matrix::random(m, k, &mut rng);
    let b = Matrix::random(k, n, &mut rng);
    timed("micro_systolic_os_gemm", reps, || {
        let mut sim = Stonne::new(AcceleratorConfig::tpu_like(dim)).expect("valid preset");
        let (_, stats) = sim.run_gemm("perf", &a, &b);
        (stats.cycles, stats.engine_invocations)
    })
}

fn micro_flexible(dataflow: Dataflow, name: &str, quick: bool, reps: usize) -> BenchEntry {
    let (ms, bw) = if quick { (32, 16) } else { (256, 128) };
    let (a, b) = flexible_operands(quick);
    let mut config = AcceleratorConfig::maeri_like(ms, bw);
    config.dataflow = dataflow;
    timed(name, reps, || {
        let mut sim = Stonne::new(config.clone()).expect("valid preset");
        let (_, stats) = sim.run_gemm("perf", &a, &b);
        (stats.cycles, stats.engine_invocations)
    })
}

fn micro_sparse(quick: bool, reps: usize) -> BenchEntry {
    let (ms, m, n, k) = if quick {
        (32, 16, 16, 32)
    } else {
        (256, 256, 128, 256)
    };
    let mut rng = SeededRng::new(23);
    let mut a = Matrix::random_filterwise(m, k, 0.8, &mut rng);
    prune_matrix_to_sparsity(&mut a, 0.7);
    let csr = CsrMatrix::from_dense(&a);
    let b = Matrix::random(k, n, &mut rng);
    timed("micro_sparse_spmm", reps, || {
        let mut sim = Stonne::new(AcceleratorConfig::sigma_like(ms, ms)).expect("valid preset");
        let (_, stats) = sim.run_spmm("perf", &csr, &b);
        (stats.cycles, stats.engine_invocations)
    })
}

fn micro_pool(quick: bool, reps: usize) -> BenchEntry {
    let (c, hw) = if quick { (4, 16) } else { (64, 96) };
    let mut rng = SeededRng::new(29);
    let input = Tensor4::random(1, c, hw, hw, &mut rng);
    timed("micro_maxpool", reps, || {
        let mut sim = Stonne::new(AcceleratorConfig::maeri_like(64, 32)).expect("valid preset");
        let (_, stats) = sim.run_maxpool("perf", &input, 2, 2);
        (stats.cycles, stats.engine_invocations)
    })
}

fn model_entry(
    name: &str,
    id: ModelId,
    scale: ModelScale,
    options: &RunOptions,
    reps: usize,
) -> BenchEntry {
    let model = zoo::build(id, scale);
    let params = ModelParams::generate(&model, 1);
    let input = generate_input(&model, 2);
    let config = AcceleratorConfig::maeri_like(256, 128);
    timed(name, reps, || {
        let run = run_model_simulated_with(
            &model,
            &params,
            &input,
            config.clone(),
            std::sync::Arc::new(NaturalOrder),
            options.clone(),
        )
        .expect("valid preset");
        (run.total.cycles, run.total.engine_invocations)
    })
}

/// The canonical basket roster, in report order. The optional
/// intra-layer entries come last; [`basket_names`] selects the active
/// prefix for a configuration. Shards partition *positions* in this
/// list, and [`merge_reports`] restores this order, which is what makes
/// a merged report canonically byte-identical to a monolithic one.
pub const BASKET_ORDER: [&str; 9] = [
    "micro_systolic_os_gemm",
    "micro_flexible_ws_gemm",
    "micro_flexible_os_gemm",
    "micro_sparse_spmm",
    "micro_maxpool",
    "model_bert_uncached",
    "model_resnet50_uncached",
    "model_bert_uncached_intra",
    "model_resnet50_uncached_intra",
];

/// The entry names a configuration's basket runs, in order.
pub fn basket_names(cfg: &PerfConfig) -> Vec<&'static str> {
    let count = if cfg.parallel { 9 } else { 7 };
    BASKET_ORDER[..count].to_vec()
}

/// Runs one named basket entry.
fn run_entry(name: &str, cfg: &PerfConfig) -> BenchEntry {
    let scale = if cfg.quick {
        ModelScale::Tiny
    } else {
        ModelScale::Reduced
    };
    let serial = RunOptions::new().uncached();
    let intra = RunOptions::new().uncached().intra_layer_parallel();
    let e = match name {
        "micro_systolic_os_gemm" => micro_systolic(cfg.quick, cfg.reps),
        "micro_flexible_ws_gemm" => {
            micro_flexible(Dataflow::WeightStationary, name, cfg.quick, cfg.reps)
        }
        "micro_flexible_os_gemm" => {
            micro_flexible(Dataflow::OutputStationary, name, cfg.quick, cfg.reps)
        }
        "micro_sparse_spmm" => micro_sparse(cfg.quick, cfg.reps),
        "micro_maxpool" => micro_pool(cfg.quick, cfg.reps),
        "model_bert_uncached" => model_entry(name, ModelId::Bert, scale, &serial, cfg.reps),
        "model_resnet50_uncached" => model_entry(name, ModelId::ResNet50, scale, &serial, cfg.reps),
        "model_bert_uncached_intra" => model_entry(name, ModelId::Bert, scale, &intra, cfg.reps),
        "model_resnet50_uncached_intra" => {
            model_entry(name, ModelId::ResNet50, scale, &intra, cfg.reps)
        }
        other => unreachable!("unknown basket entry {other}"),
    };
    eprintln!("perf: {} median {:.2} ms", e.name, e.median_ms);
    e
}

fn assemble(entries: Vec<BenchEntry>) -> BenchReport {
    BenchReport {
        schema: SCHEMA.to_owned(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        peak_rss_kb: peak_rss_kb(),
        entries,
    }
}

/// Runs the fixed basket and assembles the report.
///
/// Every workload runs with the simulation cache off: the basket
/// measures the *first* (uncached) simulation cost that PR 2's cache
/// cannot hide. Progress goes to stderr so stdout stays clean.
pub fn run_basket(cfg: &PerfConfig) -> BenchReport {
    assemble(
        basket_names(cfg)
            .into_iter()
            .map(|name| run_entry(name, cfg))
            .collect(),
    )
}

/// Runs shard `shard_index` of the basket split `shard_count` ways:
/// exactly the entries at basket positions with
/// `position % shard_count == shard_index`. A shard report carries only
/// its own entries; [`merge_reports`] recombines the artifacts.
///
/// # Panics
///
/// Panics when `shard_index >= shard_count`.
pub fn run_basket_shard(cfg: &PerfConfig, shard_index: usize, shard_count: usize) -> BenchReport {
    assert!(
        shard_index < shard_count && shard_count > 0,
        "shard {shard_index}/{shard_count} out of range"
    );
    assemble(
        basket_names(cfg)
            .into_iter()
            .enumerate()
            .filter(|(position, _)| position % shard_count == shard_index)
            .map(|(_, name)| run_entry(name, cfg))
            .collect(),
    )
}

/// Parses a `--shard I/N` spec, rejecting degenerate values with a
/// human-readable message: `N` must be at least 1 and `I` must be a
/// valid shard index (`I < N`).
///
/// # Errors
///
/// Returns a description of the problem when the spec is not of the
/// form `I/N`, either side fails to parse, `N` is zero, or `I >= N`.
pub fn parse_shard_spec(spec: &str) -> Result<(usize, usize), String> {
    let (i, n) = spec
        .split_once('/')
        .ok_or_else(|| format!("--shard expects I/N (got {spec:?})"))?;
    let index: usize = i
        .parse()
        .map_err(|_| format!("--shard index {i:?} is not a non-negative integer"))?;
    let count: usize = n
        .parse()
        .map_err(|_| format!("--shard count {n:?} is not a non-negative integer"))?;
    if count == 0 {
        return Err("--shard count must be at least 1 (got 0)".to_owned());
    }
    if index >= count {
        return Err(format!(
            "--shard index {index} is out of range for {count} shard(s) (need I < N)"
        ));
    }
    Ok((index, count))
}

/// Recombines shard reports into one report in canonical basket order.
///
/// The merged report's [`BenchReport::canonical_json`] is byte-identical
/// to a monolithic run of the same basket (cycle and invocation counts
/// are deterministic; timings, threads and RSS are canonically zeroed —
/// the merge keeps each shard's measured timings and takes the max of
/// the per-process `threads`/`peak_rss_kb`).
///
/// # Errors
///
/// Returns a description when the shards disagree on schema, duplicate
/// an entry, contain an unknown entry, or fail to cover the basket
/// implied by the union (the full 7-entry roster, plus the intra
/// entries when any shard carries one).
pub fn merge_reports(shards: &[BenchReport]) -> Result<BenchReport, String> {
    if shards.is_empty() {
        return Err("no shard reports to merge".to_owned());
    }
    let mut by_name: std::collections::BTreeMap<&str, &BenchEntry> = Default::default();
    for s in shards {
        if s.schema != SCHEMA {
            return Err(format!(
                "shard has schema {:?} (expected {SCHEMA:?})",
                s.schema
            ));
        }
        for e in &s.entries {
            if !BASKET_ORDER.contains(&e.name.as_str()) {
                return Err(format!("unknown basket entry {:?}", e.name));
            }
            if by_name.insert(&e.name, e).is_some() {
                return Err(format!("entry {:?} appears in two shards", e.name));
            }
        }
    }
    let parallel = by_name.keys().any(|n| n.ends_with("_intra"));
    let expected = &BASKET_ORDER[..if parallel { 9 } else { 7 }];
    if let Some(missing) = expected.iter().find(|n| !by_name.contains_key(**n)) {
        return Err(format!("entry {missing:?} is missing from the shards"));
    }
    Ok(BenchReport {
        schema: SCHEMA.to_owned(),
        threads: shards.iter().map(|s| s.threads).max().unwrap_or(1),
        peak_rss_kb: shards.iter().map(|s| s.peak_rss_kb).max().unwrap_or(0),
        entries: expected.iter().map(|n| by_name[*n].clone()).collect(),
    })
}

/// Formats a per-entry comparison of `new` against `old` (matched by
/// entry name; entries missing on either side are skipped). Flags cycle
/// drifts — a perf PR must not change simulated behaviour.
pub fn compare(new: &BenchReport, old: &BenchReport) -> String {
    let mut out = String::new();
    for e in &new.entries {
        let Some(base) = old.entry(&e.name) else {
            continue;
        };
        let speedup = if e.median_ms > 0.0 {
            base.median_ms / e.median_ms
        } else {
            f64::INFINITY
        };
        let drift = if e.cycles == base.cycles {
            ""
        } else {
            "  ** CYCLES DRIFTED **"
        };
        let allocs = if e.alloc_count > 0 && base.alloc_count > 0 {
            format!(
                "  allocs {} -> {} ({:.2}x)",
                base.alloc_count,
                e.alloc_count,
                base.alloc_count as f64 / e.alloc_count.max(1) as f64
            )
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{:<32} {:>10.2} ms -> {:>10.2} ms  ({speedup:.2}x){allocs}{drift}\n",
            e.name, base.median_ms, e.median_ms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spec_parsing_rejects_degenerate_specs() {
        assert_eq!(parse_shard_spec("0/1"), Ok((0, 1)));
        assert_eq!(parse_shard_spec("3/4"), Ok((3, 4)));
        for (spec, needle) in [
            ("4/4", "out of range"),
            ("9/2", "out of range"),
            ("0/0", "at least 1"),
            ("1/0", "at least 1"),
            ("02", "expects I/N"),
            ("", "expects I/N"),
            ("a/4", "not a non-negative integer"),
            ("1/b", "not a non-negative integer"),
            ("-1/4", "not a non-negative integer"),
        ] {
            let err = parse_shard_spec(spec).expect_err(spec);
            assert!(err.contains(needle), "{spec:?} -> {err:?}");
        }
    }

    #[test]
    fn quick_basket_round_trips_and_is_cycle_deterministic() {
        let cfg = PerfConfig {
            reps: 1,
            quick: true,
            parallel: false,
        };
        let a = run_basket(&cfg);
        let b = run_basket(&cfg);
        assert_eq!(a.schema, SCHEMA);
        assert_eq!(a.entries.len(), 7);
        for (ea, eb) in a.entries.iter().zip(&b.entries) {
            assert_eq!(ea.name, eb.name);
            assert_eq!(ea.cycles, eb.cycles, "{}", ea.name);
            assert!(ea.cycles > 0, "{}", ea.name);
            assert!(ea.median_ms >= ea.min_ms && ea.median_ms <= ea.max_ms);
        }
        let parsed = BenchReport::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn sharded_basket_merges_canonically_byte_identical() {
        let cfg = PerfConfig {
            reps: 1,
            quick: true,
            parallel: false,
        };
        let mono = run_basket(&cfg);
        for shard_count in [2usize, 3] {
            let shards: Vec<BenchReport> = (0..shard_count)
                .map(|i| {
                    let s = run_basket_shard(&cfg, i, shard_count);
                    BenchReport::from_json(&s.to_json()).expect("artifact round-trips")
                })
                .collect();
            let merged = merge_reports(&shards).expect("shards are consistent");
            assert_eq!(
                merged.canonical_json(),
                mono.canonical_json(),
                "{shard_count} shards"
            );
        }
    }

    #[test]
    fn merge_rejects_bad_shard_sets() {
        let cfg = PerfConfig {
            reps: 1,
            quick: true,
            parallel: false,
        };
        let a = run_basket_shard(&cfg, 0, 2);
        let b = run_basket_shard(&cfg, 1, 2);
        assert!(merge_reports(&[]).is_err(), "empty set");
        assert!(
            merge_reports(std::slice::from_ref(&a)).is_err(),
            "incomplete basket"
        );
        assert!(
            merge_reports(&[a.clone(), a.clone()]).is_err(),
            "duplicate entries"
        );
        let mut foreign = b.clone();
        foreign.schema = "stonne-bench-perf/0".into();
        assert!(
            merge_reports(&[a.clone(), foreign]).is_err(),
            "foreign schema"
        );
        let mut unknown = b.clone();
        unknown.entries[0].name = "micro_unknown".into();
        assert!(
            merge_reports(&[a.clone(), unknown]).is_err(),
            "unknown entry"
        );
        assert!(merge_reports(&[a, b]).is_ok());
    }

    #[test]
    fn basket_names_track_the_parallel_flag() {
        let base = PerfConfig {
            reps: 1,
            quick: true,
            parallel: false,
        };
        assert_eq!(basket_names(&base).len(), 7);
        let par = PerfConfig {
            parallel: true,
            ..base
        };
        assert_eq!(basket_names(&par).len(), 9);
        assert!(basket_names(&par).ends_with(&["model_resnet50_uncached_intra"]));
    }

    #[test]
    fn compare_reports_speedups_and_cycle_drift() {
        let mk = |ms: f64, cycles: u64| BenchReport {
            schema: SCHEMA.to_owned(),
            threads: 1,
            peak_rss_kb: 0,
            entries: vec![BenchEntry {
                name: "x".into(),
                reps: 1,
                median_ms: ms,
                min_ms: ms,
                max_ms: ms,
                cycles,
                engine_invocations: 1,
                peak_rss_kb: 0,
                alloc_count: 0,
            }],
        };
        let same = compare(&mk(50.0, 10), &mk(100.0, 10));
        assert!(same.contains("2.00x"), "{same}");
        assert!(!same.contains("DRIFTED"), "{same}");
        let drift = compare(&mk(50.0, 11), &mk(100.0, 10));
        assert!(drift.contains("DRIFTED"), "{drift}");
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        }
    }
}
