//! Regenerates Figure 1a: STONNE (ST) vs the SCALE-Sim-style analytical
//! model (AM) on output-stationary systolic arrays of 16²/32²/64² PEs.
//!
//! Usage: `cargo run -p stonne-bench --release --bin fig1a [tiny|reduced]`

use stonne::models::ModelScale;
use stonne_bench::fig1::fig1a;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("reduced") => ModelScale::Reduced,
        _ => ModelScale::Tiny,
    };
    println!("Figure 1a — OS systolic array: cycle-level (ST) vs analytical (AM)");
    println!(
        "{:<6} {:>8} {:>12} {:>12} {:>8}",
        "layer", "array", "ST cycles", "AM cycles", "diff"
    );
    for row in fig1a(scale, &[16, 32, 64]) {
        println!(
            "{:<6} {:>8} {:>12} {:>12} {:>7.2}%",
            row.layer,
            row.param,
            row.stonne_cycles,
            row.analytical_cycles,
            row.divergence_pct()
        );
    }
}
