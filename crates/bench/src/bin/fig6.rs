//! Regenerates Figure 6: SNAPEA vs the baseline on the four CNN models —
//! speedup (6a), normalized energy (6b), operations (6c), memory (6d).
//!
//! Usage: `cargo run -p stonne-bench --release --bin fig6 [tiny|reduced] [images]`

use std::process::ExitCode;
use stonne::models::ModelScale;
use stonne_bench::fig6::fig6;

fn main() -> ExitCode {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => ModelScale::Tiny,
        _ => ModelScale::Reduced,
    };
    let images: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    eprintln!("running 4 CNNs x 2 modes x {images} images at {scale:?} scale …");
    let rows = match fig6(scale, images) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("\nFigure 6 — SNAPEA vs baseline (64 PEs, 64 elems/cycle)");
    println!(
        "{:<14} {:>9} {:>12} {:>10} {:>10}",
        "model", "speedup", "norm energy", "ops red.", "mem red."
    );
    let (mut sp, mut en, mut op, mut me) = (0.0, 0.0, 0.0, 0.0);
    for r in &rows {
        println!(
            "{:<14} {:>8.2}x {:>12.3} {:>9.1}% {:>9.1}%",
            r.model.name(),
            r.speedup(),
            r.normalized_energy(),
            r.ops_reduction() * 100.0,
            r.mem_reduction() * 100.0
        );
        sp += r.speedup();
        en += r.normalized_energy();
        op += r.ops_reduction();
        me += r.mem_reduction();
    }
    let n = rows.len() as f64;
    println!(
        "{:<14} {:>8.2}x {:>12.3} {:>9.1}% {:>9.1}%   (paper: 1.35x, 0.79, 30%, 16%)",
        "average",
        sp / n,
        en / n,
        op / n * 100.0,
        me / n * 100.0
    );
    ExitCode::SUCCESS
}
