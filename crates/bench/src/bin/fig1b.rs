//! Regenerates Figure 1b: a 128-multiplier MAERI-like architecture vs the
//! MAERI analytical model at 128/64/32 elements/cycle bandwidth.
//!
//! Usage: `cargo run -p stonne-bench --release --bin fig1b [tiny|reduced]`

use stonne::models::ModelScale;
use stonne_bench::fig1::fig1b;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("reduced") => ModelScale::Reduced,
        _ => ModelScale::Tiny,
    };
    println!("Figure 1b — MAERI-like (128 MS): cycle-level (ST) vs analytical (AM)");
    println!(
        "{:<6} {:>8} {:>12} {:>12} {:>10}",
        "layer", "bw", "ST cycles", "AM cycles", "AM under"
    );
    for row in fig1b(scale, &[128, 64, 32]) {
        println!(
            "{:<6} {:>8} {:>12} {:>12} {:>9.1}%",
            row.layer,
            row.param,
            row.stonne_cycles,
            row.analytical_cycles,
            row.divergence_pct()
        );
    }
}
