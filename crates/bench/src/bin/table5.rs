//! Regenerates Table V: timing validation against the published RTL cycle
//! counts of MAERI (BSV), SIGMA (Verilog) and the OS-dataflow TPU.
//!
//! Usage: `cargo run -p stonne-bench --release --bin table5`

use stonne_bench::table5::table5;

fn main() {
    println!("Table V — timing validation vs published RTL cycle counts");
    println!(
        "{:<9} {:>5} {:>5} {:>5} {:>10} {:>12} {:>10} {:>9} {:>11}",
        "layer", "M", "N", "K", "RTL", "paper-ST", "ours", "our err", "paper err"
    );
    let rows = table5();
    let mut total = 0.0;
    for r in &rows {
        println!(
            "{:<9} {:>5} {:>5} {:>5} {:>10} {:>12} {:>10} {:>8.2}% {:>10.2}%",
            r.name,
            r.m,
            r.n,
            r.k,
            r.rtl_cycles,
            r.paper_stonne_cycles,
            r.our_cycles,
            r.error_vs_rtl_pct(),
            r.paper_error_pct()
        );
        total += r.error_vs_rtl_pct();
    }
    println!(
        "average error vs RTL: {:.2}% (paper: 1.53%)",
        total / rows.len() as f64
    );
}
