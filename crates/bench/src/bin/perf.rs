//! Simulator-performance benchmark: times the fixed workload basket
//! (per-engine microbenches + uncached BERT/ResNet-50 full-model runs)
//! and emits the canonical `BENCH.json` perf trajectory.
//!
//! Usage:
//! `cargo run -p stonne-bench --release --bin perf --
//!    [--out PATH] [--reps N] [--quick] [--parallel] [--baseline PATH]
//!    [--shard I/N]`
//! `cargo run -p stonne-bench --release --bin perf -- merge
//!    [--out PATH] SHARD.json...`
//!
//! `--out` writes the JSON report (stdout otherwise); `--reps` sets the
//! median-of-N repetition count (default 3); `--quick` shrinks every
//! workload for smoke runs; `--parallel` adds the intra-layer
//! tile-parallel model entries; `--baseline` prints a per-entry speedup
//! comparison against a previous report in the same schema. `--shard
//! I/N` times only the basket entries at positions with `pos % N == I`
//! and `perf merge` recombines shard artifacts into a report whose
//! cycle counts and entry order are byte-identical (canonically) to a
//! single-process run.

use std::process::ExitCode;
use stonne_bench::perf::{
    compare, merge_reports, parse_shard_spec, run_basket, run_basket_shard, BenchReport, PerfConfig,
};

// Count heap allocations so each entry can report a per-repetition
// allocation figure alongside its wall-clock.
#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: stonne_bench::perf::alloc_counter::CountingAlloc =
    stonne_bench::perf::alloc_counter::CountingAlloc;

fn run_merge(args: &[String]) -> ExitCode {
    let mut out = None;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => {
                    eprintln!("error: --out needs a value");
                    return ExitCode::from(2);
                }
            },
            p => paths.push(p.to_owned()),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: perf merge [--out PATH] SHARD.json...");
        return ExitCode::from(2);
    }
    let mut shards = Vec::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read shard {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match BenchReport::from_json(&text) {
            Ok(s) => shards.push(s),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let report = match merge_reports(&shards) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: merge failed: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "perf: merged {} shards into {} entries",
        shards.len(),
        report.entries.len()
    );
    let json = report.to_json();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("error: --out {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("perf: report written to {path}");
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("merge") {
        return run_merge(&args[1..]);
    }
    let value_of = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            })
        })
    };
    let reps = match value_of("--reps").map(|v| v.parse::<usize>()) {
        None => 3,
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("error: --reps needs a positive integer");
            return ExitCode::from(2);
        }
    };
    let shard = match value_of("--shard") {
        None => None,
        Some(spec) => match parse_shard_spec(&spec) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let cfg = PerfConfig {
        reps,
        quick: args.iter().any(|a| a == "--quick"),
        parallel: args.iter().any(|a| a == "--parallel"),
    };
    eprintln!(
        "perf: timing basket (reps {}, quick {}, parallel {}) …",
        cfg.reps, cfg.quick, cfg.parallel
    );
    let report = match shard {
        Some((i, n)) => {
            eprintln!("perf: shard {i}/{n} of the basket");
            run_basket_shard(&cfg, i, n)
        }
        None => run_basket(&cfg),
    };
    let json = report.to_json();

    if let Some(path) = value_of("--baseline") {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: --baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match BenchReport::from_json(&text) {
            Ok(base) => print!("{}", compare(&report, &base)),
            Err(e) => {
                eprintln!("error: --baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match value_of("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("error: --out {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("perf: report written to {path}");
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}
