//! Simulator-performance benchmark: times the fixed workload basket
//! (per-engine microbenches + uncached BERT/ResNet-50 full-model runs)
//! and emits the canonical `BENCH.json` perf trajectory.
//!
//! Usage:
//! `cargo run -p stonne-bench --release --bin perf --
//!    [--out PATH] [--reps N] [--quick] [--parallel] [--baseline PATH]`
//!
//! `--out` writes the JSON report (stdout otherwise); `--reps` sets the
//! median-of-N repetition count (default 3); `--quick` shrinks every
//! workload for smoke runs; `--parallel` adds the intra-layer
//! tile-parallel model entries; `--baseline` prints a per-entry speedup
//! comparison against a previous report in the same schema.

use std::process::ExitCode;
use stonne_bench::perf::{compare, run_basket, BenchReport, PerfConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            })
        })
    };
    let reps = match value_of("--reps").map(|v| v.parse::<usize>()) {
        None => 3,
        Some(Ok(n)) if n > 0 => n,
        Some(_) => {
            eprintln!("error: --reps needs a positive integer");
            return ExitCode::from(2);
        }
    };
    let cfg = PerfConfig {
        reps,
        quick: args.iter().any(|a| a == "--quick"),
        parallel: args.iter().any(|a| a == "--parallel"),
    };
    eprintln!(
        "perf: timing basket (reps {}, quick {}, parallel {}) …",
        cfg.reps, cfg.quick, cfg.parallel
    );
    let report = run_basket(&cfg);
    let json = report.to_json();

    if let Some(path) = value_of("--baseline") {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: --baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match BenchReport::from_json(&text) {
            Ok(base) => print!("{}", compare(&report, &base)),
            Err(e) => {
                eprintln!("error: --baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match value_of("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("error: --out {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("perf: report written to {path}");
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}
