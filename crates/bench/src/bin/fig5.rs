//! Regenerates Figure 5: TPU-like vs MAERI-like vs SIGMA-like running the
//! complete inference of the seven Table I models — cycles (5a), energy
//! breakdown (5b) and area (5c).
//!
//! Usage: `cargo run -p stonne-bench --release --bin fig5 [tiny|reduced]`

use stonne::models::{ModelId, ModelScale};
use stonne_bench::fig5::{fig5, fig5c_areas, Arch};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => ModelScale::Tiny,
        _ => ModelScale::Reduced,
    };
    eprintln!("running 7 models x 3 architectures at {scale:?} scale …");
    let rows = fig5(scale, &ModelId::ALL);

    println!("\nFigure 5a — inference cycles");
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "model", "TPU", "MAERI", "SIGMA", "MAERIvsTPU", "SIGMAvsMAERI"
    );
    for model in ModelId::ALL {
        let get = |arch: Arch| {
            rows.iter()
                .find(|r| r.model == model && r.arch == arch)
                .unwrap()
        };
        let (t, m, s) = (get(Arch::Tpu), get(Arch::Maeri), get(Arch::Sigma));
        println!(
            "{:<16} {:>14} {:>14} {:>14} {:>11.2}x {:>11.2}x",
            model.name(),
            t.cycles,
            m.cycles,
            s.cycles,
            t.cycles as f64 / m.cycles as f64,
            m.cycles as f64 / s.cycles as f64
        );
    }

    println!("\nFigure 5b — energy (µJ) with component breakdown GB/DN/MN/RN");
    println!(
        "{:<16} {:<8} {:>10} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "model", "arch", "total", "GB", "DN", "MN", "RN", "RN%"
    );
    for r in &rows {
        let e = &r.energy;
        println!(
            "{:<16} {:<8} {:>10.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>6.1}%",
            r.model.name(),
            r.arch.name(),
            e.total_uj(),
            e.gb_uj,
            e.dn_uj,
            e.mn_uj,
            e.rn_uj,
            e.rn_fraction() * 100.0
        );
    }

    println!("\nFigure 5c — area (µm²)");
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "arch", "total", "GB", "DN", "MN", "RN", "GB%"
    );
    for (arch, a) in fig5c_areas() {
        println!(
            "{:<8} {:>12.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>6.1}%",
            arch.name(),
            a.total(),
            a.gb_um2,
            a.dn_um2,
            a.mn_um2,
            a.rn_um2,
            a.gb_fraction() * 100.0
        );
    }
}
