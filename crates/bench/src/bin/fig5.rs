//! Regenerates Figure 5: TPU-like vs MAERI-like vs SIGMA-like running the
//! complete inference of the seven Table I models — cycles (5a), energy
//! breakdown (5b) and area (5c).
//!
//! Usage:
//! `cargo run -p stonne-bench --release --bin fig5 -- [tiny|reduced]
//!    [--cycle-breakdown] [--trace PATH] [--store DIR]`
//!
//! `--cycle-breakdown` appends the per-phase cycle split of every row;
//! `--trace PATH` additionally records one representative inference
//! (SqueezeNet × SIGMA) and writes its Chrome-trace timeline to PATH
//! (open in `ui.perfetto.dev`); `--store DIR` backs the sweep's cache
//! with the persistent result store under DIR, so regenerating the
//! figure replays earlier layer simulations instead of re-running them
//! (see `docs/SERVING.md` for the store's layout and invalidation).

use std::process::ExitCode;
use stonne::core::{chrome_trace_json, DiskStore, SimCache};
use stonne::models::{ModelId, ModelScale};
use stonne_bench::fig5::{fig5_with_cache, fig5c_areas, run_one_traced, Arch};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "tiny") {
        ModelScale::Tiny
    } else {
        ModelScale::Reduced
    };
    let breakdown = args.iter().any(|a| a == "--cycle-breakdown");
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| match args.get(i + 1) {
            Some(p) => p.clone(),
            None => {
                eprintln!("error: --trace needs a file path");
                std::process::exit(2);
            }
        });
    let store = args
        .iter()
        .position(|a| a == "--store")
        .map(|i| match args.get(i + 1) {
            Some(dir) => match DiskStore::open(dir) {
                Ok(store) => store.scoped(),
                Err(e) => {
                    eprintln!("error: --store {dir}: {e}");
                    std::process::exit(2);
                }
            },
            None => {
                eprintln!("error: --store needs a directory");
                std::process::exit(2);
            }
        });
    let mut cache = SimCache::new();
    if let Some(s) = &store {
        cache = cache.backed_by(s.clone());
        eprintln!(
            "store: {} ({} entries, fingerprint {})",
            s.dir().display(),
            s.len(),
            s.fingerprint()
        );
    }
    eprintln!("running 7 models x 3 architectures at {scale:?} scale …");
    let rows = match fig5_with_cache(scale, &ModelId::ALL, &cache) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(s) = &store {
        let c = s.counters();
        eprintln!(
            "store: {} hits / {} misses / {} writes / {} corrupt",
            c.hits, c.misses, c.writes, c.corrupt
        );
    }

    println!("\nFigure 5a — inference cycles");
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "model", "TPU", "MAERI", "SIGMA", "MAERIvsTPU", "SIGMAvsMAERI"
    );
    for model in ModelId::ALL {
        let get = |arch: Arch| {
            rows.iter()
                .find(|r| r.model == model && r.arch == arch)
                .unwrap()
        };
        let (t, m, s) = (get(Arch::Tpu), get(Arch::Maeri), get(Arch::Sigma));
        println!(
            "{:<16} {:>14} {:>14} {:>14} {:>11.2}x {:>11.2}x",
            model.name(),
            t.cycles,
            m.cycles,
            s.cycles,
            t.cycles as f64 / m.cycles as f64,
            m.cycles as f64 / s.cycles as f64
        );
    }

    println!("\nFigure 5b — energy (µJ) with component breakdown GB/DN/MN/RN");
    println!(
        "{:<16} {:<8} {:>10} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "model", "arch", "total", "GB", "DN", "MN", "RN", "RN%"
    );
    for r in &rows {
        let e = &r.energy;
        println!(
            "{:<16} {:<8} {:>10.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>6.1}%",
            r.model.name(),
            r.arch.name(),
            e.total_uj(),
            e.gb_uj,
            e.dn_uj,
            e.mn_uj,
            e.rn_uj,
            e.rn_fraction() * 100.0
        );
    }

    println!("\nFigure 5c — area (µm²)");
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "arch", "total", "GB", "DN", "MN", "RN", "GB%"
    );
    for (arch, a) in fig5c_areas() {
        println!(
            "{:<8} {:>12.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>6.1}%",
            arch.name(),
            a.total(),
            a.gb_um2,
            a.dn_um2,
            a.mn_um2,
            a.rn_um2,
            a.gb_fraction() * 100.0
        );
    }

    if breakdown {
        println!("\nCycle breakdown — fill / steady / drain / dram / fifo / reduction");
        for r in &rows {
            let b = &r.breakdown;
            println!(
                "{:<16} {:<8} {:>12} {:>12} {:>10} {:>10} {:>12} {:>10}",
                r.model.name(),
                r.arch.name(),
                b.fill_cycles,
                b.steady_cycles,
                b.drain_cycles,
                b.dram_stall_cycles,
                b.fifo_stall_cycles,
                b.reduction_stall_cycles
            );
        }
    }

    if let Some(path) = trace_path {
        eprintln!("tracing SqueezeNet x SIGMA at {scale:?} scale …");
        let (row, trace) = run_one_traced(ModelId::SqueezeNet, Arch::Sigma, scale, 21);
        if let Err(e) = std::fs::write(&path, chrome_trace_json(&trace)) {
            eprintln!("error: --trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "trace: {} events over {} cycles written to {path} (open in ui.perfetto.dev)",
            trace.events().len(),
            row.cycles
        );
    }
    ExitCode::SUCCESS
}
