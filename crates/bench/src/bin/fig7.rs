//! Regenerates Figure 7: average whole filters mappable on a 256-MS
//! flexible sparse architecture (7a) and first-layer filter sizes (7b).
//!
//! Usage: `cargo run -p stonne-bench --release --bin fig7 [tiny|reduced]`

use stonne::models::ModelScale;
use stonne_bench::fig7::fig7;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("tiny") => ModelScale::Tiny,
        _ => ModelScale::Reduced,
    };
    let rows = fig7(scale, 256);
    println!("Figure 7a — avg. whole filters mappable on 256 MS (weight-pruned)");
    println!("{:<16} {:>12}", "model", "avg filters");
    for r in &rows {
        println!("{:<16} {:>12.1}", r.model.name(), r.avg_filters);
    }
    println!("\nFigure 7b — first-layer filter sizes (nnz, capped at 256)");
    for r in &rows {
        let sizes = &r.first_layer_sizes;
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        let avg: f64 = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        println!(
            "{:<16} {:>4} filters, size min {:>4} avg {:>6.1} max {:>4}",
            r.model.name(),
            sizes.len(),
            min,
            avg,
            max
        );
    }
}
