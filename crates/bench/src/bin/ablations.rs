//! Runs the design-choice ablation sweeps (beyond the paper's figures):
//! RN kind, bandwidth, tile shape, and sparse operand format.
//!
//! Usage: `cargo run -p stonne-bench --release --bin ablations`

use stonne_bench::ablations::all_ablations;

fn main() {
    println!("Design-choice ablations");
    println!(
        "{:<15} {:<12} {:>12} {:>12}",
        "sweep", "variant", "cycles", "util"
    );
    for r in all_ablations() {
        println!(
            "{:<15} {:<12} {:>12} {:>11.1}%",
            r.sweep,
            r.variant,
            r.cycles,
            r.utilization * 100.0
        );
    }
}
