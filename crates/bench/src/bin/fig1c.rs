//! Regenerates Figure 1c: a SIGMA-like architecture at full bandwidth vs
//! the SIGMA analytical model, sweeping weight sparsity 0–90 %.
//!
//! Usage: `cargo run -p stonne-bench --release --bin fig1c [tiny|reduced]`

use stonne::models::ModelScale;
use stonne_bench::fig1::fig1c;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("reduced") => ModelScale::Reduced,
        _ => ModelScale::Tiny,
    };
    println!("Figure 1c — SIGMA-like (128 MS): cycle-level (ST) vs analytical (AM)");
    println!(
        "{:<6} {:>8} {:>12} {:>12} {:>10}",
        "layer", "sparsity", "ST cycles", "AM cycles", "AM under"
    );
    for row in fig1c(scale, &[0.0, 0.3, 0.6, 0.9]) {
        println!(
            "{:<6} {:>8} {:>12} {:>12} {:>9.1}%",
            row.layer,
            row.param,
            row.stonne_cycles,
            row.analytical_cycles,
            row.divergence_pct()
        );
    }
}
