//! Regenerates Figure 9: LFF / RDM / NS filter scheduling on a 256-MS
//! SIGMA-like architecture — normalized runtime (9a), energy (9b), and
//! the per-layer ResNet-50 sensitivity analysis (9c, pass `--layers`).
//!
//! Usage: `cargo run -p stonne-bench --release --bin fig9 [tiny|reduced] [--layers]`

use std::process::ExitCode;
use stonne::models::{ModelId, ModelScale};
use stonne_bench::fig9::{fig9, fig9c, Policy};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "tiny") {
        ModelScale::Tiny
    } else {
        ModelScale::Reduced
    };
    if args.iter().any(|a| a == "--layers") {
        println!("Figure 9c — per-layer LFF sensitivity, ResNet-50 (sorted by gain)");
        println!(
            "{:<22} {:>12} {:>12} {:>9} {:>9}",
            "layer", "NS cycles", "LFF cycles", "runtime", "util Δ"
        );
        for r in fig9c(scale) {
            println!(
                "{:<22} {:>12} {:>12} {:>8.1}% {:>8.1}%",
                r.name,
                r.baseline_cycles,
                r.scheduled_cycles,
                r.runtime_gain() * 100.0,
                r.utilization_gain() * 100.0
            );
        }
        return ExitCode::SUCCESS;
    }
    eprintln!("running 7 models x 3 policies at {scale:?} scale …");
    let rows = match fig9(scale, &ModelId::ALL) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("\nFigure 9a/9b — runtime and energy normalized to NS (256-MS SIGMA-like)");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "model", "NS cyc", "RDM/NS", "LFF/NS", "NS µJ", "RDM E", "LFF E"
    );
    for model in ModelId::ALL {
        let get = |p: Policy| {
            rows.iter()
                .find(|r| r.model == model && r.policy == p)
                .unwrap()
        };
        let (ns, rdm, lff) = (get(Policy::Ns), get(Policy::Rdm), get(Policy::Lff));
        println!(
            "{:<16} {:>10} {:>10.3} {:>10.3} {:>10.2} {:>9.3} {:>9.3}",
            model.name(),
            ns.cycles,
            rdm.cycles as f64 / ns.cycles as f64,
            lff.cycles as f64 / ns.cycles as f64,
            ns.energy_uj,
            rdm.energy_uj / ns.energy_uj,
            lff.energy_uj / ns.energy_uj
        );
    }
    ExitCode::SUCCESS
}
