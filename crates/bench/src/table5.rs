//! Table V: timing validation of the simulator against the cycle counts
//! of the published RTL implementations (MAERI BSV, SIGMA Verilog, the
//! SCALE-Sim TPU RTL), using the exact microbenchmark dimensions and
//! accelerator configurations of the paper.

use serde::{Deserialize, Serialize};
use stonne::core::{AcceleratorConfig, Stonne, Tile};
use stonne::models::workloads::ValidationDesign;
use stonne::models::{table5_microbenchmarks, Microbenchmark};
use stonne::tensor::{Conv2dGeom, CsrMatrix, Matrix, SeededRng, Tensor4};

/// One validation row: our measured cycles against the published counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Microbenchmark name (`MAERI-1` … `TPU-4`).
    pub name: String,
    /// GEMM `M`.
    pub m: usize,
    /// GEMM `N`.
    pub n: usize,
    /// GEMM `K`.
    pub k: usize,
    /// Cycles of the RTL ground truth (published).
    pub rtl_cycles: u64,
    /// Cycles the original STONNE reported (published).
    pub paper_stonne_cycles: u64,
    /// Cycles of this reproduction.
    pub our_cycles: u64,
}

impl Table5Row {
    /// Our error against the RTL ground truth, in percent.
    pub fn error_vs_rtl_pct(&self) -> f64 {
        (self.our_cycles as f64 - self.rtl_cycles as f64).abs() / self.rtl_cycles as f64 * 100.0
    }

    /// The original STONNE's error against the RTL, in percent.
    pub fn paper_error_pct(&self) -> f64 {
        (self.paper_stonne_cycles as f64 - self.rtl_cycles as f64).abs() / self.rtl_cycles as f64
            * 100.0
    }
}

/// Runs one microbenchmark on the configuration Table V prescribes:
/// MAERI-like 32 MS / 4 elements/cycle with the published
/// `Tile(3,3,1,…,3,1)` (the MAERI rows are 3×3 convolutions); SIGMA-like
/// 128 MS / 128 elements/cycle; TPU-like 16×16 full bandwidth.
pub fn run_microbenchmark(mb: &Microbenchmark, seed: u64) -> u64 {
    let mut rng = SeededRng::new(seed);
    match mb.design {
        ValidationDesign::Maeri => {
            // M = K filters, K = 3·3·C taps, N = X'·Y' outputs (square).
            let c = mb.dims.k / 9;
            let xp = (mb.dims.n as f64).sqrt().round() as usize;
            assert_eq!(xp * xp, mb.dims.n, "MAERI rows are square convs");
            let geom = Conv2dGeom::new(c, mb.dims.m, 3, 3, 1, 0, 1);
            let input = Tensor4::random(1, c, xp + 2, xp + 2, &mut rng);
            let weights = Tensor4::random(mb.dims.m, c, 3, 3, &mut rng);
            let tile = Tile {
                t_r: 3,
                t_s: 3,
                t_c: 1,
                t_g: 1,
                t_k: 1,
                t_n: 1,
                t_xp: 3,
                t_yp: 1,
            };
            let mut sim = Stonne::new(AcceleratorConfig::maeri_like(32, 4)).expect("valid");
            let (_, stats) = sim.run_conv(mb.name, &input, &weights, &geom, Some(tile));
            stats.cycles
        }
        ValidationDesign::Sigma => {
            let a = Matrix::random(mb.dims.m, mb.dims.k, &mut rng);
            let b = Matrix::random(mb.dims.k, mb.dims.n, &mut rng);
            let mut sim = Stonne::new(AcceleratorConfig::sigma_like(128, 128)).expect("valid");
            let (_, stats) = sim.run_spmm(mb.name, &CsrMatrix::from_dense(&a), &b);
            stats.cycles
        }
        ValidationDesign::Tpu => {
            let a = Matrix::random(mb.dims.m, mb.dims.k, &mut rng);
            let b = Matrix::random(mb.dims.k, mb.dims.n, &mut rng);
            let mut sim = Stonne::new(AcceleratorConfig::tpu_like(16)).expect("valid");
            let (_, stats) = sim.run_gemm(mb.name, &a, &b);
            stats.cycles
        }
    }
}

/// Reproduces the whole table.
pub fn table5() -> Vec<Table5Row> {
    table5_microbenchmarks()
        .iter()
        .map(|mb| Table5Row {
            name: mb.name.to_owned(),
            m: mb.dims.m,
            n: mb.dims.n,
            k: mb.dims.k,
            rtl_cycles: mb.rtl_cycles,
            paper_stonne_cycles: mb.paper_stonne_cycles,
            our_cycles: run_microbenchmark(mb, 7),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rows_within_validation_band() {
        // Without the authors' RTL we cannot reach their 1.53% average,
        // but every row must stay within 21% of the RTL ground truth and
        // the average within 6% (MAERI-3 is the outlier; see
        // EXPERIMENTS.md).
        let rows = table5();
        assert_eq!(rows.len(), 11);
        let mut total = 0.0;
        for row in &rows {
            let e = row.error_vs_rtl_pct();
            assert!(
                e <= 21.0,
                "{}: error {e:.1}% (sim {} vs rtl {})",
                row.name,
                row.our_cycles,
                row.rtl_cycles
            );
            total += e;
        }
        let avg = total / rows.len() as f64;
        assert!(avg <= 6.0, "average error {avg:.2}% too high");
    }

    #[test]
    fn tpu_rows_are_exact() {
        for row in table5().iter().filter(|r| r.name.starts_with("TPU")) {
            assert_eq!(row.our_cycles, row.rtl_cycles, "{}", row.name);
        }
    }

    #[test]
    fn cycles_are_data_independent_for_dense_rows() {
        // Dense validation runs must not depend on the RNG seed.
        for mb in table5_microbenchmarks() {
            let a = run_microbenchmark(&mb, 1);
            let b = run_microbenchmark(&mb, 2);
            assert_eq!(a, b, "{} cycles vary with data", mb.name);
        }
    }
}
