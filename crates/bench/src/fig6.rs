//! Figure 6: SNAPEA vs the baseline on the four purely-CNN models —
//! speedup (6a), normalized energy (6b), operation count (6c) and memory
//! accesses (6d).
//!
//! Paper setup: 64 multipliers/adders, 64 elements/cycle; 20 validation
//! images (we use seeded synthetic images — non-negative, like real
//! pixel data).
//!
//! Unlike fig5/fig9, this sweep does **not** use the layer-simulation
//! cache: SNAPEA's early termination makes every layer's cycle count
//! depend on the *values* of its activations (each image terminates
//! accumulations at different points), so geometry-keyed memoization
//! would be unsound here.

use crate::{run_parallel, ParallelError};
use serde::{Deserialize, Serialize};
use stonne::models::{zoo, ModelId, ModelScale};
use stonne::nn::params::{generate_input, ModelParams};
use stonne::snapea::{run_model_snapea, SnapeaConfig, SnapeaMode};

/// One model's SNAPEA-vs-baseline measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// CNN model.
    pub model: ModelId,
    /// Baseline cycles.
    pub baseline_cycles: u64,
    /// SNAPEA cycles.
    pub snapea_cycles: u64,
    /// Baseline energy (µJ).
    pub baseline_energy_uj: f64,
    /// SNAPEA energy (µJ).
    pub snapea_energy_uj: f64,
    /// Baseline operations (Fig. 6c).
    pub baseline_ops: u64,
    /// SNAPEA operations.
    pub snapea_ops: u64,
    /// Baseline memory accesses (Fig. 6d).
    pub baseline_mem: u64,
    /// SNAPEA memory accesses.
    pub snapea_mem: u64,
}

impl Fig6Row {
    /// Speedup of SNAPEA over the baseline (Fig. 6a).
    pub fn speedup(&self) -> f64 {
        self.baseline_cycles as f64 / self.snapea_cycles as f64
    }

    /// Energy of SNAPEA normalized to the baseline (Fig. 6b).
    pub fn normalized_energy(&self) -> f64 {
        self.snapea_energy_uj / self.baseline_energy_uj
    }

    /// Fractional reduction of operations (Fig. 6c).
    pub fn ops_reduction(&self) -> f64 {
        1.0 - self.snapea_ops as f64 / self.baseline_ops as f64
    }

    /// Fractional reduction of memory accesses (Fig. 6d).
    pub fn mem_reduction(&self) -> f64 {
        1.0 - self.snapea_mem as f64 / self.baseline_mem as f64
    }
}

/// Runs one CNN under both SNAPEA modes, averaging over `images` seeded
/// input samples.
pub fn run_one(model_id: ModelId, scale: ModelScale, images: usize) -> Fig6Row {
    let model = zoo::build(model_id, scale);
    // Dense weights, as in the SNAPEA paper (its optimization is
    // orthogonal to pruning), with the mild negative shift that restores
    // the pre-ReLU negativity of trained CNNs (see
    // `ModelParams::generate_relu_biased`).
    let params = ModelParams::generate_relu_biased(&model, 31, 0.0, 0.1);
    let mut row = Fig6Row {
        model: model_id,
        baseline_cycles: 0,
        snapea_cycles: 0,
        baseline_energy_uj: 0.0,
        snapea_energy_uj: 0.0,
        baseline_ops: 0,
        snapea_ops: 0,
        baseline_mem: 0,
        snapea_mem: 0,
    };
    for img in 0..images {
        let input = generate_input(&model, 40 + img as u64);
        let base = run_model_snapea(
            &model,
            &params,
            &input,
            SnapeaConfig::paper(SnapeaMode::Baseline),
        );
        let snap = run_model_snapea(
            &model,
            &params,
            &input,
            SnapeaConfig::paper(SnapeaMode::SnapeaLike),
        );
        row.baseline_cycles += base.total.cycles;
        row.snapea_cycles += snap.total.cycles;
        row.baseline_energy_uj += base.energy_uj;
        row.snapea_energy_uj += snap.energy_uj;
        row.baseline_ops += base.operations;
        row.snapea_ops += snap.operations;
        row.baseline_mem += base.memory_accesses;
        row.snapea_mem += snap.memory_accesses;
    }
    row
}

/// Runs the full Fig. 6 sweep over the four CNN models on a
/// core-count-capped worker pool.
///
/// # Errors
///
/// Returns [`ParallelError`] when a simulation panics.
pub fn fig6(scale: ModelScale, images: usize) -> Result<Vec<Fig6Row>, ParallelError> {
    let tasks: Vec<_> = ModelId::CNN_MODELS
        .iter()
        .map(|&m| move || run_one(m, scale, images))
        .collect();
    run_parallel(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapea_improves_every_metric_on_alexnet() {
        let row = run_one(ModelId::AlexNet, ModelScale::Tiny, 1);
        assert!(row.speedup() > 1.0, "speedup {:.3}", row.speedup());
        assert!(row.normalized_energy() < 1.0);
        assert!(row.ops_reduction() > 0.0);
        assert!(row.mem_reduction() >= 0.0);
    }

    #[test]
    fn ops_shrink_more_than_memory() {
        // The paper's Fig. 6c vs 6d relationship (−30% ops vs −16% mem).
        let row = run_one(ModelId::SqueezeNet, ModelScale::Tiny, 1);
        assert!(
            row.ops_reduction() > row.mem_reduction(),
            "ops {:.2} vs mem {:.2}",
            row.ops_reduction(),
            row.mem_reduction()
        );
    }
}
