//! Figure 5: full-model comparison of TPU-like, MAERI-like and
//! SIGMA-like architectures over the seven DNN models of Table I —
//! cycles (5a), per-component energy (5b) and area (5c).
//!
//! Paper setup: 256 multipliers/adders and 128 elements/cycle GB
//! bandwidth for MAERI and SIGMA; 256 PEs at full bandwidth for the TPU;
//! 28 nm, 1 GHz, FP8, 108-KiB GB, dual HBM2.

use crate::{run_parallel, ParallelError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use stonne::core::{AcceleratorConfig, CycleBreakdown, NaturalOrder, SimCache, Trace};
use stonne::energy::{area_um2, AreaBreakdown, EnergyBreakdown};
use stonne::models::{zoo, ModelId, ModelScale};
use stonne::nn::params::{generate_input, ModelParams};
use stonne::nn::runner::{run_model_simulated_traced, run_model_simulated_with, RunOptions};

/// The three compared architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// 16×16 output-stationary systolic array.
    Tpu,
    /// 256-MS flexible tree architecture.
    Maeri,
    /// 256-MS flexible sparse architecture.
    Sigma,
}

impl Arch {
    /// All three, in the paper's plotting order.
    pub const ALL: [Arch; 3] = [Arch::Tpu, Arch::Maeri, Arch::Sigma];

    /// The paper's use-case configuration for this architecture.
    pub fn config(&self) -> AcceleratorConfig {
        match self {
            Arch::Tpu => AcceleratorConfig::tpu_like(16),
            Arch::Maeri => AcceleratorConfig::maeri_like(256, 128),
            Arch::Sigma => AcceleratorConfig::sigma_like(256, 128),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Arch::Tpu => "TPU",
            Arch::Maeri => "MAERI",
            Arch::Sigma => "SIGMA",
        }
    }
}

/// One (model, architecture) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Row {
    /// DNN model.
    pub model: ModelId,
    /// Architecture.
    pub arch: Arch,
    /// Total inference cycles (Fig. 5a).
    pub cycles: u64,
    /// Energy breakdown (Fig. 5b).
    pub energy: EnergyBreakdown,
    /// Average multiplier utilization.
    pub utilization: f64,
    /// Per-phase cycle split of the whole inference.
    #[serde(default)]
    pub breakdown: CycleBreakdown,
}

/// Runs one model on one architecture (with a private per-run cache).
pub fn run_one(model_id: ModelId, arch: Arch, scale: ModelScale, seed: u64) -> Fig5Row {
    run_one_cached(model_id, arch, scale, seed, &SimCache::new())
}

/// Like [`run_one`] but reusing a shared simulation cache, so repeated
/// layer shapes across the sweep's models simulate only once per
/// architecture (config keys keep the three architectures apart).
pub fn run_one_cached(
    model_id: ModelId,
    arch: Arch,
    scale: ModelScale,
    seed: u64,
    cache: &SimCache,
) -> Fig5Row {
    let model = zoo::build(model_id, scale);
    let params = ModelParams::generate(&model, seed);
    let input = generate_input(&model, seed ^ 0xf00d);
    let run = run_model_simulated_with(
        &model,
        &params,
        &input,
        arch.config(),
        Arc::new(NaturalOrder),
        RunOptions::new().with_cache(cache.clone()),
    )
    .expect("preset configs are valid");
    Fig5Row {
        model: model_id,
        arch,
        cycles: run.total.cycles,
        energy: run.energy,
        utilization: run.total.ms_utilization(),
        breakdown: run.total.breakdown,
    }
}

/// Like [`run_one`] but also records the cycle-level timeline of the
/// whole inference (see [`stonne::core::trace`]).
pub fn run_one_traced(
    model_id: ModelId,
    arch: Arch,
    scale: ModelScale,
    seed: u64,
) -> (Fig5Row, Trace) {
    let model = zoo::build(model_id, scale);
    let params = ModelParams::generate(&model, seed);
    let input = generate_input(&model, seed ^ 0xf00d);
    let (run, trace) = run_model_simulated_traced(
        &model,
        &params,
        &input,
        arch.config(),
        stonne::core::trace::DEFAULT_CAPACITY,
    )
    .expect("preset configs are valid");
    let row = Fig5Row {
        model: model_id,
        arch,
        cycles: run.total.cycles,
        energy: run.energy,
        utilization: run.total.ms_utilization(),
        breakdown: run.total.breakdown,
    };
    (row, trace)
}

/// Runs the full 7-model × 3-architecture sweep. The combinations are
/// independent simulations fanned out on a core-count-capped worker pool
/// (results stay deterministic: every run is seeded).
///
/// # Errors
///
/// Returns [`ParallelError`] when a simulation panics.
pub fn fig5(scale: ModelScale, models: &[ModelId]) -> Result<Vec<Fig5Row>, ParallelError> {
    // One cache across every sweep point: identical layer shapes recur
    // both within a model (e.g. BERT's encoders) and across models.
    fig5_with_cache(scale, models, &SimCache::new())
}

/// Like [`fig5`] but reusing a caller-provided cache — typically one
/// backed by a persistent [`stonne::core::DiskStore`], so regenerating
/// the figure replays earlier runs instead of re-simulating them.
///
/// # Errors
///
/// Returns [`ParallelError`] when a simulation panics.
pub fn fig5_with_cache(
    scale: ModelScale,
    models: &[ModelId],
    cache: &SimCache,
) -> Result<Vec<Fig5Row>, ParallelError> {
    let mut tasks: Vec<Box<dyn FnOnce() -> Fig5Row + Send>> = Vec::new();
    for &model in models {
        for arch in Arch::ALL {
            let cache = cache.clone();
            tasks.push(Box::new(move || {
                run_one_cached(model, arch, scale, 21, &cache)
            }));
        }
    }
    run_parallel(tasks)
}

#[cfg(test)]
mod store_tests {
    use super::*;
    use stonne::core::DiskStore;

    #[test]
    fn fig5_replays_from_a_disk_store() {
        let dir = std::env::temp_dir().join(format!("stonne-fig5-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let models = [ModelId::AlexNet];

        let store = DiskStore::open(&dir).unwrap().scoped();
        let cold_cache = SimCache::new().backed_by(store.clone());
        let cold = fig5_with_cache(ModelScale::Tiny, &models, &cold_cache).unwrap();
        assert!(store.counters().writes > 0, "cold run populated the store");

        // Fresh memory cache, same directory: everything replays.
        let warm_store = DiskStore::open(&dir).unwrap().scoped();
        let warm_cache = SimCache::new().backed_by(warm_store.clone());
        let warm = fig5_with_cache(ModelScale::Tiny, &models, &warm_cache).unwrap();
        assert_eq!(cold, warm, "store replay is bitwise-identical");
        let counters = warm_store.counters();
        assert!(counters.hits > 0, "warm run read the store");
        assert_eq!(counters.misses, 0, "nothing was re-simulated");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Area estimates of the three architectures (Fig. 5c); model-independent.
pub fn fig5c_areas() -> Vec<(Arch, AreaBreakdown)> {
    Arch::ALL
        .iter()
        .map(|&a| (a, area_um2(&a.config())))
        .collect()
}

/// Speedup of `a` over `b` computed from two rows (cycles ratio).
pub fn speedup(a: &Fig5Row, b: &Fig5Row) -> f64 {
    b.cycles as f64 / a.cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_wins_and_tpu_trails_on_a_pruned_model() {
        // Fig. 5a ordering on sparse models: SIGMA < MAERI <~ TPU cycles.
        let tpu = run_one(ModelId::SqueezeNet, Arch::Tpu, ModelScale::Tiny, 3);
        let maeri = run_one(ModelId::SqueezeNet, Arch::Maeri, ModelScale::Tiny, 3);
        let sigma = run_one(ModelId::SqueezeNet, Arch::Sigma, ModelScale::Tiny, 3);
        assert!(
            sigma.cycles < maeri.cycles,
            "sigma {} !< maeri {}",
            sigma.cycles,
            maeri.cycles
        );
        assert!(
            sigma.cycles < tpu.cycles,
            "sigma {} !< tpu {}",
            sigma.cycles,
            tpu.cycles
        );
    }

    #[test]
    fn sigma_is_most_energy_efficient() {
        // Fig. 5b: SIGMA beats MAERI and TPU in total energy.
        let tpu = run_one(ModelId::AlexNet, Arch::Tpu, ModelScale::Tiny, 5);
        let maeri = run_one(ModelId::AlexNet, Arch::Maeri, ModelScale::Tiny, 5);
        let sigma = run_one(ModelId::AlexNet, Arch::Sigma, ModelScale::Tiny, 5);
        assert!(sigma.energy.total_uj() < maeri.energy.total_uj());
        assert!(sigma.energy.total_uj() < tpu.energy.total_uj());
    }

    #[test]
    fn areas_are_gb_dominated_and_ordered() {
        let areas = fig5c_areas();
        assert_eq!(areas.len(), 3);
        for (arch, a) in &areas {
            assert!(
                a.gb_fraction() > 0.6,
                "{}: GB fraction {:.2}",
                arch.name(),
                a.gb_fraction()
            );
        }
        let total = |arch: Arch| {
            areas
                .iter()
                .find(|(a, _)| *a == arch)
                .map(|(_, b)| b.total())
                .unwrap()
        };
        assert!(total(Arch::Tpu) < total(Arch::Sigma));
        assert!(total(Arch::Sigma) < total(Arch::Maeri));
    }
}
