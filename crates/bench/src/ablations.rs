//! Ablation sweeps over the simulator's design choices: distribution /
//! reduction network kind, bandwidth, tile shape, and sparse format.
//!
//! These go beyond the paper's figures: they quantify the design points
//! DESIGN.md calls out (e.g. how much the ART accumulators save over
//! psum spilling, or what row-aligned position chunking buys).

use serde::{Deserialize, Serialize};
use stonne::core::{AcceleratorConfig, RnKind, SparseFormat, Stonne, Tile};
use stonne::core::{LayerDims, NaturalOrder};
use stonne::tensor::{prune_matrix_to_sparsity, CsrMatrix, Matrix, SeededRng};

/// One ablation measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Sweep family (e.g. `"rn-kind"`).
    pub sweep: String,
    /// The swept value (e.g. `"ArtAcc"`).
    pub variant: String,
    /// Measured cycles.
    pub cycles: u64,
    /// Measured multiplier utilization.
    pub utilization: f64,
}

fn gemm(seed: u64, m: usize, n: usize, k: usize, sparsity: f64) -> (Matrix, Matrix) {
    let mut rng = SeededRng::new(seed);
    let mut a = Matrix::random(m, k, &mut rng);
    if sparsity > 0.0 {
        prune_matrix_to_sparsity(&mut a, sparsity);
    }
    let b = Matrix::random(k, n, &mut rng);
    (a, b)
}

/// RN choice on the flexible dense engine: ART with accumulators vs plain
/// ART (psums spill to the GB between folds).
pub fn rn_kind_sweep() -> Vec<AblationRow> {
    let (a, b) = gemm(1, 4, 16, 512, 0.0);
    [RnKind::ArtAcc, RnKind::Art]
        .into_iter()
        .map(|rn| {
            let mut cfg = AcceleratorConfig::maeri_like(128, 32);
            cfg.rn = rn;
            let mut sim = Stonne::new(cfg).expect("valid");
            let (_, stats) = sim.run_gemm("rn-sweep", &a, &b);
            AblationRow {
                sweep: "rn-kind".into(),
                variant: format!("{rn:?}"),
                cycles: stats.cycles,
                utilization: stats.ms_utilization(),
            }
        })
        .collect()
}

/// Bandwidth sweep on the flexible dense engine (the Fig. 1b axis).
pub fn bandwidth_sweep() -> Vec<AblationRow> {
    let (a, b) = gemm(2, 16, 128, 128, 0.0);
    // Fixed full-bandwidth mapping swept over hardware bandwidths (the
    // mapper would otherwise re-tile per configuration).
    let layer = LayerDims::from_gemm(16, 128, 128);
    let tile = Tile::auto(&layer, 128);
    [128usize, 64, 32, 16, 8]
        .into_iter()
        .map(|bw| {
            let mut sim = Stonne::new(AcceleratorConfig::maeri_like(128, bw)).expect("valid");
            let (_, stats) = sim.run_gemm_tiled("bw-sweep", &a, &b, &tile);
            AblationRow {
                sweep: "bandwidth".into(),
                variant: format!("bw{bw}"),
                cycles: stats.cycles,
                utilization: stats.ms_utilization(),
            }
        })
        .collect()
}

/// Tile-shape sweep: replicate clusters over filters vs positions.
pub fn tile_sweep() -> Vec<AblationRow> {
    let (a, b) = gemm(3, 16, 64, 32, 0.0);
    let layer = LayerDims::from_gemm(16, 64, 32);
    let tiles = [
        (
            "k4",
            Tile {
                t_r: 1,
                t_s: 1,
                t_c: 32,
                t_g: 1,
                t_k: 4,
                t_n: 1,
                t_xp: 1,
                t_yp: 1,
            },
        ),
        (
            "k2_pos2",
            Tile {
                t_r: 1,
                t_s: 1,
                t_c: 32,
                t_g: 1,
                t_k: 2,
                t_n: 1,
                t_xp: 1,
                t_yp: 2,
            },
        ),
        (
            "pos4",
            Tile {
                t_r: 1,
                t_s: 1,
                t_c: 32,
                t_g: 1,
                t_k: 1,
                t_n: 1,
                t_xp: 1,
                t_yp: 4,
            },
        ),
    ];
    tiles
        .into_iter()
        .map(|(name, tile)| {
            tile.validate(&layer, 128).expect("tile fits");
            let mut sim = Stonne::new(AcceleratorConfig::maeri_like(128, 32)).expect("valid");
            let (_, stats) = sim.run_gemm_tiled("tile-sweep", &a, &b, &tile);
            AblationRow {
                sweep: "tile".into(),
                variant: name.into(),
                cycles: stats.cycles,
                utilization: stats.ms_utilization(),
            }
        })
        .collect()
}

/// Sparse-format sweep: CSR vs bitmap operand metadata on the sparse
/// engine (cycles identical, metadata traffic differs — returned via
/// the utilization field being equal and cycles equal; the counter
/// difference is asserted in tests).
pub fn format_sweep() -> Vec<AblationRow> {
    let (a, b) = gemm(4, 64, 64, 64, 0.8);
    let csr = CsrMatrix::from_dense(&a);
    [SparseFormat::Csr, SparseFormat::Bitmap]
        .into_iter()
        .map(|fmt| {
            let mut cfg = AcceleratorConfig::sigma_like(128, 128);
            cfg.sparse_format = fmt;
            let mut sim = Stonne::new(cfg).expect("valid");
            let run = sim.run_spmm_scheduled("fmt-sweep", &csr, &b, &NaturalOrder);
            AblationRow {
                sweep: "sparse-format".into(),
                variant: format!("{fmt:?}"),
                cycles: run.stats.cycles,
                utilization: run.stats.ms_utilization(),
            }
        })
        .collect()
}

/// Dual-sided sparsity: weight-only vs weight+activation exploitation on
/// the sparse engine (activations 50 % zero, as post-ReLU data is).
pub fn dual_sparsity_sweep() -> Vec<AblationRow> {
    let (a, mut b) = gemm(5, 64, 64, 96, 0.8);
    let mut rng = SeededRng::new(55);
    for r in 0..b.rows() {
        for c in 0..b.cols() {
            if rng.chance(0.5) {
                b.set(r, c, 0.0);
            }
        }
    }
    let csr = CsrMatrix::from_dense(&a);
    [false, true]
        .into_iter()
        .map(|dual| {
            let mut cfg = AcceleratorConfig::sigma_like(128, 16);
            cfg.exploit_activation_sparsity = dual;
            let mut sim = Stonne::new(cfg).expect("valid");
            let run = sim.run_spmm_scheduled("dual-sweep", &csr, &b, &NaturalOrder);
            AblationRow {
                sweep: "dual-sparsity".into(),
                variant: if dual { "weights+acts" } else { "weights-only" }.into(),
                cycles: run.stats.cycles,
                utilization: run.stats.ms_utilization(),
            }
        })
        .collect()
}

/// Dataflow sweep on the flexible dense engine: weight- vs output- vs
/// input-stationary on the same workload and tile budget.
pub fn dataflow_sweep() -> Vec<AblationRow> {
    use stonne::core::Dataflow;
    let (a, b) = gemm(6, 24, 48, 96, 0.0);
    [
        Dataflow::WeightStationary,
        Dataflow::OutputStationary,
        Dataflow::InputStationary,
    ]
    .into_iter()
    .map(|df| {
        let mut cfg = AcceleratorConfig::maeri_like(128, 32);
        cfg.dataflow = df;
        let mut sim = Stonne::new(cfg).expect("valid");
        let (_, stats) = sim.run_gemm("dataflow-sweep", &a, &b);
        AblationRow {
            sweep: "dataflow".into(),
            variant: format!("{df:?}"),
            cycles: stats.cycles,
            utilization: stats.ms_utilization(),
        }
    })
    .collect()
}

/// Mapper sweep: the bandwidth-aware auto tile vs an exhaustive
/// simulated tile search (the mRNA-style exploration loop).
pub fn mapper_sweep() -> Vec<AblationRow> {
    let (a, b) = gemm(6, 24, 48, 96, 0.0);
    let cfg = AcceleratorConfig::maeri_like(128, 32);
    let mut sim = Stonne::new(cfg.clone()).expect("valid");
    let (_, auto_stats) = sim.run_gemm("mapper-sweep", &a, &b);
    let probe = Stonne::new(cfg).expect("valid");
    let (_, searched_cycles) = probe.search_best_tile(&a, &b);
    vec![
        AblationRow {
            sweep: "mapper".into(),
            variant: "auto".into(),
            cycles: auto_stats.cycles,
            utilization: auto_stats.ms_utilization(),
        },
        AblationRow {
            sweep: "mapper".into(),
            variant: "searched".into(),
            cycles: searched_cycles,
            utilization: 0.0,
        },
    ]
}

/// Every ablation, concatenated.
pub fn all_ablations() -> Vec<AblationRow> {
    let mut rows = rn_kind_sweep();
    rows.extend(bandwidth_sweep());
    rows.extend(tile_sweep());
    rows.extend(format_sweep());
    rows.extend(dual_sparsity_sweep());
    rows.extend(dataflow_sweep());
    rows.extend(mapper_sweep());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulators_beat_psum_spilling() {
        let rows = rn_kind_sweep();
        let acc = rows.iter().find(|r| r.variant == "ArtAcc").unwrap();
        let plain = rows.iter().find(|r| r.variant == "Art").unwrap();
        assert!(
            acc.cycles < plain.cycles,
            "ART+ACC {} should beat plain ART {}",
            acc.cycles,
            plain.cycles
        );
    }

    #[test]
    fn cycles_decrease_monotonically_with_bandwidth() {
        let rows = bandwidth_sweep();
        for pair in rows.windows(2) {
            assert!(
                pair[0].cycles <= pair[1].cycles,
                "{} ({}) should not exceed {} ({})",
                pair[0].variant,
                pair[0].cycles,
                pair[1].variant,
                pair[1].cycles
            );
        }
    }

    #[test]
    fn tile_choice_changes_runtime() {
        let rows = tile_sweep();
        let cycles: Vec<u64> = rows.iter().map(|r| r.cycles).collect();
        assert!(
            cycles.iter().any(|&c| c != cycles[0]),
            "all tiles identical: {cycles:?}"
        );
    }

    #[test]
    fn formats_are_cycle_equivalent() {
        let rows = format_sweep();
        assert_eq!(rows[0].cycles, rows[1].cycles);
    }

    #[test]
    fn searched_tile_is_at_least_as_fast_as_auto() {
        let rows = mapper_sweep();
        let auto = rows.iter().find(|r| r.variant == "auto").unwrap();
        let searched = rows.iter().find(|r| r.variant == "searched").unwrap();
        assert!(searched.cycles <= auto.cycles);
    }

    #[test]
    fn all_dataflows_complete_with_positive_utilization() {
        let rows = dataflow_sweep();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.cycles > 0, "{}", r.variant);
            assert!(r.utilization > 0.0, "{}", r.variant);
        }
        // The three dataflows genuinely differ on this workload.
        let distinct: std::collections::HashSet<u64> = rows.iter().map(|r| r.cycles).collect();
        assert!(distinct.len() >= 2, "dataflows produced identical cycles");
    }

    #[test]
    fn activation_sparsity_helps_at_low_bandwidth() {
        let rows = dual_sparsity_sweep();
        let weights_only = rows.iter().find(|r| r.variant == "weights-only").unwrap();
        let dual = rows.iter().find(|r| r.variant == "weights+acts").unwrap();
        assert!(
            dual.cycles < weights_only.cycles,
            "dual {} !< weights-only {}",
            dual.cycles,
            weights_only.cycles
        );
    }
}
