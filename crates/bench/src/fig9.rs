//! Figure 9: static filter scheduling on a 256-MS SIGMA-like
//! architecture — normalized runtime (9a) and energy (9b) of LFF and RDM
//! against No Scheduling, plus the per-layer ResNet-50 sensitivity
//! analysis (9c).

use crate::{run_parallel, ParallelError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use stonne::core::{AcceleratorConfig, NaturalOrder, RowSchedule, SimCache};
use stonne::models::{zoo, ModelId, ModelScale};
use stonne::nn::params::{generate_input, ModelParams};
use stonne::nn::runner::{run_model_simulated_with, RunOptions};
use stonne::sched::{layer_sensitivity, LargestFilterFirst, LayerSensitivity, RandomOrder};

/// The evaluated scheduling policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// No Scheduling (natural order) — the baseline.
    Ns,
    /// Random order.
    Rdm,
    /// Largest Filter First.
    Lff,
}

impl Policy {
    /// All policies, baseline first.
    pub const ALL: [Policy; 3] = [Policy::Ns, Policy::Rdm, Policy::Lff];

    /// Builds the schedule object.
    pub fn schedule(&self) -> Arc<dyn RowSchedule + Send + Sync> {
        match self {
            Policy::Ns => Arc::new(NaturalOrder),
            Policy::Rdm => Arc::new(RandomOrder::new(97)),
            Policy::Lff => Arc::new(LargestFilterFirst),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Ns => "NS",
            Policy::Rdm => "RDM",
            Policy::Lff => "LFF",
        }
    }
}

/// One (model, policy) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Row {
    /// DNN model.
    pub model: ModelId,
    /// Scheduling policy.
    pub policy: Policy,
    /// Total inference cycles.
    pub cycles: u64,
    /// Total energy (µJ).
    pub energy_uj: f64,
    /// Average multiplier utilization.
    pub utilization: f64,
}

/// The paper's configuration: a 256-MS, 128-elements/cycle SIGMA-like
/// flexible sparse architecture.
pub fn fig9_config() -> AcceleratorConfig {
    AcceleratorConfig::sigma_like(256, 128)
}

/// Runs one model under one policy (with a private per-run cache).
pub fn run_one(model_id: ModelId, policy: Policy, scale: ModelScale, seed: u64) -> Fig9Row {
    run_one_cached(model_id, policy, scale, seed, &SimCache::new())
}

/// Like [`run_one`] but reusing a shared simulation cache. Keys include
/// the schedule token and the weights' sparsity pattern, so the three
/// policies (and differently-pruned layers) never collide.
pub fn run_one_cached(
    model_id: ModelId,
    policy: Policy,
    scale: ModelScale,
    seed: u64,
    cache: &SimCache,
) -> Fig9Row {
    let model = zoo::build(model_id, scale);
    let params = ModelParams::generate(&model, seed);
    let input = generate_input(&model, seed ^ 0xabc);
    let run = run_model_simulated_with(
        &model,
        &params,
        &input,
        fig9_config(),
        policy.schedule(),
        RunOptions::new().with_cache(cache.clone()),
    )
    .expect("valid config");
    Fig9Row {
        model: model_id,
        policy,
        cycles: run.total.cycles,
        energy_uj: run.energy.total_uj(),
        utilization: run.total.ms_utilization(),
    }
}

/// Runs the full sweep: every Table I model under NS, RDM and LFF on a
/// core-count-capped worker pool (each run is an independent, seeded
/// simulation).
///
/// # Errors
///
/// Returns [`ParallelError`] when a simulation panics.
pub fn fig9(scale: ModelScale, models: &[ModelId]) -> Result<Vec<Fig9Row>, ParallelError> {
    // One cache shared by every sweep point; schedule tokens in the keys
    // keep NS/RDM/LFF results strictly separated.
    let cache = SimCache::new();
    let mut tasks: Vec<Box<dyn FnOnce() -> Fig9Row + Send>> = Vec::new();
    for &model in models {
        for policy in Policy::ALL {
            let cache = cache.clone();
            tasks.push(Box::new(move || {
                run_one_cached(model, policy, scale, 61, &cache)
            }));
        }
    }
    run_parallel(tasks)
}

/// Fig. 9c: per-layer LFF sensitivity of ResNet-50, reduced to the 14
/// most representative layers (5 least sensitive, 4 median, 5 most
/// sensitive — the paper's low/medium/high grouping).
pub fn fig9c(scale: ModelScale) -> Vec<LayerSensitivity> {
    let model = zoo::resnet50(scale);
    let params = ModelParams::generate(&model, 61);
    let input = generate_input(&model, 62);
    let mut rows = layer_sensitivity(
        &model,
        &params,
        &input,
        fig9_config(),
        Arc::new(LargestFilterFirst),
    );
    rows.sort_by(|a, b| a.runtime_gain().partial_cmp(&b.runtime_gain()).unwrap());
    if rows.len() <= 14 {
        return rows;
    }
    let n = rows.len();
    let mut picked = Vec::with_capacity(14);
    picked.extend_from_slice(&rows[..5]); // low-sensitive
    let mid = n / 2;
    picked.extend_from_slice(&rows[mid - 2..mid + 2]); // medium
    picked.extend_from_slice(&rows[n - 5..]); // high-sensitive
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lff_is_never_slower_than_ns() {
        let ns = run_one(ModelId::SqueezeNet, Policy::Ns, ModelScale::Tiny, 2);
        let lff = run_one(ModelId::SqueezeNet, Policy::Lff, ModelScale::Tiny, 2);
        assert!(
            lff.cycles <= ns.cycles,
            "LFF {} > NS {}",
            lff.cycles,
            ns.cycles
        );
        assert!(lff.utilization >= ns.utilization);
    }

    #[test]
    fn rdm_brings_no_meaningful_gain() {
        // Fig. 9a: "the random scheduling strategy does not yield any
        // performance improvement".
        let ns = run_one(ModelId::MobileNetV1, Policy::Rdm, ModelScale::Tiny, 3);
        let base = run_one(ModelId::MobileNetV1, Policy::Ns, ModelScale::Tiny, 3);
        let ratio = ns.cycles as f64 / base.cycles as f64;
        assert!((0.95..=1.06).contains(&ratio), "RDM ratio {ratio}");
    }

    #[test]
    fn fig9c_rows_are_sorted_by_gain() {
        let rows = fig9c(ModelScale::Tiny);
        assert!(rows.len() >= 10);
        for pair in rows.windows(2) {
            assert!(pair[0].runtime_gain() <= pair[1].runtime_gain() + 1e-9);
        }
    }
}
