//! Criterion wrapper over the design-choice ablation sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use stonne_bench::ablations::{bandwidth_sweep, format_sweep, rn_kind_sweep, tile_sweep};

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("rn_kind", |b| b.iter(rn_kind_sweep));
    g.bench_function("bandwidth", |b| b.iter(bandwidth_sweep));
    g.bench_function("tile", |b| b.iter(tile_sweep));
    g.bench_function("sparse_format", |b| b.iter(format_sweep));
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
