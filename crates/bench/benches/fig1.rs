//! Criterion wrapper over the Fig. 1 harnesses at tiny scale.

use criterion::{criterion_group, criterion_main, Criterion};
use stonne::models::ModelScale;
use stonne_bench::fig1::{fig1a, fig1b, fig1c};

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("fig1a_systolic_vs_analytical", |b| {
        b.iter(|| fig1a(ModelScale::Tiny, &[16]))
    });
    g.bench_function("fig1b_maeri_vs_analytical", |b| {
        b.iter(|| fig1b(ModelScale::Tiny, &[32]))
    });
    g.bench_function("fig1c_sigma_vs_analytical", |b| {
        b.iter(|| fig1c(ModelScale::Tiny, &[0.9]))
    });
    g.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
