//! Criterion wrapper over the Fig. 6 SNAPEA comparison (tiny scale).

use criterion::{criterion_group, criterion_main, Criterion};
use stonne::models::{ModelId, ModelScale};
use stonne_bench::fig6::run_one;

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    for model in [ModelId::AlexNet, ModelId::SqueezeNet] {
        g.bench_function(model.name(), |b| {
            b.iter(|| run_one(model, ModelScale::Tiny, 1))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
