//! Criterion wrapper over the Fig. 5 full-model comparison (tiny scale).

use criterion::{criterion_group, criterion_main, Criterion};
use stonne::models::{ModelId, ModelScale};
use stonne_bench::fig5::{run_one, Arch};

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    for arch in Arch::ALL {
        g.bench_function(format!("squeezenet_{}", arch.name()), |b| {
            b.iter(|| run_one(ModelId::SqueezeNet, arch, ModelScale::Tiny, 21))
        });
    }
    g.bench_function("mobilenet_SIGMA", |b| {
        b.iter(|| run_one(ModelId::MobileNetV1, Arch::Sigma, ModelScale::Tiny, 21))
    });
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
