//! Criterion wrapper over the Table V validation microbenchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use stonne::models::table5_microbenchmarks;
use stonne_bench::table5::{run_microbenchmark, table5};

fn bench_table5(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    for mb in table5_microbenchmarks() {
        g.bench_function(mb.name, |b| b.iter(|| run_microbenchmark(&mb, 7)));
    }
    g.bench_function("full_table", |b| b.iter(table5));
    g.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
