//! Criterion wrapper over the Fig. 9 scheduling comparison (tiny scale).

use criterion::{criterion_group, criterion_main, Criterion};
use stonne::models::{ModelId, ModelScale};
use stonne_bench::fig9::{run_one, Policy};

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    for policy in Policy::ALL {
        g.bench_function(format!("squeezenet_{}", policy.name()), |b| {
            b.iter(|| run_one(ModelId::SqueezeNet, policy, ModelScale::Tiny, 61))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
