//! Criterion wrapper over the Fig. 7 filter-mapping analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use stonne::models::ModelScale;
use stonne_bench::fig7::fig7;

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("all_models_256ms", |b| {
        b.iter(|| fig7(ModelScale::Tiny, 256))
    });
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
