//! AlexNet (Krizhevsky et al., 2012) — `C` and `L` dominant layers.

use super::{fc_dim, num_classes, ShapeTracker};
use crate::{LayerClass, ModelId, ModelScale, ModelSpec, OpSpec, TensorShape};
use stonne_tensor::Conv2dGeom;

/// Builds AlexNet at the given scale.
///
/// At [`ModelScale::Standard`] this is the torchvision AlexNet: five
/// convolutions (11×11/4, 5×5, 3×3 ×3) with three max-pools, then three
/// fully-connected layers. Smaller scales keep the layer structure but use
/// a gentler first stride so the feature map survives the stack.
pub fn alexnet(scale: ModelScale) -> ModelSpec {
    let hw = scale.image_hw();
    let mut m = ModelSpec::new(
        ModelId::AlexNet,
        TensorShape::Feature { c: 3, h: hw, w: hw },
    );
    let mut t = ShapeTracker::new(3, hw);
    let c = LayerClass::Convolution;

    let stride1 = if hw >= 128 { 4 } else { 2 };
    let x = t.conv_relu(
        &mut m,
        "conv1",
        0,
        Conv2dGeom::new(3, 64, 11, 11, stride1, 2, 1),
        c,
    );
    let x = t.maxpool(&mut m, "pool1", x, 3, 2);
    let x = t.conv_relu(
        &mut m,
        "conv2",
        x,
        Conv2dGeom::new(64, 192, 5, 5, 1, 2, 1),
        c,
    );
    let x = t.maxpool(&mut m, "pool2", x, 3, 2);
    let x = t.conv_relu(
        &mut m,
        "conv3",
        x,
        Conv2dGeom::new(192, 384, 3, 3, 1, 1, 1),
        c,
    );
    let x = t.conv_relu(
        &mut m,
        "conv4",
        x,
        Conv2dGeom::new(384, 256, 3, 3, 1, 1, 1),
        c,
    );
    let x = t.conv_relu(
        &mut m,
        "conv5",
        x,
        Conv2dGeom::new(256, 256, 3, 3, 1, 1, 1),
        c,
    );
    let x = t.maxpool(&mut m, "pool3", x, 3, 2);

    let flat = m.add("flatten", OpSpec::Flatten, &[x], None);
    let in_features = t.c * t.h * t.w;
    let fcw = fc_dim(scale);
    let l = LayerClass::Linear;
    let fc1 = m.add(
        "fc6",
        OpSpec::Linear {
            in_features,
            out_features: fcw,
        },
        &[flat],
        Some(l),
    );
    let r1 = m.add("fc6_relu", OpSpec::Relu, &[fc1], None);
    let fc2 = m.add(
        "fc7",
        OpSpec::Linear {
            in_features: fcw,
            out_features: fcw,
        },
        &[r1],
        Some(l),
    );
    let r2 = m.add("fc7_relu", OpSpec::Relu, &[fc2], None);
    let fc3 = m.add(
        "fc8",
        OpSpec::Linear {
            in_features: fcw,
            out_features: num_classes(scale),
        },
        &[r2],
        Some(l),
    );
    m.add("log_softmax", OpSpec::LogSoftmax, &[fc3], None);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_alexnet_feature_extractor_ends_at_6x6() {
        let m = alexnet(ModelScale::Standard);
        let shapes = m.infer_shapes().unwrap();
        // Find the flatten node input: must be 256x6x6 as published.
        let flat = m
            .nodes()
            .iter()
            .position(|n| matches!(n.op, OpSpec::Flatten))
            .unwrap();
        let pre = m.nodes()[flat].inputs[0];
        assert_eq!(shapes[pre], TensorShape::Feature { c: 256, h: 6, w: 6 });
    }

    #[test]
    fn has_five_convs_and_three_linears() {
        let m = alexnet(ModelScale::Reduced);
        let convs = m
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpSpec::Conv2d { .. }))
            .count();
        let linears = m
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpSpec::Linear { .. }))
            .count();
        assert_eq!(convs, 5);
        assert_eq!(linears, 3);
    }

    #[test]
    fn tiny_scale_is_valid() {
        assert!(alexnet(ModelScale::Tiny).infer_shapes().is_ok());
    }
}
