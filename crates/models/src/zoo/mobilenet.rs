//! MobileNets-V1 (Howard et al., 2017) — `FC` (factorized conv) layers.

use super::{num_classes, ShapeTracker};
use crate::{LayerClass, ModelId, ModelScale, ModelSpec, NodeId, OpSpec, TensorShape};
use stonne_tensor::Conv2dGeom;

/// Adds one depthwise-separable block: 3×3 depthwise conv followed by a
/// 1×1 pointwise conv — the paper's "factorized convolution".
pub(crate) fn separable_block(
    m: &mut ModelSpec,
    t: &mut ShapeTracker,
    name: &str,
    from: NodeId,
    out_c: usize,
    stride: usize,
) -> NodeId {
    let in_c = t.c;
    // Depthwise: groups == channels. Guard the stride at tiny maps.
    let stride = if t.h >= 2 { stride } else { 1 };
    let dw = t.conv_relu(
        m,
        &format!("{name}_dw"),
        from,
        Conv2dGeom::new(in_c, in_c, 3, 3, stride, 1, in_c),
        LayerClass::FactorizedConv,
    );
    t.conv_relu(
        m,
        &format!("{name}_pw"),
        dw,
        Conv2dGeom::new(in_c, out_c, 1, 1, 1, 0, 1),
        LayerClass::FactorizedConv,
    )
}

/// Channel/stride schedule of the 13 separable blocks.
pub(crate) const BLOCKS: [(usize, usize); 13] = [
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
];

/// Builds the MobileNetV1 backbone (stem + 13 separable blocks), returning
/// the final node id and updating the tracker. Shared with SSD-MobileNets.
pub(crate) fn backbone(m: &mut ModelSpec, t: &mut ShapeTracker) -> NodeId {
    let mut x = t.conv_relu(
        m,
        "conv1",
        0,
        Conv2dGeom::new(3, 32, 3, 3, 2, 1, 1),
        LayerClass::Convolution,
    );
    for (i, &(out_c, stride)) in BLOCKS.iter().enumerate() {
        x = separable_block(m, t, &format!("sep{}", i + 1), x, out_c, stride);
    }
    x
}

/// Builds MobileNets-V1: stem conv, 13 depthwise-separable blocks, global
/// average pool and classifier.
pub fn mobilenet_v1(scale: ModelScale) -> ModelSpec {
    let hw = scale.image_hw();
    let mut m = ModelSpec::new(
        ModelId::MobileNetV1,
        TensorShape::Feature { c: 3, h: hw, w: hw },
    );
    let mut t = ShapeTracker::new(3, hw);
    let x = backbone(&mut m, &mut t);
    let gap = m.add("avgpool", OpSpec::GlobalAvgPool, &[x], None);
    let flat = m.add("flatten", OpSpec::Flatten, &[gap], None);
    let fc = m.add(
        "fc",
        OpSpec::Linear {
            in_features: 1024,
            out_features: num_classes(scale),
        },
        &[flat],
        Some(LayerClass::Linear),
    );
    m.add("log_softmax", OpSpec::LogSoftmax, &[fc], None);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_27_convolutions() {
        // 1 stem + 13 blocks * 2 convs.
        let m = mobilenet_v1(ModelScale::Standard);
        let convs = m
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpSpec::Conv2d { .. }))
            .count();
        assert_eq!(convs, 27);
    }

    #[test]
    fn depthwise_convs_are_grouped() {
        let m = mobilenet_v1(ModelScale::Reduced);
        let depthwise = m
            .nodes()
            .iter()
            .filter(|n| match n.op {
                OpSpec::Conv2d { geom } => geom.groups > 1 && geom.groups == geom.in_c,
                _ => false,
            })
            .count();
        assert_eq!(depthwise, 13);
    }

    #[test]
    fn standard_backbone_ends_at_1024x7x7() {
        let m = mobilenet_v1(ModelScale::Standard);
        let shapes = m.infer_shapes().unwrap();
        let gap = m
            .nodes()
            .iter()
            .position(|n| matches!(n.op, OpSpec::GlobalAvgPool))
            .unwrap();
        let pre = m.nodes()[gap].inputs[0];
        assert_eq!(
            shapes[pre],
            TensorShape::Feature {
                c: 1024,
                h: 7,
                w: 7
            }
        );
    }

    #[test]
    fn factorized_class_is_tagged() {
        let m = mobilenet_v1(ModelScale::Reduced);
        let fc_layers = m
            .nodes()
            .iter()
            .filter(|n| n.class == Some(LayerClass::FactorizedConv))
            .count();
        assert_eq!(fc_layers, 26);
    }
}
