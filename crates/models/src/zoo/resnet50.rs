//! ResNet-50 (He et al., 2015) — `RF` (residual function) and `C` layers.

use super::{num_classes, ShapeTracker};
use crate::{LayerClass, ModelId, ModelScale, ModelSpec, NodeId, OpSpec, TensorShape};
use stonne_tensor::Conv2dGeom;

/// Adds one bottleneck block (1×1 reduce → 3×3 → 1×1 expand + shortcut).
///
/// Returns the id of the block's output (post-ReLU of the residual add).
fn bottleneck(
    m: &mut ModelSpec,
    t: &mut ShapeTracker,
    name: &str,
    from: NodeId,
    mid_c: usize,
    out_c: usize,
    stride: usize,
) -> NodeId {
    let rf = LayerClass::ResidualFunction;
    let in_c = t.c;
    let (in_h, in_w) = (t.h, t.w);

    let a = t.conv_relu(
        m,
        &format!("{name}_1x1a"),
        from,
        Conv2dGeom::new(in_c, mid_c, 1, 1, 1, 0, 1),
        rf,
    );
    let b = t.conv_relu(
        m,
        &format!("{name}_3x3"),
        a,
        Conv2dGeom::new(mid_c, mid_c, 3, 3, stride, 1, 1),
        rf,
    );
    let c = t.conv(
        m,
        &format!("{name}_1x1b"),
        b,
        Conv2dGeom::new(mid_c, out_c, 1, 1, 1, 0, 1),
        rf,
    );

    // Shortcut path: identity when shapes match, 1x1 projection otherwise.
    let shortcut = if in_c == out_c && stride == 1 {
        from
    } else {
        let mut st = ShapeTracker {
            c: in_c,
            h: in_h,
            w: in_w,
        };
        let sc = st.conv(
            m,
            &format!("{name}_proj"),
            from,
            Conv2dGeom::new(in_c, out_c, 1, 1, stride, 0, 1),
            rf,
        );
        debug_assert_eq!((st.h, st.w), (t.h, t.w));
        sc
    };
    let add = m.add(format!("{name}_add"), OpSpec::Add, &[c, shortcut], None);
    m.add(format!("{name}_relu"), OpSpec::Relu, &[add], None)
}

/// Builds ResNet-50: 7×7/2 stem, 3-4-6-3 bottleneck stages, global average
/// pool, and a single classifier FC.
pub fn resnet50(scale: ModelScale) -> ModelSpec {
    let hw = scale.image_hw();
    let mut m = ModelSpec::new(
        ModelId::ResNet50,
        TensorShape::Feature { c: 3, h: hw, w: hw },
    );
    let mut t = ShapeTracker::new(3, hw);

    let x = t.conv_relu(
        &mut m,
        "conv1",
        0,
        Conv2dGeom::new(3, 64, 7, 7, 2, 3, 1),
        LayerClass::Convolution,
    );
    let mut x = t.maxpool(&mut m, "pool1", x, 3, 2);

    // (blocks, mid channels, out channels, first stride) per stage.
    let stages: [(usize, usize, usize, usize); 4] = [
        (3, 64, 256, 1),
        (4, 128, 512, 2),
        (6, 256, 1024, 2),
        (3, 512, 2048, 2),
    ];
    for (s, &(blocks, mid, out, stride0)) in stages.iter().enumerate() {
        for b in 0..blocks {
            // Never stride below a 2x2 map (tiny scale guard).
            let stride = if b == 0 && t.h >= 2 { stride0 } else { 1 };
            x = bottleneck(
                &mut m,
                &mut t,
                &format!("res{}_{}", s + 2, b + 1),
                x,
                mid,
                out,
                stride,
            );
        }
    }

    let gap = m.add("avgpool", OpSpec::GlobalAvgPool, &[x], None);
    let flat = m.add("flatten", OpSpec::Flatten, &[gap], None);
    let fc = m.add(
        "fc",
        OpSpec::Linear {
            in_features: 2048,
            out_features: num_classes(scale),
        },
        &[flat],
        Some(LayerClass::Linear),
    );
    m.add("log_softmax", OpSpec::LogSoftmax, &[fc], None);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_53_convolutions() {
        // 1 stem + 16 blocks * 3 + 4 projection shortcuts = 53.
        let m = resnet50(ModelScale::Standard);
        let convs = m
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpSpec::Conv2d { .. }))
            .count();
        assert_eq!(convs, 53);
    }

    #[test]
    fn standard_backbone_ends_at_2048x7x7() {
        let m = resnet50(ModelScale::Standard);
        let shapes = m.infer_shapes().unwrap();
        let gap = m
            .nodes()
            .iter()
            .position(|n| matches!(n.op, OpSpec::GlobalAvgPool))
            .unwrap();
        let pre = m.nodes()[gap].inputs[0];
        assert_eq!(
            shapes[pre],
            TensorShape::Feature {
                c: 2048,
                h: 7,
                w: 7
            }
        );
    }

    #[test]
    fn residual_adds_are_shape_consistent_at_all_scales() {
        for scale in [ModelScale::Standard, ModelScale::Reduced, ModelScale::Tiny] {
            resnet50(scale).infer_shapes().unwrap();
        }
    }

    #[test]
    fn macs_match_published_figure() {
        let macs = resnet50(ModelScale::Standard).total_macs();
        assert!(macs > 3_500_000_000 && macs < 4_500_000_000, "macs={macs}");
    }
}
