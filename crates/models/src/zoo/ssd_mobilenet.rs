//! SSD-MobileNets (Liu et al., 2015 + Howard et al., 2017) — object
//! detection: MobileNetV1 backbone with SSD extra layers and prediction
//! heads.

use super::mobilenet::{backbone, separable_block};
use super::ShapeTracker;
use crate::{LayerClass, ModelId, ModelScale, ModelSpec, NodeId, OpSpec, TensorShape};
use stonne_tensor::Conv2dGeom;

/// COCO-style detection setup: anchors per cell and class count.
const ANCHORS: usize = 6;
const DET_CLASSES: usize = 21;

/// Adds one SSD prediction head pair (class scores + box regressions) on a
/// feature map. Returns the class-head conv id.
fn head(m: &mut ModelSpec, t: &ShapeTracker, name: &str, from: NodeId) -> NodeId {
    let cls = m.add(
        format!("{name}_cls"),
        OpSpec::Conv2d {
            geom: Conv2dGeom::new(t.c, ANCHORS * DET_CLASSES, 3, 3, 1, 1, 1),
        },
        &[from],
        Some(LayerClass::Convolution),
    );
    m.add(
        format!("{name}_box"),
        OpSpec::Conv2d {
            geom: Conv2dGeom::new(t.c, ANCHORS * 4, 3, 3, 1, 1, 1),
        },
        &[from],
        Some(LayerClass::Convolution),
    );
    cls
}

/// Builds SSD-MobileNets: MobileNetV1 backbone, two extra downsampling
/// separable stages, and class/box heads on three feature maps.
pub fn ssd_mobilenet(scale: ModelScale) -> ModelSpec {
    let hw = scale.image_hw();
    let mut m = ModelSpec::new(
        ModelId::SsdMobileNet,
        TensorShape::Feature { c: 3, h: hw, w: hw },
    );
    let mut t = ShapeTracker::new(3, hw);

    let feat1 = backbone(&mut m, &mut t);
    let t1 = t;
    let h1 = head(&mut m, &t1, "head1", feat1);

    // Extra feature layers (SSD-lite style separable downsampling).
    let feat2 = separable_block(&mut m, &mut t, "extra1", feat1, 512, 2);
    let t2 = t;
    let h2 = head(&mut m, &t2, "head2", feat2);

    let feat3 = separable_block(&mut m, &mut t, "extra2", feat2, 256, 2);
    let t3 = t;
    let _h3 = head(&mut m, &t3, "head3", feat3);

    // A detection pipeline would decode anchors from every head; the
    // compute-relevant work is the convolutions above. The graph output is
    // the finest class head, flattened, with per-anchor softmax left to the
    // (native) post-processing — mirroring how the paper offloads only the
    // compute-intensive layers.
    let _ = (h1, h2);
    let flat = m.add("flatten_cls1", OpSpec::Flatten, &[_h3], None);
    m.add("scores", OpSpec::Softmax, &[flat], None);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_backbone_plus_extras_plus_heads() {
        let m = ssd_mobilenet(ModelScale::Reduced);
        let convs = m
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpSpec::Conv2d { .. }))
            .count();
        // 27 backbone + 2*2 extras + 3*2 heads = 37.
        assert_eq!(convs, 37);
    }

    #[test]
    fn heads_predict_anchor_scores() {
        let m = ssd_mobilenet(ModelScale::Standard);
        let shapes = m.infer_shapes().unwrap();
        let cls_heads: Vec<usize> = m
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.name.ends_with("_cls"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(cls_heads.len(), 3);
        for id in cls_heads {
            match shapes[id] {
                TensorShape::Feature { c, .. } => assert_eq!(c, ANCHORS * DET_CLASSES),
                _ => panic!("head must be a feature map"),
            }
        }
    }

    #[test]
    fn all_scales_valid() {
        for scale in [ModelScale::Standard, ModelScale::Reduced, ModelScale::Tiny] {
            ssd_mobilenet(scale).infer_shapes().unwrap();
        }
    }
}
