//! BERT-base encoder (Devlin et al., 2019) — `TR` and `L` layers.
//!
//! The graph models the compute of a SQuAD-style question-answering head:
//! token embeddings are the input (embedding lookup is not
//! compute-intensive and is elided, as the paper's front-end also runs
//! non-intensive ops natively), followed by encoder layers of multi-head
//! self-attention and feed-forward blocks, and a 2-logit span classifier.

use crate::{LayerClass, ModelId, ModelScale, ModelSpec, NodeId, OpSpec, TensorShape};

/// BERT-base hidden dimension.
pub const HIDDEN: usize = 768;
/// BERT-base feed-forward dimension.
pub const FFN: usize = 3072;
/// BERT-base attention head count.
pub const HEADS: usize = 12;

/// Adds one encoder layer; returns the output node id.
fn encoder_layer(m: &mut ModelSpec, name: &str, from: NodeId) -> NodeId {
    let tr = LayerClass::Transformer;
    let lin = |m: &mut ModelSpec, n: String, f: NodeId, i: usize, o: usize| {
        m.add(
            n,
            OpSpec::Linear {
                in_features: i,
                out_features: o,
            },
            &[f],
            Some(tr),
        )
    };

    let q = lin(m, format!("{name}_q"), from, HIDDEN, HIDDEN);
    let k = lin(m, format!("{name}_k"), from, HIDDEN, HIDDEN);
    let v = lin(m, format!("{name}_v"), from, HIDDEN, HIDDEN);
    let att = m.add(
        format!("{name}_attention"),
        OpSpec::Attention { heads: HEADS },
        &[q, k, v],
        Some(tr),
    );
    let o = lin(m, format!("{name}_o"), att, HIDDEN, HIDDEN);
    let add1 = m.add(format!("{name}_add1"), OpSpec::Add, &[o, from], None);
    let ln1 = m.add(format!("{name}_ln1"), OpSpec::LayerNorm, &[add1], None);

    let ff1 = lin(m, format!("{name}_ffn1"), ln1, HIDDEN, FFN);
    let gelu = m.add(format!("{name}_gelu"), OpSpec::Gelu, &[ff1], None);
    let ff2 = lin(m, format!("{name}_ffn2"), gelu, FFN, HIDDEN);
    let add2 = m.add(format!("{name}_add2"), OpSpec::Add, &[ff2, ln1], None);
    m.add(format!("{name}_ln2"), OpSpec::LayerNorm, &[add2], None)
}

/// Builds the BERT-base encoder stack with a 2-logit span classifier
/// head. Scale selects only the sequence length; the encoder depth is
/// always the published 12 layers, so the graph structure (and the set of
/// distinct GEMM shapes) is identical at every scale.
pub fn bert(scale: ModelScale) -> ModelSpec {
    let seq = scale.seq_len();
    let mut m = ModelSpec::new(ModelId::Bert, TensorShape::Tokens { seq, dim: HIDDEN });
    let mut x: NodeId = 0;
    for layer in 0..scale.bert_layers() {
        x = encoder_layer(&mut m, &format!("enc{layer}"), x);
    }
    let logits = m.add(
        "qa_outputs",
        OpSpec::Linear {
            in_features: HIDDEN,
            out_features: 2,
        },
        &[x],
        Some(LayerClass::Linear),
    );
    m.add("log_softmax", OpSpec::LogSoftmax, &[logits], None);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_bert_has_12_layers_of_6_gemms() {
        let m = bert(ModelScale::Standard);
        let linears = m
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpSpec::Linear { .. }))
            .count();
        // 12 layers * 6 projections + classifier.
        assert_eq!(linears, 12 * 6 + 1);
        let attns = m
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpSpec::Attention { .. }))
            .count();
        assert_eq!(attns, 12);
    }

    #[test]
    fn residual_streams_stay_hidden_sized() {
        let m = bert(ModelScale::Reduced);
        let shapes = m.infer_shapes().unwrap();
        let seq = ModelScale::Reduced.seq_len();
        for (i, n) in m.nodes().iter().enumerate() {
            if matches!(n.op, OpSpec::LayerNorm) {
                assert_eq!(shapes[i], TensorShape::Tokens { seq, dim: HIDDEN });
            }
        }
    }

    #[test]
    fn classifier_emits_two_logits() {
        let m = bert(ModelScale::Tiny);
        let shapes = m.infer_shapes().unwrap();
        assert_eq!(
            shapes[m.output()],
            TensorShape::Tokens {
                seq: ModelScale::Tiny.seq_len(),
                dim: 2
            }
        );
    }

    #[test]
    fn ffn_is_the_dominant_gemm() {
        let m = bert(ModelScale::Standard);
        // FFN GEMMs are 768x3072: 2 * 12 layers of them dominate MACs.
        let total = m.total_macs();
        let ffn_macs = (2 * 12 * 128 * HIDDEN * FFN) as u64;
        assert!(
            ffn_macs * 10 > total * 6,
            "ffn {ffn_macs} not dominant in {total}"
        );
    }
}
