//! VGG-16 (Simonyan & Zisserman, 2014) — `C` and `L` dominant layers.

use super::{fc_dim, num_classes, ShapeTracker};
use crate::{LayerClass, ModelId, ModelScale, ModelSpec, NodeId, OpSpec, TensorShape};
use stonne_tensor::Conv2dGeom;

/// Builds VGG-16: thirteen 3×3 convolutions in five pooled stages
/// (64-64 / 128-128 / 256×3 / 512×3 / 512×3) plus three FC layers.
pub fn vgg16(scale: ModelScale) -> ModelSpec {
    let hw = scale.image_hw();
    let mut m = ModelSpec::new(ModelId::Vgg16, TensorShape::Feature { c: 3, h: hw, w: hw });
    let mut t = ShapeTracker::new(3, hw);
    let c = LayerClass::Convolution;

    // (stage channel width, conv count) per published configuration D.
    let stages: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    let mut x: NodeId = 0;
    let mut in_c = 3;
    for (s, &(width, count)) in stages.iter().enumerate() {
        for i in 0..count {
            let name = format!("conv{}_{}", s + 1, i + 1);
            x = t.conv_relu(
                &mut m,
                &name,
                x,
                Conv2dGeom::new(in_c, width, 3, 3, 1, 1, 1),
                c,
            );
            in_c = width;
        }
        // Stop pooling once the map is already 1x1 (tiny scale).
        if t.h > 1 {
            x = t.maxpool(&mut m, &format!("pool{}", s + 1), x, 2, 2);
        }
    }

    let flat = m.add("flatten", OpSpec::Flatten, &[x], None);
    let in_features = t.c * t.h * t.w;
    let fcw = fc_dim(scale);
    let l = LayerClass::Linear;
    let fc1 = m.add(
        "fc1",
        OpSpec::Linear {
            in_features,
            out_features: fcw,
        },
        &[flat],
        Some(l),
    );
    let r1 = m.add("fc1_relu", OpSpec::Relu, &[fc1], None);
    let fc2 = m.add(
        "fc2",
        OpSpec::Linear {
            in_features: fcw,
            out_features: fcw,
        },
        &[r1],
        Some(l),
    );
    let r2 = m.add("fc2_relu", OpSpec::Relu, &[fc2], None);
    let fc3 = m.add(
        "fc3",
        OpSpec::Linear {
            in_features: fcw,
            out_features: num_classes(scale),
        },
        &[r2],
        Some(l),
    );
    m.add("log_softmax", OpSpec::LogSoftmax, &[fc3], None);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_convs_three_linears() {
        let m = vgg16(ModelScale::Reduced);
        let convs = m
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpSpec::Conv2d { .. }))
            .count();
        let linears = m
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpSpec::Linear { .. }))
            .count();
        assert_eq!(convs, 13);
        assert_eq!(linears, 3);
    }

    #[test]
    fn standard_final_map_is_512x7x7() {
        let m = vgg16(ModelScale::Standard);
        let shapes = m.infer_shapes().unwrap();
        let flat = m
            .nodes()
            .iter()
            .position(|n| matches!(n.op, OpSpec::Flatten))
            .unwrap();
        let pre = m.nodes()[flat].inputs[0];
        assert_eq!(shapes[pre], TensorShape::Feature { c: 512, h: 7, w: 7 });
    }

    #[test]
    fn vgg_is_heaviest_model() {
        // The published model is ~15.5 GMACs; sanity check the zoo encoding.
        let macs = vgg16(ModelScale::Standard).total_macs();
        assert!(
            macs > 14_000_000_000 && macs < 17_000_000_000,
            "macs={macs}"
        );
    }
}
