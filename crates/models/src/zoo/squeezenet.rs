//! SqueezeNet 1.0 (Iandola et al., 2016) — `SC`/`EC` dominant layers.

use super::{num_classes, ShapeTracker};
use crate::{LayerClass, ModelId, ModelScale, ModelSpec, NodeId, OpSpec, TensorShape};
use stonne_tensor::Conv2dGeom;

/// Adds one fire module: 1×1 squeeze, then parallel 1×1/3×3 expands whose
/// outputs concatenate channel-wise. Returns the concat node id.
fn fire(
    m: &mut ModelSpec,
    t: &mut ShapeTracker,
    name: &str,
    from: NodeId,
    squeeze_c: usize,
    expand_c: usize,
) -> NodeId {
    let in_c = t.c;
    let s = t.conv_relu(
        m,
        &format!("{name}_squeeze1x1"),
        from,
        Conv2dGeom::new(in_c, squeeze_c, 1, 1, 1, 0, 1),
        LayerClass::SqueezeConv,
    );
    // Both expands read the squeeze output; track shapes on a fork.
    let mut t1 = *t;
    t1.c = squeeze_c;
    let mut t2 = t1;
    let e1 = t1.conv_relu(
        m,
        &format!("{name}_expand1x1"),
        s,
        Conv2dGeom::new(squeeze_c, expand_c, 1, 1, 1, 0, 1),
        LayerClass::ExpandConv,
    );
    let e3 = t2.conv_relu(
        m,
        &format!("{name}_expand3x3"),
        s,
        Conv2dGeom::new(squeeze_c, expand_c, 3, 3, 1, 1, 1),
        LayerClass::ExpandConv,
    );
    let cat = m.add(format!("{name}_concat"), OpSpec::Concat, &[e1, e3], None);
    t.c = 2 * expand_c;
    t.h = t1.h;
    t.w = t1.w;
    cat
}

/// Builds SqueezeNet 1.0: 7×7/2 stem, eight fire modules with interleaved
/// max-pools, and a 1×1 classifier convolution with global average pooling.
pub fn squeezenet(scale: ModelScale) -> ModelSpec {
    let hw = scale.image_hw();
    let mut m = ModelSpec::new(
        ModelId::SqueezeNet,
        TensorShape::Feature { c: 3, h: hw, w: hw },
    );
    let mut t = ShapeTracker::new(3, hw);

    let x = t.conv_relu(
        &mut m,
        "conv1",
        0,
        Conv2dGeom::new(3, 96, 7, 7, 2, 2, 1),
        LayerClass::Convolution,
    );
    let x = t.maxpool(&mut m, "pool1", x, 3, 2);

    let x = fire(&mut m, &mut t, "fire2", x, 16, 64);
    let x = fire(&mut m, &mut t, "fire3", x, 16, 64);
    let x = fire(&mut m, &mut t, "fire4", x, 32, 128);
    let x = t.maxpool(&mut m, "pool4", x, 3, 2);
    let x = fire(&mut m, &mut t, "fire5", x, 32, 128);
    let x = fire(&mut m, &mut t, "fire6", x, 48, 192);
    let x = fire(&mut m, &mut t, "fire7", x, 48, 192);
    let x = fire(&mut m, &mut t, "fire8", x, 64, 256);
    let x = t.maxpool(&mut m, "pool8", x, 3, 2);
    let x = fire(&mut m, &mut t, "fire9", x, 64, 256);

    let conv10 = t.conv_relu(
        &mut m,
        "conv10",
        x,
        Conv2dGeom::new(512, num_classes(scale), 1, 1, 1, 0, 1),
        LayerClass::Convolution,
    );
    let gap = m.add("avgpool", OpSpec::GlobalAvgPool, &[conv10], None);
    let flat = m.add("flatten", OpSpec::Flatten, &[gap], None);
    m.add("log_softmax", OpSpec::LogSoftmax, &[flat], None);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_modules_concat_to_published_widths() {
        let m = squeezenet(ModelScale::Standard);
        let shapes = m.infer_shapes().unwrap();
        let widths: Vec<usize> = m
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, OpSpec::Concat))
            .map(|(i, _)| match shapes[i] {
                TensorShape::Feature { c, .. } => c,
                _ => 0,
            })
            .collect();
        assert_eq!(widths, vec![128, 128, 256, 256, 384, 384, 512, 512]);
    }

    #[test]
    fn squeeze_and_expand_classes_are_tagged() {
        let m = squeezenet(ModelScale::Reduced);
        let sc = m
            .nodes()
            .iter()
            .filter(|n| n.class == Some(LayerClass::SqueezeConv))
            .count();
        let ec = m
            .nodes()
            .iter()
            .filter(|n| n.class == Some(LayerClass::ExpandConv))
            .count();
        assert_eq!(sc, 8);
        assert_eq!(ec, 16);
    }

    #[test]
    fn all_scales_valid() {
        for scale in [ModelScale::Standard, ModelScale::Reduced, ModelScale::Tiny] {
            squeezenet(scale).infer_shapes().unwrap();
        }
    }
}
