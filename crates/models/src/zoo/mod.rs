//! Builders for the seven DNN models of Table I.
//!
//! Each builder returns a [`ModelSpec`] whose channel/layer structure
//! follows the published architecture; the [`ModelScale`] parameter selects
//! the input resolution (see [`ModelScale`] for why reduced scales exist).

mod alexnet;
mod bert;
mod mobilenet;
mod resnet50;
mod squeezenet;
mod ssd_mobilenet;
mod vgg16;

pub use alexnet::alexnet;
pub use bert::bert;
pub use mobilenet::mobilenet_v1;
pub use resnet50::resnet50;
pub use squeezenet::squeezenet;
pub use ssd_mobilenet::ssd_mobilenet;
pub use vgg16::vgg16;

use crate::{LayerClass, ModelId, ModelScale, ModelSpec, NodeId, OpSpec};
use stonne_tensor::Conv2dGeom;

/// Builds the model for `id` at the given scale.
pub fn build(id: ModelId, scale: ModelScale) -> ModelSpec {
    match id {
        ModelId::MobileNetV1 => mobilenet_v1(scale),
        ModelId::SqueezeNet => squeezenet(scale),
        ModelId::AlexNet => alexnet(scale),
        ModelId::ResNet50 => resnet50(scale),
        ModelId::Vgg16 => vgg16(scale),
        ModelId::SsdMobileNet => ssd_mobilenet(scale),
        ModelId::Bert => bert(scale),
    }
}

/// All seven models at the given scale, in Table I order.
pub fn all_models(scale: ModelScale) -> Vec<ModelSpec> {
    ModelId::ALL.iter().map(|&id| build(id, scale)).collect()
}

/// Classifier width per scale (4096 at the published scale).
pub(crate) fn fc_dim(scale: ModelScale) -> usize {
    match scale {
        ModelScale::Standard => 4096,
        ModelScale::Reduced => 1024,
        ModelScale::Tiny => 128,
    }
}

/// Output class count per scale (1000 ImageNet classes at standard).
pub(crate) fn num_classes(scale: ModelScale) -> usize {
    match scale {
        ModelScale::Standard => 1000,
        ModelScale::Reduced => 100,
        ModelScale::Tiny => 10,
    }
}

/// Builder-side tracker for the running feature-map shape, so pool windows
/// can adapt at tiny scales without breaking the published structure.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShapeTracker {
    pub c: usize,
    pub h: usize,
    pub w: usize,
}

impl ShapeTracker {
    pub(crate) fn new(c: usize, hw: usize) -> Self {
        Self { c, h: hw, w: hw }
    }

    /// Adds `conv + relu`, updating the tracked shape; returns the relu id.
    pub(crate) fn conv_relu(
        &mut self,
        m: &mut ModelSpec,
        name: &str,
        from: NodeId,
        geom: Conv2dGeom,
        class: LayerClass,
    ) -> NodeId {
        let conv = m.add(name, OpSpec::Conv2d { geom }, &[from], Some(class));
        let (oh, ow) = geom.out_hw(self.h, self.w);
        self.c = geom.out_c;
        self.h = oh;
        self.w = ow;
        m.add(format!("{name}_relu"), OpSpec::Relu, &[conv], None)
    }

    /// Adds a conv without activation; returns the conv id.
    pub(crate) fn conv(
        &mut self,
        m: &mut ModelSpec,
        name: &str,
        from: NodeId,
        geom: Conv2dGeom,
        class: LayerClass,
    ) -> NodeId {
        let conv = m.add(name, OpSpec::Conv2d { geom }, &[from], Some(class));
        let (oh, ow) = geom.out_hw(self.h, self.w);
        self.c = geom.out_c;
        self.h = oh;
        self.w = ow;
        conv
    }

    /// Adds a max-pool, shrinking the window when the map is small.
    pub(crate) fn maxpool(
        &mut self,
        m: &mut ModelSpec,
        name: &str,
        from: NodeId,
        window: usize,
        stride: usize,
    ) -> NodeId {
        let window = window.min(self.h).min(self.w).max(1);
        let stride = stride.min(window);
        let node = m.add(name, OpSpec::MaxPool { window, stride }, &[from], None);
        self.h = (self.h - window) / stride + 1;
        self.w = (self.w - window) / stride + 1;
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorShape;

    #[test]
    fn all_models_pass_shape_inference_at_every_scale() {
        for scale in [ModelScale::Standard, ModelScale::Reduced, ModelScale::Tiny] {
            for model in all_models(scale) {
                let shapes = model
                    .infer_shapes()
                    .unwrap_or_else(|e| panic!("{} @ {:?}: {e}", model.id(), scale));
                assert_eq!(shapes.len(), model.nodes().len());
            }
        }
    }

    #[test]
    fn every_model_has_offloadable_work() {
        for model in all_models(ModelScale::Reduced) {
            assert!(
                model.offloaded_nodes().len() >= 3,
                "{} has too few offloaded layers",
                model.id()
            );
            assert!(model.total_macs() > 0, "{} has no MACs", model.id());
        }
    }

    #[test]
    fn image_models_start_from_rgb_input() {
        for id in [
            ModelId::AlexNet,
            ModelId::Vgg16,
            ModelId::ResNet50,
            ModelId::SqueezeNet,
            ModelId::MobileNetV1,
            ModelId::SsdMobileNet,
        ] {
            let m = build(id, ModelScale::Reduced);
            assert_eq!(
                m.input_shape(),
                TensorShape::Feature { c: 3, h: 64, w: 64 },
                "{id}"
            );
        }
    }

    #[test]
    fn model_macs_ordering_is_plausible() {
        // VGG-16 is by far the heaviest CNN; MobileNet the lightest
        // full-size CNN — this ordering must hold at every scale.
        let vgg = build(ModelId::Vgg16, ModelScale::Reduced).total_macs();
        let mobile = build(ModelId::MobileNetV1, ModelScale::Reduced).total_macs();
        let alex = build(ModelId::AlexNet, ModelScale::Reduced).total_macs();
        assert!(vgg > alex, "vgg {vgg} <= alex {alex}");
        assert!(vgg > 10 * mobile, "vgg {vgg} not >> mobilenet {mobile}");
    }

    #[test]
    fn standard_scale_matches_published_mac_counts_roughly() {
        // VGG-16 at 224² is ~15.5 GMACs; ResNet-50 ~4.1 GMACs;
        // AlexNet ~0.7 GMACs; MobileNetV1 ~0.57 GMACs.
        let vgg = build(ModelId::Vgg16, ModelScale::Standard).total_macs() as f64;
        assert!((vgg / 15.5e9 - 1.0).abs() < 0.15, "vgg={vgg}");
        let resnet = build(ModelId::ResNet50, ModelScale::Standard).total_macs() as f64;
        assert!((resnet / 4.1e9 - 1.0).abs() < 0.15, "resnet={resnet}");
        let mobile = build(ModelId::MobileNetV1, ModelScale::Standard).total_macs() as f64;
        assert!((mobile / 0.57e9 - 1.0).abs() < 0.2, "mobilenet={mobile}");
    }
}
