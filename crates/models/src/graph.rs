//! Model graphs: SSA-form DAGs of operators with shape inference.

use crate::layer::{LayerClass, ModelId};
use serde::{Deserialize, Serialize};
use std::fmt;
use stonne_tensor::Conv2dGeom;

/// Index of a node inside a [`ModelSpec`].
pub type NodeId = usize;

/// Shape of a value flowing between graph nodes (batch size is implicit 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorShape {
    /// A CHW feature map.
    Feature {
        /// Channels.
        c: usize,
        /// Height.
        h: usize,
        /// Width.
        w: usize,
    },
    /// A token matrix (`seq × dim`), used by linear and transformer ops.
    Tokens {
        /// Sequence length (1 for classifier heads).
        seq: usize,
        /// Embedding / feature dimension.
        dim: usize,
    },
}

impl TensorShape {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        match *self {
            TensorShape::Feature { c, h, w } => c * h * w,
            TensorShape::Tokens { seq, dim } => seq * dim,
        }
    }

    /// Returns `true` for degenerate zero-element shapes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TensorShape::Feature { c, h, w } => write!(f, "{c}x{h}x{w}"),
            TensorShape::Tokens { seq, dim } => write!(f, "{seq}x{dim}"),
        }
    }
}

/// An operator in a model graph.
///
/// Compute-intensive ops (`Conv2d`, `Linear`, `MatMul`, `Attention`'s inner
/// products) are what the DL front-end offloads to the simulated
/// accelerator; the rest run natively, mirroring Fig. 2b of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OpSpec {
    /// Graph input placeholder; must be node 0 and have no inputs.
    Input,
    /// 2-D (possibly grouped/depthwise) convolution.
    Conv2d {
        /// Convolution geometry.
        geom: Conv2dGeom,
    },
    /// Max pooling with a square window.
    MaxPool {
        /// Window side.
        window: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling to `c × 1 × 1`.
    GlobalAvgPool,
    /// ReLU activation (kept native; creates activation sparsity).
    Relu,
    /// GeLU activation (BERT FFN).
    Gelu,
    /// Element-wise addition of two same-shape inputs (residual joins).
    Add,
    /// Channel-wise concatenation of feature maps (SqueezeNet fire, SSD).
    Concat,
    /// Flattens a feature map into a `1 × (c·h·w)` token matrix.
    Flatten,
    /// Fully-connected layer over the last dimension.
    Linear {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Multi-head scaled dot-product attention over projected Q, K, V.
    Attention {
        /// Number of attention heads; must divide the model dimension.
        heads: usize,
    },
    /// Row-wise softmax over a token matrix.
    Softmax,
    /// Row-wise log-softmax (classifier heads).
    LogSoftmax,
    /// Layer normalization over the feature dimension.
    LayerNorm,
}

impl OpSpec {
    /// Whether the DL front-end offloads this op to the accelerator.
    pub fn is_offloaded(&self) -> bool {
        matches!(
            self,
            OpSpec::Conv2d { .. } | OpSpec::Linear { .. } | OpSpec::Attention { .. }
        )
    }

    /// Number of inputs the op consumes (`None` = variadic, ≥ 2).
    pub fn arity(&self) -> Option<usize> {
        match self {
            OpSpec::Input => Some(0),
            OpSpec::Add => Some(2),
            OpSpec::Attention { .. } => Some(3),
            OpSpec::Concat => None,
            _ => Some(1),
        }
    }
}

/// A node of a model graph: one op plus its input wiring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Human-readable layer name (e.g. `"conv2_1"`).
    pub name: String,
    /// The operator.
    pub op: OpSpec,
    /// Producing nodes for each operand.
    pub inputs: Vec<NodeId>,
    /// Paper layer-class tag for offloaded layers (used in figures).
    pub class: Option<LayerClass>,
}

/// Errors from graph validation / shape inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// A node references an input with an id ≥ its own (not SSA).
    ForwardReference {
        /// The offending node.
        node: NodeId,
        /// The referenced id.
        input: NodeId,
    },
    /// A node has the wrong number of inputs for its op.
    BadArity {
        /// The offending node.
        node: NodeId,
        /// Expected input count (`None` = at least 2).
        expected: Option<usize>,
        /// Actual input count.
        actual: usize,
    },
    /// Operand shape is incompatible with the op.
    Incompatible {
        /// The offending node.
        node: NodeId,
        /// Explanation.
        reason: String,
    },
    /// Node 0 must be the graph input.
    MissingInput,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::ForwardReference { node, input } => {
                write!(f, "node {node} references non-prior node {input}")
            }
            ShapeError::BadArity {
                node,
                expected,
                actual,
            } => match expected {
                Some(e) => write!(f, "node {node} expects {e} inputs, got {actual}"),
                None => write!(f, "node {node} expects at least 2 inputs, got {actual}"),
            },
            ShapeError::Incompatible { node, reason } => {
                write!(f, "node {node}: {reason}")
            }
            ShapeError::MissingInput => write!(f, "node 0 must be the graph input"),
        }
    }
}

impl std::error::Error for ShapeError {}

/// A complete model description: identity, input shape, node DAG, and the
/// Table I weight-sparsity target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    id: ModelId,
    input_shape: TensorShape,
    nodes: Vec<NodeSpec>,
    weight_sparsity: f64,
}

impl ModelSpec {
    /// Starts a model with its input node (node 0).
    pub fn new(id: ModelId, input_shape: TensorShape) -> Self {
        let input = NodeSpec {
            name: "input".to_owned(),
            op: OpSpec::Input,
            inputs: vec![],
            class: None,
        };
        Self {
            id,
            input_shape,
            nodes: vec![input],
            weight_sparsity: id.weight_sparsity(),
        }
    }

    /// Overrides the weight-sparsity target (default: Table I value).
    pub fn with_weight_sparsity(mut self, sparsity: f64) -> Self {
        assert!((0.0..=1.0).contains(&sparsity));
        self.weight_sparsity = sparsity;
        self
    }

    /// Appends a node and returns its id.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        op: OpSpec,
        inputs: &[NodeId],
        class: Option<LayerClass>,
    ) -> NodeId {
        self.nodes.push(NodeSpec {
            name: name.into(),
            op,
            inputs: inputs.to_vec(),
            class,
        });
        self.nodes.len() - 1
    }

    /// Model identity.
    pub fn id(&self) -> ModelId {
        self.id
    }

    /// Shape of the graph input.
    pub fn input_shape(&self) -> TensorShape {
        self.input_shape
    }

    /// All nodes, in SSA order (node 0 is the input).
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Target weight sparsity for this model.
    pub fn weight_sparsity(&self) -> f64 {
        self.weight_sparsity
    }

    /// Id of the final (output) node.
    pub fn output(&self) -> NodeId {
        self.nodes.len() - 1
    }

    /// Ids of nodes whose op is offloaded to the accelerator.
    pub fn offloaded_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].op.is_offloaded())
            .collect()
    }

    /// Validates the graph and computes every node's output shape.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the graph is not SSA-ordered, an op has
    /// the wrong arity, or operand shapes are incompatible.
    pub fn infer_shapes(&self) -> Result<Vec<TensorShape>, ShapeError> {
        let mut shapes: Vec<TensorShape> = Vec::with_capacity(self.nodes.len());
        for (i, node) in self.nodes.iter().enumerate() {
            if i == 0 && node.op != OpSpec::Input {
                return Err(ShapeError::MissingInput);
            }
            if let Some(expected) = node.op.arity() {
                if node.inputs.len() != expected {
                    return Err(ShapeError::BadArity {
                        node: i,
                        expected: Some(expected),
                        actual: node.inputs.len(),
                    });
                }
            } else if node.inputs.len() < 2 {
                return Err(ShapeError::BadArity {
                    node: i,
                    expected: None,
                    actual: node.inputs.len(),
                });
            }
            for &inp in &node.inputs {
                if inp >= i {
                    return Err(ShapeError::ForwardReference {
                        node: i,
                        input: inp,
                    });
                }
            }
            let shape = self.infer_node(i, node, &shapes)?;
            shapes.push(shape);
        }
        Ok(shapes)
    }

    fn infer_node(
        &self,
        i: NodeId,
        node: &NodeSpec,
        shapes: &[TensorShape],
    ) -> Result<TensorShape, ShapeError> {
        let input = |idx: usize| shapes[node.inputs[idx]];
        let feature = |idx: usize| -> Result<(usize, usize, usize), ShapeError> {
            match input(idx) {
                TensorShape::Feature { c, h, w } => Ok((c, h, w)),
                other => Err(ShapeError::Incompatible {
                    node: i,
                    reason: format!("expected feature map, got {other}"),
                }),
            }
        };
        let tokens = |idx: usize| -> Result<(usize, usize), ShapeError> {
            match input(idx) {
                TensorShape::Tokens { seq, dim } => Ok((seq, dim)),
                other => Err(ShapeError::Incompatible {
                    node: i,
                    reason: format!("expected token matrix, got {other}"),
                }),
            }
        };

        match node.op {
            OpSpec::Input => Ok(self.input_shape),
            OpSpec::Conv2d { geom } => {
                let (c, h, w) = feature(0)?;
                if c != geom.in_c {
                    return Err(ShapeError::Incompatible {
                        node: i,
                        reason: format!("conv expects {} channels, got {c}", geom.in_c),
                    });
                }
                let (oh, ow) = geom.out_hw(h, w);
                Ok(TensorShape::Feature {
                    c: geom.out_c,
                    h: oh,
                    w: ow,
                })
            }
            OpSpec::MaxPool { window, stride } => {
                let (c, h, w) = feature(0)?;
                if h < window || w < window {
                    return Err(ShapeError::Incompatible {
                        node: i,
                        reason: format!("pool window {window} larger than input {h}x{w}"),
                    });
                }
                Ok(TensorShape::Feature {
                    c,
                    h: (h - window) / stride + 1,
                    w: (w - window) / stride + 1,
                })
            }
            OpSpec::GlobalAvgPool => {
                let (c, _, _) = feature(0)?;
                Ok(TensorShape::Feature { c, h: 1, w: 1 })
            }
            OpSpec::Relu | OpSpec::Gelu => Ok(input(0)),
            OpSpec::Add => {
                if input(0) != input(1) {
                    return Err(ShapeError::Incompatible {
                        node: i,
                        reason: format!("add shapes differ: {} vs {}", input(0), input(1)),
                    });
                }
                Ok(input(0))
            }
            OpSpec::Concat => {
                let (c0, h0, w0) = feature(0)?;
                let mut c_total = c0;
                for idx in 1..node.inputs.len() {
                    let (c, h, w) = feature(idx)?;
                    if (h, w) != (h0, w0) {
                        return Err(ShapeError::Incompatible {
                            node: i,
                            reason: format!("concat spatial mismatch: {h0}x{w0} vs {h}x{w}"),
                        });
                    }
                    c_total += c;
                }
                Ok(TensorShape::Feature {
                    c: c_total,
                    h: h0,
                    w: w0,
                })
            }
            OpSpec::Flatten => {
                let (c, h, w) = feature(0)?;
                Ok(TensorShape::Tokens {
                    seq: 1,
                    dim: c * h * w,
                })
            }
            OpSpec::Linear {
                in_features,
                out_features,
            } => {
                let (seq, dim) = tokens(0)?;
                if dim != in_features {
                    return Err(ShapeError::Incompatible {
                        node: i,
                        reason: format!("linear expects dim {in_features}, got {dim}"),
                    });
                }
                Ok(TensorShape::Tokens {
                    seq,
                    dim: out_features,
                })
            }
            OpSpec::Attention { heads } => {
                let q = tokens(0)?;
                let k = tokens(1)?;
                let v = tokens(2)?;
                if q != k || k != v {
                    return Err(ShapeError::Incompatible {
                        node: i,
                        reason: "attention Q/K/V shapes must match".to_owned(),
                    });
                }
                if q.1 % heads != 0 {
                    return Err(ShapeError::Incompatible {
                        node: i,
                        reason: format!("dim {} not divisible by {heads} heads", q.1),
                    });
                }
                Ok(TensorShape::Tokens { seq: q.0, dim: q.1 })
            }
            OpSpec::Softmax | OpSpec::LogSoftmax | OpSpec::LayerNorm => {
                let (seq, dim) = tokens(0)?;
                Ok(TensorShape::Tokens { seq, dim })
            }
        }
    }

    /// Total multiply-accumulate count of the offloaded ops.
    ///
    /// # Panics
    ///
    /// Panics if the graph does not pass shape inference.
    pub fn total_macs(&self) -> u64 {
        let shapes = self.infer_shapes().expect("valid graph");
        let mut total = 0u64;
        for (i, node) in self.nodes.iter().enumerate() {
            total += match node.op {
                OpSpec::Conv2d { geom } => {
                    if let TensorShape::Feature { h, w, .. } = shapes[node.inputs[0]] {
                        geom.macs(1, h, w)
                    } else {
                        0
                    }
                }
                OpSpec::Linear {
                    in_features,
                    out_features,
                } => {
                    if let TensorShape::Tokens { seq, .. } = shapes[node.inputs[0]] {
                        (seq * in_features * out_features) as u64
                    } else {
                        0
                    }
                }
                OpSpec::Attention { .. } => {
                    if let TensorShape::Tokens { seq, dim } = shapes[i] {
                        // Two seq×seq×(dim/heads) matmuls per head = 2·seq²·dim.
                        2 * (seq * seq * dim) as u64
                    } else {
                        0
                    }
                }
                _ => 0,
            };
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cnn() -> ModelSpec {
        let mut m = ModelSpec::new(ModelId::AlexNet, TensorShape::Feature { c: 3, h: 8, w: 8 });
        let conv = m.add(
            "conv1",
            OpSpec::Conv2d {
                geom: Conv2dGeom::new(3, 4, 3, 3, 1, 1, 1),
            },
            &[0],
            Some(LayerClass::Convolution),
        );
        let relu = m.add("relu1", OpSpec::Relu, &[conv], None);
        let pool = m.add(
            "pool1",
            OpSpec::MaxPool {
                window: 2,
                stride: 2,
            },
            &[relu],
            None,
        );
        let flat = m.add("flatten", OpSpec::Flatten, &[pool], None);
        let fc = m.add(
            "fc",
            OpSpec::Linear {
                in_features: 4 * 4 * 4,
                out_features: 10,
            },
            &[flat],
            Some(LayerClass::Linear),
        );
        m.add("softmax", OpSpec::LogSoftmax, &[fc], None);
        m
    }

    #[test]
    fn shape_inference_on_tiny_cnn() {
        let m = tiny_cnn();
        let shapes = m.infer_shapes().unwrap();
        assert_eq!(shapes[1], TensorShape::Feature { c: 4, h: 8, w: 8 });
        assert_eq!(shapes[3], TensorShape::Feature { c: 4, h: 4, w: 4 });
        assert_eq!(shapes[5], TensorShape::Tokens { seq: 1, dim: 10 });
    }

    #[test]
    fn offloaded_nodes_are_conv_and_linear() {
        let m = tiny_cnn();
        let off = m.offloaded_nodes();
        assert_eq!(off.len(), 2);
        assert!(matches!(m.nodes()[off[0]].op, OpSpec::Conv2d { .. }));
        assert!(matches!(m.nodes()[off[1]].op, OpSpec::Linear { .. }));
    }

    #[test]
    fn macs_are_counted() {
        let m = tiny_cnn();
        // conv: 4 filters * 8*8 outputs * 27 taps + fc: 64*10.
        assert_eq!(m.total_macs(), 4 * 64 * 27 + 640);
    }

    #[test]
    fn channel_mismatch_is_rejected() {
        let mut m = ModelSpec::new(ModelId::AlexNet, TensorShape::Feature { c: 3, h: 8, w: 8 });
        m.add(
            "conv_bad",
            OpSpec::Conv2d {
                geom: Conv2dGeom::new(5, 4, 3, 3, 1, 1, 1),
            },
            &[0],
            None,
        );
        assert!(matches!(
            m.infer_shapes(),
            Err(ShapeError::Incompatible { node: 1, .. })
        ));
    }

    #[test]
    fn forward_reference_is_rejected() {
        let mut m = ModelSpec::new(ModelId::AlexNet, TensorShape::Feature { c: 3, h: 8, w: 8 });
        m.add("relu", OpSpec::Relu, &[2], None);
        assert!(matches!(
            m.infer_shapes(),
            Err(ShapeError::ForwardReference { node: 1, input: 2 })
        ));
    }

    #[test]
    fn add_requires_matching_shapes() {
        let mut m = ModelSpec::new(ModelId::ResNet50, TensorShape::Feature { c: 2, h: 4, w: 4 });
        let conv = m.add(
            "conv",
            OpSpec::Conv2d {
                geom: Conv2dGeom::new(2, 4, 1, 1, 1, 0, 1),
            },
            &[0],
            None,
        );
        m.add("bad_add", OpSpec::Add, &[0, conv], None);
        assert!(m.infer_shapes().is_err());
    }

    #[test]
    fn concat_sums_channels() {
        let mut m = ModelSpec::new(
            ModelId::SqueezeNet,
            TensorShape::Feature { c: 2, h: 4, w: 4 },
        );
        let a = m.add(
            "a",
            OpSpec::Conv2d {
                geom: Conv2dGeom::new(2, 3, 1, 1, 1, 0, 1),
            },
            &[0],
            None,
        );
        let b = m.add(
            "b",
            OpSpec::Conv2d {
                geom: Conv2dGeom::new(2, 5, 3, 3, 1, 1, 1),
            },
            &[0],
            None,
        );
        let cat = m.add("cat", OpSpec::Concat, &[a, b], None);
        let shapes = m.infer_shapes().unwrap();
        assert_eq!(shapes[cat], TensorShape::Feature { c: 8, h: 4, w: 4 });
    }

    #[test]
    fn attention_shape_preserved() {
        let mut m = ModelSpec::new(ModelId::Bert, TensorShape::Tokens { seq: 8, dim: 16 });
        let q = m.add(
            "q",
            OpSpec::Linear {
                in_features: 16,
                out_features: 16,
            },
            &[0],
            None,
        );
        let k = m.add(
            "k",
            OpSpec::Linear {
                in_features: 16,
                out_features: 16,
            },
            &[0],
            None,
        );
        let v = m.add(
            "v",
            OpSpec::Linear {
                in_features: 16,
                out_features: 16,
            },
            &[0],
            None,
        );
        let att = m.add("att", OpSpec::Attention { heads: 4 }, &[q, k, v], None);
        let shapes = m.infer_shapes().unwrap();
        assert_eq!(shapes[att], TensorShape::Tokens { seq: 8, dim: 16 });
    }

    #[test]
    fn bad_arity_detected() {
        let mut m = ModelSpec::new(ModelId::AlexNet, TensorShape::Feature { c: 3, h: 8, w: 8 });
        m.add("add1", OpSpec::Add, &[0], None);
        assert!(matches!(
            m.infer_shapes(),
            Err(ShapeError::BadArity { node: 1, .. })
        ));
    }
}
