//! Layer classification tags and model identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The layer-type tags used throughout the paper's figures
/// (SC, EC, FC, C, L, TR, RF).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerClass {
    /// Regular convolution (`C`).
    Convolution,
    /// Squeeze convolution — SqueezeNet's 1×1 bottleneck (`SC`).
    SqueezeConv,
    /// Expand convolution — SqueezeNet's 1×1/3×3 expansion (`EC`).
    ExpandConv,
    /// Factorized (depthwise-separable) convolution — MobileNets (`FC`).
    FactorizedConv,
    /// Fully-connected / linear layer (`L`).
    Linear,
    /// Residual function — ResNet bottleneck convolutions (`RF`).
    ResidualFunction,
    /// Transformer building block — BERT attention/FFN GEMMs (`TR`).
    Transformer,
}

impl LayerClass {
    /// The short tag the paper uses in its plots.
    pub fn tag(&self) -> &'static str {
        match self {
            LayerClass::Convolution => "C",
            LayerClass::SqueezeConv => "SC",
            LayerClass::ExpandConv => "EC",
            LayerClass::FactorizedConv => "FC",
            LayerClass::Linear => "L",
            LayerClass::ResidualFunction => "RF",
            LayerClass::Transformer => "TR",
        }
    }
}

impl fmt::Display for LayerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Identifier of the seven DNN models explored in the paper (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelId {
    /// MobileNets-V1 (`M`), 75 % weight sparsity.
    MobileNetV1,
    /// SqueezeNet (`S`), 70 % weight sparsity.
    SqueezeNet,
    /// AlexNet (`A`), 78 % weight sparsity.
    AlexNet,
    /// ResNet-50 (`R`), 89 % weight sparsity.
    ResNet50,
    /// VGG-16 (`V`), 90 % weight sparsity.
    Vgg16,
    /// SSD-MobileNets (`S-M`), 75 % weight sparsity.
    SsdMobileNet,
    /// BERT (`B`), 60 % weight sparsity.
    Bert,
}

impl ModelId {
    /// All seven models, in the order Table I lists them.
    pub const ALL: [ModelId; 7] = [
        ModelId::MobileNetV1,
        ModelId::SqueezeNet,
        ModelId::AlexNet,
        ModelId::ResNet50,
        ModelId::Vgg16,
        ModelId::SsdMobileNet,
        ModelId::Bert,
    ];

    /// The four purely-CNN models used by the SNAPEA use case (Fig. 6).
    pub const CNN_MODELS: [ModelId; 4] = [
        ModelId::AlexNet,
        ModelId::SqueezeNet,
        ModelId::Vgg16,
        ModelId::ResNet50,
    ];

    /// The single-letter abbreviation used in the paper's plots.
    pub fn abbrev(&self) -> &'static str {
        match self {
            ModelId::MobileNetV1 => "M",
            ModelId::SqueezeNet => "S",
            ModelId::AlexNet => "A",
            ModelId::ResNet50 => "R",
            ModelId::Vgg16 => "V",
            ModelId::SsdMobileNet => "S-M",
            ModelId::Bert => "B",
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelId::MobileNetV1 => "MobileNets-V1",
            ModelId::SqueezeNet => "SqueezeNet",
            ModelId::AlexNet => "AlexNet",
            ModelId::ResNet50 => "ResNet-50",
            ModelId::Vgg16 => "VGG-16",
            ModelId::SsdMobileNet => "SSD-MobileNets",
            ModelId::Bert => "BERT",
        }
    }

    /// Target weight sparsity after unstructured pruning (Table I).
    pub fn weight_sparsity(&self) -> f64 {
        match self {
            ModelId::MobileNetV1 => 0.75,
            ModelId::SqueezeNet => 0.70,
            ModelId::AlexNet => 0.78,
            ModelId::ResNet50 => 0.89,
            ModelId::Vgg16 => 0.90,
            ModelId::SsdMobileNet => 0.75,
            ModelId::Bert => 0.60,
        }
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Input-resolution scale for building models.
///
/// `Standard` uses the published input sizes (224×224 images, 128-token
/// sequences). Cycle-level simulation of a full model at standard scale is
/// expensive (the original authors report 5 days on a cluster for the full
/// evaluation); `Reduced` keeps every model's channel/layer *structure*
/// intact but shrinks the spatial resolution and sequence length so full
/// workspace test + bench runs complete in minutes. `Tiny` shrinks further
/// for unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelScale {
    /// Published input sizes (224×224, seq 128).
    Standard,
    /// Reduced spatial/sequence sizes for tractable experiments.
    Reduced,
    /// Minimal sizes for unit tests.
    Tiny,
}

impl ModelScale {
    /// Image input resolution (height == width).
    pub fn image_hw(&self) -> usize {
        match self {
            ModelScale::Standard => 224,
            ModelScale::Reduced => 64,
            ModelScale::Tiny => 32,
        }
    }

    /// Transformer sequence length.
    pub fn seq_len(&self) -> usize {
        match self {
            ModelScale::Standard => 128,
            ModelScale::Reduced => 32,
            ModelScale::Tiny => 8,
        }
    }

    /// Number of BERT encoder layers.
    ///
    /// Scale-invariant: scaling must only shrink spatial extents
    /// (`image_hw`) and sequence length (`seq_len`), never the layer
    /// *structure* — otherwise per-scale layer counts diverge and the
    /// repeated-encoder shape sharing that layer-level studies (and the
    /// simulation cache) rely on disappears.
    pub fn bert_layers(&self) -> usize {
        12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsity_ratios_match_table1() {
        assert_eq!(ModelId::Vgg16.weight_sparsity(), 0.90);
        assert_eq!(ModelId::Bert.weight_sparsity(), 0.60);
        assert_eq!(ModelId::ResNet50.weight_sparsity(), 0.89);
    }

    #[test]
    fn all_models_have_unique_abbrevs() {
        let mut tags: Vec<&str> = ModelId::ALL.iter().map(|m| m.abbrev()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 7);
    }

    #[test]
    fn layer_class_tags() {
        assert_eq!(LayerClass::FactorizedConv.tag(), "FC");
        assert_eq!(LayerClass::Transformer.to_string(), "TR");
    }

    #[test]
    fn scales_are_ordered() {
        assert!(ModelScale::Standard.image_hw() > ModelScale::Reduced.image_hw());
        assert!(ModelScale::Reduced.image_hw() > ModelScale::Tiny.image_hw());
        assert!(ModelScale::Standard.seq_len() > ModelScale::Tiny.seq_len());
    }
}
