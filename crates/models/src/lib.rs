//! DNN model zoo for STONNE-rs experiments.
//!
//! This crate encodes, as shape-level architecture descriptions, the seven
//! contemporary DNN models of Table I of the STONNE paper:
//!
//! | Domain | Model | Weight sparsity | Dominant layers |
//! |---|---|---|---|
//! | Image classification | MobileNets-V1 | 75 % | factorized conv, linear |
//! | Image classification | SqueezeNet | 70 % | squeeze/expand conv |
//! | Image classification | AlexNet | 78 % | conv, linear |
//! | Image classification | ResNet-50 | 89 % | residual function, conv |
//! | Image classification | VGG-16 | 90 % | conv, linear |
//! | Object detection | SSD-MobileNets | 75 % | factorized conv, linear |
//! | Language processing | BERT | 60 % | transformer, linear |
//!
//! A model is a [`ModelSpec`]: a small SSA-form DAG of [`OpSpec`] nodes with
//! shape inference ([`ModelSpec::infer_shapes`]). The `stonne-nn` crate
//! attaches weights and executes these graphs, either natively (reference)
//! or offloaded onto the cycle-level simulator.
//!
//! The crate also provides [`workloads`]: the individual layer/GEMM
//! microbenchmarks used by Figure 1 and Table V of the paper.
//!
//! # Example
//!
//! ```
//! use stonne_models::{zoo, ModelScale};
//! let model = zoo::alexnet(ModelScale::Reduced);
//! let shapes = model.infer_shapes().unwrap();
//! assert_eq!(shapes.len(), model.nodes().len());
//! ```

pub mod graph;
pub mod layer;
pub mod workloads;
pub mod zoo;

pub use graph::{ModelSpec, NodeId, NodeSpec, OpSpec, ShapeError, TensorShape};
pub use layer::{LayerClass, ModelId, ModelScale};
pub use workloads::{
    distinct_offloaded_layers, fig1_layers, table5_microbenchmarks, DistinctLayer, GemmDims,
    Microbenchmark, NamedLayer,
};
