//! Layer/GEMM microbenchmark workloads used by Figure 1 and Table V.

use crate::{zoo, LayerClass, ModelId, ModelScale, ModelSpec, OpSpec, TensorShape};
use serde::{Deserialize, Serialize};

/// GEMM problem dimensions: `C (MxN) = A (MxK) × B (KxN)`.
///
/// In the paper's convention `M` is the number of filters (MK rows), `K`
/// the dot-product length, and `N` the number of output activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmDims {
    /// Rows of the stationary (weights) operand.
    pub m: usize,
    /// Columns of the streaming (activations) operand.
    pub n: usize,
    /// Shared inner dimension.
    pub k: usize,
}

impl GemmDims {
    /// Convenience constructor.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        Self { m, n, k }
    }

    /// Total multiply-accumulate count.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64
    }
}

/// One of the eight representative layers of Figure 1, named `X-Y` where
/// `X` is the model abbreviation and `Y` the layer-class tag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedLayer {
    /// Plot label, e.g. `"M-FC"`.
    pub label: String,
    /// Source model.
    pub model: ModelId,
    /// Layer class.
    pub class: LayerClass,
    /// GEMM dimensions the layer lowers to.
    pub dims: GemmDims,
}

/// Extracts the GEMM dimensions of a named offloaded node of a model.
///
/// Convolutions lower per the im2col mapping (group 0 for grouped convs);
/// linear layers map `out × in × seq`.
///
/// # Panics
///
/// Panics when the node is missing or not an offloadable layer.
pub fn layer_gemm_dims(model: &ModelSpec, node_name: &str) -> GemmDims {
    let shapes = model.infer_shapes().expect("valid model");
    let (idx, node) = model
        .nodes()
        .iter()
        .enumerate()
        .find(|(_, n)| n.name == node_name)
        .unwrap_or_else(|| panic!("no node named {node_name}"));
    match node.op {
        OpSpec::Conv2d { geom } => {
            let (h, w) = match shapes[node.inputs[0]] {
                TensorShape::Feature { h, w, .. } => (h, w),
                other => panic!("conv input must be a feature map, got {other}"),
            };
            let (oh, ow) = geom.out_hw(h, w);
            GemmDims::new(geom.out_c_per_group(), oh * ow, geom.dot_product_len())
        }
        OpSpec::Linear {
            in_features,
            out_features,
        } => {
            let seq = match shapes[node.inputs[0]] {
                TensorShape::Tokens { seq, .. } => seq,
                other => panic!("linear input must be tokens, got {other}"),
            };
            GemmDims::new(out_features, seq, in_features)
        }
        other => panic!("node {node_name} ({other:?}) is not a GEMM-shaped layer (idx {idx})"),
    }
}

/// The eight representative DNN layers of Figure 1 (SC, EC, FC, C, L, TR
/// drawn from SqueezeNet, MobileNets, ResNet-50 and BERT), extracted from
/// the zoo models at the given scale.
pub fn fig1_layers(scale: ModelScale) -> Vec<NamedLayer> {
    let squeeze = zoo::squeezenet(scale);
    let mobile = zoo::mobilenet_v1(scale);
    let resnet = zoo::resnet50(scale);
    let bert = zoo::bert(scale);
    let mk =
        |label: &str, model: ModelId, class: LayerClass, spec: &ModelSpec, node: &str| NamedLayer {
            label: label.to_owned(),
            model,
            class,
            dims: layer_gemm_dims(spec, node),
        };
    vec![
        mk(
            "S-SC",
            ModelId::SqueezeNet,
            LayerClass::SqueezeConv,
            &squeeze,
            "fire4_squeeze1x1",
        ),
        mk(
            "S-EC",
            ModelId::SqueezeNet,
            LayerClass::ExpandConv,
            &squeeze,
            "fire4_expand3x3",
        ),
        mk(
            "M-FC",
            ModelId::MobileNetV1,
            LayerClass::FactorizedConv,
            &mobile,
            "sep6_pw",
        ),
        mk(
            "M-L",
            ModelId::MobileNetV1,
            LayerClass::Linear,
            &mobile,
            "fc",
        ),
        mk(
            "R-C",
            ModelId::ResNet50,
            LayerClass::Convolution,
            &resnet,
            "res3_1_3x3",
        ),
        mk("R-L", ModelId::ResNet50, LayerClass::Linear, &resnet, "fc"),
        mk(
            "B-TR",
            ModelId::Bert,
            LayerClass::Transformer,
            &bert,
            "enc0_ffn1",
        ),
        mk(
            "B-L",
            ModelId::Bert,
            LayerClass::Linear,
            &bert,
            "qa_outputs",
        ),
    ]
}

/// A deduplicated offloaded-layer shape: its GEMM dimensions and how many
/// nodes of the model share them.
///
/// Deep models repeat layer shapes heavily (ResNet's bottleneck stages,
/// BERT's identical encoder layers); design-space studies can simulate
/// each distinct shape once and weight by `count` — the sampling trick
/// full-scale studies need, made explicit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistinctLayer {
    /// Representative node name (first occurrence).
    pub name: String,
    /// GEMM dimensions of the lowered layer (per group for convs).
    pub dims: GemmDims,
    /// Convolution groups (1 for linears and plain convs).
    pub groups: usize,
    /// Number of nodes sharing this shape.
    pub count: usize,
}

/// Deduplicates a model's offloaded conv/linear nodes by lowered shape.
pub fn distinct_offloaded_layers(model: &ModelSpec) -> Vec<DistinctLayer> {
    let shapes = model.infer_shapes().expect("valid model");
    let mut out: Vec<DistinctLayer> = Vec::new();
    for (id, node) in model.nodes().iter().enumerate() {
        let (dims, groups) = match node.op {
            OpSpec::Conv2d { geom } => {
                let (h, w) = match shapes[node.inputs[0]] {
                    TensorShape::Feature { h, w, .. } => (h, w),
                    _ => continue,
                };
                let (oh, ow) = geom.out_hw(h, w);
                (
                    GemmDims::new(geom.out_c_per_group(), oh * ow, geom.dot_product_len()),
                    geom.groups,
                )
            }
            OpSpec::Linear {
                in_features,
                out_features,
            } => {
                let seq = match shapes[node.inputs[0]] {
                    TensorShape::Tokens { seq, .. } => seq,
                    _ => continue,
                };
                (GemmDims::new(out_features, seq, in_features), 1)
            }
            _ => continue,
        };
        match out
            .iter_mut()
            .find(|d| d.dims == dims && d.groups == groups)
        {
            Some(d) => d.count += 1,
            None => out.push(DistinctLayer {
                name: model.nodes()[id].name.clone(),
                dims,
                groups,
                count: 1,
            }),
        }
    }
    out
}

/// The accelerator design a Table V microbenchmark validates against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValidationDesign {
    /// MAERI-like, 32 multiplier switches, 4 elements/cycle DN/RN bandwidth.
    Maeri,
    /// SIGMA-like, 128 multiplier switches, 128 elements/cycle bandwidth.
    Sigma,
    /// Output-stationary TPU-like, 16×16 PE array, full bandwidth.
    Tpu,
}

/// One row of Table V: a GEMM microbenchmark with the cycle counts the
/// paper reports for the RTL ground truth and for STONNE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Microbenchmark {
    /// Validated design.
    pub design: ValidationDesign,
    /// Row label, e.g. `"MAERI-1"`.
    pub name: &'static str,
    /// GEMM dimensions.
    pub dims: GemmDims,
    /// Cycle count of the RTL implementation (paper Table V).
    pub rtl_cycles: u64,
    /// Cycle count the original STONNE reported (paper Table V).
    pub paper_stonne_cycles: u64,
}

impl Microbenchmark {
    /// The paper's reported error of STONNE vs RTL for this row.
    pub fn paper_error_pct(&self) -> f64 {
        (self.paper_stonne_cycles as f64 - self.rtl_cycles as f64).abs() / self.rtl_cycles as f64
            * 100.0
    }
}

/// The eleven timing-validation microbenchmarks of Table V, with the
/// published RTL and STONNE cycle counts.
pub fn table5_microbenchmarks() -> Vec<Microbenchmark> {
    use ValidationDesign::*;
    let row = |design, name, m, n, k, rtl, st| Microbenchmark {
        design,
        name,
        dims: GemmDims::new(m, n, k),
        rtl_cycles: rtl,
        paper_stonne_cycles: st,
    };
    vec![
        row(Maeri, "MAERI-1", 6, 25, 54, 1338, 1381),
        row(Maeri, "MAERI-2", 20, 25, 180, 16120, 16081),
        row(Maeri, "MAERI-3", 6, 400, 54, 26178, 26581),
        row(Sigma, "SIGMA-1", 64, 128, 32, 2321, 2304),
        row(Sigma, "SIGMA-2", 256, 64, 64, 8594, 8448),
        row(Sigma, "SIGMA-3", 256, 128, 64, 17192, 16896),
        row(Sigma, "SIGMA-4", 128, 1, 64, 139, 138),
        row(Tpu, "TPU-1", 16, 16, 32, 66, 67),
        row(Tpu, "TPU-2", 16, 16, 16, 50, 51),
        row(Tpu, "TPU-3", 32, 32, 16, 200, 204),
        row(Tpu, "TPU-4", 64, 64, 32, 1056, 1072),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_has_eight_layers_with_expected_tags() {
        let layers = fig1_layers(ModelScale::Reduced);
        let labels: Vec<&str> = layers.iter().map(|l| l.label.as_str()).collect();
        assert_eq!(
            labels,
            ["S-SC", "S-EC", "M-FC", "M-L", "R-C", "R-L", "B-TR", "B-L"]
        );
        for l in &layers {
            assert!(l.dims.macs() > 0, "{} has zero MACs", l.label);
        }
    }

    #[test]
    fn conv_gemm_dims_follow_im2col() {
        let squeeze = zoo::squeezenet(ModelScale::Standard);
        // fire4_expand3x3: 32 -> 128 filters, 3x3, input 32ch.
        let dims = layer_gemm_dims(&squeeze, "fire4_expand3x3");
        assert_eq!(dims.m, 128);
        assert_eq!(dims.k, 32 * 9);
    }

    #[test]
    fn linear_gemm_dims() {
        let bert = zoo::bert(ModelScale::Standard);
        let dims = layer_gemm_dims(&bert, "enc0_ffn1");
        assert_eq!(dims, GemmDims::new(3072, 128, 768));
    }

    #[test]
    fn table5_matches_published_error_band() {
        let rows = table5_microbenchmarks();
        assert_eq!(rows.len(), 11);
        for row in &rows {
            // The paper reports 0.24%..3.10% (1.53% average); recomputing
            // from the table's raw cycle counts gives up to 3.22%.
            let e = row.paper_error_pct();
            assert!(e <= 3.25, "{} error {e}", row.name);
        }
        let avg: f64 = rows.iter().map(|r| r.paper_error_pct()).sum::<f64>() / rows.len() as f64;
        assert!((avg - 1.5).abs() < 0.5, "avg={avg}");
    }

    #[test]
    fn distinct_layers_compress_repetitive_models() {
        // BERT's encoder layers are identical: 6 GEMM shapes + classifier
        // regardless of depth.
        let bert = zoo::bert(ModelScale::Standard);
        let distinct = distinct_offloaded_layers(&bert);
        let total: usize = distinct.iter().map(|d| d.count).sum();
        assert_eq!(total, 12 * 6 + 1);
        assert!(
            distinct.len() <= 7,
            "BERT should collapse to ≤7 shapes, got {}",
            distinct.len()
        );
        // ResNet-50 compresses strongly too.
        let resnet = zoo::resnet50(ModelScale::Standard);
        let d = distinct_offloaded_layers(&resnet);
        let total: usize = d.iter().map(|x| x.count).sum();
        assert_eq!(total, 54); // 53 convs + fc
        assert!(d.len() < 30, "ResNet-50 shapes: {}", d.len());
    }

    #[test]
    #[should_panic(expected = "no node named")]
    fn unknown_node_panics() {
        layer_gemm_dims(&zoo::bert(ModelScale::Tiny), "nope");
    }
}
