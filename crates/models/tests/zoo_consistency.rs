//! Cross-model consistency checks over the whole zoo.

use stonne_models::{distinct_offloaded_layers, zoo, LayerClass, ModelId, ModelScale, OpSpec};

#[test]
fn every_offloaded_node_carries_a_layer_class_tag() {
    for model in zoo::all_models(ModelScale::Reduced) {
        for id in model.offloaded_nodes() {
            let node = &model.nodes()[id];
            if matches!(node.op, OpSpec::Conv2d { .. } | OpSpec::Linear { .. }) {
                assert!(
                    node.class.is_some(),
                    "{}: node {} ({}) untagged",
                    model.id(),
                    id,
                    node.name
                );
            }
        }
    }
}

#[test]
fn dominant_layer_classes_match_table1() {
    // Table I's "dominant layer types" column, checked by MAC share.
    let cases = [
        (ModelId::MobileNetV1, LayerClass::FactorizedConv),
        (ModelId::Vgg16, LayerClass::Convolution),
        (ModelId::ResNet50, LayerClass::ResidualFunction),
        (ModelId::Bert, LayerClass::Transformer),
    ];
    for (id, expected) in cases {
        let model = zoo::build(id, ModelScale::Standard);
        let shapes = model.infer_shapes().unwrap();
        let mut by_class: std::collections::HashMap<LayerClass, u64> = Default::default();
        for (i, node) in model.nodes().iter().enumerate() {
            let Some(class) = node.class else { continue };
            let macs = match node.op {
                OpSpec::Conv2d { geom } => match shapes[node.inputs[0]] {
                    stonne_models::TensorShape::Feature { h, w, .. } => geom.macs(1, h, w),
                    _ => 0,
                },
                OpSpec::Linear {
                    in_features,
                    out_features,
                } => match shapes[node.inputs[0]] {
                    stonne_models::TensorShape::Tokens { seq, .. } => {
                        (seq * in_features * out_features) as u64
                    }
                    _ => 0,
                },
                OpSpec::Attention { .. } => match shapes[i] {
                    stonne_models::TensorShape::Tokens { seq, dim } => 2 * (seq * seq * dim) as u64,
                    _ => 0,
                },
                _ => 0,
            };
            *by_class.entry(class).or_default() += macs;
        }
        let dominant = by_class
            .iter()
            .max_by_key(|(_, &m)| m)
            .map(|(c, _)| *c)
            .unwrap();
        assert_eq!(dominant, expected, "{id}: {by_class:?}");
    }
}

#[test]
fn node_names_are_unique_within_each_model() {
    for model in zoo::all_models(ModelScale::Tiny) {
        let mut names: Vec<&str> = model.nodes().iter().map(|n| n.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "{}: duplicate node names", model.id());
    }
}

#[test]
fn distinct_layer_counts_are_consistent_across_scales() {
    // Scale changes spatial extents, never the number of offloaded
    // conv/linear nodes.
    for id in ModelId::ALL {
        let tiny: usize = distinct_offloaded_layers(&zoo::build(id, ModelScale::Tiny))
            .iter()
            .map(|d| d.count)
            .sum();
        let reduced: usize = distinct_offloaded_layers(&zoo::build(id, ModelScale::Reduced))
            .iter()
            .map(|d| d.count)
            .sum();
        assert_eq!(tiny, reduced, "{id}");
    }
}

#[test]
fn per_class_offloaded_counts_are_consistent_across_scales() {
    // Stronger than the summed check above: for every model, the number
    // of offloaded nodes *per layer class* must be identical at every
    // scale — scaling may shrink spatial extents and sequence lengths,
    // never restructure the graph (e.g. drop BERT encoder layers).
    for id in ModelId::ALL {
        let class_counts = |scale: ModelScale| {
            let model = zoo::build(id, scale);
            let mut counts: std::collections::HashMap<Option<LayerClass>, usize> =
                Default::default();
            for node_id in model.offloaded_nodes() {
                *counts.entry(model.nodes()[node_id].class).or_default() += 1;
            }
            counts
        };
        let tiny = class_counts(ModelScale::Tiny);
        let reduced = class_counts(ModelScale::Reduced);
        let standard = class_counts(ModelScale::Standard);
        assert_eq!(tiny, reduced, "{id}: Tiny vs Reduced");
        assert_eq!(reduced, standard, "{id}: Reduced vs Standard");
    }
}

#[test]
fn graphs_serialize_to_json_and_back() {
    let model = zoo::squeezenet(ModelScale::Tiny);
    let json = serde_json::to_string(&model).unwrap();
    let back: stonne_models::ModelSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back, model);
}
