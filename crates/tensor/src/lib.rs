//! Dense and sparse tensor substrate for the STONNE-rs simulator.
//!
//! The original STONNE simulator leans on PyTorch for its tensor types; this
//! crate provides the equivalent substrate natively in Rust:
//!
//! * [`Matrix`] — a dense row-major 2-D matrix of [`Elem`] values, the
//!   currency of GEMM-shaped workloads.
//! * [`Tensor4`] — a dense NCHW 4-D tensor used for convolutional layers.
//! * [`CsrMatrix`] and [`BitmapMatrix`] — the two sparse encodings the
//!   paper's sparse controller supports (CSR and bitmap).
//! * [`im2col`] — the `img2col` lowering the paper uses to map any
//!   convolution onto a GEMM.
//! * [`conv2d_reference`] and [`gemm_reference`] — golden functional models
//!   used to validate the cycle-level simulator's outputs.
//! * [`prune`] — unstructured magnitude pruning used to reach the weight
//!   sparsity ratios of Table I of the paper.
//!
//! # Example
//!
//! ```
//! use stonne_tensor::{Matrix, CsrMatrix};
//!
//! let mut m = Matrix::zeros(2, 3);
//! m.set(0, 0, 1.0);
//! m.set(1, 2, -2.5);
//! let csr = CsrMatrix::from_dense(&m);
//! assert_eq!(csr.nnz(), 2);
//! assert_eq!(csr.to_dense(), m);
//! ```

pub mod bitmap;
pub mod conv;
pub mod csr;
pub mod dense;
pub mod gemm;
pub mod im2col;
pub mod prune;
pub mod rng;

pub use bitmap::BitmapMatrix;
pub use conv::{conv2d_reference, maxpool2d_reference, Conv2dGeom};
pub use csr::CsrMatrix;
pub use dense::{Matrix, Tensor4};
pub use gemm::{gemm_reference, spmm_reference};
pub use im2col::col2im_output;
pub use im2col::{im2col_matrix, weights_matrix};
pub use prune::{prune_matrix_to_sparsity, prune_tensor_to_sparsity, prune_to_sparsity};
pub use rng::SeededRng;

/// The element type flowing through the simulated datapath.
///
/// The paper evaluates with FP8/FP16 datatypes; numerically we carry `f32`
/// (bit-width only affects the energy/area tables, not functional values).
pub type Elem = f32;

/// Relative tolerance used when comparing simulator outputs against the
/// reference functional models.
///
/// The engines fold long dot products into cluster-sized partial sums, so
/// their f32 accumulation order differs from the sequential reference;
/// the tolerance absorbs that reassociation error across deep models.
pub const FUNCTIONAL_TOLERANCE: Elem = 2e-3;

/// Returns `true` when two values are equal within [`FUNCTIONAL_TOLERANCE`]
/// (relative for large magnitudes, absolute near zero).
///
/// ```
/// assert!(stonne_tensor::approx_eq(1.0, 1.0 + 1e-6));
/// assert!(!stonne_tensor::approx_eq(1.0, 1.1));
/// ```
pub fn approx_eq(a: Elem, b: Elem) -> bool {
    if a == b {
        // Covers exact matches and identical infinities (log-softmax
        // underflow produces -inf on both sides).
        return true;
    }
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1.0);
    diff <= FUNCTIONAL_TOLERANCE * scale
}

/// Asserts that two slices are element-wise [`approx_eq`].
///
/// # Panics
///
/// Panics with the first mismatching index when the slices differ in length
/// or in content.
pub fn assert_slices_close(actual: &[Elem], expected: &[Elem]) {
    assert_eq!(
        actual.len(),
        expected.len(),
        "slice length mismatch: {} vs {}",
        actual.len(),
        expected.len()
    );
    for (i, (a, e)) in actual.iter().zip(expected.iter()).enumerate() {
        assert!(
            approx_eq(*a, *e),
            "mismatch at index {i}: actual={a} expected={e}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_accepts_small_relative_error() {
        assert!(approx_eq(1000.0, 1000.05));
        assert!(approx_eq(0.0, 0.0));
        assert!(approx_eq(-3.5, -3.5));
    }

    #[test]
    fn approx_eq_rejects_large_error() {
        assert!(!approx_eq(1.0, 2.0));
        assert!(!approx_eq(0.0, 1.0));
    }

    #[test]
    fn assert_slices_close_passes_on_equal() {
        assert_slices_close(&[1.0, 2.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "mismatch at index 1")]
    fn assert_slices_close_panics_on_mismatch() {
        assert_slices_close(&[1.0, 2.0], &[1.0, 3.0]);
    }
}
