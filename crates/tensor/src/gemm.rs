//! Reference (golden) GEMM and SpMM functional models.
//!
//! These run on the host CPU and define the functionally-correct output the
//! cycle-level simulator must reproduce bit-for-bit up to floating-point
//! reassociation (the paper's "functional validation", Section V).

use crate::{CsrMatrix, Elem, Matrix};

/// Dense GEMM reference: `C = A (MxK) * B (KxN)`.
///
/// ```
/// use stonne_tensor::{gemm_reference, Matrix};
/// let a = Matrix::from_rows(&[&[1.0, 2.0]]);
/// let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
/// assert_eq!(gemm_reference(&a, &b).get(0, 0), 11.0);
/// ```
///
/// # Panics
///
/// Panics if the inner dimensions do not match.
pub fn gemm_reference(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "GEMM inner dimension mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, n) = (a.rows(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let mut acc: Elem = 0.0;
            for (p, &av) in arow.iter().enumerate() {
                acc += av * b.get(p, j);
            }
            c.set(i, j, acc);
        }
    }
    c
}

/// Sparse × dense reference: `C = A_sparse (MxK) * B (KxN)`.
///
/// Accumulation visits only the non-zeros of each row of `A`, in column
/// order — the same order the sparse controller issues multiplications, so
/// results match the simulator exactly (no reassociation differences).
///
/// # Panics
///
/// Panics if the inner dimensions do not match.
pub fn spmm_reference(a: &CsrMatrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "SpMM inner dimension mismatch");
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for (p, v) in a.row_entries(i) {
            for j in 0..b.cols() {
                let cur = c.get(i, j);
                c.set(i, j, cur + v * b.get(p, j));
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assert_slices_close, SeededRng};

    #[test]
    fn gemm_identity() {
        let mut id = Matrix::zeros(3, 3);
        for i in 0..3 {
            id.set(i, i, 1.0);
        }
        let mut rng = SeededRng::new(1);
        let a = Matrix::random(3, 3, &mut rng);
        assert_eq!(gemm_reference(&a, &id), a);
    }

    #[test]
    fn gemm_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = gemm_reference(&a, &b);
        assert_eq!(c.row(0), &[58.0, 64.0]);
        assert_eq!(c.row(1), &[139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_dimension_mismatch_panics() {
        gemm_reference(&Matrix::zeros(2, 3), &Matrix::zeros(2, 2));
    }

    #[test]
    fn spmm_matches_dense_gemm() {
        let mut rng = SeededRng::new(2);
        let mut a = Matrix::random(6, 8, &mut rng);
        // Zero out ~half the entries.
        for r in 0..6 {
            for c in 0..8 {
                if (r + c) % 2 == 0 {
                    a.set(r, c, 0.0);
                }
            }
        }
        let b = Matrix::random(8, 5, &mut rng);
        let dense = gemm_reference(&a, &b);
        let sparse = spmm_reference(&CsrMatrix::from_dense(&a), &b);
        assert_slices_close(sparse.as_slice(), dense.as_slice());
    }

    #[test]
    fn spmm_all_zero_rows_give_zero_output() {
        let a = CsrMatrix::from_dense(&Matrix::zeros(4, 4));
        let b = Matrix::from_rows(&[&[1.0; 3]; 4].map(|r| &r[..]));
        let c = spmm_reference(&a, &b);
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }
}
