//! Bitmap sparse matrix encoding.
//!
//! The second sparse format the paper's sparse controller supports (used by
//! SIGMA): a dense bit-mask marking non-zero positions plus a packed vector
//! of the non-zero values in row-major order.

use crate::{Elem, Matrix};
use serde::{Deserialize, Serialize};

/// A sparse matrix encoded as a bitmap plus packed non-zero values.
///
/// ```
/// use stonne_tensor::{BitmapMatrix, Matrix};
/// let dense = Matrix::from_rows(&[&[0.0, 7.0], &[8.0, 0.0]]);
/// let bm = BitmapMatrix::from_dense(&dense);
/// assert!(bm.is_set(0, 1));
/// assert!(!bm.is_set(0, 0));
/// assert_eq!(bm.to_dense(), dense);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitmapMatrix {
    rows: usize,
    cols: usize,
    /// One bit per element, row-major, packed into 64-bit words.
    words: Vec<u64>,
    /// Non-zero values in row-major scan order.
    vals: Vec<Elem>,
}

impl BitmapMatrix {
    /// Builds a bitmap matrix from a dense matrix, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> Self {
        let total = m.rows() * m.cols();
        let mut words = vec![0u64; total.div_ceil(64)];
        let mut vals = Vec::new();
        for (i, &v) in m.as_slice().iter().enumerate() {
            if v != 0.0 {
                words[i / 64] |= 1u64 << (i % 64);
                vals.push(v);
            }
        }
        Self {
            rows: m.rows(),
            cols: m.cols(),
            words,
            vals,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Whether position `(r, c)` holds a non-zero.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn is_set(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        let i = r * self.cols + c;
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of non-zeros in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        (0..self.cols).filter(|&c| self.is_set(r, c)).count()
    }

    /// Iterator over `(col, value)` pairs of row `r` in column order.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, Elem)> + '_ {
        assert!(r < self.rows, "row {r} out of bounds");
        // Rank of the first bit of row r = popcount of all bits before it.
        let start_bit = r * self.cols;
        let mut rank = 0usize;
        for w in 0..start_bit / 64 {
            rank += self.words[w].count_ones() as usize;
        }
        let rem = start_bit % 64;
        if rem > 0 {
            rank += (self.words[start_bit / 64] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        let mut val_pos = rank;
        (0..self.cols).filter_map(move |c| {
            if self.is_set(r, c) {
                let v = self.vals[val_pos];
                val_pos += 1;
                Some((c, v))
            } else {
                None
            }
        })
    }

    /// Fraction of zero elements.
    pub fn sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / total as f64
    }

    /// Expands back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        let mut val_pos = 0;
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.is_set(r, c) {
                    m.set(r, c, self.vals[val_pos]);
                    val_pos += 1;
                }
            }
        }
        m
    }

    /// Size of the encoding in element-sized units: the packed values plus
    /// the bitmap charged at one element per 16 bits (FP16 baseline),
    /// matching the element-granularity traffic counters.
    pub fn storage_elements(&self) -> usize {
        self.vals.len() + (self.rows * self.cols).div_ceil(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeededRng;

    #[test]
    fn dense_roundtrip() {
        let dense = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[2.0, 0.0, 3.0]]);
        let bm = BitmapMatrix::from_dense(&dense);
        assert_eq!(bm.to_dense(), dense);
        assert_eq!(bm.nnz(), 3);
    }

    #[test]
    fn roundtrip_across_word_boundary() {
        // 9x9 = 81 bits spans two u64 words.
        let mut rng = SeededRng::new(21);
        let mut dense = Matrix::random(9, 9, &mut rng);
        for i in 0..81 {
            if i % 3 == 0 {
                dense.set(i / 9, i % 9, 0.0);
            }
        }
        let bm = BitmapMatrix::from_dense(&dense);
        assert_eq!(bm.to_dense(), dense);
    }

    #[test]
    fn row_entries_match_dense_row() {
        let dense = Matrix::from_rows(&[&[0.0, 5.0, 0.0, 6.0], &[7.0, 0.0, 0.0, 0.0]]);
        let bm = BitmapMatrix::from_dense(&dense);
        assert_eq!(
            bm.row_entries(0).collect::<Vec<_>>(),
            vec![(1, 5.0), (3, 6.0)]
        );
        assert_eq!(bm.row_entries(1).collect::<Vec<_>>(), vec![(0, 7.0)]);
    }

    #[test]
    fn row_entries_rank_is_correct_on_large_matrix() {
        let mut rng = SeededRng::new(77);
        let mut dense = Matrix::random(20, 17, &mut rng);
        for r in 0..20 {
            for c in 0..17 {
                if (r * 17 + c) % 4 == 1 {
                    dense.set(r, c, 0.0);
                }
            }
        }
        let bm = BitmapMatrix::from_dense(&dense);
        for r in 0..20 {
            let expected: Vec<(usize, Elem)> = dense
                .row(r)
                .iter()
                .enumerate()
                .filter(|(_, v)| **v != 0.0)
                .map(|(c, v)| (c, *v))
                .collect();
            assert_eq!(bm.row_entries(r).collect::<Vec<_>>(), expected, "row {r}");
        }
    }

    #[test]
    fn is_set_tracks_zeros() {
        let dense = Matrix::from_rows(&[&[0.0, 1.0]]);
        let bm = BitmapMatrix::from_dense(&dense);
        assert!(!bm.is_set(0, 0));
        assert!(bm.is_set(0, 1));
    }

    #[test]
    fn storage_includes_bitmap_overhead() {
        let dense = Matrix::from_rows(&[&[1.0; 16]]);
        let bm = BitmapMatrix::from_dense(&dense);
        assert_eq!(bm.storage_elements(), 16 + 1);
    }

    #[test]
    fn sparsity_matches_dense() {
        let dense = Matrix::from_rows(&[&[0.0, 0.0, 1.0, 0.0]]);
        let bm = BitmapMatrix::from_dense(&dense);
        assert!((bm.sparsity() - 0.75).abs() < 1e-12);
    }
}
