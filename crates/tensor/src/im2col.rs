//! `img2col` lowering: convolution → GEMM.
//!
//! The paper's sparse controller "runs GEMM operations (any CONV operation
//! can be mapped to GEMM using the img2col function)". This module provides
//! that lowering for grouped convolutions: per group, the weights become an
//! `out_c/G × (C/G·R·S)` MK matrix and the input patches become a
//! `(C/G·R·S) × (X'·Y'·N)` KN matrix, so that `MK × KN` equals the
//! convolution output.

use crate::{Conv2dGeom, Matrix, Tensor4};

/// Builds the per-group weights (MK) matrix for group `g`.
///
/// Rows are filters of the group; columns scan `(c, fy, fx)` with `c`
/// outermost — the same order [`im2col_matrix`] uses for its rows.
///
/// # Panics
///
/// Panics when `g >= geom.groups` or when shapes disagree.
pub fn weights_matrix(weights: &Tensor4, geom: &Conv2dGeom, g: usize) -> Matrix {
    assert!(g < geom.groups, "group {g} out of range");
    assert_eq!(weights.n(), geom.out_c);
    assert_eq!(weights.c(), geom.in_c_per_group());
    let kpg = geom.out_c_per_group();
    let klen = geom.dot_product_len();
    let mut m = Matrix::zeros(kpg, klen);
    for kk in 0..kpg {
        let k = g * kpg + kk;
        let mut col = 0;
        for c in 0..geom.in_c_per_group() {
            for fy in 0..geom.kh {
                for fx in 0..geom.kw {
                    m.set(kk, col, weights.get(k, c, fy, fx));
                    col += 1;
                }
            }
        }
    }
    m
}

/// Builds the per-group im2col (KN) matrix for group `g`.
///
/// Rows scan `(c, fy, fx)`; columns scan `(n, oy, ox)` with `n` outermost.
/// Out-of-bounds (padding) taps contribute zeros.
///
/// # Panics
///
/// Panics when `g >= geom.groups` or when the input channel count differs
/// from `geom.in_c`.
pub fn im2col_matrix(input: &Tensor4, geom: &Conv2dGeom, g: usize) -> Matrix {
    assert!(g < geom.groups, "group {g} out of range");
    assert_eq!(input.c(), geom.in_c, "input channel mismatch");
    let (oh, ow) = geom.out_hw(input.h(), input.w());
    let klen = geom.dot_product_len();
    let ncols = input.n() * oh * ow;
    let cpg = geom.in_c_per_group();
    let mut m = Matrix::zeros(klen, ncols);
    for n in 0..input.n() {
        for oy in 0..oh {
            for ox in 0..ow {
                let col = (n * oh + oy) * ow + ox;
                let mut row = 0;
                for c in 0..cpg {
                    let ic = g * cpg + c;
                    for fy in 0..geom.kh {
                        for fx in 0..geom.kw {
                            let iy = (oy * geom.stride + fy) as isize - geom.pad as isize;
                            let ix = (ox * geom.stride + fx) as isize - geom.pad as isize;
                            let v = if iy < 0
                                || ix < 0
                                || iy as usize >= input.h()
                                || ix as usize >= input.w()
                            {
                                0.0
                            } else {
                                input.get(n, ic, iy as usize, ix as usize)
                            };
                            m.set(row, col, v);
                            row += 1;
                        }
                    }
                }
            }
        }
    }
    m
}

/// Reassembles the per-group GEMM outputs into the NCHW convolution output.
///
/// `group_outputs[g]` must be the `out_c/G × (N·X'·Y')` product for group
/// `g`, with columns in the `(n, oy, ox)` order produced by
/// [`im2col_matrix`].
///
/// # Panics
///
/// Panics when the number of group outputs or their shapes are inconsistent
/// with `geom`.
pub fn col2im_output(
    group_outputs: &[Matrix],
    geom: &Conv2dGeom,
    n: usize,
    oh: usize,
    ow: usize,
) -> Tensor4 {
    assert_eq!(
        group_outputs.len(),
        geom.groups,
        "one output per group required"
    );
    let kpg = geom.out_c_per_group();
    let mut out = Tensor4::zeros(n, geom.out_c, oh, ow);
    for (g, gm) in group_outputs.iter().enumerate() {
        assert_eq!(gm.rows(), kpg, "group output row mismatch");
        assert_eq!(gm.cols(), n * oh * ow, "group output col mismatch");
        for kk in 0..kpg {
            for nn in 0..n {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let col = (nn * oh + oy) * ow + ox;
                        out.set(nn, g * kpg + kk, oy, ox, gm.get(kk, col));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assert_slices_close, conv2d_reference, gemm_reference, SeededRng};

    fn check_equivalence(geom: Conv2dGeom, n: usize, h: usize, w: usize, seed: u64) {
        let mut rng = SeededRng::new(seed);
        let input = Tensor4::random(n, geom.in_c, h, w, &mut rng);
        let weights = Tensor4::random(
            geom.out_c,
            geom.in_c_per_group(),
            geom.kh,
            geom.kw,
            &mut rng,
        );
        let direct = conv2d_reference(&input, &weights, &geom);
        let (oh, ow) = geom.out_hw(h, w);
        let outputs: Vec<Matrix> = (0..geom.groups)
            .map(|g| {
                gemm_reference(
                    &weights_matrix(&weights, &geom, g),
                    &im2col_matrix(&input, &geom, g),
                )
            })
            .collect();
        let lowered = col2im_output(&outputs, &geom, n, oh, ow);
        assert_slices_close(lowered.as_slice(), direct.as_slice());
    }

    #[test]
    fn im2col_equals_direct_conv_basic() {
        check_equivalence(Conv2dGeom::new(3, 4, 3, 3, 1, 1, 1), 1, 6, 6, 1);
    }

    #[test]
    fn im2col_equals_direct_conv_strided() {
        check_equivalence(Conv2dGeom::new(2, 6, 3, 3, 2, 1, 1), 2, 9, 9, 2);
    }

    #[test]
    fn im2col_equals_direct_conv_depthwise() {
        check_equivalence(Conv2dGeom::new(4, 4, 3, 3, 1, 1, 4), 1, 5, 5, 3);
    }

    #[test]
    fn im2col_equals_direct_conv_grouped() {
        check_equivalence(Conv2dGeom::new(4, 8, 3, 3, 1, 0, 2), 1, 7, 7, 4);
    }

    #[test]
    fn im2col_equals_direct_conv_1x1() {
        check_equivalence(Conv2dGeom::new(8, 16, 1, 1, 1, 0, 1), 1, 4, 4, 5);
    }

    #[test]
    fn im2col_shape_is_klen_by_npixels() {
        let geom = Conv2dGeom::new(3, 4, 3, 3, 1, 1, 1);
        let mut rng = SeededRng::new(6);
        let input = Tensor4::random(2, 3, 8, 8, &mut rng);
        let m = im2col_matrix(&input, &geom, 0);
        assert_eq!(m.rows(), 27);
        assert_eq!(m.cols(), 2 * 8 * 8);
    }

    #[test]
    fn padding_taps_are_zero() {
        let geom = Conv2dGeom::new(1, 1, 3, 3, 1, 1, 1);
        let input = Tensor4::from_vec(1, 1, 1, 1, vec![5.0]);
        let m = im2col_matrix(&input, &geom, 0);
        // Single output pixel; only the kernel centre taps the real input.
        assert_eq!(m.cols(), 1);
        let col: Vec<f32> = (0..9).map(|r| m.get(r, 0)).collect();
        assert_eq!(col.iter().filter(|&&v| v != 0.0).count(), 1);
        assert_eq!(col[4], 5.0);
    }
}
