//! Dense row-major matrices and NCHW 4-D tensors.

use crate::rng::SeededRng;
use crate::Elem;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major 2-D matrix.
///
/// `Matrix` is the currency of GEMM-shaped work in the simulator: weights
/// are the *MK* operand (stationary), activations the *KN* operand
/// (streaming), matching the paper's Section IV-B terminology.
///
/// ```
/// use stonne_tensor::Matrix;
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.rows(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Elem>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Elem>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices (handy in tests).
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[Elem]]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: n_rows,
            cols: n_cols,
            data,
        }
    }

    /// Creates a matrix with uniform random values in `[-1, 1)`.
    pub fn random(rows: usize, cols: usize, rng: &mut SeededRng) -> Self {
        let data = (0..rows * cols).map(|_| rng.uniform(-1.0, 1.0)).collect();
        Self { rows, cols, data }
    }

    /// Creates a weights matrix whose rows (filters) carry log-normally
    /// distributed magnitude scales.
    ///
    /// Trained DNN filters differ widely in importance, so *global*
    /// magnitude pruning produces highly variable per-filter non-zero
    /// counts (the paper's Fig. 7b); i.i.d. uniform weights would prune
    /// every filter equally and hide that behaviour. `spread` is the
    /// standard deviation of the log-scale (≈0.8 reproduces realistic
    /// variability; 0 degenerates to [`Matrix::random`]).
    pub fn random_filterwise(rows: usize, cols: usize, spread: f32, rng: &mut SeededRng) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let scale = rng.normal(0.0, spread).exp();
            for c in 0..cols {
                m.set(r, c, rng.uniform(-1.0, 1.0) * scale);
            }
        }
        m
    }

    /// Creates a seeded random matrix with the given fraction of exact
    /// zeros, placed by global magnitude pruning over filter-wise scaled
    /// values (the same operand recipe the Fig. 1c sparsity sweep uses).
    ///
    /// `sparsity` is the target zero fraction in `[0, 1)`; `0.0`
    /// degenerates to a dense [`Matrix::random_filterwise`] draw. The
    /// result is fully determined by `(rows, cols, sparsity, rng state)`,
    /// which makes it suitable for differential fuzzing.
    pub fn random_sparse(rows: usize, cols: usize, sparsity: f64, rng: &mut SeededRng) -> Self {
        let mut m = Matrix::random_filterwise(rows, cols, 0.8, rng);
        if sparsity > 0.0 {
            crate::prune::prune_matrix_to_sparsity(&mut m, sparsity);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements (`rows * cols`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Elem {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Elem) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    pub fn row(&self, r: usize) -> &[Elem] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [Elem] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of the whole matrix.
    pub fn as_slice(&self) -> &[Elem] {
        &self.data
    }

    /// Mutable flat row-major view.
    pub fn as_mut_slice(&mut self) -> &mut [Elem] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat buffer.
    pub fn into_vec(self) -> Vec<Elem> {
        self.data
    }

    /// Returns the transposed matrix.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Number of non-zero elements.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// Fraction of elements that are exactly zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / self.data.len() as f64
    }

    /// Number of non-zeros in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row(r).iter().filter(|v| **v != 0.0).count()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row: Vec<String> = self
                .row(r)
                .iter()
                .take(8)
                .map(|v| format!("{v:7.3}"))
                .collect();
            writeln!(
                f,
                "  [{}{}]",
                row.join(", "),
                if self.cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

/// A dense 4-D tensor in NCHW layout (batch, channels, height, width).
///
/// ```
/// use stonne_tensor::Tensor4;
/// let mut t = Tensor4::zeros(1, 3, 4, 4);
/// t.set(0, 2, 1, 1, 5.0);
/// assert_eq!(t.get(0, 2, 1, 1), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor4 {
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    data: Vec<Elem>,
}

impl Tensor4 {
    /// Creates a zero-filled NCHW tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Creates a tensor from a flat NCHW buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match the shape.
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<Elem>) -> Self {
        assert_eq!(data.len(), n * c * h * w, "buffer does not match shape");
        Self { n, c, h, w, data }
    }

    /// Creates a tensor with uniform random values in `[-1, 1)`.
    pub fn random(n: usize, c: usize, h: usize, w: usize, rng: &mut SeededRng) -> Self {
        let data = (0..n * c * h * w).map(|_| rng.uniform(-1.0, 1.0)).collect();
        Self { n, c, h, w, data }
    }

    /// Creates a KCHW weights tensor whose filters (`n` axis) carry
    /// log-normally distributed magnitude scales; see
    /// [`Matrix::random_filterwise`] for the rationale.
    pub fn random_filterwise(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        spread: f32,
        rng: &mut SeededRng,
    ) -> Self {
        let per_filter = c * h * w;
        let mut data = Vec::with_capacity(n * per_filter);
        for _ in 0..n {
            let scale = rng.normal(0.0, spread).exp();
            data.extend((0..per_filter).map(|_| rng.uniform(-1.0, 1.0) * scale));
        }
        Self { n, c, h, w, data }
    }

    /// Batch size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Channel count.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Height.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Width.
    pub fn w(&self) -> usize {
        self.w
    }

    /// `(n, c, h, w)` shape tuple.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        ((n * self.c + c) * self.h + h) * self.w + w
    }

    /// Element at `(n, c, h, w)`.
    #[inline]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> Elem {
        self.data[self.index(n, c, h, w)]
    }

    /// Sets the element at `(n, c, h, w)`.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: Elem) {
        let i = self.index(n, c, h, w);
        self.data[i] = v;
    }

    /// Flat NCHW view.
    pub fn as_slice(&self) -> &[Elem] {
        &self.data
    }

    /// Mutable flat NCHW view.
    pub fn as_mut_slice(&mut self) -> &mut [Elem] {
        &mut self.data
    }

    /// Consumes the tensor and returns the flat buffer.
    pub fn into_vec(self) -> Vec<Elem> {
        self.data
    }

    /// Number of non-zero elements.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// Fraction of zero elements.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / self.data.len() as f64
    }
}

impl fmt::Display for Tensor4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor4 [{}x{}x{}x{}] ({} elems, {:.1}% sparse)",
            self.n,
            self.c,
            self.h,
            self.w,
            self.len(),
            self.sparsity() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_roundtrip_get_set() {
        let mut m = Matrix::zeros(3, 4);
        m.set(2, 3, 7.5);
        m.set(0, 0, -1.0);
        assert_eq!(m.get(2, 3), 7.5);
        assert_eq!(m.get(0, 0), -1.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn matrix_transpose_involution() {
        let mut rng = SeededRng::new(7);
        let m = Matrix::random(5, 3, &mut rng);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn matrix_row_views() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.as_slice().len(), 6);
    }

    #[test]
    fn matrix_sparsity_counts_zeros() {
        let m = Matrix::from_rows(&[&[0.0, 2.0], &[0.0, 0.0]]);
        assert_eq!(m.nnz(), 1);
        assert!((m.sparsity() - 0.75).abs() < 1e-12);
        assert_eq!(m.row_nnz(0), 1);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn matrix_get_out_of_bounds_panics() {
        Matrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn tensor4_indexing_is_nchw() {
        let mut t = Tensor4::zeros(2, 3, 4, 5);
        t.set(1, 2, 3, 4, 9.0);
        // Last element of the buffer in NCHW order.
        assert_eq!(t.as_slice()[t.len() - 1], 9.0);
        assert_eq!(t.get(1, 2, 3, 4), 9.0);
    }

    #[test]
    fn tensor4_shape_accessors() {
        let t = Tensor4::zeros(1, 2, 3, 4);
        assert_eq!(t.shape(), (1, 2, 3, 4));
        assert_eq!(t.len(), 24);
        assert!(!t.is_empty());
    }

    #[test]
    fn filterwise_weights_have_variable_row_magnitudes() {
        let mut rng = SeededRng::new(8);
        let m = Matrix::random_filterwise(32, 64, 0.8, &mut rng);
        let norms: Vec<f32> = (0..32)
            .map(|r| m.row(r).iter().map(|v| v.abs()).sum::<f32>())
            .collect();
        let max = norms.iter().cloned().fold(0.0f32, f32::max);
        let min = norms.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(
            max / min > 3.0,
            "row magnitude spread too small: {min}..{max}"
        );
    }

    #[test]
    fn filterwise_pruning_gives_variable_row_nnz() {
        let mut rng = SeededRng::new(9);
        let mut m = Matrix::random_filterwise(32, 64, 0.8, &mut rng);
        crate::prune_matrix_to_sparsity(&mut m, 0.8);
        let nnz: Vec<usize> = (0..32).map(|r| m.row_nnz(r)).collect();
        let max = *nnz.iter().max().unwrap();
        let min = *nnz.iter().min().unwrap();
        assert!(max >= min + 16, "nnz spread too small: {min}..{max}");
    }

    #[test]
    fn random_matrices_are_deterministic_per_seed() {
        let mut r1 = SeededRng::new(42);
        let mut r2 = SeededRng::new(42);
        assert_eq!(Matrix::random(4, 4, &mut r1), Matrix::random(4, 4, &mut r2));
    }
}
