//! Deterministic random number generation.
//!
//! Every experiment in the reproduction is seeded so that results are
//! bit-identical across runs — the paper's data-dependent optimizations
//! (SNAPEA, filter scheduling) are only meaningful when the *same* values
//! flow through every configuration under comparison.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded, deterministic RNG wrapper used throughout the workspace.
///
/// ```
/// use stonne_tensor::SeededRng;
/// let mut a = SeededRng::new(1);
/// let mut b = SeededRng::new(1);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Approximately normal sample (sum of uniforms), mean `mu`, std `sigma`.
    pub fn normal(&mut self, mu: f32, sigma: f32) -> f32 {
        // Irwin–Hall with 12 samples: variance 1, mean 6.
        let s: f32 = (0..12).map(|_| self.inner.gen_range(0.0f32..1.0)).sum();
        mu + sigma * (s - 6.0)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(99);
        let mut b = SeededRng::new(99);
        for _ in 0..32 {
            assert_eq!(a.uniform(-2.0, 2.0), b.uniform(-2.0, 2.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let xs: Vec<f32> = (0..16).map(|_| a.uniform(0.0, 1.0)).collect();
        let ys: Vec<f32> = (0..16).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SeededRng::new(3);
        for _ in 0..1000 {
            let v = r.uniform(-0.5, 0.5);
            assert!((-0.5..0.5).contains(&v));
        }
    }

    #[test]
    fn index_respects_bounds() {
        let mut r = SeededRng::new(4);
        for _ in 0..1000 {
            assert!(r.index(7) < 7);
        }
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut r = SeededRng::new(5);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| r.normal(1.0, 2.0)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.4, "var={var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SeededRng::new(6);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
