//! Reference convolution and pooling functional models.

use crate::{Elem, Tensor4};
use serde::{Deserialize, Serialize};

/// Geometry of a 2-D (possibly grouped) convolution.
///
/// Mirrors the paper's `Layer(R, S, C, K, G, N, X', Y')` definition: `kh = R`,
/// `kw = S`, `in_c = C`, `out_c = K`, `groups = G`. Output extents are
/// derived from the input extents, stride, and padding.
///
/// ```
/// use stonne_tensor::Conv2dGeom;
/// let g = Conv2dGeom::new(3, 16, 3, 3, 1, 1, 1);
/// assert_eq!(g.out_hw(8, 8), (8, 8)); // 'same' padding at stride 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dGeom {
    /// Input channels (`C`).
    pub in_c: usize,
    /// Output channels / number of filters (`K`).
    pub out_c: usize,
    /// Filter height (`R`).
    pub kh: usize,
    /// Filter width (`S`).
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    /// Number of groups (`G`); `groups == in_c == out_c` is depthwise.
    pub groups: usize,
}

impl Conv2dGeom {
    /// Creates a geometry, validating divisibility constraints.
    ///
    /// # Panics
    ///
    /// Panics if `in_c` or `out_c` is not divisible by `groups`, or if
    /// `stride == 0`.
    pub fn new(
        in_c: usize,
        out_c: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(groups > 0, "groups must be positive");
        assert_eq!(
            in_c % groups,
            0,
            "in_c {in_c} not divisible by groups {groups}"
        );
        assert_eq!(
            out_c % groups,
            0,
            "out_c {out_c} not divisible by groups {groups}"
        );
        Self {
            in_c,
            out_c,
            kh,
            kw,
            stride,
            pad,
            groups,
        }
    }

    /// Input channels per group.
    pub fn in_c_per_group(&self) -> usize {
        self.in_c / self.groups
    }

    /// Output channels per group.
    pub fn out_c_per_group(&self) -> usize {
        self.out_c / self.groups
    }

    /// Output spatial extent `(X', Y')` for an input of `(h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the filter.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let ph = h + 2 * self.pad;
        let pw = w + 2 * self.pad;
        assert!(
            ph >= self.kh && pw >= self.kw,
            "input {h}x{w} (+pad {}) smaller than filter {}x{}",
            self.pad,
            self.kh,
            self.kw
        );
        (
            (ph - self.kh) / self.stride + 1,
            (pw - self.kw) / self.stride + 1,
        )
    }

    /// Length of one output's dot product: `R * S * C/G`.
    pub fn dot_product_len(&self) -> usize {
        self.kh * self.kw * self.in_c_per_group()
    }

    /// Total multiply-accumulate count for an input of `(n, h, w)`.
    pub fn macs(&self, n: usize, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.out_hw(h, w);
        n as u64 * self.out_c as u64 * oh as u64 * ow as u64 * self.dot_product_len() as u64
    }
}

/// Direct 2-D convolution reference (`weights` in KCHW layout, grouped).
///
/// `weights` must have shape `(out_c, in_c/groups, kh, kw)`.
///
/// # Panics
///
/// Panics when tensor shapes disagree with `geom`.
pub fn conv2d_reference(input: &Tensor4, weights: &Tensor4, geom: &Conv2dGeom) -> Tensor4 {
    assert_eq!(input.c(), geom.in_c, "input channel mismatch");
    assert_eq!(weights.n(), geom.out_c, "weight filter-count mismatch");
    assert_eq!(
        weights.c(),
        geom.in_c_per_group(),
        "weight channel mismatch"
    );
    assert_eq!(weights.h(), geom.kh, "weight height mismatch");
    assert_eq!(weights.w(), geom.kw, "weight width mismatch");

    let (oh, ow) = geom.out_hw(input.h(), input.w());
    let mut out = Tensor4::zeros(input.n(), geom.out_c, oh, ow);
    let cpg = geom.in_c_per_group();
    let kpg = geom.out_c_per_group();

    for n in 0..input.n() {
        for k in 0..geom.out_c {
            let group = k / kpg;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc: Elem = 0.0;
                    for c in 0..cpg {
                        let ic = group * cpg + c;
                        for fy in 0..geom.kh {
                            for fx in 0..geom.kw {
                                let iy = (oy * geom.stride + fy) as isize - geom.pad as isize;
                                let ix = (ox * geom.stride + fx) as isize - geom.pad as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy as usize >= input.h()
                                    || ix as usize >= input.w()
                                {
                                    continue;
                                }
                                acc += input.get(n, ic, iy as usize, ix as usize)
                                    * weights.get(k, c, fy, fx);
                            }
                        }
                    }
                    out.set(n, k, oy, ox, acc);
                }
            }
        }
    }
    out
}

/// Max-pooling reference with a square window.
///
/// # Panics
///
/// Panics if `window == 0` or `stride == 0`.
pub fn maxpool2d_reference(input: &Tensor4, window: usize, stride: usize) -> Tensor4 {
    assert!(
        window > 0 && stride > 0,
        "window and stride must be positive"
    );
    let oh = (input.h() - window) / stride + 1;
    let ow = (input.w() - window) / stride + 1;
    let mut out = Tensor4::zeros(input.n(), input.c(), oh, ow);
    for n in 0..input.n() {
        for c in 0..input.c() {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = Elem::NEG_INFINITY;
                    for fy in 0..window {
                        for fx in 0..window {
                            best = best.max(input.get(n, c, oy * stride + fy, ox * stride + fx));
                        }
                    }
                    out.set(n, c, oy, ox, best);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeededRng;

    #[test]
    fn out_hw_same_padding() {
        let g = Conv2dGeom::new(3, 8, 3, 3, 1, 1, 1);
        assert_eq!(g.out_hw(32, 32), (32, 32));
    }

    #[test]
    fn out_hw_stride_two() {
        let g = Conv2dGeom::new(3, 8, 3, 3, 2, 1, 1);
        assert_eq!(g.out_hw(224, 224), (112, 112));
    }

    #[test]
    fn macs_counts_grouped_convs() {
        // Depthwise 3x3 over 8 channels, 4x4 output: 8 * 16 * 9 MACs.
        let g = Conv2dGeom::new(8, 8, 3, 3, 1, 1, 8);
        assert_eq!(g.macs(1, 4, 4), 8 * 16 * 9);
    }

    #[test]
    fn conv_identity_kernel_passes_input_through() {
        // 1x1 kernel with weight 1.0 == identity per channel pair.
        let mut rng = SeededRng::new(5);
        let input = Tensor4::random(1, 1, 4, 4, &mut rng);
        let weights = Tensor4::from_vec(1, 1, 1, 1, vec![1.0]);
        let g = Conv2dGeom::new(1, 1, 1, 1, 1, 0, 1);
        let out = conv2d_reference(&input, &weights, &g);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn conv_known_values_with_padding() {
        // 3x3 all-ones kernel over a 2x2 all-ones input with pad 1:
        // corners see 4 inputs, so output corners == 4.
        let input = Tensor4::from_vec(1, 1, 2, 2, vec![1.0; 4]);
        let weights = Tensor4::from_vec(1, 1, 3, 3, vec![1.0; 9]);
        let g = Conv2dGeom::new(1, 1, 3, 3, 1, 1, 1);
        let out = conv2d_reference(&input, &weights, &g);
        assert_eq!(out.shape(), (1, 1, 2, 2));
        assert!(out.as_slice().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn grouped_conv_keeps_channels_separate() {
        // 2 groups, each 1->1 channels with distinct constant kernels.
        let input = Tensor4::from_vec(1, 2, 1, 1, vec![1.0, 10.0]);
        let weights = Tensor4::from_vec(2, 1, 1, 1, vec![2.0, 3.0]);
        let g = Conv2dGeom::new(2, 2, 1, 1, 1, 0, 2);
        let out = conv2d_reference(&input, &weights, &g);
        assert_eq!(out.as_slice(), &[2.0, 30.0]);
    }

    #[test]
    fn maxpool_picks_window_maximum() {
        let input = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 5.0, -3.0, 2.0]);
        let out = maxpool2d_reference(&input, 2, 2);
        assert_eq!(out.as_slice(), &[5.0]);
    }

    #[test]
    #[should_panic(expected = "not divisible by groups")]
    fn bad_group_divisibility_panics() {
        Conv2dGeom::new(3, 8, 3, 3, 1, 1, 2);
    }
}
