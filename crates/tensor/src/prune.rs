//! Unstructured magnitude pruning.
//!
//! Table I of the paper reports 60–90 % weight sparsity "after applying an
//! unstructured weight pruning approach similar to that described by Zhu
//! et al."; this module reproduces that: the smallest-magnitude weights are
//! zeroed until the target sparsity is reached, globally per tensor.

use crate::{Elem, Matrix, Tensor4};

/// Prunes a flat buffer in place to the target sparsity (fraction of zeros).
///
/// Returns the achieved sparsity (which can exceed the target when the
/// buffer already holds zeros).
///
/// # Panics
///
/// Panics if `target` is not in `[0, 1]`.
pub fn prune_to_sparsity(data: &mut [Elem], target: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&target),
        "target sparsity must be in [0,1]"
    );
    if data.is_empty() {
        return 0.0;
    }
    let want_zeros = (data.len() as f64 * target).round() as usize;
    let current_zeros = data.iter().filter(|v| **v == 0.0).count();
    if current_zeros < want_zeros {
        // Find the magnitude threshold below which values are dropped.
        let mut mags: Vec<Elem> = data
            .iter()
            .filter(|v| **v != 0.0)
            .map(|v| v.abs())
            .collect();
        let to_drop = want_zeros - current_zeros;
        // Index of the largest magnitude we still drop.
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let threshold = mags[to_drop - 1];
        let mut dropped = 0;
        for v in data.iter_mut() {
            if *v != 0.0 && v.abs() <= threshold && dropped < to_drop {
                *v = 0.0;
                dropped += 1;
            }
        }
    }
    let zeros = data.iter().filter(|v| **v == 0.0).count();
    zeros as f64 / data.len() as f64
}

/// Prunes a [`Matrix`] in place to the target sparsity; returns the achieved
/// sparsity.
pub fn prune_matrix_to_sparsity(m: &mut Matrix, target: f64) -> f64 {
    prune_to_sparsity(m.as_mut_slice(), target)
}

/// Prunes a [`Tensor4`] in place to the target sparsity; returns the
/// achieved sparsity.
pub fn prune_tensor_to_sparsity(t: &mut Tensor4, target: f64) -> f64 {
    prune_to_sparsity(t.as_mut_slice(), target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeededRng;

    #[test]
    fn prune_reaches_target() {
        let mut rng = SeededRng::new(10);
        let mut m = Matrix::random(40, 40, &mut rng);
        let achieved = prune_matrix_to_sparsity(&mut m, 0.75);
        assert!((achieved - 0.75).abs() < 0.01, "achieved {achieved}");
        assert!((m.sparsity() - 0.75).abs() < 0.01);
    }

    #[test]
    fn prune_drops_smallest_magnitudes() {
        let mut data = vec![0.1, -0.2, 0.3, -0.4, 0.5, -0.6, 0.7, -0.8, 0.9, -1.0];
        prune_to_sparsity(&mut data, 0.5);
        assert_eq!(&data[..5], &[0.0; 5]);
        assert_eq!(&data[5..], &[-0.6, 0.7, -0.8, 0.9, -1.0]);
    }

    #[test]
    fn prune_zero_target_is_noop() {
        let mut data = vec![1.0, 2.0, 3.0];
        let achieved = prune_to_sparsity(&mut data, 0.0);
        assert_eq!(achieved, 0.0);
        assert_eq!(data, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn prune_full_target_zeros_everything() {
        let mut data = vec![1.0, -2.0, 3.0];
        let achieved = prune_to_sparsity(&mut data, 1.0);
        assert_eq!(achieved, 1.0);
        assert!(data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn prune_respects_existing_zeros() {
        let mut data = vec![0.0, 0.0, 1.0, 2.0];
        let achieved = prune_to_sparsity(&mut data, 0.5);
        assert_eq!(achieved, 0.5);
        // The non-zero values survived.
        assert_eq!(&data[2..], &[1.0, 2.0]);
    }

    #[test]
    fn prune_already_sparser_than_target() {
        let mut data = vec![0.0, 0.0, 0.0, 5.0];
        let achieved = prune_to_sparsity(&mut data, 0.5);
        assert_eq!(achieved, 0.75);
        assert_eq!(data[3], 5.0);
    }

    #[test]
    fn prune_empty_buffer() {
        let mut data: Vec<f32> = vec![];
        assert_eq!(prune_to_sparsity(&mut data, 0.5), 0.0);
    }

    #[test]
    fn prune_tensor_variant() {
        let mut rng = SeededRng::new(12);
        let mut t = Tensor4::random(2, 4, 8, 8, &mut rng);
        let achieved = prune_tensor_to_sparsity(&mut t, 0.9);
        assert!((achieved - 0.9).abs() < 0.01);
    }
}
