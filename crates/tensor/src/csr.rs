//! Compressed Sparse Row (CSR) matrix encoding.
//!
//! One of the two sparse formats the paper's sparse memory controller
//! accepts for the MK (weights) and KN (activations) operands.

use crate::{Elem, Matrix};
use serde::{Deserialize, Serialize};

/// A sparse matrix in CSR form.
///
/// ```
/// use stonne_tensor::{CsrMatrix, Matrix};
/// let dense = Matrix::from_rows(&[&[0.0, 1.0], &[2.0, 0.0]]);
/// let csr = CsrMatrix::from_dense(&dense);
/// assert_eq!(csr.nnz(), 2);
/// assert_eq!(csr.row_entries(1).collect::<Vec<_>>(), vec![(0, 2.0)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<Elem>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a dense matrix, dropping exact zeros.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut row_ptr = Vec::with_capacity(m.rows() + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for r in 0..m.rows() {
            for (c, &v) in m.row(r).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c);
                    vals.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            rows: m.rows(),
            cols: m.cols(),
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Builds directly from raw CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent (wrong `row_ptr` length,
    /// non-monotonic `row_ptr`, column out of range, or mismatched value
    /// count).
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        vals: Vec<Elem>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr must have rows+1 entries");
        assert_eq!(col_idx.len(), vals.len(), "col_idx/vals length mismatch");
        assert_eq!(*row_ptr.last().unwrap(), vals.len(), "row_ptr end mismatch");
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be monotonic"
        );
        assert!(
            col_idx.iter().all(|&c| c < cols),
            "column index out of range"
        );
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of non-zeros in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_nnz(&self, r: usize) -> usize {
        assert!(r < self.rows, "row {r} out of bounds");
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Iterator over `(col, value)` pairs of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, Elem)> + '_ {
        assert!(r < self.rows, "row {r} out of bounds");
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.vals[lo..hi].iter().copied())
    }

    /// Fraction of zero elements.
    pub fn sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / total as f64
    }

    /// Expands back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                m.set(r, c, v);
            }
        }
        m
    }

    /// Size of the encoding in "elements" (values + index overhead in
    /// element-sized units), used by the memory-traffic accounting.
    ///
    /// CSR stores one value and one column index per non-zero, plus a row
    /// pointer per row; we charge indices at one element each, matching the
    /// paper's element-granularity traffic counters.
    pub fn storage_elements(&self) -> usize {
        self.vals.len() * 2 + self.row_ptr.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeededRng;

    #[test]
    fn dense_roundtrip() {
        let dense = Matrix::from_rows(&[&[0.0, 1.5, 0.0], &[0.0, 0.0, 0.0], &[-2.0, 0.0, 3.0]]);
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.to_dense(), dense);
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.row_nnz(0), 1);
        assert_eq!(csr.row_nnz(1), 0);
        assert_eq!(csr.row_nnz(2), 2);
    }

    #[test]
    fn row_entries_yield_cols_in_order() {
        let dense = Matrix::from_rows(&[&[4.0, 0.0, 5.0, 6.0]]);
        let csr = CsrMatrix::from_dense(&dense);
        let entries: Vec<_> = csr.row_entries(0).collect();
        assert_eq!(entries, vec![(0, 4.0), (2, 5.0), (3, 6.0)]);
    }

    #[test]
    fn sparsity_matches_dense() {
        let mut rng = SeededRng::new(11);
        let mut dense = Matrix::random(10, 10, &mut rng);
        for i in 0..50 {
            let r = i / 10;
            let c = i % 10;
            dense.set(r, c, 0.0);
        }
        let csr = CsrMatrix::from_dense(&dense);
        assert!((csr.sparsity() - dense.sparsity()).abs() < 1e-12);
    }

    #[test]
    fn from_raw_valid() {
        let csr = CsrMatrix::from_raw(2, 3, vec![0, 1, 2], vec![2, 0], vec![1.0, 2.0]);
        assert_eq!(csr.to_dense().get(0, 2), 1.0);
        assert_eq!(csr.to_dense().get(1, 0), 2.0);
    }

    #[test]
    #[should_panic(expected = "row_ptr must have rows+1 entries")]
    fn from_raw_bad_row_ptr_panics() {
        CsrMatrix::from_raw(2, 3, vec![0, 1], vec![0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn from_raw_bad_col_panics() {
        CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    fn storage_accounts_values_and_indices() {
        let dense = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.storage_elements(), 2 * 2 + 3);
    }

    #[test]
    fn empty_matrix() {
        let csr = CsrMatrix::from_dense(&Matrix::zeros(0, 0));
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.sparsity(), 0.0);
    }
}
