//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use stonne_tensor::{
    assert_slices_close, col2im_output, conv2d_reference, gemm_reference, im2col_matrix,
    prune_to_sparsity, spmm_reference, weights_matrix, BitmapMatrix, Conv2dGeom, CsrMatrix, Matrix,
    SeededRng, Tensor4,
};

/// Strategy producing a random matrix with ~`sparsity` zero fraction.
fn sparse_matrix(rows: usize, cols: usize, sparsity: f64, seed: u64) -> Matrix {
    let mut rng = SeededRng::new(seed);
    let mut m = Matrix::random(rows, cols, &mut rng);
    for r in 0..rows {
        for c in 0..cols {
            if rng.chance(sparsity) {
                m.set(r, c, 0.0);
            }
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_roundtrip(rows in 1usize..20, cols in 1usize..20, sp in 0.0f64..1.0, seed in 0u64..1000) {
        let m = sparse_matrix(rows, cols, sp, seed);
        prop_assert_eq!(CsrMatrix::from_dense(&m).to_dense(), m);
    }

    #[test]
    fn bitmap_roundtrip(rows in 1usize..20, cols in 1usize..20, sp in 0.0f64..1.0, seed in 0u64..1000) {
        let m = sparse_matrix(rows, cols, sp, seed);
        prop_assert_eq!(BitmapMatrix::from_dense(&m).to_dense(), m);
    }

    #[test]
    fn csr_and_bitmap_agree(rows in 1usize..16, cols in 1usize..16, sp in 0.0f64..1.0, seed in 0u64..1000) {
        let m = sparse_matrix(rows, cols, sp, seed);
        let csr = CsrMatrix::from_dense(&m);
        let bm = BitmapMatrix::from_dense(&m);
        prop_assert_eq!(csr.nnz(), bm.nnz());
        for r in 0..rows {
            let a: Vec<_> = csr.row_entries(r).collect();
            let b: Vec<_> = bm.row_entries(r).collect();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn spmm_matches_gemm(m in 1usize..10, k in 1usize..12, n in 1usize..10, sp in 0.0f64..0.95, seed in 0u64..1000) {
        let a = sparse_matrix(m, k, sp, seed);
        let mut rng = SeededRng::new(seed ^ 0xdead);
        let b = Matrix::random(k, n, &mut rng);
        let dense = gemm_reference(&a, &b);
        let sparse = spmm_reference(&CsrMatrix::from_dense(&a), &b);
        assert_slices_close(sparse.as_slice(), dense.as_slice());
    }

    #[test]
    fn prune_hits_target(len in 1usize..400, target in 0.0f64..1.0, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let mut data: Vec<f32> = (0..len).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let achieved = prune_to_sparsity(&mut data, target);
        let zeros = data.iter().filter(|v| **v == 0.0).count();
        prop_assert_eq!(zeros as f64 / len as f64, achieved);
        // Achieved is within one element of the rounded target (or above it
        // if the data already contained zeros — excluded here by uniform gen).
        let want = (len as f64 * target).round() as usize;
        prop_assert!(zeros >= want.saturating_sub(1) && zeros <= want + 1,
            "zeros={} want={}", zeros, want);
    }

    #[test]
    fn gemm_is_linear_in_first_operand(m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let a1 = Matrix::random(m, k, &mut rng);
        let a2 = Matrix::random(m, k, &mut rng);
        let b = Matrix::random(k, n, &mut rng);
        let mut sum = Matrix::zeros(m, k);
        for r in 0..m {
            for c in 0..k {
                sum.set(r, c, a1.get(r, c) + a2.get(r, c));
            }
        }
        let lhs = gemm_reference(&sum, &b);
        let c1 = gemm_reference(&a1, &b);
        let c2 = gemm_reference(&a2, &b);
        for i in 0..m {
            for j in 0..n {
                prop_assert!((lhs.get(i, j) - (c1.get(i, j) + c2.get(i, j))).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn im2col_equals_direct_conv(
        in_c in 1usize..4,
        out_c in 1usize..5,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        hw in 3usize..8,
        seed in 0u64..1000,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let geom = Conv2dGeom::new(in_c, out_c, k, k, stride, pad, 1);
        let mut rng = SeededRng::new(seed);
        let input = Tensor4::random(1, in_c, hw, hw, &mut rng);
        let weights = Tensor4::random(out_c, in_c, k, k, &mut rng);
        let direct = conv2d_reference(&input, &weights, &geom);
        let (oh, ow) = geom.out_hw(hw, hw);
        let outs = vec![gemm_reference(
            &weights_matrix(&weights, &geom, 0),
            &im2col_matrix(&input, &geom, 0),
        )];
        let lowered = col2im_output(&outs, &geom, 1, oh, ow);
        assert_slices_close(lowered.as_slice(), direct.as_slice());
    }

    #[test]
    fn transpose_preserves_elements(rows in 1usize..12, cols in 1usize..12, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let m = Matrix::random(rows, cols, &mut rng);
        let t = m.transposed();
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(m.get(r, c), t.get(c, r));
            }
        }
    }
}
