//! Table-based energy and area models for simulated accelerators.
//!
//! The paper's Output Module converts per-component activity counts into
//! energy with a table-based model "similar to Accelergy", whose per-event
//! costs were derived from Synopsys Design-Compiler synthesis and Cadence
//! Innovus place-and-route at 28 nm. Without access to those tools, this
//! crate ships representative 28 nm tables calibrated so that the
//! *component breakdowns* the paper reports emerge from the activity
//! counters: reduction-network-dominated energy (≈84/58/43 % of total for
//! TPU/MAERI/SIGMA-like designs in Fig. 5b) and Global-Buffer-dominated
//! area (≈70–82 % in Fig. 5c). Absolute joules/µm² are synthetic;
//! EXPERIMENTS.md records the calibration.
//!
//! # Example
//!
//! ```
//! use stonne_core::{AcceleratorConfig, Stonne};
//! use stonne_energy::{EnergyModel, area_um2};
//! use stonne_tensor::{Matrix, SeededRng};
//!
//! # fn main() -> Result<(), stonne_core::ConfigError> {
//! let mut rng = SeededRng::new(0);
//! let a = Matrix::random(8, 16, &mut rng);
//! let b = Matrix::random(16, 8, &mut rng);
//! let cfg = AcceleratorConfig::maeri_like(64, 16);
//! let mut sim = Stonne::new(cfg.clone())?;
//! let (_, stats) = sim.run_gemm("demo", &a, &b);
//! let breakdown = EnergyModel::fp8().breakdown(&stats);
//! assert!(breakdown.total_uj() > 0.0);
//! assert!(area_um2(&cfg).total() > 0.0);
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};
use stonne_core::{AcceleratorConfig, ControllerKind, DnKind, RnKind, SimStats};

/// Data format of the simulated datapath; scales the dynamic-energy table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataFormat {
    /// 8-bit floating point (the paper's use-case default).
    Fp8,
    /// 16-bit floating point.
    Fp16,
    /// 8-bit integer.
    Int8,
}

impl DataFormat {
    /// Dynamic-energy scale factor relative to FP8.
    fn scale(&self) -> f64 {
        match self {
            DataFormat::Fp8 => 1.0,
            DataFormat::Fp16 => 2.2,
            DataFormat::Int8 => 0.7,
        }
    }
}

/// Per-event dynamic energies in picojoules (28 nm class, FP8 baseline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyTable {
    /// One multiplier operation.
    pub mult_pj: f64,
    /// One 3:1 ART adder operation.
    pub adder3_pj: f64,
    /// One 2:1 FAN/linear adder operation.
    pub adder2_pj: f64,
    /// One accumulator-register update.
    pub accumulator_pj: f64,
    /// One DN switch traversal.
    pub dn_switch_pj: f64,
    /// One wire-segment hop.
    pub wire_pj: f64,
    /// One MN forwarding-link transfer.
    pub forward_pj: f64,
    /// One Global-Buffer element read.
    pub gb_read_pj: f64,
    /// One Global-Buffer element write.
    pub gb_write_pj: f64,
    /// One FIFO push or pop.
    pub fifo_pj: f64,
    /// One DRAM element transfer.
    pub dram_pj: f64,
    /// One sparse-metadata read.
    pub metadata_pj: f64,
    /// Leakage per cycle per multiplier switch (static energy).
    pub static_pj_per_ms_cycle: f64,
}

impl EnergyTable {
    /// The 28 nm FP8 reference table.
    pub fn base_28nm() -> Self {
        Self {
            mult_pj: 0.05,
            adder3_pj: 1.00,
            adder2_pj: 0.55,
            accumulator_pj: 1.15,
            dn_switch_pj: 0.012,
            wire_pj: 0.02,
            forward_pj: 0.012,
            gb_read_pj: 1.2,
            gb_write_pj: 1.3,
            fifo_pj: 0.03,
            dram_pj: 31.0,
            metadata_pj: 0.06,
            static_pj_per_ms_cycle: 0.012,
        }
    }
}

/// Energy consumed per architectural component, in µJ — the breakdown of
/// Fig. 5b (GB / DN / MN / RN, plus DRAM and static leakage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Global-Buffer energy (µJ).
    pub gb_uj: f64,
    /// Distribution-network energy (µJ).
    pub dn_uj: f64,
    /// Multiplier-network energy (µJ).
    pub mn_uj: f64,
    /// Reduction-network energy (µJ), accumulators included.
    pub rn_uj: f64,
    /// Off-chip DRAM energy (µJ).
    pub dram_uj: f64,
    /// Static (leakage) energy over the run (µJ).
    pub static_uj: f64,
}

impl EnergyBreakdown {
    /// Total energy in µJ.
    pub fn total_uj(&self) -> f64 {
        self.gb_uj + self.dn_uj + self.mn_uj + self.rn_uj + self.dram_uj + self.static_uj
    }

    /// Fraction of the total attributed to the reduction network.
    pub fn rn_fraction(&self) -> f64 {
        if self.total_uj() == 0.0 {
            0.0
        } else {
            self.rn_uj / self.total_uj()
        }
    }
}

/// The energy model: a table plus the adder kind of the configured RN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    table: EnergyTable,
    format: DataFormat,
    /// RN adder kind used when attributing `rn_adder_ops` (3:1 for ART,
    /// 2:1 for FAN/linear, per the paper's SIGMA discussion).
    rn_kind: RnKind,
}

impl EnergyModel {
    /// FP8 model with ART-style 3:1 adders (MAERI default).
    pub fn fp8() -> Self {
        Self {
            table: EnergyTable::base_28nm(),
            format: DataFormat::Fp8,
            rn_kind: RnKind::ArtAcc,
        }
    }

    /// Model matching an accelerator configuration (adder kind from its
    /// RN, FP8 format as in the paper's use cases).
    pub fn for_config(config: &AcceleratorConfig) -> Self {
        Self {
            table: EnergyTable::base_28nm(),
            format: DataFormat::Fp8,
            rn_kind: config.rn,
        }
    }

    /// Switches the data format (scales the dynamic events).
    pub fn with_format(mut self, format: DataFormat) -> Self {
        self.format = format;
        self
    }

    /// Overrides the table (for user-supplied synthesis results).
    pub fn with_table(mut self, table: EnergyTable) -> Self {
        self.table = table;
        self
    }

    /// Per-op adder energy of the configured RN kind.
    fn adder_pj(&self) -> f64 {
        match self.rn_kind {
            RnKind::Art | RnKind::ArtAcc => self.table.adder3_pj,
            RnKind::Fan | RnKind::Linear => self.table.adder2_pj,
        }
    }

    /// Computes the component energy breakdown from a run's statistics.
    pub fn breakdown(&self, stats: &SimStats) -> EnergyBreakdown {
        let t = &self.table;
        let c = &stats.counters;
        let s = self.format.scale();
        let pj_to_uj = 1e-6;

        let gb = (c.gb_reads as f64 * t.gb_read_pj
            + c.gb_writes as f64 * t.gb_write_pj
            + c.metadata_reads as f64 * t.metadata_pj)
            * s;
        let dn = (c.dn_switch_traversals as f64 * t.dn_switch_pj
            + c.dn_wire_hops as f64 * t.wire_pj
            + (c.fifo_pushes + c.fifo_pops) as f64 * t.fifo_pj)
            * s;
        let mn = (c.multiplications as f64 * t.mult_pj + c.mn_forwards as f64 * t.forward_pj) * s;
        let rn = (c.rn_adder_ops as f64 * self.adder_pj()
            + c.accumulator_updates as f64 * t.accumulator_pj
            + c.rn_collections as f64 * t.wire_pj)
            * s;
        let dram = (c.dram_reads + c.dram_writes) as f64 * t.dram_pj * s;
        let static_e = stats.cycles as f64 * stats.ms_size as f64 * t.static_pj_per_ms_cycle;

        EnergyBreakdown {
            gb_uj: gb * pj_to_uj,
            dn_uj: dn * pj_to_uj,
            mn_uj: mn * pj_to_uj,
            rn_uj: rn * pj_to_uj,
            dram_uj: dram * pj_to_uj,
            static_uj: static_e * pj_to_uj,
        }
    }
}

/// Reconstructs activity counters from a counter file's `(name, value)`
/// pairs (inverse of `stonne_core::counter_file`) and computes the energy
/// breakdown — the paper's post-processing script: "given the counter file
/// and a table-based energy model …, computes the total consumed energy".
///
/// Unknown counter names are ignored; missing ones default to zero.
pub fn energy_from_counter_file(model: &EnergyModel, text: &str) -> EnergyBreakdown {
    let pairs = stonne_core::parse_counter_file(text);
    let get = |name: &str| -> u64 {
        pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let stats = SimStats {
        cycles: get("cycles"),
        // The counter file carries no ms_size; static energy is the one
        // term the script cannot recover, so it reports dynamic-only
        // (callers with the full stats should use `breakdown` directly).
        ms_size: 0,
        counters: stonne_core::ActivityCounters {
            multiplications: get("multiplier.multiplications"),
            rn_adder_ops: get("rn.adder_ops"),
            rn_collections: get("rn.collections"),
            accumulator_updates: get("accumulator.updates"),
            dn_injections: get("dn.injections"),
            dn_switch_traversals: get("dn.switch_traversals"),
            dn_wire_hops: get("dn.wire_hops"),
            mn_forwards: get("mn.forwards"),
            gb_reads: get("gb.reads"),
            gb_writes: get("gb.writes"),
            fifo_pushes: get("fifo.pushes"),
            fifo_pops: get("fifo.pops"),
            dram_reads: get("dram.reads"),
            dram_writes: get("dram.writes"),
            metadata_reads: get("metadata.reads"),
        },
        ..SimStats::default()
    };
    model.breakdown(&stats)
}

/// Area of one accelerator instance per component, in µm² (28 nm class).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Global-Buffer SRAM macro area.
    pub gb_um2: f64,
    /// Distribution-network area.
    pub dn_um2: f64,
    /// Multiplier-network area (multipliers + forwarding links).
    pub mn_um2: f64,
    /// Reduction-network area (adders + accumulators).
    pub rn_um2: f64,
}

impl AreaBreakdown {
    /// Total area in µm².
    pub fn total(&self) -> f64 {
        self.gb_um2 + self.dn_um2 + self.mn_um2 + self.rn_um2
    }

    /// Fraction of the total occupied by the Global Buffer.
    pub fn gb_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.gb_um2 / self.total()
        }
    }
}

/// Per-module area constants (µm², 28 nm class).
mod area_table {
    /// SRAM macro per KiB.
    pub const SRAM_PER_KIB: f64 = 4300.0;
    /// One FP8 multiplier switch.
    pub const MULTIPLIER: f64 = 300.0;
    /// One accumulator register + write port.
    pub const ACCUMULATOR: f64 = 80.0;
    /// One 3:1 ART adder node.
    pub const ADDER3: f64 = 350.0;
    /// One 2:1 FAN adder node.
    pub const ADDER2: f64 = 180.0;
    /// One distribution-tree switch node.
    pub const TREE_SWITCH: f64 = 40.0;
    /// One Benes 2×2 switch.
    pub const BENES_SWITCH: f64 = 8.0;
    /// One point-to-point link segment.
    pub const P2P_LINK: f64 = 20.0;
    /// One MN forwarding link.
    pub const FORWARD_LINK: f64 = 15.0;
}

fn log2_ceil(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Computes the area of an accelerator configuration from the table-based
/// model (the Fig. 5c estimate).
pub fn area_um2(config: &AcceleratorConfig) -> AreaBreakdown {
    use area_table::*;
    let ms = config.ms_size as f64;

    let gb = config.gb_size_kib as f64 * SRAM_PER_KIB;

    let dn = match config.dn {
        DnKind::Tree => (ms - 1.0) * TREE_SWITCH,
        DnKind::Benes => {
            let levels = (2 * log2_ceil(config.ms_size) + 1) as f64;
            (ms / 2.0) * levels * BENES_SWITCH
        }
        DnKind::PointToPoint => ms * P2P_LINK,
    };

    let mut mn = ms * MULTIPLIER;
    if config.mn == stonne_core::MnKind::Linear {
        mn += (ms - 1.0) * FORWARD_LINK;
    }

    let rn = match config.rn {
        RnKind::Art => (ms - 1.0) * ADDER3,
        RnKind::ArtAcc => (ms - 1.0) * ADDER3 + ms * ACCUMULATOR,
        RnKind::Fan => (ms - 1.0) * ADDER2,
        RnKind::Linear => ms * ACCUMULATOR + ms.sqrt() * ADDER2,
    };
    // The sparse controller carries metadata decoders alongside the RN.
    let rn = if config.controller == ControllerKind::Sparse {
        rn + ms * 12.0
    } else {
        rn
    };

    AreaBreakdown {
        gb_um2: gb,
        dn_um2: dn,
        mn_um2: mn,
        rn_um2: rn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stonne_core::{AcceleratorConfig, SimStats, Stonne};
    use stonne_tensor::{Matrix, SeededRng};

    fn run_on(cfg: AcceleratorConfig) -> SimStats {
        let mut rng = SeededRng::new(3);
        let a = Matrix::random(32, 64, &mut rng);
        let b = Matrix::random(64, 32, &mut rng);
        let mut sim = Stonne::new(cfg).unwrap();
        let (_, stats) = sim.run_gemm("e", &a, &b);
        stats
    }

    #[test]
    fn rn_dominates_tpu_energy() {
        // Fig. 5b: RN ≈ 84% of TPU-like energy.
        let cfg = AcceleratorConfig::tpu_like(16);
        let stats = run_on(cfg.clone());
        let b = EnergyModel::for_config(&cfg).breakdown(&stats);
        assert!(
            b.rn_fraction() > 0.6,
            "TPU RN fraction {:.2} should dominate",
            b.rn_fraction()
        );
    }

    #[test]
    fn rn_fraction_ordering_matches_fig5b() {
        // TPU > MAERI > SIGMA in RN energy share.
        let tpu_cfg = AcceleratorConfig::tpu_like(16);
        let maeri_cfg = AcceleratorConfig::maeri_like(256, 128);
        let sigma_cfg = AcceleratorConfig::sigma_like(256, 128);
        let tpu = EnergyModel::for_config(&tpu_cfg).breakdown(&run_on(tpu_cfg.clone()));
        let maeri = EnergyModel::for_config(&maeri_cfg).breakdown(&run_on(maeri_cfg.clone()));
        let sigma = EnergyModel::for_config(&sigma_cfg).breakdown(&run_on(sigma_cfg.clone()));
        assert!(tpu.rn_fraction() > maeri.rn_fraction());
        assert!(maeri.rn_fraction() > sigma.rn_fraction());
    }

    #[test]
    fn fp16_costs_more_than_fp8() {
        let cfg = AcceleratorConfig::maeri_like(64, 16);
        let stats = run_on(cfg.clone());
        let fp8 = EnergyModel::for_config(&cfg).breakdown(&stats);
        let fp16 = EnergyModel::for_config(&cfg)
            .with_format(DataFormat::Fp16)
            .breakdown(&stats);
        assert!(fp16.total_uj() > fp8.total_uj());
        // Static energy is format-independent.
        assert_eq!(fp16.static_uj, fp8.static_uj);
    }

    #[test]
    fn gb_dominates_area_for_all_presets() {
        // Fig. 5c: the 108-KiB GB SRAM is 70–82% of the total area.
        for cfg in [
            AcceleratorConfig::tpu_like(16),
            AcceleratorConfig::maeri_like(256, 128),
            AcceleratorConfig::sigma_like(256, 128),
        ] {
            let a = area_um2(&cfg);
            let f = a.gb_fraction();
            assert!(
                (0.60..=0.90).contains(&f),
                "{}: GB fraction {f:.2} outside the paper's band",
                cfg.name
            );
        }
    }

    #[test]
    fn area_ordering_matches_fig5c() {
        // TPU smallest; SIGMA smaller than MAERI.
        let tpu = area_um2(&AcceleratorConfig::tpu_like(16)).total();
        let maeri = area_um2(&AcceleratorConfig::maeri_like(256, 128)).total();
        let sigma = area_um2(&AcceleratorConfig::sigma_like(256, 128)).total();
        assert!(tpu < sigma, "tpu {tpu} !< sigma {sigma}");
        assert!(sigma < maeri, "sigma {sigma} !< maeri {maeri}");
    }

    #[test]
    fn fan_adders_are_cheaper_than_art() {
        // SIGMA's motivation for FAN: 2:1 adders beat ART's 3:1.
        let mut art = AcceleratorConfig::maeri_like(256, 128);
        art.rn = stonne_core::RnKind::Art;
        let mut fan = art.clone();
        fan.rn = stonne_core::RnKind::Fan;
        assert!(area_um2(&fan).rn_um2 < area_um2(&art).rn_um2);
    }

    #[test]
    fn static_energy_scales_with_cycles() {
        let cfg = AcceleratorConfig::maeri_like(64, 16);
        let stats = run_on(cfg.clone());
        let mut longer = stats.clone();
        longer.cycles *= 2;
        let model = EnergyModel::for_config(&cfg);
        assert!(model.breakdown(&longer).static_uj > model.breakdown(&stats).static_uj);
    }

    #[test]
    fn empty_stats_cost_nothing_dynamic() {
        let b = EnergyModel::fp8().breakdown(&SimStats::default());
        assert_eq!(b.total_uj(), 0.0);
    }

    #[test]
    fn counter_file_script_recovers_dynamic_energy() {
        let cfg = AcceleratorConfig::maeri_like(64, 16);
        let stats = run_on(cfg.clone());
        let model = EnergyModel::for_config(&cfg);
        let direct = model.breakdown(&stats);
        let text = stonne_core::counter_file(&stats);
        let from_file = energy_from_counter_file(&model, &text);
        // Dynamic components match exactly; static needs ms_size.
        assert_eq!(from_file.gb_uj, direct.gb_uj);
        assert_eq!(from_file.dn_uj, direct.dn_uj);
        assert_eq!(from_file.mn_uj, direct.mn_uj);
        assert_eq!(from_file.rn_uj, direct.rn_uj);
        assert_eq!(from_file.static_uj, 0.0);
    }

    #[test]
    fn counter_file_script_ignores_unknown_lines() {
        let model = EnergyModel::fp8();
        let b = energy_from_counter_file(&model, "bogus.counter = 99\ncycles = 10\n");
        assert_eq!(b.total_uj(), 0.0);
    }
}
