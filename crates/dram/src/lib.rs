//! HBM2/DRAM bandwidth–latency model with double-buffered prefetch.
//!
//! The original STONNE models off-chip memory with DRAMsim3; the use cases
//! assume two 256 GB/s HBM2 modules feeding a double-buffered Global
//! Buffer. This crate reproduces that behaviour with a bandwidth/latency
//! channel model: requests occupy a channel for `ceil(bytes / bytes-per-
//! cycle)` cycles after a fixed access latency, and a [`DoubleBuffer`]
//! overlaps the next tile's fetch with the current tile's compute, exposing
//! any residual stall cycles to the memory controller.
//!
//! # Example
//!
//! ```
//! use stonne_dram::{DramConfig, DramModel};
//! let mut dram = DramModel::new(DramConfig::hbm2_dual());
//! let done = dram.read(0, 1024); // 1024 elements requested at cycle 0
//! assert!(done > 0);
//! ```

use serde::{Deserialize, Serialize};

pub mod arbiter;

/// Configuration of the off-chip memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent channels (HBM2 modules).
    pub channels: usize,
    /// Peak bandwidth per channel in GB/s.
    pub bandwidth_gbps_per_channel: f64,
    /// Capacity per channel in MiB.
    pub capacity_mib_per_channel: usize,
    /// Fixed access latency in accelerator cycles.
    pub latency_cycles: u64,
    /// Accelerator clock in GHz (1 GHz in the paper's use cases).
    pub clock_ghz: f64,
    /// Bytes per element (the paper uses FP8 ⇒ 1; FP16 ⇒ 2).
    pub element_bytes: usize,
}

impl DramConfig {
    /// The paper's use-case setup: two 256 GB/s, 512 MiB HBM2 modules at a
    /// 1 GHz accelerator clock with FP8 elements.
    pub fn hbm2_dual() -> Self {
        Self {
            channels: 2,
            bandwidth_gbps_per_channel: 256.0,
            capacity_mib_per_channel: 512,
            latency_cycles: 100,
            clock_ghz: 1.0,
            element_bytes: 1,
        }
    }

    /// Elements the whole memory system can deliver per accelerator cycle.
    ///
    /// Degenerate configurations (zero channels, zero or negative
    /// bandwidth/clock, zero-byte elements) deliver `0.0` rather than a
    /// NaN/infinity that would poison downstream `ceil() as u64` casts.
    pub fn elements_per_cycle(&self) -> f64 {
        if self.channels == 0
            || self.bandwidth_gbps_per_channel <= 0.0
            || self.clock_ghz <= 0.0
            || self.element_bytes == 0
        {
            return 0.0;
        }
        self.channels as f64 * self.bandwidth_gbps_per_channel
            / self.clock_ghz
            / self.element_bytes as f64
    }

    /// Total capacity in elements.
    pub fn capacity_elements(&self) -> usize {
        self.channels * self.capacity_mib_per_channel * 1024 * 1024 / self.element_bytes
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::hbm2_dual()
    }
}

/// Cumulative DRAM activity statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Total elements read.
    pub elements_read: u64,
    /// Total elements written.
    pub elements_written: u64,
    /// Number of read requests.
    pub read_requests: u64,
    /// Number of write requests.
    pub write_requests: u64,
    /// Cycles any channel spent busy transferring.
    pub busy_cycles: u64,
}

/// Direction of a logged DRAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DramRequestKind {
    /// Operand fetch into the Global Buffer.
    Read,
    /// Result writeback.
    Write,
}

/// One request captured by the opt-in request log
/// ([`DramModel::enable_request_log`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramRequest {
    /// Read or write.
    pub kind: DramRequestKind,
    /// Channel the request was scheduled on.
    pub channel: usize,
    /// Cycle the transfer started occupying the channel.
    pub start: u64,
    /// Completion cycle (start + latency + transfer).
    pub end: u64,
    /// Elements transferred.
    pub elements: u64,
}

#[derive(Debug, Clone, Default)]
struct RequestLog {
    capacity: usize,
    entries: Vec<DramRequest>,
    dropped: u64,
}

/// The off-chip memory model.
///
/// Each request occupies the least-loaded channel; completion time is
/// `max(now, channel_free) + latency + transfer`, which captures both
/// bandwidth saturation and access latency without queue-level detail —
/// the fidelity DRAMsim3 provides that matters to the paper's experiments
/// (the GB prefetcher hides everything else).
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    channel_free_at: Vec<u64>,
    stats: DramStats,
    log: Option<RequestLog>,
}

impl DramModel {
    /// Creates a model from a configuration.
    pub fn new(config: DramConfig) -> Self {
        Self {
            channel_free_at: vec![0; config.channels.max(1)],
            config,
            stats: DramStats::default(),
            log: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Enables per-request logging, keeping at most `capacity` requests
    /// (newest dropped past the cap, so the log stays bounded on long
    /// runs). Logging is off by default and costs nothing when off.
    pub fn enable_request_log(&mut self, capacity: usize) {
        self.log = Some(RequestLog {
            capacity: capacity.max(1),
            entries: Vec::new(),
            dropped: 0,
        });
    }

    /// The logged requests, in issue order (empty when logging is off).
    pub fn requests(&self) -> &[DramRequest] {
        self.log.as_ref().map_or(&[], |l| &l.entries)
    }

    /// Requests not logged because the log was full.
    pub fn dropped_requests(&self) -> u64 {
        self.log.as_ref().map_or(0, |l| l.dropped)
    }

    fn transfer_cycles(&self, elements: u64) -> u64 {
        if elements == 0 {
            return 0;
        }
        // Degenerate configs (zero channels/bandwidth/clock/element size)
        // would make the division NaN or infinite; `inf as u64` saturates
        // to u64::MAX and a NaN casts to 0, both of which silently corrupt
        // the timeline. Treat such transfers as free instead.
        if self.config.elements_per_cycle() <= 0.0 {
            return 0;
        }
        let per_channel = self.config.bandwidth_gbps_per_channel
            / self.config.clock_ghz
            / self.config.element_bytes as f64;
        (elements as f64 / per_channel).ceil() as u64
    }

    fn issue(&mut self, now: u64, elements: u64, kind: DramRequestKind) -> u64 {
        // A zero-element request moves no data: it costs no latency and
        // occupies no channel.
        if elements == 0 {
            return now;
        }
        // Least-loaded channel takes the request.
        let (ch, _) = self
            .channel_free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &f)| f)
            .expect("at least one channel");
        let start = now.max(self.channel_free_at[ch]);
        let transfer = self.transfer_cycles(elements);
        let done = start + self.config.latency_cycles + transfer;
        self.channel_free_at[ch] = start + transfer;
        self.stats.busy_cycles += transfer;
        if let Some(log) = self.log.as_mut() {
            if log.entries.len() < log.capacity {
                log.entries.push(DramRequest {
                    kind,
                    channel: ch,
                    start,
                    end: done,
                    elements,
                });
            } else {
                log.dropped += 1;
            }
        }
        done
    }

    /// Issues a read of `elements` at cycle `now`; returns the completion
    /// cycle.
    pub fn read(&mut self, now: u64, elements: u64) -> u64 {
        self.stats.read_requests += 1;
        self.stats.elements_read += elements;
        self.issue(now, elements, DramRequestKind::Read)
    }

    /// Issues a write of `elements` at cycle `now`; returns the completion
    /// cycle.
    pub fn write(&mut self, now: u64, elements: u64) -> u64 {
        self.stats.write_requests += 1;
        self.stats.elements_written += elements;
        self.issue(now, elements, DramRequestKind::Write)
    }
}

/// Double-buffered prefetch into the Global Buffer.
///
/// While the accelerator computes on tile *i*, tile *i+1* streams in; the
/// controller only stalls when the fetch outlives the compute. This is the
/// "double-buffering prefetching at the Global Buffer" the paper assumes.
#[derive(Debug, Clone)]
pub struct DoubleBuffer {
    dram: DramModel,
    /// Completion cycle of the in-flight prefetch (tile ready time).
    next_ready_at: u64,
    stall_cycles: u64,
}

impl DoubleBuffer {
    /// Creates a double buffer over a DRAM model; the first tile's fetch
    /// begins at cycle 0.
    pub fn new(dram: DramModel) -> Self {
        Self {
            dram,
            next_ready_at: 0,
            stall_cycles: 0,
        }
    }

    /// Accumulated stall cycles where compute waited on DRAM.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Underlying DRAM statistics.
    pub fn dram_stats(&self) -> DramStats {
        self.dram.stats()
    }

    /// Consumes the buffer, returning the DRAM model.
    pub fn into_dram(self) -> DramModel {
        self.dram
    }

    /// Begins consuming a tile of `elements` at cycle `now`, immediately
    /// prefetching it if it was not already in flight. Returns the cycle at
    /// which compute may start (≥ `now`; any gap is recorded as stall).
    pub fn acquire_tile(&mut self, now: u64, elements: u64) -> u64 {
        let ready = if self.next_ready_at == 0 && elements > 0 {
            // Cold start: no prefetch was in flight yet.
            self.dram.read(now, elements)
        } else {
            self.next_ready_at.max(now)
        };
        if ready > now {
            self.stall_cycles += ready - now;
        }
        ready.max(now)
    }

    /// Starts prefetching the next tile of `elements` at cycle `now`
    /// (typically called as soon as the current tile's compute begins).
    pub fn prefetch_next(&mut self, now: u64, elements: u64) {
        self.next_ready_at = if elements == 0 {
            now
        } else {
            self.dram.read(now, elements)
        };
    }

    /// Writes back `elements` of results at cycle `now` (fire-and-forget,
    /// as stores are not on the critical path under double buffering).
    pub fn writeback(&mut self, now: u64, elements: u64) {
        if elements > 0 {
            self.dram.write(now, elements);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> DramConfig {
        DramConfig {
            channels: 1,
            bandwidth_gbps_per_channel: 4.0, // 4 elements/cycle at 1 GHz FP8
            capacity_mib_per_channel: 1,
            latency_cycles: 10,
            clock_ghz: 1.0,
            element_bytes: 1,
        }
    }

    #[test]
    fn hbm2_dual_matches_paper_parameters() {
        let c = DramConfig::hbm2_dual();
        assert_eq!(c.channels, 2);
        assert_eq!(c.elements_per_cycle(), 512.0);
        assert_eq!(c.capacity_elements(), 2 * 512 * 1024 * 1024);
    }

    #[test]
    fn read_includes_latency_and_transfer() {
        let mut dram = DramModel::new(tiny_config());
        // 40 elements at 4/cycle = 10 transfer cycles + 10 latency.
        assert_eq!(dram.read(0, 40), 20);
    }

    #[test]
    fn back_to_back_reads_serialize_on_the_channel() {
        let mut dram = DramModel::new(tiny_config());
        let first = dram.read(0, 40);
        let second = dram.read(0, 40);
        assert_eq!(first, 20);
        // Second transfer starts when the channel frees (cycle 10).
        assert_eq!(second, 30);
        assert_eq!(dram.stats().busy_cycles, 20);
    }

    #[test]
    fn two_channels_run_in_parallel() {
        let mut cfg = tiny_config();
        cfg.channels = 2;
        let mut dram = DramModel::new(cfg);
        let a = dram.read(0, 40);
        let b = dram.read(0, 40);
        assert_eq!(a, b, "parallel channels should complete together");
    }

    #[test]
    fn stats_accumulate() {
        let mut dram = DramModel::new(tiny_config());
        dram.read(0, 10);
        dram.write(5, 20);
        let s = dram.stats();
        assert_eq!(s.elements_read, 10);
        assert_eq!(s.elements_written, 20);
        assert_eq!(s.read_requests, 1);
        assert_eq!(s.write_requests, 1);
    }

    #[test]
    fn double_buffer_hides_fetch_under_long_compute() {
        let mut db = DoubleBuffer::new(DramModel::new(tiny_config()));
        let start = db.acquire_tile(0, 40); // cold start: stalls 20 cycles
        assert_eq!(start, 20);
        assert_eq!(db.stall_cycles(), 20);
        // Prefetch next tile while computing for 100 cycles.
        db.prefetch_next(start, 40);
        let start2 = db.acquire_tile(start + 100, 40);
        assert_eq!(start2, 120, "prefetch fully hidden");
        assert_eq!(db.stall_cycles(), 20);
    }

    #[test]
    fn double_buffer_stalls_when_compute_is_short() {
        let mut db = DoubleBuffer::new(DramModel::new(tiny_config()));
        let start = db.acquire_tile(0, 40);
        db.prefetch_next(start, 400); // 100 transfer cycles + latency
        let start2 = db.acquire_tile(start + 5, 400);
        assert!(start2 > start + 5, "short compute must expose DRAM stall");
        assert!(db.stall_cycles() > 20);
    }

    #[test]
    fn request_log_is_opt_in_and_bounded() {
        let mut dram = DramModel::new(tiny_config());
        dram.read(0, 4);
        assert!(dram.requests().is_empty(), "logging is off by default");

        dram.enable_request_log(2);
        dram.read(0, 40);
        dram.write(0, 8);
        dram.read(0, 4);
        let reqs = dram.requests();
        assert_eq!(reqs.len(), 2);
        assert_eq!(dram.dropped_requests(), 1);
        assert_eq!(reqs[0].kind, DramRequestKind::Read);
        assert_eq!(reqs[0].elements, 40);
        assert_eq!(reqs[0].end, reqs[0].start + 10 + 10); // latency + transfer
        assert_eq!(reqs[1].kind, DramRequestKind::Write);
    }

    #[test]
    fn zero_element_requests_cost_nothing() {
        let mut dram = DramModel::new(tiny_config());
        assert_eq!(dram.read(7, 0), 7, "empty read completes immediately");
        assert_eq!(dram.write(9, 0), 9, "empty write completes immediately");
        assert_eq!(dram.stats().busy_cycles, 0);
        // Channels stay free: a real request after an empty one starts at
        // `now`, not after a phantom transfer.
        assert_eq!(dram.read(0, 40), 20);
    }

    #[test]
    fn degenerate_configs_do_not_produce_nan_or_saturated_cycles() {
        for cfg in [
            DramConfig {
                channels: 0,
                ..tiny_config()
            },
            DramConfig {
                bandwidth_gbps_per_channel: 0.0,
                ..tiny_config()
            },
            DramConfig {
                clock_ghz: 0.0,
                ..tiny_config()
            },
            DramConfig {
                element_bytes: 0,
                ..tiny_config()
            },
        ] {
            assert_eq!(cfg.elements_per_cycle(), 0.0);
            let mut dram = DramModel::new(cfg);
            // Transfer is treated as free; only the fixed latency remains.
            let done = dram.read(0, 1024);
            assert_eq!(done, cfg.latency_cycles);
            assert!(done < u64::MAX / 2, "no saturated cast");
        }
    }

    #[test]
    fn writeback_counts_elements() {
        let mut db = DoubleBuffer::new(DramModel::new(tiny_config()));
        db.writeback(0, 64);
        assert_eq!(db.dram_stats().elements_written, 64);
    }
}
