//! Contention-aware DRAM arbitration across accelerator instances.
//!
//! [`crate::DramModel`] serializes the requests of *one* accelerator on its
//! channels; a multi-accelerator cluster additionally needs to decide
//! **whose** request goes first when several instances contend for the
//! shared memory system in the same cycle, and to account the resulting
//! wait cycles to the instance that suffered them. [`DramArbiter`] does
//! both: it owns the shared channel timeline, orders simultaneous
//! requests by a [`ArbiterPolicy`] (rotating round-robin or strict
//! priority), and keeps per-instance bandwidth/contention counters that
//! the cluster layer surfaces in its per-instance `SimStats`.
//!
//! The grant model matches [`crate::DramModel::read`]: a request occupies the
//! least-loaded channel for `ceil(elements / per-channel-rate)` cycles
//! starting no earlier than `now`; the gap between `now` and the grant
//! start is the **contention wait** — cycles this instance lost because
//! other traffic (its own earlier layers or other instances) held every
//! channel busy.

use crate::DramConfig;
use serde::{Deserialize, Serialize};

/// How simultaneous requests from different instances are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ArbiterPolicy {
    /// Fair rotation: the instance after the previously favoured one
    /// goes first; ties between a batch of same-cycle requests are
    /// resolved by rotating distance from the cursor.
    RoundRobin,
    /// Strict priority: higher request priority first, then lower
    /// instance index (deterministic tie-break).
    Priority,
}

impl ArbiterPolicy {
    /// Parses a policy name (`round-robin` or `priority`; empty selects
    /// round-robin).
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown policy.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "" | "round-robin" => Ok(Self::RoundRobin),
            "priority" => Ok(Self::Priority),
            other => Err(format!("unknown policy `{other}` (round-robin|priority)")),
        }
    }

    /// The canonical name of this policy.
    pub fn name(self) -> &'static str {
        match self {
            Self::RoundRobin => "round-robin",
            Self::Priority => "priority",
        }
    }
}

/// Per-instance bandwidth and contention accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceDramCounters {
    /// Requests granted to this instance.
    pub grants: u64,
    /// Elements this instance transferred.
    pub elements: u64,
    /// Channel-occupancy cycles attributed to this instance.
    pub transfer_cycles: u64,
    /// Cycles this instance waited for a channel past its request time.
    pub wait_cycles: u64,
}

/// One granted request: when the transfer started and what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Channel the transfer was scheduled on.
    pub channel: usize,
    /// Cycle the transfer started occupying the channel (≥ request time).
    pub start: u64,
    /// `start - now`: contention cycles suffered by the requester.
    pub wait: u64,
    /// Channel-occupancy cycles of the transfer itself.
    pub transfer: u64,
}

/// The shared-memory arbiter of a multi-accelerator cluster.
#[derive(Debug, Clone)]
pub struct DramArbiter {
    config: DramConfig,
    policy: ArbiterPolicy,
    channel_free_at: Vec<u64>,
    /// Round-robin cursor: the instance favoured in the next same-cycle
    /// ordering round.
    cursor: usize,
    per_instance: Vec<InstanceDramCounters>,
}

impl DramArbiter {
    /// Creates an arbiter over `config`'s channels for `instances`
    /// accelerator instances.
    pub fn new(config: DramConfig, policy: ArbiterPolicy, instances: usize) -> Self {
        Self {
            channel_free_at: vec![0; config.channels.max(1)],
            config,
            policy,
            cursor: 0,
            per_instance: vec![InstanceDramCounters::default(); instances.max(1)],
        }
    }

    /// The active policy.
    pub fn policy(&self) -> ArbiterPolicy {
        self.policy
    }

    /// Orders a batch of same-cycle requests `(instance, priority)`
    /// according to the policy; the caller then grants them in the
    /// returned order. Advances the round-robin cursor so repeated
    /// batches rotate fairness.
    pub fn order(&mut self, requests: &mut [(usize, u8)]) {
        let n = self.per_instance.len();
        match self.policy {
            ArbiterPolicy::RoundRobin => {
                let cursor = self.cursor;
                requests.sort_by_key(|&(instance, _)| (instance + n - cursor % n) % n);
                self.cursor = (self.cursor + 1) % n;
            }
            ArbiterPolicy::Priority => {
                requests.sort_by_key(|&(instance, priority)| (u8::MAX - priority, instance));
            }
        }
    }

    /// Grants `instance` a transfer of `elements` requested at cycle
    /// `now`: schedules it on the least-loaded channel (ties to the
    /// lowest index) and charges the instance's counters.
    pub fn acquire(&mut self, instance: usize, now: u64, elements: u64) -> Grant {
        self.per_instance[instance].grants += 1;
        if elements == 0 {
            return Grant {
                channel: 0,
                start: now,
                wait: 0,
                transfer: 0,
            };
        }
        let (channel, _) = self
            .channel_free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &free)| free)
            .expect("at least one channel");
        let start = now.max(self.channel_free_at[channel]);
        let transfer = self.transfer_cycles(elements);
        self.channel_free_at[channel] = start + transfer;
        let wait = start - now;
        let counters = &mut self.per_instance[instance];
        counters.elements += elements;
        counters.transfer_cycles += transfer;
        counters.wait_cycles += wait;
        Grant {
            channel,
            start,
            wait,
            transfer,
        }
    }

    /// Per-instance counters, indexed by instance.
    pub fn instance_counters(&self) -> &[InstanceDramCounters] {
        &self.per_instance
    }

    /// Total contention wait across every instance.
    pub fn total_wait_cycles(&self) -> u64 {
        self.per_instance.iter().map(|c| c.wait_cycles).sum()
    }

    /// Channel-occupancy cycles of one transfer, mirroring
    /// [`crate::DramModel`]'s bandwidth model (degenerate configurations
    /// transfer for free rather than poisoning the timeline).
    fn transfer_cycles(&self, elements: u64) -> u64 {
        if elements == 0 || self.config.elements_per_cycle() <= 0.0 {
            return 0;
        }
        let per_channel = self.config.bandwidth_gbps_per_channel
            / self.config.clock_ghz
            / self.config.element_bytes as f64;
        (elements as f64 / per_channel).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn narrow_config() -> DramConfig {
        DramConfig {
            channels: 1,
            bandwidth_gbps_per_channel: 4.0, // 4 elements/cycle at 1 GHz FP8
            capacity_mib_per_channel: 1,
            latency_cycles: 10,
            clock_ghz: 1.0,
            element_bytes: 1,
        }
    }

    #[test]
    fn policy_parses_and_round_trips() {
        assert_eq!(ArbiterPolicy::parse("").unwrap(), ArbiterPolicy::RoundRobin);
        assert_eq!(
            ArbiterPolicy::parse("priority").unwrap(),
            ArbiterPolicy::Priority
        );
        assert!(ArbiterPolicy::parse("fifo").is_err());
        assert_eq!(ArbiterPolicy::RoundRobin.name(), "round-robin");
    }

    #[test]
    fn contended_channel_charges_wait_to_the_later_grant() {
        let mut arb = DramArbiter::new(narrow_config(), ArbiterPolicy::RoundRobin, 2);
        let a = arb.acquire(0, 0, 40); // 10 transfer cycles
        let b = arb.acquire(1, 0, 40);
        assert_eq!((a.start, a.wait), (0, 0));
        assert_eq!((b.start, b.wait), (10, 10));
        let counters = arb.instance_counters();
        assert_eq!(counters[0].wait_cycles, 0);
        assert_eq!(counters[1].wait_cycles, 10);
        assert_eq!(counters[1].elements, 40);
        assert_eq!(arb.total_wait_cycles(), 10);
    }

    #[test]
    fn idle_channels_grant_without_wait() {
        let mut cfg = narrow_config();
        cfg.channels = 2;
        let mut arb = DramArbiter::new(cfg, ArbiterPolicy::RoundRobin, 2);
        let a = arb.acquire(0, 5, 40);
        let b = arb.acquire(1, 5, 40);
        assert_eq!((a.wait, b.wait), (0, 0));
        assert_ne!(a.channel, b.channel, "parallel channels");
    }

    #[test]
    fn round_robin_rotates_the_favoured_instance() {
        let mut arb = DramArbiter::new(narrow_config(), ArbiterPolicy::RoundRobin, 3);
        let mut batch = vec![(0usize, 0u8), (1, 0), (2, 0)];
        arb.order(&mut batch);
        assert_eq!(batch[0].0, 0);
        arb.order(&mut batch);
        assert_eq!(batch[0].0, 1, "cursor advanced");
        arb.order(&mut batch);
        assert_eq!(batch[0].0, 2);
    }

    #[test]
    fn priority_orders_by_class_then_instance() {
        let mut arb = DramArbiter::new(narrow_config(), ArbiterPolicy::Priority, 3);
        let mut batch = vec![(2usize, 0u8), (1, 1), (0, 0)];
        arb.order(&mut batch);
        assert_eq!(batch, vec![(1, 1), (0, 0), (2, 0)]);
    }

    #[test]
    fn zero_element_grants_cost_nothing() {
        let mut arb = DramArbiter::new(narrow_config(), ArbiterPolicy::Priority, 1);
        let g = arb.acquire(0, 7, 0);
        assert_eq!((g.start, g.wait, g.transfer), (7, 0, 0));
        let real = arb.acquire(0, 0, 40);
        assert_eq!(real.start, 0, "channel stayed free");
    }

    #[test]
    fn degenerate_configs_transfer_for_free() {
        let mut cfg = narrow_config();
        cfg.bandwidth_gbps_per_channel = 0.0;
        let mut arb = DramArbiter::new(cfg, ArbiterPolicy::RoundRobin, 1);
        let g = arb.acquire(0, 3, 1024);
        assert_eq!((g.start, g.wait, g.transfer), (3, 0, 0));
    }
}
