//! The `verify` bin: runs a deterministic fuzz campaign and writes the
//! machine-readable `verify_report.json` that CI gates on.
//!
//! ```text
//! cargo run --release -p stonne-verify -- --samples 200 --seed 7
//! ```
//!
//! Exit status is non-zero when any oracle or campaign check fails. The
//! report is byte-identical across re-runs with the same seed except for
//! `wall_time_ms` (compare with `jq 'del(.wall_time_ms)'`).

use std::process::ExitCode;

use stonne_verify::{run_campaign, CampaignConfig};

struct Args {
    samples: u64,
    seed: u64,
    out: String,
    shrink: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: verify [--samples N] [--seed S] [--out PATH] [--no-shrink]\n\
         \n\
         Runs the differential fuzz campaign (default: 200 samples, seed 7)\n\
         and writes the report to PATH (default: verify_report.json)."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        samples: 200,
        seed: 7,
        out: "verify_report.json".to_owned(),
        shrink: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--samples" => {
                args.samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                args.out = it.next().unwrap_or_else(|| usage());
            }
            "--no-shrink" => args.shrink = false,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    eprintln!(
        "verify: campaign of {} samples, seed {}",
        args.samples, args.seed
    );
    let report = run_campaign(CampaignConfig {
        samples: args.samples,
        seed: args.seed,
        shrink: args.shrink,
    });

    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("verify: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }

    println!(
        "verify: {} samples, seed {}, {} ms",
        report.samples, report.seed, report.wall_time_ms
    );
    for o in &report.oracles {
        println!(
            "  {:<28} runs {:>5}  failures {:>3}  worst divergence {:>8.2}%",
            o.name,
            o.runs,
            o.failures,
            o.worst_divergence_cpct as f64 / 100.0
        );
    }
    for c in &report.campaign {
        println!(
            "  {:<28} over {:>4} samples: {:.2}% (limit {:.2}%) -> {}",
            c.name,
            c.samples,
            c.value_cpct as f64 / 100.0,
            c.limit_cpct as f64 / 100.0,
            if c.pass { "pass" } else { "FAIL" }
        );
    }

    if report.passed() {
        println!("verify: PASS (report written to {})", args.out);
        ExitCode::SUCCESS
    } else {
        println!(
            "verify: FAIL — {} failing checks (report written to {})",
            report.total_failures, args.out
        );
        for f in &report.failures {
            println!(
                "\n--- reproducer for sample {} ({}) ---",
                f.sample_index, f.oracle
            );
            println!("{}", f.repro_test);
        }
        ExitCode::FAILURE
    }
}
