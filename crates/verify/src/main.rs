//! The `verify` bin: runs a deterministic fuzz campaign and writes the
//! machine-readable `verify_report.json` that CI gates on.
//!
//! ```text
//! cargo run --release -p stonne-verify -- --samples 200 --seed 7
//! ```
//!
//! Campaigns shard across processes without losing the byte-identity
//! guarantee: `--shard i/n` checks only the samples with
//! `index % n == i` and writes a shard artifact, and `verify merge`
//! recombines the artifacts into a report byte-identical to the
//! single-process run (compare with `jq 'del(.wall_time_ms)'`):
//!
//! ```text
//! verify --samples 2000 --seed 7 --shard 0/4 --out shard0.json
//! ...
//! verify merge --out verify_report.json shard0.json ... shard3.json
//! ```
//!
//! Exit status is non-zero when any oracle or campaign check fails.

use std::process::ExitCode;

use stonne_verify::campaign::{merge_shards, parse_shard_spec, run_shard, SampleSpace};
use stonne_verify::report::ShardReport;
use stonne_verify::{run_campaign, state_hash_manifest, CampaignConfig, VerifyReport};

struct Args {
    samples: u64,
    seed: u64,
    out: String,
    shrink: bool,
    shard: Option<(u64, u64)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: verify [--samples N] [--seed S] [--out PATH] [--no-shrink] [--shard I/N]\n\
         \x20      verify merge [--out PATH] SHARD.json...\n\
         \x20      verify state-hash [--seed S] [--out PATH]\n\
         \n\
         Runs the differential fuzz campaign (default: 200 samples, seed 7)\n\
         and writes the report to PATH (default: verify_report.json).\n\
         With --shard I/N only samples with index % N == I are checked and\n\
         a shard artifact is written instead; `verify merge` recombines\n\
         shard artifacts into the report the single-process run produces.\n\
         `verify state-hash` writes the checkpoint state hashes of a fixed\n\
         full-model roster (default: state_hash.json) — byte-diff it across\n\
         architectures to prove cross-platform determinism."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        samples: 200,
        seed: 7,
        out: "verify_report.json".to_owned(),
        shrink: true,
        shard: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--samples" => {
                args.samples = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                args.out = it.next().unwrap_or_else(|| usage());
            }
            "--no-shrink" => args.shrink = false,
            "--shard" => {
                let spec = it.next().unwrap_or_else(|| usage());
                args.shard = Some(parse_shard_spec(&spec).unwrap_or_else(|e| {
                    eprintln!("verify: {e}");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

/// Prints the human summary and returns the process exit code.
fn report_verdict(report: &VerifyReport, out: &str) -> ExitCode {
    for o in &report.oracles {
        println!(
            "  {:<32} runs {:>5}  failures {:>3}  worst divergence {:>8.2}%",
            o.name,
            o.runs,
            o.failures,
            o.worst_divergence_cpct as f64 / 100.0
        );
    }
    for c in &report.campaign {
        println!(
            "  {:<32} over {:>4} samples: {:.2}% (limit {:.2}%) -> {}",
            c.name,
            c.samples,
            c.value_cpct as f64 / 100.0,
            c.limit_cpct as f64 / 100.0,
            if c.pass { "pass" } else { "FAIL" }
        );
    }

    if report.passed() {
        println!("verify: PASS (report written to {out})");
        ExitCode::SUCCESS
    } else {
        println!(
            "verify: FAIL — {} failing checks (report written to {out})",
            report.total_failures
        );
        for f in &report.failures {
            println!(
                "\n--- reproducer for sample {} ({}) ---",
                f.sample_index, f.oracle
            );
            println!("{}", f.repro_test);
        }
        ExitCode::FAILURE
    }
}

fn run_merge(mut argv: std::env::Args) -> ExitCode {
    let mut out = "verify_report.json".to_owned();
    let mut paths = Vec::new();
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--out" => out = argv.next().unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            p => paths.push(p.to_owned()),
        }
    }
    if paths.is_empty() {
        usage();
    }
    let mut shards = Vec::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("verify: cannot read shard {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match ShardReport::from_json(&text) {
            Ok(s) => shards.push(s),
            Err(e) => {
                eprintln!("verify: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let report = match merge_shards(&shards) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verify: merge failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("verify: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "verify: merged {} shards, {} samples, seed {}",
        shards.len(),
        report.samples,
        report.seed
    );
    report_verdict(&report, &out)
}

fn run_one_shard(args: &Args, shard_index: u64, shard_count: u64) -> ExitCode {
    let shard = run_shard(
        CampaignConfig {
            samples: args.samples,
            seed: args.seed,
            shrink: args.shrink,
            space: SampleSpace::Full,
        },
        shard_index,
        shard_count,
    );
    if let Err(e) = std::fs::write(&args.out, shard.to_json()) {
        eprintln!("verify: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    let failures = shard.total_failures();
    println!(
        "verify: shard {shard_index}/{shard_count} of {} samples, seed {}, {} failures \
         (artifact written to {})",
        args.samples, args.seed, failures, args.out
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        for f in &shard.failure_records {
            println!(
                "\n--- reproducer for sample {} ({}) ---",
                f.sample_index, f.oracle
            );
            println!("{}", f.repro_test);
        }
        ExitCode::FAILURE
    }
}

/// `verify state-hash`: writes the cross-platform determinism manifest.
fn run_state_hash(mut argv: std::env::Args) -> ExitCode {
    let mut out = "state_hash.json".to_owned();
    let mut seed = 7u64;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--out" => out = argv.next().unwrap_or_else(|| usage()),
            "--seed" => {
                seed = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    eprintln!("verify: state-hash manifest, seed {seed}");
    let manifest = state_hash_manifest(seed);
    if let Err(e) = std::fs::write(&out, manifest.to_json()) {
        eprintln!("verify: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    for e in &manifest.entries {
        println!("  {:<12} {:<8} {}", e.model, e.arch, e.state_hash);
    }
    println!(
        "verify: {} state hashes written to {out}",
        manifest.entries.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut argv = std::env::args();
    argv.next(); // program name
    if let Some(first) = std::env::args().nth(1) {
        if first == "merge" {
            argv.next(); // the subcommand itself
            return run_merge(argv);
        }
        if first == "state-hash" {
            argv.next(); // the subcommand itself
            return run_state_hash(argv);
        }
    }

    let args = parse_args();
    if let Some((i, n)) = args.shard {
        eprintln!(
            "verify: shard {i}/{n} of a {} sample campaign, seed {}",
            args.samples, args.seed
        );
        return run_one_shard(&args, i, n);
    }

    eprintln!(
        "verify: campaign of {} samples, seed {}",
        args.samples, args.seed
    );
    let report = run_campaign(CampaignConfig {
        samples: args.samples,
        seed: args.seed,
        shrink: args.shrink,
        space: SampleSpace::Full,
    });

    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("verify: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }

    println!(
        "verify: {} samples, seed {}, {} ms",
        report.samples, report.seed, report.wall_time_ms
    );
    report_verdict(&report, &args.out)
}
