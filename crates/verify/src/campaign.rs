//! Campaign orchestration: generate → check → aggregate → shrink.
//!
//! A campaign can run **monolithically** ([`run_campaign`]) or split
//! into deterministic **shards** ([`run_shard`]) that recombine with
//! [`merge_shards`] into a report byte-identical to the monolithic one
//! (modulo `wall_time_ms`). Shard `i` of `n` checks exactly the samples
//! whose index satisfies `index % n == i` — round-robin, so the
//! expensive classes spread evenly — and records its float divergences
//! as `(index, bits)` pairs so the merge can replay the monolithic
//! accumulation order exactly.

use std::time::Instant;

use crate::gen::{generate, generate_cheap, sample_seed, Workload};
use crate::oracle::{check_workload, ORACLES};
use crate::report::{
    CampaignCheck, FailureRecord, OracleSummary, ShardReport, VerifyReport, SHARD_SCHEMA,
};
use crate::shrink::{repro_test, shrink};
use crate::tolerance::{self, to_cpct};

/// Which generator a campaign draws its samples from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleSpace {
    /// The full workload roster ([`generate`]).
    #[default]
    Full,
    /// Cheap single-operation classes only ([`generate_cheap`]) — what
    /// the nested campaigns of [`Workload::ShardMerge`] use, so they
    /// can never recurse into another shard-merge sample.
    Cheap,
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Number of samples to generate and check.
    pub samples: u64,
    /// Campaign seed (drives every sample deterministically).
    pub seed: u64,
    /// Whether to shrink failures (disable for the fastest possible
    /// red/green answer).
    pub shrink: bool,
    /// Sample space to draw from.
    pub space: SampleSpace,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            samples: 200,
            seed: 7,
            shrink: true,
            space: SampleSpace::Full,
        }
    }
}

impl CampaignConfig {
    fn workload(&self, index: u64) -> Workload {
        match self.space {
            SampleSpace::Full => generate(self.seed, index),
            SampleSpace::Cheap => generate_cheap(self.seed, index),
        }
    }
}

/// Per-oracle counters plus the raw per-sample observations a campaign
/// (or one shard of it) accumulates.
struct Accumulator {
    runs: Vec<u64>,
    failures: Vec<u64>,
    worst_cpct: Vec<i64>,
    failure_records: Vec<FailureRecord>,
    /// `(sample index, f64 bits)` — bits, so shard files round-trip the
    /// exact value and the merged float sum reproduces the monolithic
    /// one bit for bit.
    maeri_divs: Vec<(u64, u64)>,
    sigma_divs: Vec<(u64, u64)>,
    predictor_divs: Vec<(u64, u64)>,
}

impl Accumulator {
    fn new() -> Self {
        Accumulator {
            runs: vec![0; ORACLES.len()],
            failures: vec![0; ORACLES.len()],
            worst_cpct: vec![0; ORACLES.len()],
            failure_records: Vec::new(),
            maeri_divs: Vec::new(),
            sigma_divs: Vec::new(),
            predictor_divs: Vec::new(),
        }
    }

    /// Checks sample `index` and folds its outcomes in.
    fn check_sample(&mut self, cfg: &CampaignConfig, index: u64) {
        let workload = cfg.workload(index);
        let seed = sample_seed(cfg.seed, index);
        let check = check_workload(&workload, seed);
        if let Some(d) = check.maeri_full_bw {
            self.maeri_divs.push((index, d.to_bits()));
        }
        if let Some(d) = check.sigma_dense {
            self.sigma_divs.push((index, d.to_bits()));
        }
        if let Some(d) = check.predictor {
            self.predictor_divs.push((index, d.to_bits()));
        }
        for outcome in &check.outcomes {
            let slot = ORACLES
                .iter()
                .position(|o| *o == outcome.oracle)
                .expect("oracle is in the roster");
            self.runs[slot] += 1;
            if let Some(d) = outcome.divergence_pct {
                self.worst_cpct[slot] = self.worst_cpct[slot].max(to_cpct(d.abs()));
            }
            if !outcome.passed {
                self.failures[slot] += 1;
                let (shrunk, detail) = if cfg.shrink {
                    shrink(&workload, seed, outcome.oracle)
                } else {
                    (workload.clone(), outcome.detail.clone())
                };
                eprintln!(
                    "verify: FAIL sample {index} oracle {} on {workload:?} (shrunk: {shrunk:?})",
                    outcome.oracle
                );
                self.failure_records.push(FailureRecord {
                    sample_index: index,
                    oracle: outcome.oracle.to_owned(),
                    workload: format!("{workload:?}"),
                    shrunk: format!("{shrunk:?}"),
                    seed,
                    detail,
                    repro_test: repro_test(&shrunk, seed, outcome.oracle),
                });
            }
        }
    }

    /// Builds the final report. The divergence lists must already be in
    /// ascending sample-index order (true for a monolithic walk; the
    /// merge sorts before calling).
    fn into_report(self, cfg: &CampaignConfig, wall_time_ms: u64) -> VerifyReport {
        let maeri: Vec<f64> = self
            .maeri_divs
            .iter()
            .map(|(_, b)| f64::from_bits(*b))
            .collect();
        let sigma: Vec<f64> = self
            .sigma_divs
            .iter()
            .map(|(_, b)| f64::from_bits(*b))
            .collect();
        let predictor: Vec<f64> = self
            .predictor_divs
            .iter()
            .map(|(_, b)| f64::from_bits(*b))
            .collect();
        let campaign = vec![
            average_check(
                "maeri_full_bw_avg_divergence",
                &maeri,
                tolerance::MAERI_FULL_BW_AVG_MAX_PCT,
            ),
            average_check(
                "sigma_dense_avg_divergence",
                &sigma,
                tolerance::SIGMA_DENSE_AVG_MAX_PCT,
            ),
            average_check(
                "predictor_avg_divergence",
                &predictor,
                tolerance::PREDICTOR_AVG_MAX_PCT,
            ),
        ];

        let oracles = ORACLES
            .iter()
            .enumerate()
            .map(|(i, name)| OracleSummary {
                name: (*name).to_owned(),
                runs: self.runs[i],
                failures: self.failures[i],
                worst_divergence_cpct: self.worst_cpct[i],
            })
            .collect();

        let total_failures =
            self.failures.iter().sum::<u64>() + campaign.iter().filter(|c| !c.pass).count() as u64;

        VerifyReport {
            seed: cfg.seed,
            samples: cfg.samples,
            oracles,
            campaign,
            failures: self.failure_records,
            total_failures,
            wall_time_ms,
        }
    }
}

/// Runs a full fuzz campaign and returns the report.
///
/// Progress lines go to stderr so stdout stays clean for scripting.
pub fn run_campaign(cfg: CampaignConfig) -> VerifyReport {
    let start = Instant::now();
    let mut acc = Accumulator::new();
    for index in 0..cfg.samples {
        acc.check_sample(&cfg, index);
        if (index + 1) % 50 == 0 {
            eprintln!("verify: {}/{} samples checked", index + 1, cfg.samples);
        }
    }
    acc.into_report(&cfg, start.elapsed().as_millis() as u64)
}

/// Runs shard `shard_index` of a campaign split `shard_count` ways:
/// exactly the samples with `index % shard_count == shard_index`.
///
/// # Panics
///
/// Panics when `shard_index >= shard_count` — a misconfigured shard
/// must not silently produce an empty artifact that merges cleanly.
pub fn run_shard(cfg: CampaignConfig, shard_index: u64, shard_count: u64) -> ShardReport {
    assert!(
        shard_index < shard_count && shard_count > 0,
        "shard {shard_index}/{shard_count} out of range"
    );
    let start = Instant::now();
    let mut acc = Accumulator::new();
    let mut checked = 0u64;
    for index in (shard_index..cfg.samples).step_by(shard_count as usize) {
        acc.check_sample(&cfg, index);
        checked += 1;
        if checked % 50 == 0 {
            eprintln!("verify: shard {shard_index}/{shard_count}: {checked} samples checked");
        }
    }
    ShardReport {
        schema: SHARD_SCHEMA.to_owned(),
        seed: cfg.seed,
        samples: cfg.samples,
        shard_index,
        shard_count,
        oracles: ORACLES.iter().map(|o| (*o).to_owned()).collect(),
        runs: acc.runs,
        failures: acc.failures,
        worst_divergence_cpct: acc.worst_cpct,
        maeri_divergence_bits: acc.maeri_divs,
        sigma_divergence_bits: acc.sigma_divs,
        predictor_divergence_bits: acc.predictor_divs,
        failure_records: acc.failure_records,
        wall_time_ms: start.elapsed().as_millis() as u64,
    }
}

/// Recombines the shards of one campaign into the report the monolithic
/// run would have produced — byte-identical except `wall_time_ms`,
/// which becomes the sum of the shard wall times.
///
/// # Errors
///
/// Returns a description when the shards disagree on campaign
/// parameters or oracle roster, or do not form exactly the partition
/// `0..shard_count`.
pub fn merge_shards(shards: &[ShardReport]) -> Result<VerifyReport, String> {
    let first = shards.first().ok_or("no shards to merge")?;
    let expected: Vec<String> = ORACLES.iter().map(|o| (*o).to_owned()).collect();
    let mut present = vec![false; first.shard_count as usize];
    for s in shards {
        if s.schema != SHARD_SCHEMA {
            return Err(format!("shard {} has schema {:?}", s.shard_index, s.schema));
        }
        if (s.seed, s.samples, s.shard_count) != (first.seed, first.samples, first.shard_count) {
            return Err(format!(
                "shard {} is from a different campaign (seed {} samples {} shards {})",
                s.shard_index, s.seed, s.samples, s.shard_count
            ));
        }
        if s.oracles != expected {
            return Err(format!(
                "shard {} was produced by a different oracle roster",
                s.shard_index
            ));
        }
        let slot = present
            .get_mut(s.shard_index as usize)
            .ok_or_else(|| format!("shard index {} out of range", s.shard_index))?;
        if *slot {
            return Err(format!("shard {} appears twice", s.shard_index));
        }
        *slot = true;
    }
    if let Some(missing) = present.iter().position(|p| !p) {
        return Err(format!("shard {missing}/{} is missing", first.shard_count));
    }

    let mut acc = Accumulator::new();
    for s in shards {
        for i in 0..ORACLES.len() {
            acc.runs[i] += s.runs[i];
            acc.failures[i] += s.failures[i];
            acc.worst_cpct[i] = acc.worst_cpct[i].max(s.worst_divergence_cpct[i]);
        }
        acc.maeri_divs.extend_from_slice(&s.maeri_divergence_bits);
        acc.sigma_divs.extend_from_slice(&s.sigma_divergence_bits);
        acc.predictor_divs
            .extend_from_slice(&s.predictor_divergence_bits);
        acc.failure_records.extend_from_slice(&s.failure_records);
    }
    // Restore the monolithic walk order. Each sample lives wholly in one
    // shard and shards preserve intra-sample order, so a stable sort on
    // the sample index reproduces the monolithic sequence exactly.
    acc.maeri_divs.sort_by_key(|(index, _)| *index);
    acc.sigma_divs.sort_by_key(|(index, _)| *index);
    acc.predictor_divs.sort_by_key(|(index, _)| *index);
    acc.failure_records.sort_by_key(|f| f.sample_index);

    let cfg = CampaignConfig {
        samples: first.samples,
        seed: first.seed,
        shrink: false,
        space: SampleSpace::Full,
    };
    let wall: u64 = shards.iter().map(|s| s.wall_time_ms).sum();
    Ok(acc.into_report(&cfg, wall))
}

/// Parses a `--shard I/N` spec into `(shard_index, shard_count)`.
///
/// # Errors
///
/// Returns a clear description (suitable for direct CLI display) when
/// the spec is not of the form `I/N`, either side is not an integer,
/// `N == 0`, or `I >= N` — a misconfigured shard must fail loudly, not
/// silently contribute an empty or overlapping slice to a merge.
pub fn parse_shard_spec(spec: &str) -> Result<(u64, u64), String> {
    let (i, n) = spec
        .split_once('/')
        .ok_or_else(|| format!("--shard expects I/N (got {spec:?})"))?;
    let index: u64 = i
        .parse()
        .map_err(|_| format!("--shard index {i:?} is not a non-negative integer"))?;
    let count: u64 = n
        .parse()
        .map_err(|_| format!("--shard count {n:?} is not a non-negative integer"))?;
    if count == 0 {
        return Err("--shard count must be at least 1 (got 0)".to_owned());
    }
    if index >= count {
        return Err(format!(
            "--shard index {index} is out of range for {count} shard(s) (need I < N)"
        ));
    }
    Ok((index, count))
}

/// Builds a campaign check asserting the average |divergence| of a
/// sample population stays under `limit_pct`.
fn average_check(name: &str, divs: &[f64], limit_pct: f64) -> CampaignCheck {
    let samples = divs.len() as u64;
    let value_cpct = if divs.is_empty() {
        0
    } else {
        to_cpct(divs.iter().map(|d| d.abs()).sum::<f64>() / divs.len() as f64)
    };
    let limit_cpct = to_cpct(limit_pct);
    CampaignCheck {
        name: name.to_owned(),
        samples,
        value_cpct,
        limit_cpct,
        pass: divs.is_empty() || value_cpct <= limit_cpct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_campaign_is_deterministic_and_green() {
        let cfg = CampaignConfig {
            samples: 12,
            seed: 3,
            shrink: true,
            space: SampleSpace::Full,
        };
        let a = run_campaign(cfg);
        let b = run_campaign(cfg);
        assert!(a.passed(), "failures: {:?}", a.failures);
        assert_eq!(a.canonical_json(), b.canonical_json());
    }

    /// Satellite regression: `--samples 0` must produce a valid, green,
    /// deterministic report, not a division hazard.
    #[test]
    fn empty_campaign_yields_a_valid_passing_report() {
        let cfg = CampaignConfig {
            samples: 0,
            seed: 7,
            shrink: true,
            space: SampleSpace::Full,
        };
        let r = run_campaign(cfg);
        assert!(r.passed());
        assert_eq!(r.samples, 0);
        assert!(r.oracles.iter().all(|o| o.runs == 0 && o.failures == 0));
        assert!(r.campaign.iter().all(|c| c.pass && c.samples == 0));
        assert!(r.failures.is_empty());
        assert_eq!(r.canonical_json(), run_campaign(cfg).canonical_json());
    }

    #[test]
    fn average_check_is_vacuous_on_empty_population() {
        let c = average_check("x", &[], 1.0);
        assert!(c.pass);
        assert_eq!(c.samples, 0);
    }

    /// The tentpole guarantee at unit scale: shards of a full-space
    /// campaign merge into the monolithic report byte for byte.
    #[test]
    fn merged_shards_reproduce_the_monolithic_report() {
        let cfg = CampaignConfig {
            samples: 24,
            seed: 5,
            shrink: false,
            space: SampleSpace::Full,
        };
        let mono = run_campaign(cfg);
        for shard_count in [1u64, 2, 3, 4] {
            let shards: Vec<ShardReport> = (0..shard_count)
                .map(|i| run_shard(cfg, i, shard_count))
                .collect();
            // Shard artifacts survive the JSON round-trip they take
            // between processes.
            let shards: Vec<ShardReport> = shards
                .iter()
                .map(|s| ShardReport::from_json(&s.to_json()).expect("round-trips"))
                .collect();
            let runs: u64 = shards.iter().map(|s| s.runs.iter().sum::<u64>()).sum();
            assert!(runs > 0);
            let merged = merge_shards(&shards).expect("shards are consistent");
            assert_eq!(
                merged.canonical_json(),
                mono.canonical_json(),
                "{shard_count} shards"
            );
        }
    }

    #[test]
    fn merge_rejects_inconsistent_shards() {
        let cfg = CampaignConfig {
            samples: 8,
            seed: 9,
            shrink: false,
            space: SampleSpace::Cheap,
        };
        let a = run_shard(cfg, 0, 2);
        let b = run_shard(cfg, 1, 2);
        assert!(merge_shards(&[]).is_err(), "no shards");
        assert!(
            merge_shards(std::slice::from_ref(&a)).is_err(),
            "missing shard"
        );
        assert!(
            merge_shards(&[a.clone(), a.clone()]).is_err(),
            "duplicate shard"
        );
        let mut other_seed = b.clone();
        other_seed.seed += 1;
        assert!(
            merge_shards(&[a.clone(), other_seed]).is_err(),
            "foreign campaign"
        );
        let mut other_roster = b.clone();
        other_roster.oracles[0] = "not_an_oracle".into();
        assert!(
            merge_shards(&[a.clone(), other_roster]).is_err(),
            "foreign roster"
        );
        assert!(merge_shards(&[a, b]).is_ok());
    }

    /// Satellite regression: `--shard i/n` with `i >= n` or `n == 0`
    /// must be refused with a clear error, never run as an empty or
    /// overlapping slice.
    #[test]
    fn shard_spec_parsing_rejects_degenerate_specs() {
        assert_eq!(parse_shard_spec("0/1"), Ok((0, 1)));
        assert_eq!(parse_shard_spec("3/4"), Ok((3, 4)));
        let reject = |spec: &str, needle: &str| {
            let err = parse_shard_spec(spec).expect_err(spec);
            assert!(err.contains(needle), "{spec:?} -> {err:?}");
        };
        reject("4/4", "out of range");
        reject("9/2", "out of range");
        reject("0/0", "at least 1");
        reject("1/0", "at least 1");
        reject("02", "expects I/N");
        reject("", "expects I/N");
        reject("a/4", "not a non-negative integer");
        reject("1/b", "not a non-negative integer");
        reject("-1/4", "not a non-negative integer");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_shard_index_panics() {
        let cfg = CampaignConfig {
            samples: 4,
            seed: 1,
            shrink: false,
            space: SampleSpace::Cheap,
        };
        run_shard(cfg, 2, 2);
    }
}
