//! Campaign orchestration: generate → check → aggregate → shrink.

use std::time::Instant;

use crate::gen::{generate, sample_seed};
use crate::oracle::{check_workload, ORACLES};
use crate::report::{CampaignCheck, FailureRecord, OracleSummary, VerifyReport};
use crate::shrink::{repro_test, shrink};
use crate::tolerance::{self, to_cpct};

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Number of samples to generate and check.
    pub samples: u64,
    /// Campaign seed (drives every sample deterministically).
    pub seed: u64,
    /// Whether to shrink failures (disable for the fastest possible
    /// red/green answer).
    pub shrink: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            samples: 200,
            seed: 7,
            shrink: true,
        }
    }
}

/// Runs a full fuzz campaign and returns the report.
///
/// Progress lines go to stderr so stdout stays clean for scripting.
pub fn run_campaign(cfg: CampaignConfig) -> VerifyReport {
    let start = Instant::now();
    let mut runs = vec![0u64; ORACLES.len()];
    let mut failures = vec![0u64; ORACLES.len()];
    let mut worst_cpct = vec![0i64; ORACLES.len()];
    let mut failure_records = Vec::new();
    let mut maeri_divs: Vec<f64> = Vec::new();
    let mut sigma_divs: Vec<f64> = Vec::new();

    for index in 0..cfg.samples {
        let workload = generate(cfg.seed, index);
        let seed = sample_seed(cfg.seed, index);
        let check = check_workload(&workload, seed);
        if let Some(d) = check.maeri_full_bw {
            maeri_divs.push(d);
        }
        if let Some(d) = check.sigma_dense {
            sigma_divs.push(d);
        }
        for outcome in &check.outcomes {
            let slot = ORACLES
                .iter()
                .position(|o| *o == outcome.oracle)
                .expect("oracle is in the roster");
            runs[slot] += 1;
            if let Some(d) = outcome.divergence_pct {
                worst_cpct[slot] = worst_cpct[slot].max(to_cpct(d.abs()));
            }
            if !outcome.passed {
                failures[slot] += 1;
                let (shrunk, detail) = if cfg.shrink {
                    shrink(&workload, seed, outcome.oracle)
                } else {
                    (workload.clone(), outcome.detail.clone())
                };
                eprintln!(
                    "verify: FAIL sample {index} oracle {} on {workload:?} (shrunk: {shrunk:?})",
                    outcome.oracle
                );
                failure_records.push(FailureRecord {
                    sample_index: index,
                    oracle: outcome.oracle.to_owned(),
                    workload: format!("{workload:?}"),
                    shrunk: format!("{shrunk:?}"),
                    seed,
                    detail,
                    repro_test: repro_test(&shrunk, seed, outcome.oracle),
                });
            }
        }
        if (index + 1) % 50 == 0 {
            eprintln!("verify: {}/{} samples checked", index + 1, cfg.samples);
        }
    }

    let campaign = vec![
        average_check(
            "maeri_full_bw_avg_divergence",
            &maeri_divs,
            tolerance::MAERI_FULL_BW_AVG_MAX_PCT,
        ),
        average_check(
            "sigma_dense_avg_divergence",
            &sigma_divs,
            tolerance::SIGMA_DENSE_AVG_MAX_PCT,
        ),
    ];

    let oracles = ORACLES
        .iter()
        .enumerate()
        .map(|(i, name)| OracleSummary {
            name: (*name).to_owned(),
            runs: runs[i],
            failures: failures[i],
            worst_divergence_cpct: worst_cpct[i],
        })
        .collect();

    let total_failures =
        failures.iter().sum::<u64>() + campaign.iter().filter(|c| !c.pass).count() as u64;

    VerifyReport {
        seed: cfg.seed,
        samples: cfg.samples,
        oracles,
        campaign,
        failures: failure_records,
        total_failures,
        wall_time_ms: start.elapsed().as_millis() as u64,
    }
}

/// Builds a campaign check asserting the average |divergence| of a
/// sample population stays under `limit_pct`.
fn average_check(name: &str, divs: &[f64], limit_pct: f64) -> CampaignCheck {
    let samples = divs.len() as u64;
    let value_cpct = if divs.is_empty() {
        0
    } else {
        to_cpct(divs.iter().map(|d| d.abs()).sum::<f64>() / divs.len() as f64)
    };
    let limit_cpct = to_cpct(limit_pct);
    CampaignCheck {
        name: name.to_owned(),
        samples,
        value_cpct,
        limit_cpct,
        pass: divs.is_empty() || value_cpct <= limit_cpct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_campaign_is_deterministic_and_green() {
        let cfg = CampaignConfig {
            samples: 12,
            seed: 3,
            shrink: true,
        };
        let a = run_campaign(cfg);
        let b = run_campaign(cfg);
        assert!(a.passed(), "failures: {:?}", a.failures);
        assert_eq!(a.canonical_json(), b.canonical_json());
    }

    #[test]
    fn average_check_is_vacuous_on_empty_population() {
        let c = average_check("x", &[], 1.0);
        assert!(c.pass);
        assert_eq!(c.samples, 0);
    }
}
