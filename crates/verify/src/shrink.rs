//! Failure shrinking: reduce a failing workload to a minimal reproducer.
//!
//! The shrinker greedily halves one dimension at a time (and steps array
//! sizes down through the generator's allowed values), keeping a
//! candidate only when the *same oracle* still fails on it with the same
//! sample seed. The result is printed as a ready-to-paste integration
//! test so a red campaign turns into a committed regression test in one
//! copy-paste.

use crate::gen::Workload;
use crate::oracle::check_workload;

fn halved(x: usize, min: usize) -> Option<usize> {
    if x > min {
        Some((x / 2).max(min))
    } else {
        None
    }
}

fn stepped_down(x: usize, steps: &[usize]) -> Option<usize> {
    steps.iter().rev().find(|&&s| s < x).copied()
}

/// All one-step reductions of a workload, in a deterministic order.
pub fn candidates(w: &Workload) -> Vec<Workload> {
    let mut out = Vec::new();
    match *w {
        Workload::SystolicGemm { dim, m, n, k } => {
            if let Some(d) = stepped_down(dim, &[4, 8, 16]) {
                out.push(Workload::SystolicGemm { dim: d, m, n, k });
            }
            if let Some(v) = halved(m, 1) {
                out.push(Workload::SystolicGemm { dim, m: v, n, k });
            }
            if let Some(v) = halved(n, 1) {
                out.push(Workload::SystolicGemm { dim, m, n: v, k });
            }
            if let Some(v) = halved(k, 1) {
                out.push(Workload::SystolicGemm { dim, m, n, k: v });
            }
        }
        Workload::FlexibleGemm { ms, m, n, k } => {
            if let Some(s) = stepped_down(ms, &[16, 32, 64, 128]) {
                out.push(Workload::FlexibleGemm { ms: s, m, n, k });
            }
            if let Some(v) = halved(m, 1) {
                out.push(Workload::FlexibleGemm { ms, m: v, n, k });
            }
            if let Some(v) = halved(n, 1) {
                out.push(Workload::FlexibleGemm { ms, m, n: v, k });
            }
            if let Some(v) = halved(k, 1) {
                out.push(Workload::FlexibleGemm { ms, m, n, k: v });
            }
        }
        Workload::SparseSpmm {
            ms,
            m,
            n,
            k,
            sparsity_pct,
        } => {
            if let Some(s) = stepped_down(ms, &[32, 64, 128]) {
                out.push(Workload::SparseSpmm {
                    ms: s,
                    m,
                    n,
                    k,
                    sparsity_pct,
                });
            }
            if let Some(v) = halved(m, 2) {
                out.push(Workload::SparseSpmm {
                    ms,
                    m: v,
                    n,
                    k,
                    sparsity_pct,
                });
            }
            if let Some(v) = halved(n, 2) {
                out.push(Workload::SparseSpmm {
                    ms,
                    m,
                    n: v,
                    k,
                    sparsity_pct,
                });
            }
            if let Some(v) = halved(k, 8) {
                out.push(Workload::SparseSpmm {
                    ms,
                    m,
                    n,
                    k: v,
                    sparsity_pct,
                });
            }
        }
        Workload::SparseDenseEquiv { ms, m, n, k } => {
            if let Some(s) = stepped_down(ms, &[32, 64, 128]) {
                out.push(Workload::SparseDenseEquiv { ms: s, m, n, k });
            }
            if let Some(v) = halved(m, 2) {
                out.push(Workload::SparseDenseEquiv { ms, m: v, n, k });
            }
            if let Some(v) = halved(n, 2) {
                out.push(Workload::SparseDenseEquiv { ms, m, n: v, k });
            }
            if let Some(v) = halved(k, 4) {
                out.push(Workload::SparseDenseEquiv { ms, m, n, k: v });
            }
        }
        Workload::CacheReplay { arch, m, n, k } => {
            if let Some(v) = halved(m, 1) {
                out.push(Workload::CacheReplay { arch, m: v, n, k });
            }
            if let Some(v) = halved(n, 1) {
                out.push(Workload::CacheReplay { arch, m, n: v, k });
            }
            if let Some(v) = halved(k, 1) {
                out.push(Workload::CacheReplay { arch, m, n, k: v });
            }
        }
        Workload::Pool {
            c,
            hw,
            window,
            stride,
        } => {
            if let Some(v) = halved(c, 1) {
                out.push(Workload::Pool {
                    c: v,
                    hw,
                    window,
                    stride,
                });
            }
            if let Some(v) = halved(hw, window + 1) {
                out.push(Workload::Pool {
                    c,
                    hw: v,
                    window,
                    stride,
                });
            }
        }
        Workload::IntraLayerParallel {
            ms,
            m,
            n,
            k,
            workers,
        } => {
            if let Some(s) = stepped_down(ms, &[32, 64]) {
                out.push(Workload::IntraLayerParallel {
                    ms: s,
                    m,
                    n,
                    k,
                    workers,
                });
            }
            if let Some(v) = halved(m, 2) {
                out.push(Workload::IntraLayerParallel {
                    ms,
                    m: v,
                    n,
                    k,
                    workers,
                });
            }
            if let Some(v) = halved(n, 1) {
                out.push(Workload::IntraLayerParallel {
                    ms,
                    m,
                    n: v,
                    k,
                    workers,
                });
            }
            if let Some(v) = halved(k, 2) {
                out.push(Workload::IntraLayerParallel {
                    ms,
                    m,
                    n,
                    k: v,
                    workers,
                });
            }
            if let Some(w2) = halved(workers, 2) {
                out.push(Workload::IntraLayerParallel {
                    ms,
                    m,
                    n,
                    k,
                    workers: w2,
                });
            }
        }
        // A model run has no smaller version of itself.
        Workload::ModelRun { .. } => {}
        Workload::ClusterScenario {
            arch_a,
            arch_b,
            model,
            requests,
            batch,
            priority_policy,
            rate_deci,
        } => {
            if let Some(v) = halved(requests, 2) {
                out.push(Workload::ClusterScenario {
                    arch_a,
                    arch_b,
                    model,
                    requests: v,
                    batch,
                    priority_policy,
                    rate_deci,
                });
            }
            if let Some(v) = halved(batch, 1) {
                out.push(Workload::ClusterScenario {
                    arch_a,
                    arch_b,
                    model,
                    requests,
                    batch: v,
                    priority_policy,
                    rate_deci,
                });
            }
            // Homogenize the pair: one fewer distinct profile to eyeball.
            if arch_b != arch_a {
                out.push(Workload::ClusterScenario {
                    arch_a,
                    arch_b: arch_a,
                    model,
                    requests,
                    batch,
                    priority_policy,
                    rate_deci,
                });
            }
        }
    }
    out
}

/// Whether `oracle` fails on `w` with `seed`.
fn still_fails(w: &Workload, seed: u64, oracle: &str) -> bool {
    check_workload(w, seed)
        .outcomes
        .iter()
        .any(|o| o.oracle == oracle && !o.passed)
}

/// Shrinks a failing workload to a locally minimal one on which `oracle`
/// still fails, returning it with the oracle's evidence there.
///
/// The input is returned unchanged when it does not actually fail (the
/// shrinker never invents failures).
pub fn shrink(w: &Workload, seed: u64, oracle: &str) -> (Workload, String) {
    let mut current = w.clone();
    if !still_fails(&current, seed, oracle) {
        return (current, String::new());
    }
    // Greedy descent; bounded to keep a pathological failure from
    // stalling the campaign.
    for _ in 0..64 {
        let Some(next) = candidates(&current)
            .into_iter()
            .find(|c| still_fails(c, seed, oracle))
        else {
            break;
        };
        current = next;
    }
    let detail = check_workload(&current, seed)
        .outcomes
        .into_iter()
        .find(|o| o.oracle == oracle && !o.passed)
        .map(|o| o.detail)
        .unwrap_or_default();
    (current, detail)
}

/// Renders a ready-to-paste regression test for a shrunk failure.
pub fn repro_test(w: &Workload, seed: u64, oracle: &str) -> String {
    format!(
        "#[test]\n\
         fn shrunk_fuzz_reproducer() {{\n\
         \x20   // oracle: {oracle}\n\
         \x20   use stonne_verify::gen::Workload;\n\
         \x20   let w = Workload::{w:?};\n\
         \x20   let r = stonne_verify::oracle::check_workload(&w, {seed:#x});\n\
         \x20   for o in &r.outcomes {{\n\
         \x20       assert!(o.passed, \"{{}}: {{}}\", o.oracle, o.detail);\n\
         \x20   }}\n\
         }}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_strictly_reduce() {
        let w = Workload::SystolicGemm {
            dim: 16,
            m: 40,
            n: 30,
            k: 50,
        };
        let cs = candidates(&w);
        assert_eq!(cs.len(), 4);
        assert!(cs.iter().all(|c| c != &w));
    }

    #[test]
    fn passing_workload_is_returned_unchanged() {
        let w = Workload::SystolicGemm {
            dim: 8,
            m: 10,
            n: 10,
            k: 10,
        };
        let (s, detail) = shrink(&w, 1, "systolic_exact_cycles");
        assert_eq!(s, w);
        assert!(detail.is_empty());
    }

    #[test]
    fn repro_test_is_pasteable() {
        let w = Workload::CacheReplay {
            arch: 1,
            m: 4,
            n: 4,
            k: 4,
        };
        let t = repro_test(&w, 0x2a, "cache_replay_bitwise");
        assert!(t.contains("fn shrunk_fuzz_reproducer"));
        assert!(t.contains("CacheReplay"));
        assert!(t.contains("0x2a"));
    }
}
