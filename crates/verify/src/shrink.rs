//! Failure shrinking: reduce a failing workload to a minimal reproducer.
//!
//! The shrinker greedily halves one dimension at a time (and steps array
//! sizes down through the generator's allowed values), keeping a
//! candidate only when the *same oracle* still fails on it with the same
//! sample seed. The result is printed as a ready-to-paste integration
//! test so a red campaign turns into a committed regression test in one
//! copy-paste.

use crate::gen::Workload;
use crate::oracle::check_workload;

fn halved(x: usize, min: usize) -> Option<usize> {
    if x > min {
        Some((x / 2).max(min))
    } else {
        None
    }
}

fn stepped_down(x: usize, steps: &[usize]) -> Option<usize> {
    steps.iter().rev().find(|&&s| s < x).copied()
}

/// All one-step reductions of a workload, in a deterministic order.
pub fn candidates(w: &Workload) -> Vec<Workload> {
    let mut out = Vec::new();
    match *w {
        Workload::SystolicGemm { dim, m, n, k } => {
            if let Some(d) = stepped_down(dim, &[4, 8, 16]) {
                out.push(Workload::SystolicGemm { dim: d, m, n, k });
            }
            if let Some(v) = halved(m, 1) {
                out.push(Workload::SystolicGemm { dim, m: v, n, k });
            }
            if let Some(v) = halved(n, 1) {
                out.push(Workload::SystolicGemm { dim, m, n: v, k });
            }
            if let Some(v) = halved(k, 1) {
                out.push(Workload::SystolicGemm { dim, m, n, k: v });
            }
        }
        Workload::FlexibleGemm { ms, m, n, k } => {
            if let Some(s) = stepped_down(ms, &[16, 32, 64, 128]) {
                out.push(Workload::FlexibleGemm { ms: s, m, n, k });
            }
            if let Some(v) = halved(m, 1) {
                out.push(Workload::FlexibleGemm { ms, m: v, n, k });
            }
            if let Some(v) = halved(n, 1) {
                out.push(Workload::FlexibleGemm { ms, m, n: v, k });
            }
            if let Some(v) = halved(k, 1) {
                out.push(Workload::FlexibleGemm { ms, m, n, k: v });
            }
        }
        Workload::SparseSpmm {
            ms,
            m,
            n,
            k,
            sparsity_pct,
        } => {
            if let Some(s) = stepped_down(ms, &[32, 64, 128]) {
                out.push(Workload::SparseSpmm {
                    ms: s,
                    m,
                    n,
                    k,
                    sparsity_pct,
                });
            }
            if let Some(v) = halved(m, 2) {
                out.push(Workload::SparseSpmm {
                    ms,
                    m: v,
                    n,
                    k,
                    sparsity_pct,
                });
            }
            if let Some(v) = halved(n, 2) {
                out.push(Workload::SparseSpmm {
                    ms,
                    m,
                    n: v,
                    k,
                    sparsity_pct,
                });
            }
            if let Some(v) = halved(k, 8) {
                out.push(Workload::SparseSpmm {
                    ms,
                    m,
                    n,
                    k: v,
                    sparsity_pct,
                });
            }
        }
        Workload::SparseDenseEquiv { ms, m, n, k } => {
            if let Some(s) = stepped_down(ms, &[32, 64, 128]) {
                out.push(Workload::SparseDenseEquiv { ms: s, m, n, k });
            }
            if let Some(v) = halved(m, 2) {
                out.push(Workload::SparseDenseEquiv { ms, m: v, n, k });
            }
            if let Some(v) = halved(n, 2) {
                out.push(Workload::SparseDenseEquiv { ms, m, n: v, k });
            }
            if let Some(v) = halved(k, 4) {
                out.push(Workload::SparseDenseEquiv { ms, m, n, k: v });
            }
        }
        Workload::CacheReplay { arch, m, n, k } => {
            if let Some(v) = halved(m, 1) {
                out.push(Workload::CacheReplay { arch, m: v, n, k });
            }
            if let Some(v) = halved(n, 1) {
                out.push(Workload::CacheReplay { arch, m, n: v, k });
            }
            if let Some(v) = halved(k, 1) {
                out.push(Workload::CacheReplay { arch, m, n, k: v });
            }
        }
        Workload::TileCacheBitwise { arch, m, n, k } => {
            if let Some(v) = halved(m, 1) {
                out.push(Workload::TileCacheBitwise { arch, m: v, n, k });
            }
            if let Some(v) = halved(n, 1) {
                out.push(Workload::TileCacheBitwise { arch, m, n: v, k });
            }
            if let Some(v) = halved(k, 1) {
                out.push(Workload::TileCacheBitwise { arch, m, n, k: v });
            }
        }
        Workload::Pool {
            c,
            hw,
            window,
            stride,
        } => {
            if let Some(v) = halved(c, 1) {
                out.push(Workload::Pool {
                    c: v,
                    hw,
                    window,
                    stride,
                });
            }
            if let Some(v) = halved(hw, window + 1) {
                out.push(Workload::Pool {
                    c,
                    hw: v,
                    window,
                    stride,
                });
            }
        }
        Workload::IntraLayerParallel {
            ms,
            m,
            n,
            k,
            workers,
        } => {
            if let Some(s) = stepped_down(ms, &[32, 64]) {
                out.push(Workload::IntraLayerParallel {
                    ms: s,
                    m,
                    n,
                    k,
                    workers,
                });
            }
            if let Some(v) = halved(m, 2) {
                out.push(Workload::IntraLayerParallel {
                    ms,
                    m: v,
                    n,
                    k,
                    workers,
                });
            }
            if let Some(v) = halved(n, 1) {
                out.push(Workload::IntraLayerParallel {
                    ms,
                    m,
                    n: v,
                    k,
                    workers,
                });
            }
            if let Some(v) = halved(k, 2) {
                out.push(Workload::IntraLayerParallel {
                    ms,
                    m,
                    n,
                    k: v,
                    workers,
                });
            }
            if let Some(w2) = halved(workers, 2) {
                out.push(Workload::IntraLayerParallel {
                    ms,
                    m,
                    n,
                    k,
                    workers: w2,
                });
            }
        }
        // A model run has no smaller version of itself.
        Workload::ModelRun { .. } => {}
        Workload::CheckpointResume { model, arch, every } => {
            // The model itself cannot shrink; the checkpoint cadence can.
            if let Some(e) = halved(every, 1) {
                out.push(Workload::CheckpointResume {
                    model,
                    arch,
                    every: e,
                });
            }
        }
        Workload::ShardMerge {
            samples,
            seed_offset,
            shards,
        } => {
            // Keep at least one sample per shard so every shard stays
            // non-trivially populated while shrinking.
            if let Some(v) = halved(samples as usize, shards as usize) {
                out.push(Workload::ShardMerge {
                    samples: v as u64,
                    seed_offset,
                    shards,
                });
            }
            if let Some(v) = halved(shards as usize, 2) {
                out.push(Workload::ShardMerge {
                    samples,
                    seed_offset,
                    shards: v as u64,
                });
            }
        }
        Workload::PredictorHoldout {
            class_sel,
            ms,
            m,
            n,
            k,
            sparsity_pct,
            learner,
        } => {
            let again = |ms, m, n, k, sparsity_pct| Workload::PredictorHoldout {
                class_sel,
                ms,
                m,
                n,
                k,
                sparsity_pct,
                learner,
            };
            let steps: &[usize] = match class_sel % 3 {
                0 => &[4, 8, 16],
                1 => &[32, 64, 128],
                _ => &[64, 128],
            };
            if let Some(s) = stepped_down(ms, steps) {
                out.push(again(s, m, n, k, sparsity_pct));
            }
            if let Some(v) = halved(m, 4) {
                out.push(again(ms, v, n, k, sparsity_pct));
            }
            if let Some(v) = halved(n, 4) {
                out.push(again(ms, m, v, k, sparsity_pct));
            }
            if let Some(v) = halved(k, 8) {
                out.push(again(ms, m, n, v, sparsity_pct));
            }
            if let Some(s) = stepped_down(sparsity_pct as usize, &[0, 30, 60, 85]) {
                out.push(again(ms, m, n, k, s as u32));
            }
        }
        Workload::ClusterScenario {
            arch_a,
            arch_b,
            model,
            requests,
            batch,
            priority_policy,
            rate_deci,
        } => {
            if let Some(v) = halved(requests, 2) {
                out.push(Workload::ClusterScenario {
                    arch_a,
                    arch_b,
                    model,
                    requests: v,
                    batch,
                    priority_policy,
                    rate_deci,
                });
            }
            if let Some(v) = halved(batch, 1) {
                out.push(Workload::ClusterScenario {
                    arch_a,
                    arch_b,
                    model,
                    requests,
                    batch: v,
                    priority_policy,
                    rate_deci,
                });
            }
            // Homogenize the pair: one fewer distinct profile to eyeball.
            if arch_b != arch_a {
                out.push(Workload::ClusterScenario {
                    arch_a,
                    arch_b: arch_a,
                    model,
                    requests,
                    batch,
                    priority_policy,
                    rate_deci,
                });
            }
        }
    }
    out
}

/// Whether `oracle` fails on `w` with `seed`.
fn still_fails(w: &Workload, seed: u64, oracle: &str) -> bool {
    check_workload(w, seed)
        .outcomes
        .iter()
        .any(|o| o.oracle == oracle && !o.passed)
}

/// Core greedy descent against an arbitrary failure predicate: returns
/// a locally minimal workload on which `fails` still holds, or the
/// input unchanged when it does not fail to begin with (the shrinker
/// never invents failures).
///
/// The real campaign instantiates `fails` with "this oracle rejects the
/// workload"; the self-check tests instantiate it with synthetic
/// predicates per fuzz class to prove the descent preserves failure.
pub fn shrink_with(w: &Workload, fails: impl Fn(&Workload) -> bool) -> Workload {
    let mut current = w.clone();
    if !fails(&current) {
        return current;
    }
    // Greedy descent; bounded to keep a pathological failure from
    // stalling the campaign.
    for _ in 0..64 {
        let Some(next) = candidates(&current).into_iter().find(|c| fails(c)) else {
            break;
        };
        current = next;
    }
    current
}

/// Shrinks a failing workload to a locally minimal one on which `oracle`
/// still fails, returning it with the oracle's evidence there.
pub fn shrink(w: &Workload, seed: u64, oracle: &str) -> (Workload, String) {
    let current = shrink_with(w, |c| still_fails(c, seed, oracle));
    let detail = check_workload(&current, seed)
        .outcomes
        .into_iter()
        .find(|o| o.oracle == oracle && !o.passed)
        .map(|o| o.detail)
        .unwrap_or_default();
    (current, detail)
}

/// Renders a ready-to-paste regression test for a shrunk failure.
pub fn repro_test(w: &Workload, seed: u64, oracle: &str) -> String {
    format!(
        "#[test]\n\
         fn shrunk_fuzz_reproducer() {{\n\
         \x20   // oracle: {oracle}\n\
         \x20   use stonne_verify::gen::Workload;\n\
         \x20   let w = Workload::{w:?};\n\
         \x20   let r = stonne_verify::oracle::check_workload(&w, {seed:#x});\n\
         \x20   for o in &r.outcomes {{\n\
         \x20       assert!(o.passed, \"{{}}: {{}}\", o.oracle, o.detail);\n\
         \x20   }}\n\
         }}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_strictly_reduce() {
        let w = Workload::SystolicGemm {
            dim: 16,
            m: 40,
            n: 30,
            k: 50,
        };
        let cs = candidates(&w);
        assert_eq!(cs.len(), 4);
        assert!(cs.iter().all(|c| c != &w));
    }

    #[test]
    fn passing_workload_is_returned_unchanged() {
        let w = Workload::SystolicGemm {
            dim: 8,
            m: 10,
            n: 10,
            k: 10,
        };
        let (s, detail) = shrink(&w, 1, "systolic_exact_cycles");
        assert_eq!(s, w);
        assert!(detail.is_empty());
    }

    /// Satellite self-check: for every fuzz class, a shrunk reproducer
    /// must still fail its originating predicate, and be locally minimal
    /// (no one-step reduction of it fails). The synthetic predicates
    /// stand in for failing oracles — every real oracle is green on the
    /// engine, so this is the only way to exercise the descent.
    #[test]
    fn shrunk_reproducers_still_fail_and_are_locally_minimal() {
        type Predicate = fn(&Workload) -> bool;
        let starts: Vec<(Workload, Predicate)> = vec![
            (
                Workload::SystolicGemm {
                    dim: 16,
                    m: 48,
                    n: 40,
                    k: 64,
                },
                |w| matches!(w, Workload::SystolicGemm { k, .. } if *k >= 9),
            ),
            (
                Workload::FlexibleGemm {
                    ms: 128,
                    m: 40,
                    n: 32,
                    k: 48,
                },
                |w| matches!(w, Workload::FlexibleGemm { ms, m, .. } if *ms >= 32 && *m >= 5),
            ),
            (
                Workload::SparseSpmm {
                    ms: 128,
                    m: 30,
                    n: 28,
                    k: 56,
                    sparsity_pct: 60,
                },
                |w| matches!(w, Workload::SparseSpmm { n, .. } if *n >= 7),
            ),
            (
                Workload::SparseDenseEquiv {
                    ms: 128,
                    m: 30,
                    n: 28,
                    k: 40,
                },
                |w| matches!(w, Workload::SparseDenseEquiv { k, .. } if *k >= 10),
            ),
            (
                Workload::CacheReplay {
                    arch: 2,
                    m: 30,
                    n: 28,
                    k: 40,
                },
                |w| matches!(w, Workload::CacheReplay { m, n, .. } if *m + *n >= 12),
            ),
            (
                Workload::TileCacheBitwise {
                    arch: 1,
                    m: 28,
                    n: 24,
                    k: 36,
                },
                |w| matches!(w, Workload::TileCacheBitwise { m, k, .. } if *m >= 4 && *k >= 9),
            ),
            (
                Workload::Pool {
                    c: 8,
                    hw: 15,
                    window: 2,
                    stride: 1,
                },
                |w| matches!(w, Workload::Pool { hw, .. } if *hw >= 5),
            ),
            (
                Workload::IntraLayerParallel {
                    ms: 64,
                    m: 36,
                    n: 24,
                    k: 48,
                    workers: 8,
                },
                |w| matches!(w, Workload::IntraLayerParallel { workers, .. } if *workers >= 3),
            ),
            (
                Workload::ModelRun {
                    model: stonne::models::ModelId::AlexNet,
                    arch: 1,
                },
                |w| matches!(w, Workload::ModelRun { .. }),
            ),
            (
                Workload::CheckpointResume {
                    model: stonne::models::ModelId::Bert,
                    arch: 2,
                    every: 4,
                },
                |w| matches!(w, Workload::CheckpointResume { every, .. } if *every >= 2),
            ),
            (
                Workload::ShardMerge {
                    samples: 11,
                    seed_offset: 3,
                    shards: 4,
                },
                |w| matches!(w, Workload::ShardMerge { samples, .. } if *samples >= 5),
            ),
            (
                Workload::ClusterScenario {
                    arch_a: 2,
                    arch_b: 0,
                    model: 1,
                    requests: 14,
                    batch: 3,
                    priority_policy: true,
                    rate_deci: 20,
                },
                |w| matches!(w, Workload::ClusterScenario { requests, .. } if *requests >= 4),
            ),
            (
                Workload::PredictorHoldout {
                    class_sel: 2,
                    ms: 128,
                    m: 60,
                    n: 44,
                    k: 72,
                    sparsity_pct: 60,
                    learner: true,
                },
                |w| {
                    matches!(w, Workload::PredictorHoldout { k, sparsity_pct, .. }
                        if *k >= 20 && *sparsity_pct >= 30)
                },
            ),
        ];
        let classes: std::collections::BTreeSet<&str> =
            starts.iter().map(|(w, _)| w.class()).collect();
        assert_eq!(classes.len(), starts.len(), "one start per fuzz class");
        for (start, fails) in starts {
            assert!(fails(&start), "predicate must fail the start: {start:?}");
            let shrunk = shrink_with(&start, fails);
            assert!(
                fails(&shrunk),
                "shrinking lost the failure: {start:?} -> {shrunk:?}"
            );
            assert!(
                candidates(&shrunk).iter().all(|c| !fails(c)),
                "not locally minimal: {shrunk:?}"
            );
        }
    }

    /// A predicate that never fails leaves the workload untouched, for
    /// the new classes too.
    #[test]
    fn new_classes_pass_through_unchanged_when_green() {
        for w in [
            Workload::CheckpointResume {
                model: stonne::models::ModelId::AlexNet,
                arch: 0,
                every: 3,
            },
            Workload::ShardMerge {
                samples: 8,
                seed_offset: 1,
                shards: 2,
            },
        ] {
            assert_eq!(shrink_with(&w, |_| false), w);
        }
    }

    #[test]
    fn repro_test_is_pasteable() {
        let w = Workload::CacheReplay {
            arch: 1,
            m: 4,
            n: 4,
            k: 4,
        };
        let t = repro_test(&w, 0x2a, "cache_replay_bitwise");
        assert!(t.contains("fn shrunk_fuzz_reproducer"));
        assert!(t.contains("CacheReplay"));
        assert!(t.contains("0x2a"));
    }
}
