//! The machine-readable campaign report (`verify_report.json`).
//!
//! CI uploads this file as an artifact and gates on `total_failures`.
//! Every field except `wall_time_ms` is deterministic for a fixed
//! `(seed, samples)` pair — divergences are stored as integer
//! centi-percent precisely so no float formatting can leak
//! nondeterminism into the bytes. [`VerifyReport::canonical_json`]
//! zeroes the wall time, which is what "byte-identical minus wall-time"
//! means operationally: `jq 'del(.wall_time_ms)'` on two reports from the
//! same seed must agree byte-for-byte.

use serde::{Deserialize, Serialize};

/// Aggregate of one oracle over the whole campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleSummary {
    /// Oracle name (see [`crate::oracle::ORACLES`]).
    pub name: String,
    /// How many samples this oracle judged.
    pub runs: u64,
    /// How many of them failed.
    pub failures: u64,
    /// Worst |divergence| this oracle measured, in centi-percent
    /// (0 when the oracle measures no divergence).
    pub worst_divergence_cpct: i64,
}

/// One campaign-level aggregate check (claims about averages, e.g. the
/// Fig. 1b "1.03 % average at full bandwidth" band).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignCheck {
    /// Check name.
    pub name: String,
    /// Number of samples that fed the aggregate.
    pub samples: u64,
    /// Measured aggregate, in centi-percent.
    pub value_cpct: i64,
    /// Admissible bound, in centi-percent.
    pub limit_cpct: i64,
    /// Whether the aggregate satisfies the bound (vacuously true when no
    /// sample fed it).
    pub pass: bool,
}

/// One failing sample, shrunk to its minimal reproducer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// Index of the failing sample within the campaign.
    pub sample_index: u64,
    /// Oracle that rejected it.
    pub oracle: String,
    /// The originally generated workload (Rust literal).
    pub workload: String,
    /// The shrunk minimal workload (Rust literal).
    pub shrunk: String,
    /// Sample seed to reproduce with.
    pub seed: u64,
    /// The oracle's evidence on the shrunk workload.
    pub detail: String,
    /// Ready-to-paste regression test reproducing the failure.
    pub repro_test: String,
}

/// The whole campaign report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyReport {
    /// Campaign seed.
    pub seed: u64,
    /// Number of samples generated and checked.
    pub samples: u64,
    /// Per-oracle aggregates, in roster order.
    pub oracles: Vec<OracleSummary>,
    /// Campaign-level aggregate checks.
    pub campaign: Vec<CampaignCheck>,
    /// Shrunk failures (empty on a passing campaign).
    pub failures: Vec<FailureRecord>,
    /// Total failing (sample, oracle) pairs plus failing campaign checks.
    pub total_failures: u64,
    /// Wall time of the campaign in milliseconds — the only
    /// nondeterministic field.
    pub wall_time_ms: u64,
}

impl VerifyReport {
    /// Pretty JSON including the measured wall time.
    ///
    /// # Panics
    ///
    /// Never panics in practice (all fields serialize).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }

    /// Pretty JSON with `wall_time_ms` zeroed — byte-identical across
    /// re-runs of the same `(seed, samples)` campaign.
    pub fn canonical_json(&self) -> String {
        let mut canonical = self.clone();
        canonical.wall_time_ms = 0;
        canonical.to_json()
    }

    /// Whether the campaign passed (gates CI).
    pub fn passed(&self) -> bool {
        self.total_failures == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> VerifyReport {
        VerifyReport {
            seed: 7,
            samples: 2,
            oracles: vec![OracleSummary {
                name: "systolic_exact_cycles".into(),
                runs: 2,
                failures: 0,
                worst_divergence_cpct: 0,
            }],
            campaign: vec![CampaignCheck {
                name: "maeri_full_bw_avg".into(),
                samples: 2,
                value_cpct: 103,
                limit_cpct: 1500,
                pass: true,
            }],
            failures: vec![],
            total_failures: 0,
            wall_time_ms: 1234,
        }
    }

    #[test]
    fn canonical_json_hides_wall_time_only() {
        let r = sample_report();
        let canonical = r.canonical_json();
        assert!(canonical.contains("\"wall_time_ms\": 0"));
        assert!(!canonical.contains("1234"));
        assert!(r.to_json().contains("\"wall_time_ms\": 1234"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample_report();
        let parsed: VerifyReport = serde_json::from_str(&r.to_json()).expect("parses");
        assert_eq!(parsed, r);
    }
}
