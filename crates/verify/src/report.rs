//! The machine-readable campaign report (`verify_report.json`).
//!
//! CI uploads this file as an artifact and gates on `total_failures`.
//! Every field except `wall_time_ms` is deterministic for a fixed
//! `(seed, samples)` pair — divergences are stored as integer
//! centi-percent precisely so no float formatting can leak
//! nondeterminism into the bytes. [`VerifyReport::canonical_json`]
//! zeroes the wall time, which is what "byte-identical minus wall-time"
//! means operationally: `jq 'del(.wall_time_ms)'` on two reports from the
//! same seed must agree byte-for-byte.

use serde::{Deserialize, Serialize};

/// Aggregate of one oracle over the whole campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleSummary {
    /// Oracle name (see [`crate::oracle::ORACLES`]).
    pub name: String,
    /// How many samples this oracle judged.
    pub runs: u64,
    /// How many of them failed.
    pub failures: u64,
    /// Worst |divergence| this oracle measured, in centi-percent
    /// (0 when the oracle measures no divergence).
    pub worst_divergence_cpct: i64,
}

/// One campaign-level aggregate check (claims about averages, e.g. the
/// Fig. 1b "1.03 % average at full bandwidth" band).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignCheck {
    /// Check name.
    pub name: String,
    /// Number of samples that fed the aggregate.
    pub samples: u64,
    /// Measured aggregate, in centi-percent.
    pub value_cpct: i64,
    /// Admissible bound, in centi-percent.
    pub limit_cpct: i64,
    /// Whether the aggregate satisfies the bound (vacuously true when no
    /// sample fed it).
    pub pass: bool,
}

/// One failing sample, shrunk to its minimal reproducer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// Index of the failing sample within the campaign.
    pub sample_index: u64,
    /// Oracle that rejected it.
    pub oracle: String,
    /// The originally generated workload (Rust literal).
    pub workload: String,
    /// The shrunk minimal workload (Rust literal).
    pub shrunk: String,
    /// Sample seed to reproduce with.
    pub seed: u64,
    /// The oracle's evidence on the shrunk workload.
    pub detail: String,
    /// Ready-to-paste regression test reproducing the failure.
    pub repro_test: String,
}

/// The whole campaign report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerifyReport {
    /// Campaign seed.
    pub seed: u64,
    /// Number of samples generated and checked.
    pub samples: u64,
    /// Per-oracle aggregates, in roster order.
    pub oracles: Vec<OracleSummary>,
    /// Campaign-level aggregate checks.
    pub campaign: Vec<CampaignCheck>,
    /// Shrunk failures (empty on a passing campaign).
    pub failures: Vec<FailureRecord>,
    /// Total failing (sample, oracle) pairs plus failing campaign checks.
    pub total_failures: u64,
    /// Wall time of the campaign in milliseconds — the only
    /// nondeterministic field.
    pub wall_time_ms: u64,
}

/// Schema tag of [`ShardReport`] files, bumped on layout changes so a
/// merge never silently combines incompatible shards. `/2` added
/// `predictor_divergence_bits` alongside the new predictor oracles.
pub const SHARD_SCHEMA: &str = "stonne-verify-shard/2";

/// The intermediate artifact of `verify --shard i/n`: everything the
/// merge needs to rebuild the monolithic [`VerifyReport`] byte for byte.
///
/// Divergences travel as `(sample_index, f64::to_bits)` pairs rather
/// than rounded aggregates: the merge replays the monolithic float
/// accumulation in sample-index order, so the campaign-average checks
/// of the merged report reproduce the exact same f64 sum — no
/// re-association, no formatting round-trip.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Always [`SHARD_SCHEMA`].
    pub schema: String,
    /// Campaign seed (shared by every shard of a campaign).
    pub seed: u64,
    /// Total campaign samples (not this shard's share).
    pub samples: u64,
    /// This shard's index in `0..shard_count`.
    pub shard_index: u64,
    /// Number of shards the campaign was split into.
    pub shard_count: u64,
    /// Oracle roster the counters are indexed by, for merge validation.
    pub oracles: Vec<String>,
    /// Per-oracle run counts, in roster order.
    pub runs: Vec<u64>,
    /// Per-oracle failure counts, in roster order.
    pub failures: Vec<u64>,
    /// Per-oracle worst |divergence| in centi-percent, in roster order.
    pub worst_divergence_cpct: Vec<i64>,
    /// `(sample_index, f64 bits)` of each MAERI full-bandwidth
    /// divergence this shard measured.
    pub maeri_divergence_bits: Vec<(u64, u64)>,
    /// `(sample_index, f64 bits)` of each SIGMA dense divergence.
    pub sigma_divergence_bits: Vec<(u64, u64)>,
    /// `(sample_index, f64 bits)` of each committed-predictor divergence
    /// this shard measured on its predictor-holdout samples.
    pub predictor_divergence_bits: Vec<(u64, u64)>,
    /// Shrunk failures found by this shard.
    pub failure_records: Vec<FailureRecord>,
    /// Wall time of this shard in milliseconds (nondeterministic).
    pub wall_time_ms: u64,
}

impl ShardReport {
    /// Pretty JSON of the shard artifact.
    ///
    /// # Panics
    ///
    /// Never panics in practice (all fields serialize).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("shard report serializes");
        s.push('\n');
        s
    }

    /// Parses a shard artifact, rejecting unknown schemas.
    ///
    /// # Errors
    ///
    /// Returns a description when the JSON is malformed or the schema
    /// tag is not [`SHARD_SCHEMA`].
    pub fn from_json(json: &str) -> Result<ShardReport, String> {
        let shard: ShardReport =
            serde_json::from_str(json).map_err(|e| format!("malformed shard report: {e}"))?;
        if shard.schema != SHARD_SCHEMA {
            return Err(format!(
                "unsupported shard schema {:?} (expected {SHARD_SCHEMA:?})",
                shard.schema
            ));
        }
        Ok(shard)
    }

    /// Total failing (sample, oracle) pairs this shard saw.
    pub fn total_failures(&self) -> u64 {
        self.failures.iter().sum()
    }
}

impl VerifyReport {
    /// Pretty JSON including the measured wall time.
    ///
    /// # Panics
    ///
    /// Never panics in practice (all fields serialize).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }

    /// Pretty JSON with `wall_time_ms` zeroed — byte-identical across
    /// re-runs of the same `(seed, samples)` campaign.
    pub fn canonical_json(&self) -> String {
        let mut canonical = self.clone();
        canonical.wall_time_ms = 0;
        canonical.to_json()
    }

    /// Whether the campaign passed (gates CI).
    pub fn passed(&self) -> bool {
        self.total_failures == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> VerifyReport {
        VerifyReport {
            seed: 7,
            samples: 2,
            oracles: vec![OracleSummary {
                name: "systolic_exact_cycles".into(),
                runs: 2,
                failures: 0,
                worst_divergence_cpct: 0,
            }],
            campaign: vec![CampaignCheck {
                name: "maeri_full_bw_avg".into(),
                samples: 2,
                value_cpct: 103,
                limit_cpct: 1500,
                pass: true,
            }],
            failures: vec![],
            total_failures: 0,
            wall_time_ms: 1234,
        }
    }

    #[test]
    fn canonical_json_hides_wall_time_only() {
        let r = sample_report();
        let canonical = r.canonical_json();
        assert!(canonical.contains("\"wall_time_ms\": 0"));
        assert!(!canonical.contains("1234"));
        assert!(r.to_json().contains("\"wall_time_ms\": 1234"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample_report();
        let parsed: VerifyReport = serde_json::from_str(&r.to_json()).expect("parses");
        assert_eq!(parsed, r);
    }

    #[test]
    fn shard_report_round_trips_and_rejects_other_schemas() {
        let shard = ShardReport {
            schema: SHARD_SCHEMA.to_owned(),
            seed: 7,
            samples: 100,
            shard_index: 1,
            shard_count: 4,
            oracles: vec!["systolic_exact_cycles".into()],
            runs: vec![25],
            failures: vec![1],
            worst_divergence_cpct: vec![103],
            maeri_divergence_bits: vec![(5, 1.03f64.to_bits())],
            sigma_divergence_bits: vec![],
            predictor_divergence_bits: vec![(7, 0.25f64.to_bits())],
            failure_records: vec![],
            wall_time_ms: 9,
        };
        let parsed = ShardReport::from_json(&shard.to_json()).expect("parses");
        assert_eq!(parsed, shard);
        assert_eq!(parsed.total_failures(), 1);
        assert_eq!(
            f64::from_bits(parsed.maeri_divergence_bits[0].1),
            1.03,
            "divergence bits survive the JSON round-trip exactly"
        );

        let mut other = shard.clone();
        other.schema = "stonne-verify-shard/9".into();
        assert!(ShardReport::from_json(&other.to_json()).is_err());
        assert!(ShardReport::from_json("not json").is_err());
    }
}
