//! `stonne-verify`: the differential validation harness of this
//! workspace.
//!
//! The paper's central claim is that STONNE's cycle-level numbers can be
//! trusted (Table V validates against the published MAERI/SIGMA/TPU RTL
//! to within a few percent). This crate re-establishes that trust
//! continuously, on every change, with three pillars:
//!
//! 1. **Property-based differential fuzzing** ([`gen`], [`oracle`],
//!    [`campaign`]) — seeded generators draw accelerator configurations
//!    and workloads; each sample runs on the cycle-level engines and is
//!    judged against analytical models, sibling engines and structural
//!    invariants. Failures shrink to minimal reproducers ([`shrink`]).
//! 2. **Golden regression fixtures** ([`golden`]) — small-scale
//!    fig1/fig5/fig7/table5 runs pinned byte-for-byte in
//!    `tests/golden/*.json`, re-blessed explicitly with
//!    `UPDATE_GOLDEN=1`.
//! 3. **The `verify` bin** ([`report`]) — `cargo run -p stonne-verify --
//!    --samples 200 --seed 7` runs a deterministic campaign and writes a
//!    machine-readable `verify_report.json` that CI uploads and gates
//!    on. Campaigns shard across processes (`--shard i/n`, then
//!    `verify merge`) and the merged report is byte-identical to the
//!    single-process one — a guarantee the `shard_merge_bitwise` fuzz
//!    oracle itself enforces continuously.
//!
//! The divergence thresholds every consumer asserts live in
//! [`tolerance`]; `docs/VALIDATION.md` documents the full oracle matrix.

#![warn(missing_docs)]

pub mod campaign;
pub mod gen;
pub mod golden;
pub mod oracle;
pub mod report;
pub mod shrink;
pub mod statehash;
pub mod tolerance;

pub use campaign::{
    merge_shards, parse_shard_spec, run_campaign, run_shard, CampaignConfig, SampleSpace,
};
pub use gen::Workload;
pub use oracle::{check_workload, OracleOutcome, SampleCheck, ORACLES};
pub use report::{ShardReport, VerifyReport};
pub use statehash::{state_hash_manifest, StateHashManifest, STATE_HASH_SCHEMA};
pub use tolerance::{
    MAERI_FULL_BW_AVG_MAX_PCT, MAERI_LOW_BW_EXCESS_MIN_PCT, MAERI_LOW_BW_WORST_MIN_PCT,
    SIGMA_DENSE_AVG_MAX_PCT, SIGMA_SPARSE90_MIN_PCT, SYSTOLIC_VS_SCALESIM_MAX_PCT,
};
