//! Seeded generators for fuzz workloads.
//!
//! Every sample of a campaign is fully determined by `(campaign seed,
//! sample index)`: the index is mixed into the seed with a SplitMix64
//! round, the mixed seed drives a [`SeededRng`], and the rng picks a
//! workload class and its dimensions. Re-running a campaign with the same
//! seed therefore regenerates the identical sample sequence — the
//! property the byte-identical `verify_report.json` guarantee rests on.

use stonne::models::ModelId;
use stonne::tensor::SeededRng;

/// One generated fuzz sample: a workload class plus its dimensions.
///
/// The `Debug` representation of a workload is a valid Rust expression
/// (all fields are named), which is what the shrinker pastes into the
/// ready-to-run reproducer test.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Dense GEMM on the TPU-like systolic composition.
    SystolicGemm {
        /// PE-array side length.
        dim: usize,
        /// GEMM M.
        m: usize,
        /// GEMM N.
        n: usize,
        /// GEMM K.
        k: usize,
    },
    /// Dense GEMM on the MAERI-like flexible composition at full
    /// bandwidth (`bw == ms`), compared against the MAERI analytical
    /// model.
    FlexibleGemm {
        /// Multiplier-switch count.
        ms: usize,
        /// GEMM M.
        m: usize,
        /// GEMM N.
        n: usize,
        /// GEMM K.
        k: usize,
    },
    /// SpMM on the SIGMA-like sparse composition, compared against the
    /// SIGMA analytical model (dense band at 0 % sparsity).
    SparseSpmm {
        /// Multiplier-switch count (bandwidth equals it).
        ms: usize,
        /// GEMM M.
        m: usize,
        /// GEMM N.
        n: usize,
        /// GEMM K.
        k: usize,
        /// Target zero fraction of the stationary operand, in percent.
        sparsity_pct: u32,
    },
    /// Sparse engine at 0 % sparsity vs the dense flexible engine on the
    /// same substrate (outputs must agree, cycles stay in an envelope).
    SparseDenseEquiv {
        /// Multiplier-switch count for both engines.
        ms: usize,
        /// GEMM M.
        m: usize,
        /// GEMM N.
        n: usize,
        /// GEMM K.
        k: usize,
    },
    /// Cached-vs-uncached replay of one operation on one architecture.
    CacheReplay {
        /// Architecture selector: 0 = TPU-like, 1 = MAERI-like,
        /// 2 = SIGMA-like.
        arch: u8,
        /// GEMM M.
        m: usize,
        /// GEMM N.
        n: usize,
        /// GEMM K.
        k: usize,
    },
    /// Tile-cache ON vs OFF on one architecture: outputs, statistics
    /// (tile bookkeeping stripped), cycle breakdown, and the cycle-level
    /// trace must be byte-identical, and a warm shared context must
    /// replay tiles without re-deriving them.
    TileCacheBitwise {
        /// Architecture selector, as in [`Workload::CacheReplay`].
        arch: u8,
        /// GEMM M.
        m: usize,
        /// GEMM N.
        n: usize,
        /// GEMM K.
        k: usize,
    },
    /// Max-pooling on the streaming pool engine vs the CPU reference.
    Pool {
        /// Input channels.
        c: usize,
        /// Input height and width.
        hw: usize,
        /// Pooling window side.
        window: usize,
        /// Window stride.
        stride: usize,
    },
    /// Full-model run at `ModelScale::Tiny`: serial vs wave-parallel
    /// runner equivalence.
    ModelRun {
        /// DNN model to run.
        model: ModelId,
        /// Architecture selector, as in [`Workload::CacheReplay`].
        arch: u8,
    },
    /// Multi-accelerator serving scenario (`stonne-cluster`): serial vs
    /// worker-pool profiling must yield byte-identical reports and equal
    /// per-request cycle counts.
    ClusterScenario {
        /// Architecture selector of instance 0 (0 = TPU, 1 = MAERI,
        /// 2 = SIGMA).
        arch_a: u8,
        /// Architecture selector of instance 1.
        arch_b: u8,
        /// Model selector into the cheap fuzz-model roster.
        model: u8,
        /// Requests generated for the scenario.
        requests: usize,
        /// Batching window.
        batch: usize,
        /// `true` → priority DRAM arbitration, else round-robin.
        priority_policy: bool,
        /// Poisson arrival rate in tenths of a request per million
        /// cycles (integer keeps the workload `Eq`-comparable).
        rate_deci: u32,
    },
    /// Dense GEMM on the flexible composition, run serially and with the
    /// intra-layer tile fan-out ([`stonne::core::Stonne::with_intra_tiles`]):
    /// outputs and statistics must be bitwise equal.
    IntraLayerParallel {
        /// Multiplier-switch count.
        ms: usize,
        /// GEMM M.
        m: usize,
        /// GEMM N.
        n: usize,
        /// GEMM K.
        k: usize,
        /// Worker budget handed to the engine.
        workers: usize,
    },
    /// Full-model run checkpointed every `every` layer boundaries, then
    /// interrupted (newer checkpoints deleted) and resumed: the resumed
    /// run must be bitwise identical to an uninterrupted one — outputs,
    /// stats (including cache counters), energy, and state hash.
    CheckpointResume {
        /// DNN model to run at `ModelScale::Tiny`.
        model: ModelId,
        /// Architecture selector, as in [`Workload::CacheReplay`].
        arch: u8,
        /// Checkpoint cadence in layer boundaries.
        every: usize,
    },
    /// A nested cheap-space campaign run monolithically and as
    /// `shards` deterministic shards merged back together: the merged
    /// report must be byte-identical to the monolithic one.
    ShardMerge {
        /// Samples of the nested campaign.
        samples: u64,
        /// Mixed into the sample seed to decorrelate nested campaigns.
        seed_offset: u64,
        /// Number of shards to split into.
        shards: u64,
    },
    /// One held-out workload for the committed cycle predictor
    /// (`crates/predict`): the exact engine labels the sample and the
    /// committed `stonne-predict-model/1` artifact must land within the
    /// regime tolerance — plus a miniature re-train proving training is
    /// byte-deterministic on this host.
    PredictorHoldout {
        /// Workload-class selector: 0 = systolic, 1 = flexible,
        /// 2 = sparse.
        class_sel: u8,
        /// Multiplier count (the PE-array side for the systolic class).
        ms: usize,
        /// GEMM M.
        m: usize,
        /// GEMM N.
        n: usize,
        /// GEMM K.
        k: usize,
        /// Zero fraction of the stationary operand in percent (sparse
        /// class only).
        sparsity_pct: u32,
        /// `true` selects the learner regime (output-stationary dataflow
        /// for the flexible class, activation-sparsity mode for the
        /// sparse one) where the predictor's prior is first-order and the
        /// boosted stumps carry the correction; `false` stays in the
        /// prior-mirrored regime the predictor must reproduce exactly.
        learner: bool,
    },
}

impl Workload {
    /// Short class tag used to group oracle statistics in the report.
    pub fn class(&self) -> &'static str {
        match self {
            Workload::SystolicGemm { .. } => "systolic_gemm",
            Workload::FlexibleGemm { .. } => "flexible_gemm",
            Workload::SparseSpmm { .. } => "sparse_spmm",
            Workload::SparseDenseEquiv { .. } => "sparse_dense_equiv",
            Workload::CacheReplay { .. } => "cache_replay",
            Workload::TileCacheBitwise { .. } => "tile_cache_bitwise",
            Workload::Pool { .. } => "pool",
            Workload::ModelRun { .. } => "model_run",
            Workload::ClusterScenario { .. } => "cluster_scenario",
            Workload::IntraLayerParallel { .. } => "intra_layer_parallel",
            Workload::CheckpointResume { .. } => "checkpoint_resume",
            Workload::ShardMerge { .. } => "shard_merge",
            Workload::PredictorHoldout { .. } => "predictor_holdout",
        }
    }
}

/// SplitMix64 round: mixes the sample index into the campaign seed so
/// neighbouring samples get decorrelated rng streams.
pub fn sample_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut z =
        campaign_seed.wrapping_add(0x9e37_79b9_7f4a_7c15_u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The cheap models used for full-model fuzz samples (Tiny scale keeps a
/// run in the tens of milliseconds; the heavyweights are covered by the
/// golden fixtures instead).
const FUZZ_MODELS: [ModelId; 4] = [
    ModelId::MobileNetV1,
    ModelId::SqueezeNet,
    ModelId::AlexNet,
    ModelId::Bert,
];

/// Generates the workload of sample `index` of the campaign.
pub fn generate(campaign_seed: u64, index: u64) -> Workload {
    let mut rng = SeededRng::new(sample_seed(campaign_seed, index));
    // Class weights (out of 100). Full-model runs are the most expensive
    // class by two orders of magnitude, so they are deliberately rare.
    let roll = rng.index(100);
    if roll < 20 {
        let dims = [4, 8, 16];
        Workload::SystolicGemm {
            dim: dims[rng.index(dims.len())],
            m: 1 + rng.index(64),
            n: 1 + rng.index(64),
            k: 1 + rng.index(96),
        }
    } else if roll < 38 {
        let sizes = [16, 32, 64, 128];
        Workload::FlexibleGemm {
            ms: sizes[rng.index(sizes.len())],
            m: 1 + rng.index(48),
            n: 1 + rng.index(48),
            k: 1 + rng.index(64),
        }
    } else if roll < 54 {
        let sizes = [32, 64, 128];
        let sparsities = [0, 0, 30, 60, 90];
        let ms = sizes[rng.index(sizes.len())];
        let m = 2 + rng.index(32);
        let n = 2 + rng.index(32);
        let k = 8 + rng.index(56);
        let sparsity_pct = sparsities[rng.index(sparsities.len())];
        // The SIGMA analytical model assumes rows pack the multiplier
        // array without fragmentation, which only holds when K divides
        // ms. Dense samples snap K to a divisor of every generated ms so
        // the sharp `sigma_dense_band` oracle applies to all of them;
        // sparse samples keep the full K range (their rows fragment
        // anyway and no band is asserted).
        let k = if sparsity_pct == 0 {
            [8, 16, 32][k % 3]
        } else {
            k
        };
        Workload::SparseSpmm {
            ms,
            m,
            n,
            k,
            sparsity_pct,
        }
    } else if roll < 66 {
        let sizes = [32, 64, 128];
        Workload::SparseDenseEquiv {
            ms: sizes[rng.index(sizes.len())],
            m: 2 + rng.index(32),
            n: 2 + rng.index(32),
            k: 4 + rng.index(48),
        }
    } else if roll < 70 {
        Workload::CacheReplay {
            arch: rng.index(3) as u8,
            m: 1 + rng.index(32),
            n: 1 + rng.index(32),
            k: 1 + rng.index(48),
        }
    } else if roll < 74 {
        // Sized like the cache-replay band: the tile cache must be
        // invisible on every architecture at every small shape.
        Workload::TileCacheBitwise {
            arch: rng.index(3) as u8,
            m: 1 + rng.index(32),
            n: 1 + rng.index(32),
            k: 1 + rng.index(48),
        }
    } else if roll < 80 {
        // Sized so the auto tile yields several filter chunks — the
        // serial-vs-fanned comparison is vacuous on a single chunk.
        let sizes = [32, 64];
        let worker_counts = [2, 3, 4, 8];
        Workload::IntraLayerParallel {
            ms: sizes[rng.index(sizes.len())],
            m: 8 + rng.index(32),
            n: 2 + rng.index(24),
            k: 8 + rng.index(48),
            workers: worker_counts[rng.index(worker_counts.len())],
        }
    } else if roll < 86 {
        let window = 2 + rng.index(2);
        let stride = 1 + rng.index(2);
        Workload::Pool {
            c: 1 + rng.index(8),
            hw: window + 2 + rng.index(14),
            window,
            stride,
        }
    } else if roll < 92 {
        // Class mix mirrors the predictor's own training campaign:
        // systolic is always prior-mirrored, flexible and sparse split
        // 2:1 mirrored:learner, shapes stay inside the trained size band.
        let class_sel = rng.index(3) as u8;
        let ms = match class_sel {
            0 => [4usize, 8, 16][rng.index(3)],
            1 => [32usize, 64, 128][rng.index(3)],
            _ => [64usize, 128][rng.index(2)],
        };
        let learner = class_sel > 0 && rng.index(3) == 2;
        let sparsity_pct = if class_sel == 2 {
            [0u32, 30, 60, 85][rng.index(4)]
        } else {
            0
        };
        Workload::PredictorHoldout {
            class_sel,
            ms,
            m: 4 + rng.index(92),
            n: 4 + rng.index(92),
            k: 8 + rng.index(88),
            sparsity_pct,
            learner,
        }
    } else if roll < 94 {
        Workload::ModelRun {
            model: FUZZ_MODELS[rng.index(FUZZ_MODELS.len())],
            arch: rng.index(3) as u8,
        }
    } else if roll < 96 {
        Workload::CheckpointResume {
            model: FUZZ_MODELS[rng.index(FUZZ_MODELS.len())],
            arch: rng.index(3) as u8,
            every: 1 + rng.index(4),
        }
    } else if roll < 98 {
        Workload::ShardMerge {
            samples: 4 + rng.index(8) as u64,
            seed_offset: rng.index(1 << 16) as u64,
            shards: 2 + rng.index(3) as u64,
        }
    } else {
        Workload::ClusterScenario {
            arch_a: rng.index(3) as u8,
            arch_b: rng.index(3) as u8,
            model: rng.index(4) as u8,
            requests: 4 + rng.index(12),
            batch: 1 + rng.index(3),
            priority_policy: rng.chance(0.5),
            rate_deci: 5 + rng.index(25) as u32,
        }
    }
}

/// Generates the workload of sample `index` from the **cheap** sample
/// space: single-operation classes only, no full-model runs and no
/// recursive campaign classes. This is what the nested campaigns of
/// [`Workload::ShardMerge`] draw from, so a shard-merge sample stays in
/// the same cost band as a handful of GEMMs and can never recurse.
pub fn generate_cheap(campaign_seed: u64, index: u64) -> Workload {
    let mut rng = SeededRng::new(sample_seed(campaign_seed, index));
    match rng.index(4) {
        0 => {
            let dims = [4, 8];
            Workload::SystolicGemm {
                dim: dims[rng.index(dims.len())],
                m: 1 + rng.index(16),
                n: 1 + rng.index(16),
                k: 1 + rng.index(24),
            }
        }
        1 => {
            let sizes = [16, 32];
            Workload::FlexibleGemm {
                ms: sizes[rng.index(sizes.len())],
                m: 1 + rng.index(16),
                n: 1 + rng.index(16),
                k: 1 + rng.index(24),
            }
        }
        2 => Workload::CacheReplay {
            arch: rng.index(3) as u8,
            m: 1 + rng.index(12),
            n: 1 + rng.index(12),
            k: 1 + rng.index(16),
        },
        _ => {
            let window = 2 + rng.index(2);
            let stride = 1 + rng.index(2);
            Workload::Pool {
                c: 1 + rng.index(4),
                hw: window + 2 + rng.index(8),
                window,
                stride,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for i in 0..50 {
            assert_eq!(generate(7, i), generate(7, i));
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a: Vec<Workload> = (0..20).map(|i| generate(1, i)).collect();
        let b: Vec<Workload> = (0..20).map(|i| generate(2, i)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn every_class_appears_in_a_modest_campaign() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..300 {
            seen.insert(generate(7, i).class());
        }
        for class in [
            "systolic_gemm",
            "flexible_gemm",
            "sparse_spmm",
            "sparse_dense_equiv",
            "cache_replay",
            "tile_cache_bitwise",
            "pool",
            "model_run",
            "cluster_scenario",
            "intra_layer_parallel",
            "checkpoint_resume",
            "shard_merge",
            "predictor_holdout",
        ] {
            assert!(seen.contains(class), "class {class} never generated");
        }
    }

    #[test]
    fn cheap_space_stays_cheap_and_covers_its_classes() {
        let cheap = ["systolic_gemm", "flexible_gemm", "cache_replay", "pool"];
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..64 {
            let w = generate_cheap(11, i);
            assert!(cheap.contains(&w.class()), "expensive class {:?}", w);
            assert_eq!(w, generate_cheap(11, i), "cheap space deterministic");
            seen.insert(w.class());
        }
        for class in cheap {
            assert!(seen.contains(class), "class {class} never generated");
        }
    }

    #[test]
    fn debug_form_is_a_rust_expression() {
        let w = generate(7, 0);
        let s = format!("{w:?}");
        assert!(s.contains('{') && s.contains('}'), "{s}");
    }
}
