//! The oracle matrix: every check one fuzz sample is subjected to.
//!
//! Each workload class from [`crate::gen`] runs on the cycle-level
//! engines and is judged by the oracles that apply to it (see
//! `docs/VALIDATION.md` for the full matrix):
//!
//! * **analytical bands** — systolic cycles must equal the SCALE-Sim
//!   closed form plus the known per-tile overhead *exactly*; the flexible
//!   and sparse engines must stay within the Fig. 1 tolerance bands of
//!   the MAERI/SIGMA models ([`crate::tolerance`]);
//! * **engine equivalences** — sparse at 0 % sparsity vs dense flexible,
//!   cached vs uncached replay, serial vs wave-parallel full-model runs;
//! * **functional correctness** — every simulated output against the CPU
//!   reference kernels;
//! * **structural invariants** — `CycleBreakdown` sums to `cycles`,
//!   utilization stays in `[0, 1]`, `SimStats::merge` is associative,
//!   energy is non-negative and monotone in cycles.

use std::sync::Arc;

use stonne::analytical::band::divergence_pct;
use stonne::analytical::maeri::MaeriWorkload;
use stonne::analytical::{maeri_cycles, scalesim_os_cycles, sigma_cycles};
use stonne::core::{
    systolic_expected_cycles, AcceleratorConfig, NaturalOrder, SimCache, SimContext, SimStats,
    Stonne,
};
use stonne::energy::EnergyModel;
use stonne::models::{zoo, ModelScale};
use stonne::nn::params::{generate_input, ModelParams};
use stonne::nn::runner::{run_model_simulated_with, RunOptions};
use stonne::tensor::{
    approx_eq, gemm_reference, maxpool2d_reference, spmm_reference, CsrMatrix, Matrix, SeededRng,
    Tensor4,
};
use stonne_bench::fig5::Arch;

use crate::gen::Workload;
use crate::tolerance as tol;

/// Result of one oracle applied to one sample.
#[derive(Debug, Clone)]
pub struct OracleOutcome {
    /// Stable oracle name (one row of the report's oracle table).
    pub oracle: &'static str,
    /// Whether the sample satisfied the oracle.
    pub passed: bool,
    /// Measured divergence from the analytical prediction, when the
    /// oracle is a tolerance band.
    pub divergence_pct: Option<f64>,
    /// Human-readable evidence (numbers compared), deterministic.
    pub detail: String,
}

/// Everything the campaign needs from one checked sample.
#[derive(Debug, Clone)]
pub struct SampleCheck {
    /// Per-oracle outcomes, in a deterministic order.
    pub outcomes: Vec<OracleOutcome>,
    /// Divergence from the MAERI model at full bandwidth, if this sample
    /// measured one (feeds the campaign-average check).
    pub maeri_full_bw: Option<f64>,
    /// Divergence from the SIGMA model on a dense execution, if measured.
    pub sigma_dense: Option<f64>,
    /// Divergence of the committed cycle predictor from the exact engine,
    /// if this sample measured one (feeds the campaign-average check).
    pub predictor: Option<f64>,
}

/// The fixed oracle roster, in report order.
pub const ORACLES: [&str; 18] = [
    "systolic_exact_cycles",
    "flexible_maeri_band",
    "sigma_dense_band",
    "sparse_dense_outputs",
    "sparse_dense_cycle_envelope",
    "cache_replay_bitwise",
    "tile_cache_bitwise",
    "serial_parallel_equal",
    "state_hash_stable",
    "intra_serial_parallel_bitwise",
    "resume_vs_straight_bitwise",
    "shard_merge_bitwise",
    "cluster_serial_parallel_bitwise",
    "predictor_error_bounded",
    "predictor_train_deterministic",
    "functional_outputs",
    "breakdown_sums_to_cycles",
    "stats_energy_invariants",
];

fn push(
    outcomes: &mut Vec<OracleOutcome>,
    oracle: &'static str,
    passed: bool,
    divergence_pct: Option<f64>,
    detail: String,
) {
    outcomes.push(OracleOutcome {
        oracle,
        passed,
        divergence_pct,
        detail,
    });
}

fn slices_approx_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| approx_eq(*x, *y))
}

/// Structural invariants applied to every simulated operation.
fn structural_checks(outcomes: &mut Vec<OracleOutcome>, cfg: &AcceleratorConfig, stats: &SimStats) {
    let sum = stats.breakdown.total();
    push(
        outcomes,
        "breakdown_sums_to_cycles",
        sum == stats.cycles,
        None,
        format!("breakdown {} vs cycles {}", sum, stats.cycles),
    );

    let util = stats.ms_utilization();
    let util_ok = (0.0..=1.0).contains(&util);

    // merge associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) on scaled copies.
    let b = stats.scaled(2);
    let c = stats.scaled(3);
    let mut left = stats.clone();
    left.merge(&b);
    left.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = stats.clone();
    right.merge(&bc);
    let merge_ok = left == right;

    let em = EnergyModel::for_config(cfg);
    let e1 = em.breakdown(stats);
    let parts = [
        e1.gb_uj,
        e1.dn_uj,
        e1.mn_uj,
        e1.rn_uj,
        e1.dram_uj,
        e1.static_uj,
    ];
    let nonneg = parts.iter().all(|p| *p >= 0.0);
    let e2 = em.breakdown(&stats.scaled(2));
    let monotone = e2.total_uj() >= e1.total_uj();

    push(
        outcomes,
        "stats_energy_invariants",
        util_ok && merge_ok && nonneg && monotone,
        None,
        format!(
            "util {:.4} merge_assoc {} energy_nonneg {} energy_monotone {}",
            util, merge_ok, nonneg, monotone
        ),
    );
}

fn operands(m: usize, n: usize, k: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = SeededRng::new(seed ^ 0x5eed);
    let a = Matrix::random(m, k, &mut rng);
    let b = Matrix::random(k, n, &mut rng);
    (a, b)
}

fn check_systolic(dim: usize, m: usize, n: usize, k: usize, seed: u64) -> SampleCheck {
    let mut outcomes = Vec::new();
    let (a, b) = operands(m, n, k, seed);
    let cfg = AcceleratorConfig::tpu_like(dim);
    let mut sim = Stonne::new(cfg.clone()).expect("preset is valid");
    let (out, stats) = sim.run_gemm("fuzz_systolic", &a, &b);

    let expected = systolic_expected_cycles(dim, m, n, k);
    let tiles = (m.div_ceil(dim) * n.div_ceil(dim)) as u64;
    let scalesim = scalesim_os_cycles(dim, m, n, k) + tol::SYSTOLIC_TILE_OVERHEAD_CYCLES * tiles;
    push(
        &mut outcomes,
        "systolic_exact_cycles",
        stats.cycles == expected && stats.cycles == scalesim,
        Some(divergence_pct(stats.cycles, scalesim)),
        format!(
            "cycles {} vs engine-form {} vs scalesim+overhead {}",
            stats.cycles, expected, scalesim
        ),
    );

    let reference = gemm_reference(&a, &b);
    push(
        &mut outcomes,
        "functional_outputs",
        slices_approx_equal(out.as_slice(), reference.as_slice()),
        None,
        format!("{}x{} output vs gemm_reference", m, n),
    );
    structural_checks(&mut outcomes, &cfg, &stats);
    SampleCheck {
        outcomes,
        maeri_full_bw: None,
        sigma_dense: None,
        predictor: None,
    }
}

fn check_flexible(ms: usize, m: usize, n: usize, k: usize, seed: u64) -> SampleCheck {
    let mut outcomes = Vec::new();
    let (a, b) = operands(m, n, k, seed);
    let cfg = AcceleratorConfig::maeri_like(ms, ms);
    let mut sim = Stonne::new(cfg.clone()).expect("preset is valid");
    let (out, stats) = sim.run_gemm("fuzz_flexible", &a, &b);

    let analytical = maeri_cycles(&MaeriWorkload::from_gemm(m, n, k, ms), ms);
    let d = divergence_pct(stats.cycles, analytical);
    // At tiny K the fold count is so small that fixed fill/drain
    // overheads swamp the model's steady-state estimate; the band only
    // means something once a few folds amortize them.
    let mut maeri_full_bw = None;
    if k >= tol::MAERI_BAND_MIN_K {
        maeri_full_bw = Some(d);
        push(
            &mut outcomes,
            "flexible_maeri_band",
            d.abs() <= tol::MAERI_FULL_BW_SAMPLE_MAX_PCT,
            Some(d),
            format!(
                "cycles {} vs maeri model {} ({:+.2}%)",
                stats.cycles, analytical, d
            ),
        );
    }

    let reference = gemm_reference(&a, &b);
    push(
        &mut outcomes,
        "functional_outputs",
        slices_approx_equal(out.as_slice(), reference.as_slice()),
        None,
        format!("{}x{} output vs gemm_reference", m, n),
    );
    structural_checks(&mut outcomes, &cfg, &stats);
    SampleCheck {
        outcomes,
        maeri_full_bw,
        sigma_dense: None,
        predictor: None,
    }
}

fn check_sparse_spmm(
    ms: usize,
    m: usize,
    n: usize,
    k: usize,
    sparsity_pct: u32,
    seed: u64,
) -> SampleCheck {
    let mut outcomes = Vec::new();
    let mut rng = SeededRng::new(seed ^ 0x51fa);
    let a = Matrix::random_sparse(m, k, f64::from(sparsity_pct) / 100.0, &mut rng);
    let b = Matrix::random(k, n, &mut rng);
    let csr = CsrMatrix::from_dense(&a);
    let cfg = AcceleratorConfig::sigma_like(ms, ms);
    let mut sim = Stonne::new(cfg.clone()).expect("preset is valid");
    let (out, stats) = sim.run_spmm("fuzz_spmm", &csr, &b);

    let analytical = sigma_cycles(&csr, &b, ms, ms);
    let d = divergence_pct(stats.cycles, analytical);
    let mut sigma_dense = None;
    // The SIGMA model assumes K-length rows pack the multiplier array
    // without fragmentation; with that assumption met (K | ms, which the
    // generator guarantees for dense samples) the engine matches the
    // model exactly, so the band is sharp. Fragmented shapes diverge by
    // up to ~90 % for reasons the model deliberately ignores, so no band
    // is asserted there.
    if sparsity_pct == 0 && k > 0 && ms % k == 0 {
        sigma_dense = Some(d);
        push(
            &mut outcomes,
            "sigma_dense_band",
            d.abs() <= tol::SIGMA_DENSE_SAMPLE_MAX_PCT,
            Some(d),
            format!(
                "cycles {} vs sigma model {} ({:+.2}%)",
                stats.cycles, analytical, d
            ),
        );
    }

    let reference = spmm_reference(&csr, &b);
    push(
        &mut outcomes,
        "functional_outputs",
        slices_approx_equal(out.as_slice(), reference.as_slice()),
        None,
        format!("{}x{} output vs spmm_reference", m, n),
    );
    structural_checks(&mut outcomes, &cfg, &stats);
    SampleCheck {
        outcomes,
        maeri_full_bw: None,
        sigma_dense,
        predictor: None,
    }
}

fn check_sparse_dense_equiv(ms: usize, m: usize, n: usize, k: usize, seed: u64) -> SampleCheck {
    let mut outcomes = Vec::new();
    let (a, b) = operands(m, n, k, seed);
    let csr = CsrMatrix::from_dense(&a);

    let sparse_cfg = AcceleratorConfig::sigma_like(ms, ms);
    let mut sparse_sim = Stonne::new(sparse_cfg.clone()).expect("preset is valid");
    let (sparse_out, sparse_stats) = sparse_sim.run_spmm("fuzz_equiv", &csr, &b);

    let dense_cfg = AcceleratorConfig::maeri_like(ms, ms);
    let mut dense_sim = Stonne::new(dense_cfg.clone()).expect("preset is valid");
    let (dense_out, dense_stats) = dense_sim.run_gemm("fuzz_equiv", &a, &b);

    push(
        &mut outcomes,
        "sparse_dense_outputs",
        slices_approx_equal(sparse_out.as_slice(), dense_out.as_slice()),
        None,
        format!("{}x{} sparse vs dense outputs", m, n),
    );

    let hi = sparse_stats.cycles.max(dense_stats.cycles) as f64;
    let lo = sparse_stats.cycles.min(dense_stats.cycles).max(1) as f64;
    let factor = hi / lo;
    push(
        &mut outcomes,
        "sparse_dense_cycle_envelope",
        factor <= tol::SPARSE_VS_DENSE_CYCLE_FACTOR_MAX,
        Some((factor - 1.0) * 100.0),
        format!(
            "sparse {} vs dense {} cycles (factor {:.2})",
            sparse_stats.cycles, dense_stats.cycles, factor
        ),
    );

    let reference = gemm_reference(&a, &b);
    push(
        &mut outcomes,
        "functional_outputs",
        slices_approx_equal(sparse_out.as_slice(), reference.as_slice())
            && slices_approx_equal(dense_out.as_slice(), reference.as_slice()),
        None,
        format!("{}x{} both engines vs gemm_reference", m, n),
    );
    structural_checks(&mut outcomes, &sparse_cfg, &sparse_stats);
    structural_checks(&mut outcomes, &dense_cfg, &dense_stats);
    SampleCheck {
        outcomes,
        maeri_full_bw: None,
        sigma_dense: None,
        predictor: None,
    }
}

fn arch_config(arch: u8) -> AcceleratorConfig {
    match arch {
        0 => AcceleratorConfig::tpu_like(8),
        1 => AcceleratorConfig::maeri_like(64, 32),
        _ => AcceleratorConfig::sigma_like(64, 64),
    }
}

/// `SimStats` with the cache-observability counters zeroed, so a cached
/// replay can be compared field-for-field against a fresh simulation.
fn strip_cache_counters(stats: &SimStats) -> SimStats {
    let mut s = stats.clone();
    s.sim_cache_hits = 0;
    s.sim_cache_misses = 0;
    s.sim_cache_inserts = 0;
    s.engine_invocations = 0;
    s.tile_cache_hits = 0;
    s.tile_cache_misses = 0;
    s.tile_cache_assembled = 0;
    s
}

fn check_cache_replay(arch: u8, m: usize, n: usize, k: usize, seed: u64) -> SampleCheck {
    let mut outcomes = Vec::new();
    let (a, b) = operands(m, n, k, seed);
    let cfg = arch_config(arch);

    let cache = SimCache::new();
    let mut cached = Stonne::new(cfg.clone())
        .expect("preset is valid")
        .with_cache(cache);
    let (out_miss, stats_miss) = cached.run_gemm("fuzz_cache", &a, &b);
    let (out_hit, stats_hit) = cached.run_gemm("fuzz_cache", &a, &b);

    let mut uncached = Stonne::new(cfg.clone()).expect("preset is valid");
    let (out_fresh, stats_fresh) = uncached.run_gemm("fuzz_cache", &a, &b);

    let outputs_bitwise =
        out_miss.as_slice() == out_hit.as_slice() && out_miss.as_slice() == out_fresh.as_slice();
    let stats_equal = strip_cache_counters(&stats_miss) == strip_cache_counters(&stats_hit)
        && strip_cache_counters(&stats_miss) == strip_cache_counters(&stats_fresh);
    let hit_observed = stats_hit.sim_cache_hits == 1 && stats_hit.engine_invocations == 0;
    push(
        &mut outcomes,
        "cache_replay_bitwise",
        outputs_bitwise && stats_equal && hit_observed,
        None,
        format!(
            "outputs_bitwise {} stats_equal {} hit_observed {} (cycles {})",
            outputs_bitwise, stats_equal, hit_observed, stats_fresh.cycles
        ),
    );
    structural_checks(&mut outcomes, &cfg, &stats_fresh);
    SampleCheck {
        outcomes,
        maeri_full_bw: None,
        sigma_dense: None,
        predictor: None,
    }
}

/// Tile-grain memoization must be invisible: a run with the tile cache
/// enabled and a run with it disabled must produce byte-identical
/// outputs, statistics (tile bookkeeping stripped), cycle breakdowns,
/// and — under tracing — identical cycle-level span streams. A second
/// run on the warm shared context must replay tiles (hits observed,
/// nothing re-derived) without changing a byte.
fn check_tile_cache_bitwise(arch: u8, m: usize, n: usize, k: usize, seed: u64) -> SampleCheck {
    use stonne::core::trace;

    let mut outcomes = Vec::new();
    let (a, b) = operands(m, n, k, seed);
    let cfg = arch_config(arch);

    let run = |context: SimContext| {
        let mut sim = Stonne::new(cfg.clone())
            .expect("preset is valid")
            .with_context(context);
        sim.run_gemm("fuzz_tile", &a, &b)
    };
    let traced = |context: SimContext| {
        let mut sim = Stonne::new(cfg.clone())
            .expect("preset is valid")
            .with_context(context);
        trace::start(trace::DEFAULT_CAPACITY);
        let _ = sim.run_gemm("fuzz_tile", &a, &b);
        trace::finish().expect("trace was started")
    };

    let shared = SimContext::new();
    let (out_on, stats_on) = run(shared.clone());
    let (out_off, stats_off) = run(SimContext::disabled());
    let (out_warm, stats_warm) = run(shared);

    let outputs_bitwise =
        out_on.as_slice() == out_off.as_slice() && out_on.as_slice() == out_warm.as_slice();
    let stats_equal = strip_cache_counters(&stats_on) == strip_cache_counters(&stats_off)
        && strip_cache_counters(&stats_on) == strip_cache_counters(&stats_warm);
    let breakdown_equal =
        stats_on.breakdown == stats_off.breakdown && stats_on.cycles == stats_off.cycles;
    // Cold run derives records; the warm context replays them all.
    let records_flow = stats_on.tile_cache_misses > 0
        && stats_off.tile_cache_misses == 0
        && stats_off.tile_cache_hits == 0
        && stats_warm.tile_cache_hits > 0
        && stats_warm.tile_cache_misses == 0;
    // Tracing bypasses record replay (spans carry absolute cycles), so
    // the span streams must agree event-for-event either way.
    let trace_on = traced(SimContext::new());
    let trace_off = traced(SimContext::disabled());
    let traces_equal =
        trace_on.events() == trace_off.events() && trace_on.dropped() == trace_off.dropped();

    push(
        &mut outcomes,
        "tile_cache_bitwise",
        outputs_bitwise && stats_equal && breakdown_equal && records_flow && traces_equal,
        None,
        format!(
            "outputs_bitwise {} stats_equal {} breakdown_equal {} records_flow {} traces_equal {} \
             ({} cycles, {} cold misses, {} warm hits)",
            outputs_bitwise,
            stats_equal,
            breakdown_equal,
            records_flow,
            traces_equal,
            stats_on.cycles,
            stats_on.tile_cache_misses,
            stats_warm.tile_cache_hits
        ),
    );

    let reference = gemm_reference(&a, &b);
    push(
        &mut outcomes,
        "functional_outputs",
        slices_approx_equal(out_on.as_slice(), reference.as_slice()),
        None,
        format!("{}x{} output vs gemm_reference", m, n),
    );
    structural_checks(&mut outcomes, &cfg, &stats_on);
    SampleCheck {
        outcomes,
        maeri_full_bw: None,
        sigma_dense: None,
        predictor: None,
    }
}

fn check_pool(c: usize, hw: usize, window: usize, stride: usize, seed: u64) -> SampleCheck {
    let mut outcomes = Vec::new();
    let mut rng = SeededRng::new(seed ^ 0x9001);
    let input = Tensor4::random(1, c, hw, hw, &mut rng);
    let cfg = AcceleratorConfig::maeri_like(64, 64);
    let mut sim = Stonne::new(cfg.clone()).expect("preset is valid");
    let (out, stats) = sim.run_maxpool("fuzz_pool", &input, window, stride);

    let reference = maxpool2d_reference(&input, window, stride);
    push(
        &mut outcomes,
        "functional_outputs",
        out.as_slice() == reference.as_slice() && stats.cycles > 0,
        None,
        format!(
            "pool c{} hw{} w{} s{} vs maxpool2d_reference ({} cycles)",
            c, hw, window, stride, stats.cycles
        ),
    );
    structural_checks(&mut outcomes, &cfg, &stats);
    SampleCheck {
        outcomes,
        maeri_full_bw: None,
        sigma_dense: None,
        predictor: None,
    }
}

fn check_model_run(model: stonne::models::ModelId, arch: u8, seed: u64) -> SampleCheck {
    let mut outcomes = Vec::new();
    let arch = Arch::ALL[usize::from(arch) % Arch::ALL.len()];
    let spec = zoo::build(model, ModelScale::Tiny);
    let params = ModelParams::generate(&spec, seed);
    let input = generate_input(&spec, seed ^ 0xf00d);

    let serial = run_model_simulated_with(
        &spec,
        &params,
        &input,
        arch.config(),
        Arc::new(NaturalOrder),
        RunOptions::new(),
    )
    .expect("preset configs are valid");
    let parallel = run_model_simulated_with(
        &spec,
        &params,
        &input,
        arch.config(),
        Arc::new(NaturalOrder),
        RunOptions::new().parallel(),
    )
    .expect("preset configs are valid");

    let outputs_equal = serial.outputs == parallel.outputs;
    let totals_equal = serial.total == parallel.total;
    let layers_equal = serial.layers.len() == parallel.layers.len()
        && serial
            .layers
            .iter()
            .zip(&parallel.layers)
            .all(|(a, b)| a.stats == b.stats);
    let energy_equal = serial.energy == parallel.energy;
    push(
        &mut outcomes,
        "serial_parallel_equal",
        outputs_equal && totals_equal && layers_equal && energy_equal,
        None,
        format!(
            "{} on {}: outputs {} totals {} layers {} energy {} ({} cycles)",
            model.name(),
            arch.name(),
            outputs_equal,
            totals_equal,
            layers_equal,
            energy_equal,
            serial.total.cycles
        ),
    );
    // The checkpoint state hash deliberately excludes the runner-shaped
    // cache/engine counters, so it must agree across runners.
    let (hs, hp) = (serial.state_hash(), parallel.state_hash());
    push(
        &mut outcomes,
        "state_hash_stable",
        hs == hp,
        None,
        format!(
            "{} on {}: serial {hs:#018x} vs parallel {hp:#018x}",
            model.name(),
            arch.name()
        ),
    );
    structural_checks(&mut outcomes, &arch.config(), &serial.total);
    SampleCheck {
        outcomes,
        maeri_full_bw: None,
        sigma_dense: None,
        predictor: None,
    }
}

fn check_intra_layer_parallel(
    ms: usize,
    m: usize,
    n: usize,
    k: usize,
    workers: usize,
    seed: u64,
) -> SampleCheck {
    let mut outcomes = Vec::new();
    let (a, b) = operands(m, n, k, seed);
    // Half bandwidth exercises the stall paths too; both WS and OS walks
    // are fanned, IS transposes onto the WS path.
    let base = AcceleratorConfig::maeri_like(ms, (ms / 2).max(1));
    for dataflow in [
        stonne::core::Dataflow::WeightStationary,
        stonne::core::Dataflow::OutputStationary,
    ] {
        let mut cfg = base.clone();
        cfg.dataflow = dataflow;
        let mut serial_sim = Stonne::new(cfg.clone()).expect("preset is valid");
        let (serial_out, serial_stats) = serial_sim.run_gemm("fuzz_intra", &a, &b);
        let mut par_sim = Stonne::new(cfg.clone())
            .expect("preset is valid")
            .with_intra_tiles(workers);
        let (par_out, par_stats) = par_sim.run_gemm("fuzz_intra", &a, &b);

        let outputs_bitwise = serial_out.as_slice() == par_out.as_slice();
        let stats_equal = serial_stats == par_stats;
        push(
            &mut outcomes,
            "intra_serial_parallel_bitwise",
            outputs_bitwise && stats_equal,
            None,
            format!(
                "{dataflow:?} x{workers}: outputs_bitwise {} stats_equal {} ({} cycles)",
                outputs_bitwise, stats_equal, serial_stats.cycles
            ),
        );

        let reference = gemm_reference(&a, &b);
        push(
            &mut outcomes,
            "functional_outputs",
            slices_approx_equal(par_out.as_slice(), reference.as_slice()),
            None,
            format!("{}x{} fanned output vs gemm_reference", m, n),
        );
        structural_checks(&mut outcomes, &cfg, &par_stats);
    }
    SampleCheck {
        outcomes,
        maeri_full_bw: None,
        sigma_dense: None,
        predictor: None,
    }
}

#[allow(clippy::too_many_arguments)]
fn check_cluster_scenario(
    arch_a: u8,
    arch_b: u8,
    model: u8,
    requests: usize,
    batch: usize,
    priority_policy: bool,
    rate_deci: u32,
    seed: u64,
) -> SampleCheck {
    use stonne_cluster::{
        run_cluster, ClassSpec, ClusterRequest, ExecMode, InstanceSpec, ModelRef,
    };

    let mut outcomes = Vec::new();
    // Small heterogeneous presets keep a cluster sample in the same cost
    // band as a ModelRun sample (two tiny-model profiles per mode).
    let instance = |sel: u8| match sel % 3 {
        0 => InstanceSpec {
            arch: "tpu".into(),
            ms: 16,
            bw: 0,
        },
        1 => InstanceSpec {
            arch: "maeri".into(),
            ms: 64,
            bw: 32,
        },
        _ => InstanceSpec {
            arch: "sigma".into(),
            ms: 64,
            bw: 32,
        },
    };
    let models = ["squeezenet", "alexnet", "mobilenet", "bert"];
    let request = ClusterRequest {
        name: String::new(),
        instances: vec![instance(arch_a), instance(arch_b)],
        models: vec![ModelRef {
            name: models[usize::from(model) % models.len()].into(),
            scale: "tiny".into(),
        }],
        classes: vec![
            ClassSpec {
                name: "interactive".into(),
                weight: 1.0,
                priority: 1,
                sla_cycles: 0,
            },
            ClassSpec {
                name: "batch".into(),
                weight: 2.0,
                priority: 0,
                sla_cycles: 0,
            },
        ],
        requests,
        rates: vec![f64::from(rate_deci) / 10.0],
        batch,
        policy: if priority_policy {
            "priority".into()
        } else {
            String::new()
        },
        seed,
        sparsity: None,
        // One narrow channel so the arbiter actually serializes traffic.
        dram: Some(stonne_cluster::DramSpec {
            channels: 1,
            bandwidth_gbps: 8.0,
            latency_cycles: 0,
        }),
    };

    let serial =
        run_cluster(&request, &SimCache::new(), ExecMode::Serial).expect("generated request valid");
    let pool =
        run_cluster(&request, &SimCache::new(), ExecMode::Pool).expect("generated request valid");

    let bytes_equal = serial.report.render() == pool.report.render();
    let records_equal = serial.per_request == pool.per_request;
    let scenario = &serial.report.scenarios[0];
    let l = &scenario.latency;
    let percentiles_ordered = l.p50 <= l.p95 && l.p95 <= l.p99 && l.p99 <= l.max;
    let class_counts: usize = scenario.classes.iter().map(|c| c.latency.count).sum();
    let contention_surfaced = scenario
        .instances
        .iter()
        .all(|i| i.stats.dram_contention_cycles == i.dram_wait_cycles);
    push(
        &mut outcomes,
        "cluster_serial_parallel_bitwise",
        bytes_equal
            && records_equal
            && percentiles_ordered
            && class_counts == requests
            && contention_surfaced,
        None,
        format!(
            "{} req: bytes {} records {} percentiles {} classes {}/{} contention {} ({} cycles makespan)",
            requests,
            bytes_equal,
            records_equal,
            percentiles_ordered,
            class_counts,
            requests,
            contention_surfaced,
            scenario.makespan_cycles
        ),
    );
    SampleCheck {
        outcomes,
        maeri_full_bw: None,
        sigma_dense: None,
        predictor: None,
    }
}

/// Checkpoint a tiny full-model run every `every` layer boundaries,
/// interrupt it by deleting the newer checkpoints, resume, and demand
/// the resumed run be bitwise-identical to an uninterrupted one.
fn check_checkpoint_resume(
    model: stonne::models::ModelId,
    arch: u8,
    every: usize,
    seed: u64,
) -> SampleCheck {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

    let mut outcomes = Vec::new();
    let arch = Arch::ALL[usize::from(arch) % Arch::ALL.len()];
    let spec = zoo::build(model, ModelScale::Tiny);
    let params = ModelParams::generate(&spec, seed);
    let input = generate_input(&spec, seed ^ 0xf00d);
    let run = |options: RunOptions| {
        run_model_simulated_with(
            &spec,
            &params,
            &input,
            arch.config(),
            Arc::new(NaturalOrder),
            options,
        )
        .expect("preset configs are valid")
    };

    // Unique scratch dir per invocation: concurrent test threads may
    // check the same workload with the same seed.
    let dir = std::env::temp_dir().join(format!(
        "stonne-verify-ckpt-{}-{}",
        std::process::id(),
        NEXT_DIR.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let straight = run(RunOptions::new());
    let checkpointed = run(RunOptions::new().checkpoint_every(every, &dir));

    // Interrupt: keep only the oldest checkpoint so the resume actually
    // re-executes the tail of the model.
    let mut ckpts: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .map(|rd| rd.filter_map(Result::ok).map(|e| e.path()).collect())
        .unwrap_or_default();
    ckpts.sort();
    let kept = ckpts.len().min(1);
    for stale in ckpts.iter().skip(kept) {
        let _ = std::fs::remove_file(stale);
    }
    let resumed = run(RunOptions::new().resume_from(&dir));
    let _ = std::fs::remove_dir_all(&dir);

    let ckpt_equal = straight.outputs == checkpointed.outputs
        && straight.report_json() == checkpointed.report_json()
        && straight.state_hash() == checkpointed.state_hash();
    let resume_equal = straight.outputs == resumed.outputs
        && straight.report_json() == resumed.report_json()
        && straight.state_hash() == resumed.state_hash();
    push(
        &mut outcomes,
        "resume_vs_straight_bitwise",
        ckpt_equal && resume_equal && !ckpts.is_empty(),
        None,
        format!(
            "{} on {} every {}: checkpointed_equal {} resumed_equal {} ({} checkpoints, {} cycles)",
            model.name(),
            arch.name(),
            every,
            ckpt_equal,
            resume_equal,
            ckpts.len(),
            straight.total.cycles
        ),
    );
    structural_checks(&mut outcomes, &arch.config(), &resumed.total);
    SampleCheck {
        outcomes,
        maeri_full_bw: None,
        sigma_dense: None,
        predictor: None,
    }
}

/// Run a nested cheap-space campaign monolithically and as shards, and
/// demand the merged report be byte-identical to the monolithic one.
fn check_shard_merge(samples: u64, seed_offset: u64, shards: u64, seed: u64) -> SampleCheck {
    use crate::campaign::{merge_shards, run_campaign, run_shard, CampaignConfig, SampleSpace};
    use crate::report::ShardReport;

    let mut outcomes = Vec::new();
    let inner = CampaignConfig {
        samples,
        seed: seed ^ seed_offset,
        shrink: false,
        space: SampleSpace::Cheap,
    };
    let mono = run_campaign(inner);
    // Round-trip each shard through its JSON artifact, exactly as the
    // CLI does between processes.
    let shard_reports: Result<Vec<ShardReport>, String> = (0..shards)
        .map(|i| ShardReport::from_json(&run_shard(inner, i, shards).to_json()))
        .collect();
    let (bytes_equal, detail_tail) = match shard_reports.and_then(|s| merge_shards(&s)) {
        Ok(merged) => (
            merged.canonical_json() == mono.canonical_json(),
            format!("mono_failures {}", mono.total_failures),
        ),
        Err(e) => (false, format!("merge error: {e}")),
    };
    push(
        &mut outcomes,
        "shard_merge_bitwise",
        bytes_equal && mono.samples == samples,
        None,
        format!(
            "{samples} samples over {shards} shards: bytes_equal {bytes_equal} ({detail_tail})"
        ),
    );
    SampleCheck {
        outcomes,
        maeri_full_bw: None,
        sigma_dense: None,
        predictor: None,
    }
}

/// Label a held-out workload with the exact engine and demand the
/// committed predictor artifact land within the regime tolerance —
/// near-exact where the analytical prior mirrors the engine walk, within
/// the learner ceiling where the boosted stumps carry the correction —
/// and that a miniature re-train is byte-deterministic on this host.
#[allow(clippy::too_many_arguments)]
fn check_predictor_holdout(
    class_sel: u8,
    ms: usize,
    m: usize,
    n: usize,
    k: usize,
    sparsity_pct: u32,
    learner: bool,
    seed: u64,
) -> SampleCheck {
    use stonne::core::predict::CyclePredictor;
    use stonne::predict::{prior_mirrored, train, Model, TrainConfig};

    let mut outcomes = Vec::new();
    let mut rng = SeededRng::new(seed ^ 0x9ed1);
    let bw = (ms / 4).max(1);
    let (cfg, features, exact) = match class_sel % 3 {
        0 => {
            let cfg = AcceleratorConfig::tpu_like(ms);
            let a = Matrix::random(m, k, &mut rng);
            let b = Matrix::random(k, n, &mut rng);
            let f = stonne::core::gemm_features(&cfg, &a, &b);
            let mut sim = Stonne::new(cfg.clone()).expect("preset is valid");
            let (_, stats) = sim.run_gemm("fuzz_predict", &a, &b);
            (cfg, f, stats.cycles)
        }
        1 => {
            let mut cfg = AcceleratorConfig::maeri_like(ms, bw);
            if learner {
                cfg.dataflow = stonne::core::Dataflow::OutputStationary;
            }
            let a = Matrix::random(m, k, &mut rng);
            let b = Matrix::random(k, n, &mut rng);
            let f = stonne::core::gemm_features(&cfg, &a, &b);
            let mut sim = Stonne::new(cfg.clone()).expect("preset is valid");
            let (_, stats) = sim.run_gemm("fuzz_predict", &a, &b);
            (cfg, f, stats.cycles)
        }
        _ => {
            let mut cfg = AcceleratorConfig::sigma_like(ms, bw);
            if learner {
                cfg.exploit_activation_sparsity = true;
            }
            let a = Matrix::random_sparse(m, k, f64::from(sparsity_pct) / 100.0, &mut rng);
            let b = Matrix::random(k, n, &mut rng);
            let csr = CsrMatrix::from_dense(&a);
            let f = stonne::core::spmm_features(&cfg, &csr, &b);
            let mut sim = Stonne::new(cfg.clone()).expect("preset is valid");
            let (_, stats) = sim.run_spmm("fuzz_predict", &csr, &b);
            (cfg, f, stats.cycles)
        }
    };
    let _ = cfg;

    let predicted = Model::committed().predict_cycles(&features);
    let mirrored = prior_mirrored(&features);
    let d = divergence_pct(predicted, exact.max(1));
    let limit = if mirrored {
        tol::PREDICTOR_MIRRORED_MAX_PCT
    } else {
        tol::PREDICTOR_SAMPLE_MAX_PCT
    };
    push(
        &mut outcomes,
        "predictor_error_bounded",
        d.abs() <= limit,
        Some(d),
        format!(
            "predicted {} vs exact {} ({:+.2}%, {} regime, limit {:.0}%)",
            predicted,
            exact,
            d,
            if mirrored { "mirrored" } else { "learner" },
            limit
        ),
    );

    // Two miniature training campaigns from a sample-derived seed must
    // produce byte-identical artifacts — the same contract CI enforces
    // on the committed campaign, exercised continuously at fuzz scale.
    let tiny = TrainConfig {
        samples: 10,
        seed: seed ^ 0x7a17,
        rounds: 3,
        shrinkage_pct: 30,
        bound_cpct: u64::MAX,
    };
    let (model_a, report_a) = train(&tiny);
    let (model_b, report_b) = train(&tiny);
    let models_equal = model_a.to_json() == model_b.to_json();
    let reports_equal = report_a.canonical_json() == report_b.canonical_json();
    push(
        &mut outcomes,
        "predictor_train_deterministic",
        models_equal && reports_equal,
        None,
        format!(
            "seed {:#x}: model_bytes_equal {} report_bytes_equal {} ({} stumps)",
            tiny.seed,
            models_equal,
            reports_equal,
            model_a.stumps.len()
        ),
    );

    SampleCheck {
        outcomes,
        maeri_full_bw: None,
        sigma_dense: None,
        predictor: Some(d),
    }
}

/// Runs every applicable oracle on one workload. `seed` must be the
/// sample seed from [`crate::gen::sample_seed`] so operand data is
/// deterministic per sample.
pub fn check_workload(workload: &Workload, seed: u64) -> SampleCheck {
    match *workload {
        Workload::SystolicGemm { dim, m, n, k } => check_systolic(dim, m, n, k, seed),
        Workload::FlexibleGemm { ms, m, n, k } => check_flexible(ms, m, n, k, seed),
        Workload::SparseSpmm {
            ms,
            m,
            n,
            k,
            sparsity_pct,
        } => check_sparse_spmm(ms, m, n, k, sparsity_pct, seed),
        Workload::SparseDenseEquiv { ms, m, n, k } => check_sparse_dense_equiv(ms, m, n, k, seed),
        Workload::CacheReplay { arch, m, n, k } => check_cache_replay(arch, m, n, k, seed),
        Workload::TileCacheBitwise { arch, m, n, k } => {
            check_tile_cache_bitwise(arch, m, n, k, seed)
        }
        Workload::Pool {
            c,
            hw,
            window,
            stride,
        } => check_pool(c, hw, window, stride, seed),
        Workload::ModelRun { model, arch } => check_model_run(model, arch, seed),
        Workload::ClusterScenario {
            arch_a,
            arch_b,
            model,
            requests,
            batch,
            priority_policy,
            rate_deci,
        } => check_cluster_scenario(
            arch_a,
            arch_b,
            model,
            requests,
            batch,
            priority_policy,
            rate_deci,
            seed,
        ),
        Workload::IntraLayerParallel {
            ms,
            m,
            n,
            k,
            workers,
        } => check_intra_layer_parallel(ms, m, n, k, workers, seed),
        Workload::CheckpointResume { model, arch, every } => {
            check_checkpoint_resume(model, arch, every, seed)
        }
        Workload::ShardMerge {
            samples,
            seed_offset,
            shards,
        } => check_shard_merge(samples, seed_offset, shards, seed),
        Workload::PredictorHoldout {
            class_sel,
            ms,
            m,
            n,
            k,
            sparsity_pct,
            learner,
        } => check_predictor_holdout(class_sel, ms, m, n, k, sparsity_pct, learner, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systolic_oracle_accepts_the_engine() {
        let w = Workload::SystolicGemm {
            dim: 8,
            m: 12,
            n: 9,
            k: 17,
        };
        let r = check_workload(&w, 0xabcd);
        assert!(r.outcomes.iter().all(|o| o.passed), "{:?}", r.outcomes);
    }

    #[test]
    fn cache_replay_oracle_accepts_the_engine() {
        for arch in 0..3u8 {
            let w = Workload::CacheReplay {
                arch,
                m: 9,
                n: 7,
                k: 13,
            };
            let r = check_workload(&w, 0x77);
            assert!(r.outcomes.iter().all(|o| o.passed), "{:?}", r.outcomes);
        }
    }

    #[test]
    fn tile_cache_oracle_accepts_the_engine() {
        for arch in 0..3u8 {
            let w = Workload::TileCacheBitwise {
                arch,
                m: 11,
                n: 9,
                k: 21,
            };
            let r = check_workload(&w, 0x711e);
            assert!(
                r.outcomes.iter().all(|o| o.passed),
                "arch {arch}: {:?}",
                r.outcomes
            );
        }
    }

    #[test]
    fn cluster_oracle_accepts_the_engine() {
        let w = Workload::ClusterScenario {
            arch_a: 1,
            arch_b: 0,
            model: 0,
            requests: 6,
            batch: 2,
            priority_policy: true,
            rate_deci: 20,
        };
        let r = check_workload(&w, 0x5eed);
        assert!(r.outcomes.iter().all(|o| o.passed), "{:?}", r.outcomes);
    }

    #[test]
    fn intra_layer_parallel_oracle_accepts_the_engine() {
        for workers in [2, 4, 8] {
            let w = Workload::IntraLayerParallel {
                ms: 32,
                m: 24,
                n: 11,
                k: 40,
                workers,
            };
            let r = check_workload(&w, 0x1f2e);
            assert!(r.outcomes.iter().all(|o| o.passed), "{:?}", r.outcomes);
        }
    }

    #[test]
    fn checkpoint_resume_oracle_accepts_the_engine() {
        let w = Workload::CheckpointResume {
            model: stonne::models::ModelId::SqueezeNet,
            arch: 1,
            every: 2,
        };
        let r = check_workload(&w, 0xc0de);
        assert!(r.outcomes.iter().all(|o| o.passed), "{:?}", r.outcomes);
        assert!(r
            .outcomes
            .iter()
            .any(|o| o.oracle == "resume_vs_straight_bitwise"));
    }

    #[test]
    fn shard_merge_oracle_accepts_the_engine() {
        let w = Workload::ShardMerge {
            samples: 6,
            seed_offset: 0x1234,
            shards: 3,
        };
        let r = check_workload(&w, 0xbeef);
        assert!(r.outcomes.iter().all(|o| o.passed), "{:?}", r.outcomes);
    }

    #[test]
    fn predictor_holdout_oracle_accepts_the_committed_model() {
        // One sample per (class, regime) pair the generator can emit.
        let cases = [
            (0u8, 8usize, 0u32, false),
            (1, 64, 0, false),
            (1, 64, 0, true),
            (2, 64, 30, false),
            (2, 64, 30, true),
        ];
        for (class_sel, ms, sparsity_pct, learner) in cases {
            let w = Workload::PredictorHoldout {
                class_sel,
                ms,
                m: 24,
                n: 18,
                k: 32,
                sparsity_pct,
                learner,
            };
            let r = check_workload(&w, 0x9ed1c7);
            assert!(
                r.outcomes.iter().all(|o| o.passed),
                "class {class_sel} learner {learner}: {:?}",
                r.outcomes
            );
            assert!(r.predictor.is_some(), "sample must feed the average check");
        }
    }

    #[test]
    #[ignore = "diagnostic: prints committed-predictor divergence extremes over the fuzz space"]
    fn debug_predictor_divergence_spread() {
        let mut worst_mirrored = 0.0f64;
        let mut worst_learner = 0.0f64;
        let mut sum = 0.0f64;
        let mut count = 0u64;
        for i in 0..400u64 {
            let w = crate::gen::generate(0x9ed1, i);
            let Workload::PredictorHoldout { learner, .. } = w else {
                continue;
            };
            let seed = crate::gen::sample_seed(0x9ed1, i);
            let r = check_workload(&w, seed);
            let d = r.predictor.expect("holdout samples measure divergence");
            sum += d.abs();
            count += 1;
            if learner {
                worst_learner = worst_learner.max(d.abs());
            } else {
                worst_mirrored = worst_mirrored.max(d.abs());
            }
            if d.abs() > 100.0 {
                println!("  outlier i={i} {w:?}: {d:+.2}%");
            }
        }
        println!(
            "predictor divergence over {count} samples: avg {:.2}% worst mirrored {:.4}% worst learner {:.2}%",
            sum / count.max(1) as f64,
            worst_mirrored,
            worst_learner
        );
    }

    #[test]
    fn model_run_oracle_pins_the_state_hash_across_runners() {
        let w = Workload::ModelRun {
            model: stonne::models::ModelId::SqueezeNet,
            arch: 0,
        };
        let r = check_workload(&w, 0x31337);
        let hash = r
            .outcomes
            .iter()
            .find(|o| o.oracle == "state_hash_stable")
            .expect("oracle applies to model runs");
        assert!(hash.passed, "{}", hash.detail);
    }

    #[test]
    fn sparse_dense_equivalence_holds() {
        let w = Workload::SparseDenseEquiv {
            ms: 64,
            m: 10,
            n: 6,
            k: 24,
        };
        let r = check_workload(&w, 0x11);
        assert!(r.outcomes.iter().all(|o| o.passed), "{:?}", r.outcomes);
    }
}
