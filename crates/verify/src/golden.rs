//! Golden regression fixtures for the paper's figures and tables.
//!
//! Small-scale (`ModelScale::Tiny`) runs of fig1, fig5, fig7 and table5
//! are serialized to `tests/golden/*.json` and compared byte-for-byte on
//! every test run: any cycle or energy drift becomes an explicit fixture
//! diff in review instead of a silent change. Re-bless intentionally
//! changed numbers with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p stonne-verify --test golden_fixtures
//! ```
//!
//! The fixture schema is integer-only (cycles as `u64`, energy rounded to
//! nanojoules, utilization in parts-per-million, average filter counts in
//! thousandths) so the bytes cannot depend on a serializer's float
//! formatting.

use std::path::PathBuf;

use serde::{Deserialize, Serialize};
use stonne::core::CycleBreakdown;
use stonne::energy::EnergyBreakdown;
use stonne::models::{ModelId, ModelScale};
use stonne_bench::fig1::{fig1a, fig1b, fig1c, Fig1Row};
use stonne_bench::fig5::{run_one, Arch};
use stonne_bench::fig7::fig7;
use stonne_bench::table5::table5;

/// The fixed seed every fixture run uses (matches the fig5 sweep seed).
pub const GOLDEN_SEED: u64 = 21;

/// One comparison point of the fig1 fixture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenFig1Row {
    /// Sub-figure tag (`fig1a` / `fig1b` / `fig1c`).
    pub section: String,
    /// Layer label.
    pub layer: String,
    /// Swept parameter value.
    pub param: String,
    /// Cycle-level simulator cycles.
    pub stonne_cycles: u64,
    /// Analytical model cycles.
    pub analytical_cycles: u64,
}

/// Energy breakdown rounded to integer nanojoules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenEnergyNj {
    /// Global-Buffer energy (nJ).
    pub gb_nj: u64,
    /// Distribution-network energy (nJ).
    pub dn_nj: u64,
    /// Multiplier-network energy (nJ).
    pub mn_nj: u64,
    /// Reduction-network energy (nJ).
    pub rn_nj: u64,
    /// DRAM energy (nJ).
    pub dram_nj: u64,
    /// Static energy (nJ).
    pub static_nj: u64,
}

impl GoldenEnergyNj {
    fn from_uj(e: &EnergyBreakdown) -> Self {
        let nj = |uj: f64| (uj * 1000.0).round() as u64;
        GoldenEnergyNj {
            gb_nj: nj(e.gb_uj),
            dn_nj: nj(e.dn_uj),
            mn_nj: nj(e.mn_uj),
            rn_nj: nj(e.rn_uj),
            dram_nj: nj(e.dram_uj),
            static_nj: nj(e.static_uj),
        }
    }
}

/// One (model, architecture) point of the fig5 fixture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenFig5Row {
    /// Model name.
    pub model: String,
    /// Architecture name.
    pub arch: String,
    /// Total inference cycles.
    pub cycles: u64,
    /// Per-component energy in nanojoules.
    pub energy_nj: GoldenEnergyNj,
    /// Multiplier utilization in parts-per-million.
    pub utilization_ppm: u64,
    /// Per-phase cycle split (integer buckets sum to `cycles`).
    pub breakdown: CycleBreakdown,
}

/// One model row of the fig7 fixture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenFig7Row {
    /// Model name.
    pub model: String,
    /// Average whole filters mappable, in thousandths.
    pub avg_filters_milli: u64,
    /// First-layer filter sizes.
    pub first_layer_sizes: Vec<usize>,
}

fn render_json<T: Serialize>(rows: &T) -> String {
    let mut s = serde_json::to_string_pretty(rows).expect("fixture serializes");
    s.push('\n');
    s
}

fn fig1_fixture() -> String {
    fn tag(section: &'static str, rows: Vec<Fig1Row>) -> impl Iterator<Item = GoldenFig1Row> {
        rows.into_iter().map(move |r| GoldenFig1Row {
            section: section.to_owned(),
            layer: r.layer,
            param: r.param,
            stonne_cycles: r.stonne_cycles,
            analytical_cycles: r.analytical_cycles,
        })
    }
    let rows: Vec<GoldenFig1Row> = tag("fig1a", fig1a(ModelScale::Tiny, &[8, 16]))
        .chain(tag("fig1b", fig1b(ModelScale::Tiny, &[128, 32])))
        .chain(tag("fig1c", fig1c(ModelScale::Tiny, &[0.0, 0.9])))
        .collect();
    render_json(&rows)
}

/// The two models the fig5 fixture pins (cheap at Tiny scale but cover a
/// CNN and a pruned CNN; the full seven-model sweep stays a bench).
const FIG5_FIXTURE_MODELS: [ModelId; 2] = [ModelId::SqueezeNet, ModelId::AlexNet];

fn fig5_fixture() -> String {
    let mut rows = Vec::new();
    for model in FIG5_FIXTURE_MODELS {
        for arch in Arch::ALL {
            let r = run_one(model, arch, ModelScale::Tiny, GOLDEN_SEED);
            rows.push(GoldenFig5Row {
                model: model.name().to_owned(),
                arch: arch.name().to_owned(),
                cycles: r.cycles,
                energy_nj: GoldenEnergyNj::from_uj(&r.energy),
                utilization_ppm: (r.utilization * 1e6).round() as u64,
                breakdown: r.breakdown,
            });
        }
    }
    render_json(&rows)
}

fn fig7_fixture() -> String {
    let rows: Vec<GoldenFig7Row> = fig7(ModelScale::Tiny, 256)
        .into_iter()
        .map(|r| GoldenFig7Row {
            model: r.model.name().to_owned(),
            avg_filters_milli: (r.avg_filters * 1000.0).round() as u64,
            first_layer_sizes: r.first_layer_sizes,
        })
        .collect();
    render_json(&rows)
}

fn table5_fixture() -> String {
    // Table5Row is already integer-only; serialize it directly.
    render_json(&table5())
}

/// A named golden fixture and its renderer.
pub struct GoldenFixture {
    /// Fixture file name under `tests/golden/`.
    pub name: &'static str,
    render: fn() -> String,
}

impl GoldenFixture {
    /// Regenerates the fixture content from the current engines.
    pub fn render(&self) -> String {
        (self.render)()
    }
}

/// All golden fixtures, in check order.
pub fn fixtures() -> Vec<GoldenFixture> {
    vec![
        GoldenFixture {
            name: "fig1.json",
            render: fig1_fixture,
        },
        GoldenFixture {
            name: "fig5.json",
            render: fig5_fixture,
        },
        GoldenFixture {
            name: "fig7.json",
            render: fig7_fixture,
        },
        GoldenFixture {
            name: "table5.json",
            render: table5_fixture,
        },
    ]
}

/// Absolute path of a fixture file (`tests/golden/<name>` at the repo
/// root).
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

/// Outcome of a fixture check.
#[derive(Debug, PartialEq, Eq)]
pub enum GoldenStatus {
    /// Fixture file matched the regenerated content byte-for-byte.
    Matched,
    /// `UPDATE_GOLDEN=1` was set and the fixture file was (re)written.
    Blessed,
}

/// Compares a fixture against its committed file, or re-blesses it when
/// `UPDATE_GOLDEN=1` is set in the environment.
///
/// # Errors
///
/// Returns a human-readable message when the file is missing or its
/// bytes differ from the regenerated content.
pub fn verify_fixture(fixture: &GoldenFixture) -> Result<GoldenStatus, String> {
    let path = golden_path(fixture.name);
    let rendered = fixture.render();
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir:?}: {e}"))?;
        }
        std::fs::write(&path, &rendered).map_err(|e| format!("writing {path:?}: {e}"))?;
        return Ok(GoldenStatus::Blessed);
    }
    let committed = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "golden fixture {path:?} unreadable ({e}); \
             bless it with UPDATE_GOLDEN=1 cargo test -p stonne-verify --test golden_fixtures"
        )
    })?;
    if committed == rendered {
        return Ok(GoldenStatus::Matched);
    }
    let first_diff = committed
        .lines()
        .zip(rendered.lines())
        .enumerate()
        .find(|(_, (a, b))| a != b)
        .map(|(i, (a, b))| format!("line {}: committed `{a}` vs regenerated `{b}`", i + 1))
        .unwrap_or_else(|| "files differ in length".to_owned());
    Err(format!(
        "golden fixture {} drifted ({first_diff}); if the change is intentional, \
         re-bless with UPDATE_GOLDEN=1 and review the diff",
        fixture.name
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_roster_is_stable() {
        let names: Vec<&str> = fixtures().iter().map(|f| f.name).collect();
        assert_eq!(
            names,
            ["fig1.json", "fig5.json", "fig7.json", "table5.json"]
        );
    }

    #[test]
    fn table5_fixture_is_integer_only_and_deterministic() {
        let a = table5_fixture();
        let b = table5_fixture();
        assert_eq!(a, b);
        assert!(!a.contains('.'), "unexpected float in fixture: {a}");
    }
}
