//! Cross-platform determinism manifest: checkpoint state hashes of a
//! fixed roster of full-model runs.
//!
//! `verify state-hash` writes this manifest, and CI's cross-architecture
//! reproducibility leg byte-diffs it between the x86 and aarch64 jobs:
//! the checkpoint [`stonne::core::StateHash`] digests outputs, per-layer
//! statistics and energy, so two architectures that agree on every hash
//! agree on every simulated number — a far stronger claim than "the
//! tests pass on both".

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use stonne::core::NaturalOrder;
use stonne::models::{zoo, ModelId, ModelScale};
use stonne::nn::params::{generate_input, ModelParams};
use stonne::nn::runner::{run_model_simulated_with, RunOptions};
use stonne_bench::fig5::Arch;

/// Schema tag of the manifest artifact.
pub const STATE_HASH_SCHEMA: &str = "stonne-state-hash/1";

/// One (model, architecture) run and its checkpoint state hash.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateHashEntry {
    /// Zoo model name.
    pub model: String,
    /// Architecture preset name.
    pub arch: String,
    /// `StateHash` of the completed run, as a hex literal.
    pub state_hash: String,
}

/// The manifest: every entry of the fixed roster, in roster order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateHashManifest {
    /// Always [`STATE_HASH_SCHEMA`].
    pub schema: String,
    /// Seed the parameters and inputs were generated from.
    pub seed: u64,
    /// One entry per (model, architecture) pair.
    pub entries: Vec<StateHashEntry>,
}

impl StateHashManifest {
    /// Pretty JSON of the manifest. Fully deterministic — there is no
    /// wall-time field to exclude.
    ///
    /// # Panics
    ///
    /// Never panics in practice (all fields serialize).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("manifest serializes");
        s.push('\n');
        s
    }
}

/// The models of the manifest roster — the same cheap tiny-scale zoo
/// slice the fuzz campaign's full-model classes draw from.
const ROSTER: [ModelId; 4] = [
    ModelId::MobileNetV1,
    ModelId::SqueezeNet,
    ModelId::AlexNet,
    ModelId::Bert,
];

/// Runs one tiny-scale model serially and returns its manifest entry.
fn entry(model: ModelId, arch: Arch, seed: u64) -> StateHashEntry {
    let spec = zoo::build(model, ModelScale::Tiny);
    let params = ModelParams::generate(&spec, seed);
    let input = generate_input(&spec, seed ^ 0xf00d);
    let run = run_model_simulated_with(
        &spec,
        &params,
        &input,
        arch.config(),
        Arc::new(NaturalOrder),
        RunOptions::new(),
    )
    .expect("preset configs are valid");
    StateHashEntry {
        model: model.name().to_owned(),
        arch: arch.name().to_owned(),
        state_hash: format!("{:#018x}", run.state_hash()),
    }
}

/// Builds the full manifest: every roster model on every architecture
/// preset, serially, at `ModelScale::Tiny`.
pub fn state_hash_manifest(seed: u64) -> StateHashManifest {
    let mut entries = Vec::with_capacity(ROSTER.len() * Arch::ALL.len());
    for model in ROSTER {
        for arch in Arch::ALL {
            entries.push(entry(model, arch, seed));
        }
    }
    StateHashManifest {
        schema: STATE_HASH_SCHEMA.to_owned(),
        seed,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_entry_is_deterministic_and_well_formed() {
        let a = entry(ModelId::SqueezeNet, Arch::ALL[0], 7);
        let b = entry(ModelId::SqueezeNet, Arch::ALL[0], 7);
        assert_eq!(a, b);
        assert!(a.state_hash.starts_with("0x"), "{:?}", a.state_hash);
        assert_eq!(a.state_hash.len(), 18, "{:?}", a.state_hash);
        // A different seed moves the hash: the manifest actually pins
        // the simulated numbers, not just the code path.
        let c = entry(ModelId::SqueezeNet, Arch::ALL[0], 8);
        assert_ne!(a.state_hash, c.state_hash);
    }

    #[test]
    fn manifest_json_is_stable_and_tagged() {
        let m = StateHashManifest {
            schema: STATE_HASH_SCHEMA.to_owned(),
            seed: 7,
            entries: vec![StateHashEntry {
                model: "squeezenet".into(),
                arch: "tpu".into(),
                state_hash: "0x0123456789abcdef".into(),
            }],
        };
        let json = m.to_json();
        assert!(json.contains(STATE_HASH_SCHEMA));
        let back: StateHashManifest = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, m);
    }
}
