//! The single source of truth for every divergence threshold the
//! workspace asserts.
//!
//! The paper states each validation claim as a tolerance ("1.03 % average
//! difference at full bandwidth", "perfect match on dense executions").
//! Those numbers used to be hard-coded inside
//! `tests/analytical_divergence.rs`; they now live here so the fuzz
//! oracles ([`crate::oracle`]) and the figure-level regression tests
//! assert the *same* bands — a threshold loosened for one consumer is
//! loosened for both, visibly, in one diff.
//!
//! Constants ending in `_MAX_PCT` are upper bounds on divergence,
//! `_MIN_PCT` are lower bounds (claims that the analytical model *must*
//! underestimate), and `_CPCT` values are integer centi-percent used in
//! the machine-readable `verify_report.json`.

/// Fig. 1a: a rigid systolic array diverges from the SCALE-Sim-style
/// analytical model by at most this much on any single layer.
pub const SYSTOLIC_VS_SCALESIM_MAX_PCT: f64 = 12.0;

/// Per-tile cycle overhead of the systolic engine over the SCALE-Sim
/// closed form: two fill cycles (command + edge injection) and two drain
/// cycles. At full bandwidth the engine is *exactly*
/// `scalesim_os_cycles + SYSTOLIC_TILE_OVERHEAD_CYCLES × tiles`, which is
/// the sharpest oracle in the harness.
pub const SYSTOLIC_TILE_OVERHEAD_CYCLES: u64 = 4;

/// Fig. 1b: average |divergence| of the flexible engine from the MAERI
/// analytical model at full bandwidth, over a set of layers.
pub const MAERI_FULL_BW_AVG_MAX_PCT: f64 = 15.0;

/// Fig. 1b: a single full-bandwidth sample may diverge by at most this
/// much (the per-sample fuzz band; looser than the average band because
/// single awkward shapes fold worse than the Fig. 1 layer mix).
pub const MAERI_FULL_BW_SAMPLE_MAX_PCT: f64 = 40.0;

/// Minimum GEMM K for the per-sample MAERI band to apply. Below this the
/// fold count is so small that fixed fill/drain overheads dominate and
/// the analytical model's steady-state assumption is meaningless (K = 1
/// shapes diverge by ~90 % while K ≥ 4 shapes stay under ~25 %).
pub const MAERI_BAND_MIN_K: usize = 4;

/// Fig. 1b: at a quarter of the full bandwidth the analytical model must
/// underestimate by at least this much more than at full bandwidth.
pub const MAERI_LOW_BW_EXCESS_MIN_PCT: f64 = 30.0;

/// Fig. 1b: the worst low-bandwidth layer must exceed this divergence
/// (the paper reports up to ~400 %).
pub const MAERI_LOW_BW_WORST_MIN_PCT: f64 = 100.0;

/// Fig. 1c: average |divergence| of the sparse engine from the SIGMA
/// analytical model on dense (0 % sparsity) executions.
pub const SIGMA_DENSE_AVG_MAX_PCT: f64 = 2.0;

/// Fig. 1c: a single dense sample may diverge from the SIGMA model by at
/// most this much, *when K divides the multiplier count* so rows pack the
/// array without fragmentation (the model's stated assumption — the
/// generator only emits such shapes for dense SpMM samples, and the
/// oracle re-checks the predicate before asserting the band). On
/// clean-packing shapes the engine matches the model exactly, so this
/// band is nearly as sharp as the systolic one.
pub const SIGMA_DENSE_SAMPLE_MAX_PCT: f64 = 2.0;

/// Fig. 1c: at 90 % sparsity the analytical model must underestimate by
/// at least this much on average.
pub const SIGMA_SPARSE90_MIN_PCT: f64 = 5.0;

/// Sparse engine at 0 % sparsity vs the dense flexible engine on the same
/// multiplier count and bandwidth: the cycle counts may differ by the
/// engines' different scheduling, but stay within this factor of each
/// other in both directions.
pub const SPARSE_VS_DENSE_CYCLE_FACTOR_MAX: f64 = 4.0;

/// Committed cycle predictor on a *prior-mirrored* held-out sample
/// (systolic, weight-stationary flexible, metadata-mirrored sparse): the
/// prior replays the engine's cycle walk exactly, so the predictor may
/// deviate only by the log/exp round-trip of the residual path — well
/// under a cycle in practice, bounded at 1 % for integer-rounding slack.
pub const PREDICTOR_MIRRORED_MAX_PCT: f64 = 1.0;

/// Committed cycle predictor on a *learner-regime* held-out sample
/// (output-stationary flexible, activation-sparsity sparse): the prior is
/// first-order and the boosted stumps carry the correction, so single
/// awkward shapes may still miss widely. This is the per-sample ceiling;
/// the campaign average is gated much tighter
/// ([`PREDICTOR_AVG_MAX_PCT`]) and the committed training report gates
/// the per-class held-out *median* at 10 %.
pub const PREDICTOR_SAMPLE_MAX_PCT: f64 = 250.0;

/// Campaign-average |divergence| of the committed predictor over every
/// predictor-holdout sample, mirrored and learner regimes pooled. The
/// `debug_predictor_divergence_spread` diagnostic measured ~7 % average
/// (worst learner sample ~41 %) on the seeded fuzz distribution.
pub const PREDICTOR_AVG_MAX_PCT: f64 = 25.0;

/// Converts a percentage to the integer centi-percent stored in
/// `verify_report.json` (keeps the report byte-deterministic across
/// serializers, which format floats differently).
pub fn to_cpct(pct: f64) -> i64 {
    if pct.is_infinite() {
        return if pct > 0.0 { i64::MAX } else { i64::MIN };
    }
    (pct * 100.0).round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpct_rounds_to_centipercent() {
        assert_eq!(to_cpct(12.345), 1235);
        assert_eq!(to_cpct(-0.004), 0);
        assert_eq!(to_cpct(f64::INFINITY), i64::MAX);
    }

    #[test]
    // Asserting relations between the constants is the whole point here.
    #[allow(clippy::assertions_on_constants)]
    fn bands_are_ordered_sanely() {
        assert!(MAERI_FULL_BW_SAMPLE_MAX_PCT >= MAERI_FULL_BW_AVG_MAX_PCT);
        assert!(SIGMA_DENSE_SAMPLE_MAX_PCT >= SIGMA_DENSE_AVG_MAX_PCT);
        assert!(MAERI_LOW_BW_WORST_MIN_PCT > MAERI_LOW_BW_EXCESS_MIN_PCT);
    }
}
