//! The `verify`-style training campaign: a seeded sample generator, the
//! cycle-level engine as labeling oracle, deterministic boosting, and a
//! held-out error report per workload class.
//!
//! Everything here is byte-deterministic: the same `(seed, samples,
//! rounds)` produce the same model artifact and the same error report on
//! every platform (pure-IEEE math via [`crate::math`], SplitMix64
//! sampling, exhaustive first-best stump search — no hash-map iteration,
//! no threads, no wall-clock inputs beyond the zeroed-out
//! `wall_time_ms`).

use crate::features::{expand, prior_cycles, segment_index, CLASSES, FEATURE_LEN, SEGMENTS};
use crate::math::det_ln;
use crate::model::{Model, Stump};
use serde::{Deserialize, Serialize};
use stonne_core::predict::LayerFeatures;
use stonne_core::{pool_features, spmm_features, AcceleratorConfig, Stonne};
use stonne_tensor::{CsrMatrix, Matrix, SeededRng, Tensor4};

/// Schema tag of the error-report artifact.
pub const REPORT_SCHEMA: &str = "stonne-predict-report/1";

/// Training-campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of labeled samples to generate (split ~3:1 train:holdout
    /// by feature-digest).
    pub samples: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Boosting rounds per workload class (classes stop early once no
    /// split reduces variance).
    pub rounds: usize,
    /// Shrinkage (learning rate) in percent.
    pub shrinkage_pct: u64,
    /// Per-class bound on the held-out *median* absolute error, in
    /// centi-percent of the exact cycles (1000 = 10%).
    pub bound_cpct: u64,
}

impl TrainConfig {
    /// The committed campaign: what trains the in-repo model and what CI
    /// retrains and byte-diffs.
    pub fn committed() -> Self {
        Self {
            samples: 1280,
            seed: 9,
            rounds: 400,
            shrinkage_pct: 30,
            bound_cpct: 1000,
        }
    }

    /// A miniature campaign for tests and the `verify` determinism
    /// oracle: seconds, not minutes, and still exercises every stage.
    pub fn tiny(seed: u64) -> Self {
        Self {
            samples: 32,
            seed,
            rounds: 12,
            shrinkage_pct: 30,
            bound_cpct: u64::MAX, // tiny campaigns make no accuracy promise
        }
    }
}

/// Held-out error of one workload class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassError {
    /// Class name (see [`CLASSES`]).
    pub name: String,
    /// Held-out samples of this class.
    pub count: u64,
    /// Median absolute error in centi-percent of exact cycles (lower
    /// median for even counts).
    pub median_err_cpct: u64,
    /// 90th-percentile absolute error, centi-percent.
    pub p90_err_cpct: u64,
    /// Worst absolute error, centi-percent.
    pub max_err_cpct: u64,
    /// The bound the median is gated on.
    pub bound_cpct: u64,
    /// Whether `median_err_cpct <= bound_cpct` (and the class was
    /// represented at all).
    pub pass: bool,
}

/// The `stonne-predict-report/1` artifact: held-out error bounds per
/// workload class for one training campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorReport {
    /// Schema tag ([`REPORT_SCHEMA`]).
    pub schema: String,
    /// Campaign seed.
    pub seed: u64,
    /// Samples requested.
    pub samples: u64,
    /// Samples that landed in the training split.
    pub train_count: u64,
    /// Samples that landed in the held-out split.
    pub holdout_count: u64,
    /// Boosting rounds.
    pub rounds: u64,
    /// Per-class held-out errors, in [`CLASSES`] order.
    pub classes: Vec<ClassError>,
    /// Whether every class passed its bound.
    pub pass: bool,
    /// Wall-clock training time; zeroed by [`ErrorReport::canonical_json`].
    pub wall_time_ms: u64,
}

impl ErrorReport {
    /// Pretty JSON (includes the wall time).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }

    /// Pretty JSON with `wall_time_ms` zeroed — byte-identical across
    /// re-runs of the same campaign.
    pub fn canonical_json(&self) -> String {
        let mut canonical = self.clone();
        canonical.wall_time_ms = 0;
        canonical.to_json()
    }

    /// Parses a report artifact, rejecting unknown schemas.
    ///
    /// # Errors
    ///
    /// Returns a description when the JSON is malformed or the schema
    /// tag is not [`REPORT_SCHEMA`].
    pub fn from_json(json: &str) -> Result<ErrorReport, String> {
        let report: ErrorReport =
            serde_json::from_str(json).map_err(|e| format!("malformed error report: {e}"))?;
        if report.schema != REPORT_SCHEMA {
            return Err(format!(
                "unsupported report schema {:?} (expected {REPORT_SCHEMA:?})",
                report.schema
            ));
        }
        Ok(report)
    }
}

/// One labeled sample: expanded features plus the engine's cycle count.
struct Sample {
    class: &'static str,
    x: [f64; FEATURE_LEN],
    prior: u64,
    digest: u64,
    label: u64,
}

/// SplitMix64 — the same generator the verify campaign seeds samples
/// with; every sample derives an independent stream from `(seed, i)`.
fn sample_seed(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add((i.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Cheap per-sample roll stream.
struct Rolls(u64);

impl Rolls {
    fn next(&mut self) -> u64 {
        self.0 = sample_seed(self.0, 0x5eed);
        self.0
    }

    /// Uniform-ish pick in `[lo, hi]`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo + 1) as u64) as usize
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[(self.next() % options.len() as u64) as usize]
    }
}

/// Log-skewed layer dimension in `[4, 128)`.
fn dim(r: &mut Rolls) -> usize {
    let base = 4usize << r.range(0, 4); // 4, 8, 16, 32, 64
    base + r.range(0, base - 1)
}

/// Zeroes a fraction of `m`'s entries (deterministic pattern from the
/// roll stream) so the sparse engine sees realistic CSR shapes.
fn sparsify(m: &mut Matrix, zero_pct: usize, r: &mut Rolls) {
    for row in 0..m.rows() {
        for col in 0..m.cols() {
            if r.range(0, 99) < zero_pct {
                m.set(row, col, 0.0);
            }
        }
    }
}

/// Generates and labels sample `i` of the campaign: builds a workload,
/// runs it on the exact engine (no cache, no DRAM modeling — the
/// predictor, like the simulation cache, estimates pre-DRAM cycles) and
/// extracts the matching features.
fn labeled_sample(seed: u64, i: u64) -> Sample {
    let mut r = Rolls(sample_seed(seed, i));
    let mut rng = SeededRng::new(r.next());
    // Round-robin class assignment keeps every class populated at any
    // campaign size: 30% systolic / 30% flexible / 30% sparse / 10% pool.
    let class = CLASSES[match i % 10 {
        0..=2 => 0,
        3..=5 => 1,
        6..=8 => 2,
        _ => 3,
    }];
    let (config, features, label): (AcceleratorConfig, LayerFeatures, u64) = match class {
        "systolic" => {
            let pe = r.pick(&[4usize, 8, 16]);
            let cfg = AcceleratorConfig::tpu_like(pe);
            let (m, n, k) = (dim(&mut r), dim(&mut r), dim(&mut r));
            let a = Matrix::random(m, k, &mut rng);
            let b = Matrix::random(k, n, &mut rng);
            let f = stonne_core::gemm_features(&cfg, &a, &b);
            let mut sim = Stonne::new(cfg.clone()).expect("preset validates");
            let (_, stats) = sim.run_gemm("label", &a, &b);
            (cfg, f, stats.cycles)
        }
        "flexible" => {
            let ms = r.pick(&[32usize, 64, 128, 256]);
            let bw = r.pick(&[8usize, 16, 32]).min(ms);
            let mut cfg = AcceleratorConfig::maeri_like(ms, bw);
            // A third of the class runs output-stationary: the analytical
            // prior mirrors the weight-stationary walk, so this slice is
            // where the boosted stumps earn their keep.
            if r.pick(&[0usize, 0, 1]) == 1 {
                cfg.dataflow = stonne_core::Dataflow::OutputStationary;
            }
            let (m, n, k) = (dim(&mut r), dim(&mut r), dim(&mut r));
            let a = Matrix::random(m, k, &mut rng);
            let b = Matrix::random(k, n, &mut rng);
            let f = stonne_core::gemm_features(&cfg, &a, &b);
            let mut sim = Stonne::new(cfg.clone()).expect("preset validates");
            let (_, stats) = sim.run_gemm("label", &a, &b);
            (cfg, f, stats.cycles)
        }
        "sparse" => {
            let ms = r.pick(&[64usize, 128, 256]);
            let bw = r.pick(&[16usize, 32, 64]).min(ms);
            let mut cfg = AcceleratorConfig::sigma_like(ms, bw);
            // A third of the class enables activation-sparsity mode,
            // where feature extraction cannot replay the packing walk
            // (delivery depends on streamed values) and the prior falls
            // back to the first-order SIGMA model — learner territory.
            if r.pick(&[0usize, 0, 1]) == 1 {
                cfg.exploit_activation_sparsity = true;
            }
            let (m, n, k) = (dim(&mut r), dim(&mut r), dim(&mut r));
            let mut a = Matrix::random(m, k, &mut rng);
            sparsify(&mut a, r.pick(&[0usize, 30, 60, 85]), &mut r);
            let b = Matrix::random(k, n, &mut rng);
            let csr = CsrMatrix::from_dense(&a);
            let f = spmm_features(&cfg, &csr, &b);
            let mut sim = Stonne::new(cfg.clone()).expect("preset validates");
            let (_, stats) = sim.run_spmm("label", &csr, &b);
            (cfg, f, stats.cycles)
        }
        _ => {
            let ms = r.pick(&[64usize, 128, 256]);
            let bw = r.pick(&[8usize, 16, 32]);
            let cfg = AcceleratorConfig::maeri_like(ms, bw);
            let window = r.pick(&[2usize, 3]);
            let stride = r.pick(&[1usize, 2]);
            let h = r.range(window.max(4), 32);
            let input = Tensor4::random(r.range(1, 2), r.range(1, 8), h, h, &mut rng);
            let f = pool_features(&cfg, &input, window, stride);
            let mut sim = Stonne::new(cfg.clone()).expect("preset validates");
            let (_, stats) = sim.run_maxpool("label", &input, window, stride);
            (cfg, f, stats.cycles)
        }
    };
    let _ = config;
    Sample {
        class,
        x: expand(&features),
        prior: prior_cycles(&features),
        digest: features.key_digest,
        label: label.max(1),
    }
}

/// Candidate split thresholds for one feature: midpoints between up to
/// 16 evenly-spaced consecutive distinct values.
fn thresholds(train: &[&Sample], feature: usize) -> Vec<f64> {
    let mut vals: Vec<f64> = train.iter().map(|s| s.x[feature]).collect();
    vals.sort_by(f64::total_cmp);
    vals.dedup();
    if vals.len() < 2 {
        return Vec::new();
    }
    let k = (vals.len() - 1).min(32);
    let mut out = Vec::with_capacity(k);
    for i in 1..=k {
        let idx = i * (vals.len() - 1) / (k + 1);
        let mid = (vals[idx] + vals[idx + 1]) * 0.5;
        if out.last() != Some(&mid) {
            out.push(mid);
        }
    }
    out
}

/// Runs the campaign: generates and labels `cfg.samples` workloads,
/// splits them train/holdout by feature-digest (`digest % 4 == 3` held
/// out — shape-duplicates share a digest, so a held-out shape is never
/// seen in training), boosts up to `cfg.rounds` class-scoped stumps per
/// workload class on the log-residuals, and evaluates the held-out error
/// per class.
pub fn train(cfg: &TrainConfig) -> (Model, ErrorReport) {
    let start = std::time::Instant::now();
    let samples: Vec<Sample> = (0..cfg.samples as u64)
        .map(|i| labeled_sample(cfg.seed, i))
        .collect();
    let (holdout, train): (Vec<&Sample>, Vec<&Sample>) =
        samples.iter().partition(|s| s.digest % 4 == 3);

    // Targets: ln(exact) − ln(prior), centered per stump-scoping segment
    // so the stumps only model the shape-dependent remainder. Mirrored
    // segments (prior replays the engine walk exactly) center to 0 and
    // learn nothing.
    let mut residuals: Vec<f64> = train
        .iter()
        .map(|s| det_ln(s.label as f64) - det_ln(s.prior.max(1) as f64))
        .collect();
    let mut base = [0.0f64; SEGMENTS];
    let mut counts = [0u64; SEGMENTS];
    for (s, &res) in train.iter().zip(&residuals) {
        let seg = segment_index(&s.x);
        base[seg] += res;
        counts[seg] += 1;
    }
    for (b, &n) in base.iter_mut().zip(&counts) {
        if n > 0 {
            *b /= n as f64;
        }
    }
    for (s, r) in train.iter().zip(&mut residuals) {
        *r -= base[segment_index(&s.x)];
    }

    // Boost each segment independently: stumps are segment-scoped (see
    // [`Stump`]), so corrections for a regime with a first-order prior
    // never bleed into predictions whose prior replays the engine
    // exactly. Mirrored segments converge in zero rounds.
    let shrink = cfg.shrinkage_pct as f64 / 100.0;
    let mut stumps = Vec::new();
    for segment in 0..SEGMENTS {
        let (class_train, mut res): (Vec<&Sample>, Vec<f64>) = train
            .iter()
            .zip(&residuals)
            .filter(|(s, _)| segment_index(&s.x) == segment)
            .map(|(s, &r)| (*s, r))
            .unzip();
        if class_train.is_empty() {
            continue;
        }
        let candidate_thresholds: Vec<Vec<f64>> = (0..FEATURE_LEN)
            .map(|j| thresholds(&class_train, j))
            .collect();
        for _ in 0..cfg.rounds {
            // Exhaustive first-best stump search: strictly greater
            // variance reduction wins, so ties resolve to the lowest
            // (feature, threshold) pair — deterministic on every
            // platform.
            let mut best: Option<(f64, usize, f64)> = None;
            for (j, cands) in candidate_thresholds.iter().enumerate() {
                for &t in cands {
                    let (mut ls, mut ln) = (0.0f64, 0u64);
                    let (mut rs, mut rn) = (0.0f64, 0u64);
                    for (s, &r) in class_train.iter().zip(&res) {
                        if s.x[j] <= t {
                            ls += r;
                            ln += 1;
                        } else {
                            rs += r;
                            rn += 1;
                        }
                    }
                    if ln == 0 || rn == 0 {
                        continue;
                    }
                    let gain = ls * ls / ln as f64 + rs * rs / rn as f64;
                    if best.is_none_or(|(g, _, _)| gain > g) {
                        best = Some((gain, j, t));
                    }
                }
            }
            let Some((gain, feature, threshold)) = best else {
                break;
            };
            if gain < 1e-12 {
                break;
            }
            let (mut ls, mut ln) = (0.0f64, 0u64);
            let (mut rs, mut rn) = (0.0f64, 0u64);
            for (s, &r) in class_train.iter().zip(&res) {
                if s.x[feature] <= threshold {
                    ls += r;
                    ln += 1;
                } else {
                    rs += r;
                    rn += 1;
                }
            }
            let left = ls / ln as f64 * shrink;
            let right = rs / rn as f64 * shrink;
            for (s, r) in class_train.iter().zip(&mut res) {
                *r -= if s.x[feature] <= threshold {
                    left
                } else {
                    right
                };
            }
            stumps.push(Stump {
                segment,
                feature,
                threshold,
                left,
                right,
            });
        }
    }

    let model = Model {
        seed: cfg.seed,
        samples: cfg.samples as u64,
        rounds: cfg.rounds as u64,
        shrinkage_pct: cfg.shrinkage_pct,
        base,
        stumps,
    };

    // Held-out evaluation, per class.
    let mut classes = Vec::with_capacity(CLASSES.len());
    let mut pass = true;
    for &name in &CLASSES {
        let mut errs: Vec<u64> = holdout
            .iter()
            .filter(|s| s.class == name)
            .map(|s| {
                let pred = model.predict_from(&s.x, s.prior);
                let diff = pred.abs_diff(s.label);
                ((diff as f64 / s.label as f64) * 10_000.0).round() as u64
            })
            .collect();
        errs.sort_unstable();
        let count = errs.len() as u64;
        let (median, p90, max) = if errs.is_empty() {
            (0, 0, 0)
        } else {
            (
                errs[(errs.len() - 1) / 2],
                errs[(errs.len() * 9 / 10).min(errs.len() - 1)],
                errs[errs.len() - 1],
            )
        };
        let class_pass = count > 0 && median <= cfg.bound_cpct;
        pass &= class_pass;
        classes.push(ClassError {
            name: name.to_owned(),
            count,
            median_err_cpct: median,
            p90_err_cpct: p90,
            max_err_cpct: max,
            bound_cpct: cfg.bound_cpct,
            pass: class_pass,
        });
    }

    let report = ErrorReport {
        schema: REPORT_SCHEMA.to_owned(),
        seed: cfg.seed,
        samples: cfg.samples as u64,
        train_count: train.len() as u64,
        holdout_count: holdout.len() as u64,
        rounds: cfg.rounds as u64,
        classes,
        pass,
        wall_time_ms: start.elapsed().as_millis() as u64,
    };
    (model, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "diagnostic: prints prior-vs-label ratios for the committed campaign"]
    fn debug_prior_quality() {
        let mut per_class: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
        for i in 0..400u64 {
            let s = labeled_sample(9, i);
            let ratio = s.prior as f64 / s.label as f64;
            per_class.entry(s.class).or_default().push(ratio);
            if !(0.5..=2.0).contains(&ratio) {
                println!(
                    "  outlier {} i={i} prior={} label={} ratio={ratio:.3}",
                    s.class, s.prior, s.label
                );
            }
        }
        for (class, mut rs) in per_class {
            rs.sort_by(f64::total_cmp);
            let med = rs[rs.len() / 2];
            println!(
                "{class}: n={} ratio min={:.3} med={med:.3} max={:.3}",
                rs.len(),
                rs[0],
                rs[rs.len() - 1]
            );
        }
    }

    #[test]
    fn tiny_training_is_byte_deterministic() {
        let cfg = TrainConfig::tiny(11);
        let (m1, r1) = train(&cfg);
        let (m2, r2) = train(&cfg);
        assert_eq!(m1.to_json(), m2.to_json());
        assert_eq!(r1.canonical_json(), r2.canonical_json());
        // A different seed produces a different model.
        let (m3, _) = train(&TrainConfig::tiny(12));
        assert_ne!(m1.to_json(), m3.to_json());
    }

    #[test]
    fn training_reduces_error_against_the_prior_alone() {
        let cfg = TrainConfig {
            samples: 60,
            seed: 3,
            rounds: 40,
            shrinkage_pct: 30,
            bound_cpct: u64::MAX,
        };
        let (model, report) = train(&cfg);
        assert!(!model.stumps.is_empty());
        assert_eq!(
            report.train_count + report.holdout_count,
            cfg.samples as u64
        );
        // The boosted model must beat the bare prior on the training
        // campaign's own holdout (sum of squared log-residuals).
        let naked = Model {
            base: [0.0; SEGMENTS],
            stumps: Vec::new(),
            ..model.clone()
        };
        let mut model_sse = 0.0;
        let mut prior_sse = 0.0;
        for i in 0..cfg.samples as u64 {
            let s = super::labeled_sample(cfg.seed, i);
            if s.digest % 4 != 3 {
                continue;
            }
            let e1 =
                det_ln(model.predict_from(&s.x, s.prior).max(1) as f64) - det_ln(s.label as f64);
            let e0 =
                det_ln(naked.predict_from(&s.x, s.prior).max(1) as f64) - det_ln(s.label as f64);
            model_sse += e1 * e1;
            prior_sse += e0 * e0;
        }
        assert!(
            model_sse < prior_sse,
            "boosting must improve on the prior: {model_sse} vs {prior_sse}"
        );
    }

    #[test]
    fn report_round_trips_and_rejects_other_schemas() {
        let (_, report) = train(&TrainConfig::tiny(2));
        let json = report.canonical_json();
        let back = ErrorReport::from_json(&json).unwrap();
        assert_eq!(back.canonical_json(), json);
        let wrong = json.replace(REPORT_SCHEMA, "stonne-predict-report/9");
        assert!(ErrorReport::from_json(&wrong).is_err());
    }

    #[test]
    fn every_class_is_sampled() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..20 {
            seen.insert(labeled_sample(4, i).class);
        }
        assert_eq!(seen.len(), CLASSES.len());
    }
}
