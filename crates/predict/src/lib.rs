//! `stonne-predict`: a learned per-layer cycle predictor distilled from
//! the cycle-level engines.
//!
//! Cycle-level fidelity is STONNE's value and its bottleneck: an
//! uncached full-model run costs hundreds of milliseconds, which puts
//! million-point design-space grids out of reach. Following the
//! NeuroScalar observation that a cheap model distilled from cycle-level
//! traces can stand in for the simulator — and the SCALE-Sim caveat
//! that fast models are only trustworthy when validated against the
//! detailed reference — this crate trains a small gradient-boosted-
//! stumps regressor over *log*-cycles, using the engines themselves as
//! the labeling oracle and `crates/analytical` as the priors it
//! corrects.
//!
//! The contract, enforced by CI on every merge:
//!
//! * **Accuracy** — on a held-out fixed-seed sample set, median absolute
//!   error ≤ 10% of exact cycles per workload class (the committed
//!   [`ErrorReport`] records the achieved bounds).
//! * **Determinism** — training is byte-deterministic: a fixed seed
//!   yields a byte-identical `stonne-predict-model/1` artifact and
//!   error report on every platform (pure-IEEE [`math`], no threads, no
//!   hash-map iteration).
//! * **Speed** — prediction is a feature expansion plus a few hundred
//!   stump lookups: ≥ 100× faster than the uncached engine.
//!
//! The committed model ships in-repo (`results/PREDICT_model.json`,
//! next to `results/BENCH_baseline.json`) and is what `--fidelity fast`
//! runs; see `docs/PREDICT.md` for the feature schema, the artifact
//! format and when *not* to trust fast mode.
//!
//! ```
//! use stonne_core::{AcceleratorConfig, Stonne};
//! use stonne_predict::Model;
//! use stonne_tensor::{Matrix, SeededRng};
//!
//! let mut rng = SeededRng::new(1);
//! let a = Matrix::random(32, 64, &mut rng);
//! let b = Matrix::random(64, 16, &mut rng);
//! let mut fast = Stonne::new(AcceleratorConfig::maeri_like(64, 16))
//!     .unwrap()
//!     .with_predictor(Model::committed());
//! let (_, stats) = fast.run_gemm("g", &a, &b);
//! assert_eq!(stats.engine_invocations, 0, "no cycle-level simulation");
//! assert!(stats.cycles > 0);
//! ```

#![warn(missing_docs)]

pub mod features;
pub mod math;
pub mod model;
pub mod train;

pub use features::{
    class_index, class_name, expand, prior_cycles, prior_mirrored, segment_index, CLASSES,
    FEATURE_LEN, FEATURE_NAMES, SEGMENTS,
};
pub use math::{det_exp, det_ln};
pub use model::{Model, Stump, MODEL_SCHEMA};
pub use train::{train, ClassError, ErrorReport, TrainConfig, REPORT_SCHEMA};
