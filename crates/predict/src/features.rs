//! Feature-vector expansion and analytical cycle priors.
//!
//! The regressor does not learn absolute cycle counts: it learns the
//! *log-residual* between the exact engine and a cheap analytical prior
//! (`crates/analytical` — the SCALE-Sim, MAERI and SIGMA first-order
//! models the repo already validates against the engines). The prior
//! carries the bulk of the magnitude across many orders of magnitude of
//! layer sizes; the boosted stumps only bend it where the cycle-level
//! engines disagree with the first-order model (delivery conflicts,
//! drain phases, tile quantization).

use crate::math::det_ln;
use stonne_analytical::maeri::MaeriWorkload;
use stonne_analytical::{maeri_cycles, scalesim_os_cycles, sigma_cycles_uniform};
use stonne_core::predict::{EngineKind, LayerFeatures};
use stonne_core::Dataflow;

/// Length of the expanded feature vector. Bump the model schema when
/// this (or the layout of [`expand`]) changes.
pub const FEATURE_LEN: usize = 31;

/// Workload-class names, index-aligned with the engine one-hots at the
/// head of the feature vector.
pub const CLASSES: [&str; 4] = ["systolic", "flexible", "sparse", "pool"];

/// Number of stump-scoping segments: each workload class splits into a
/// *mirrored* segment (the analytical prior replays the engine's walk
/// exactly, nothing to learn) and a *learner* segment (the prior is
/// first-order, the boosted stumps carry the correction). Scoping stumps
/// this finely keeps learner corrections from bleeding into predictions
/// the prior already gets exactly right.
pub const SEGMENTS: usize = CLASSES.len() * 2;

/// Names of the expanded features, index-aligned with [`expand`]
/// (documentation and error-analysis aid; the model stores indices).
pub const FEATURE_NAMES: [&str; FEATURE_LEN] = [
    "is_systolic",
    "is_flexible_dense",
    "is_sparse",
    "is_pool",
    "is_weight_stationary",
    "is_output_stationary",
    "is_input_stationary",
    "ln_ms_size",
    "ln_dn_bandwidth",
    "ln_rn_bandwidth",
    "ln_m",
    "ln_n",
    "ln_k",
    "ln_macs",
    "ln_cluster_size",
    "ln_num_clusters",
    "ln_folds",
    "density",
    "ln_nnz",
    "row_imbalance",
    "empty_row_frac",
    "window",
    "stride",
    "ln_prior",
    "ln_macs_per_ms",
    "ln_outputs",
    "ln_macs_per_dn_bw",
    "ln_k_per_cluster",
    "ln_dn_bw_per_cluster",
    "ln_prior_minus_ln_macs",
    "prior_mirrored",
];

fn ln1(v: u64) -> f64 {
    det_ln(v as f64 + 1.0)
}

/// Expands a [`LayerFeatures`] record into the fixed-length numeric
/// vector the stumps split on. Deterministic: pure IEEE arithmetic and
/// [`det_ln`].
pub fn expand(f: &LayerFeatures) -> [f64; FEATURE_LEN] {
    let one_hot = |b: bool| if b { 1.0 } else { 0.0 };
    let dense_cells = (f.m as u64).saturating_mul(f.k as u64);
    let density = if f.engine == EngineKind::Sparse && dense_cells > 0 {
        f.nnz as f64 / dense_cells as f64
    } else {
        1.0
    };
    let avg_row = if f.m > 0 {
        f.nnz as f64 / f.m as f64
    } else {
        0.0
    };
    let imbalance = (f.row_nnz_max as f64 - f.row_nnz_min as f64) / (avg_row + 1.0);
    let empty_frac = if f.m > 0 {
        f.empty_rows as f64 / f.m as f64
    } else {
        0.0
    };
    [
        one_hot(f.engine == EngineKind::Systolic),
        one_hot(f.engine == EngineKind::FlexibleDense),
        one_hot(f.engine == EngineKind::Sparse),
        one_hot(f.engine == EngineKind::Pool),
        one_hot(f.dataflow == Dataflow::WeightStationary),
        one_hot(f.dataflow == Dataflow::OutputStationary),
        one_hot(f.dataflow == Dataflow::InputStationary),
        ln1(f.ms_size as u64),
        ln1(f.dn_bandwidth as u64),
        ln1(f.rn_bandwidth as u64),
        ln1(f.m as u64),
        ln1(f.n as u64),
        ln1(f.k as u64),
        ln1(f.macs),
        ln1(f.cluster_size as u64),
        ln1(f.num_clusters as u64),
        ln1(f.folds as u64),
        density,
        ln1(f.nnz),
        imbalance,
        empty_frac,
        f.window as f64,
        f.stride as f64,
        ln1(prior_cycles(f)),
        ln1(f.macs / (f.ms_size as u64).max(1)),
        ln1((f.m as u64).saturating_mul(f.n as u64)),
        // Ratio features: stumps cannot combine coordinates, so the
        // multiplicative interactions that drive delivery- and
        // reduction-bound regimes are spelled out as log-ratios.
        ln1(f.macs / (f.dn_bandwidth as u64).max(1)),
        ln1((f.k / f.cluster_size.max(1)) as u64),
        ln1((f.dn_bandwidth / f.num_clusters.max(1)) as u64),
        ln1(prior_cycles(f)) - ln1(f.macs),
        one_hot(prior_mirrored(f)),
    ]
}

/// Whether [`prior_cycles`] replays the engine's exact cycle walk for
/// this record (as opposed to a first-order analytical estimate). True
/// for the systolic and pool closed forms, the weight-stationary
/// flexible walk when the record carries a tile shape, and the sparse
/// packing-metadata mirror when feature extraction could compute it.
pub fn prior_mirrored(f: &LayerFeatures) -> bool {
    match f.engine {
        EngineKind::Systolic | EngineKind::Pool => true,
        EngineKind::FlexibleDense => {
            f.dataflow == Dataflow::WeightStationary && f.t_k > 0 && f.t_pos > 0 && f.trivial_addrs
        }
        EngineKind::Sparse => f.sparse_meta_cycles > 0,
    }
}

/// Index of the workload class (into [`CLASSES`]) an expanded vector
/// belongs to, read off the engine one-hots.
pub fn class_index(x: &[f64; FEATURE_LEN]) -> usize {
    x[..CLASSES.len()]
        .iter()
        .position(|&v| v == 1.0)
        .unwrap_or(0)
}

/// Index of the stump-scoping segment (into `0..`[`SEGMENTS`]) an
/// expanded vector belongs to: the class index, doubled, plus one for
/// the learner (non-mirrored-prior) half.
pub fn segment_index(x: &[f64; FEATURE_LEN]) -> usize {
    class_index(x) * 2 + usize::from(x[FEATURE_LEN - 1] != 1.0)
}

/// First-order analytical cycle estimate for a layer, from the models in
/// `crates/analytical`. Always ≥ 1.
pub fn prior_cycles(f: &LayerFeatures) -> u64 {
    let (m, n, k) = (f.m.max(1), f.n.max(1), f.k.max(1));
    let prior = match f.engine {
        EngineKind::Systolic => {
            // The systolic engine is the analytical pipeline model plus a
            // fixed 4-cycle control overhead per output tile.
            let pe = f.cluster_size.max(1);
            scalesim_os_cycles(pe, m, n, k) + 4 * f.folds as u64
        }
        EngineKind::FlexibleDense => flexible_ws_prior(f),
        // The exact packing-metadata mirror when feature extraction could
        // compute it; the first-order uniform SIGMA model otherwise
        // (activation-sparsity mode, input-stationary GEMV dispatch).
        EngineKind::Sparse if f.sparse_meta_cycles > 0 => f.sparse_meta_cycles,
        EngineKind::Sparse => {
            sigma_cycles_uniform(m, n, k, f.nnz, f.ms_size.max(1), f.dn_bandwidth.max(1))
        }
        EngineKind::Pool => {
            // Mirror of the streaming pool engine's closed form: windows
            // stream `ms/window²` at a time, each wave pays the max of
            // delivery and collection, plus one tree-drain.
            let window_elems = k as u64;
            let num_windows = (m as u64).saturating_mul(n as u64);
            let per_wave = (f.ms_size as u64 / window_elems.max(1)).max(1);
            let waves = num_windows.div_ceil(per_wave);
            let deliver = (per_wave * window_elems)
                .div_ceil(f.dn_bandwidth.max(1) as u64)
                .max(1);
            let collect = per_wave.div_ceil(f.rn_bandwidth.max(1) as u64);
            let drain = ceil_log2(window_elems) + 1;
            deliver.max(collect) * waves + drain
        }
    };
    prior.max(1)
}

/// `ceil(log2(x))` for `x ≥ 1` (0 for `x ≤ 1`) — the pipeline depth of a
/// tree network over `x` leaves.
fn ceil_log2(x: u64) -> u64 {
    u64::from(x.max(1).next_power_of_two().trailing_zeros())
}

/// Closed-form mirror of the weight-stationary flexible engine's serial
/// cycle walk for plain-GEMM operands.
///
/// Replays the engine's exact loop structure arithmetically — position
/// chunking against the output-row length, accumulator-capacity blocking
/// (with psum spill when the working set exceeds the RN accumulators),
/// per-(block, fold) stationary weight reloads, and the per-step max of
/// delivery and collection — assuming every streamed input element is a
/// unique fetch. That assumption is exact for GEMM operands
/// (`DenseOperand::from_gemm`); convolution operands reuse overlapping
/// inputs and deliver fewer uniques, which the boosted stumps correct.
/// Falls back to the first-order MAERI model when the record carries no
/// tile shape.
fn flexible_ws_prior(f: &LayerFeatures) -> u64 {
    let (m, n, k_len) = (f.m.max(1), f.n.max(1), f.k.max(1));
    if f.t_k == 0 || f.t_pos == 0 {
        let w = MaeriWorkload::from_gemm(m, n, k_len, f.ms_size.max(1));
        return maeri_cycles(&w, f.dn_bandwidth.max(1));
    }
    let cluster = f.cluster_size.max(1);
    let (t_k, t_pos) = (f.t_k, f.t_pos);
    let dn_bw = f.dn_bandwidth.max(1) as u64;
    let rn_bw = f.rn_bandwidth.max(1) as u64;
    let folds = k_len.div_ceil(cluster);

    // Position-chunk sizes and multiplicities, mirroring
    // `position_chunks`: at most three distinct sizes (full chunks, the
    // tail of a full output row, the tail of the last partial row).
    let row_len = f.yp.max(1);
    let mut chunks: Vec<(usize, u64)> = Vec::new();
    if t_pos >= row_len {
        let size = (t_pos / row_len).max(1) * row_len;
        if n / size > 0 {
            chunks.push((size, (n / size) as u64));
        }
        if n % size > 0 {
            chunks.push((n % size, 1));
        }
    } else {
        let full_rows = (n / row_len) as u64;
        let row_tail = n % row_len;
        let per_row = (row_len / t_pos) as u64;
        let full = full_rows * per_row + (row_tail / t_pos) as u64;
        if full > 0 {
            chunks.push((t_pos, full));
        }
        if row_len % t_pos > 0 && full_rows > 0 {
            chunks.push((row_len % t_pos, full_rows));
        }
        if row_tail % t_pos > 0 {
            chunks.push((row_tail % t_pos, 1));
        }
    }
    let p: u64 = chunks.iter().map(|&(_, c)| c).sum::<u64>().max(1);

    // Accumulator-capacity blocking and psum spill, as the engine decides
    // them from the tile working set.
    let acc_capacity = if f.rn_accumulators { f.ms_size } else { 0 };
    let spill = t_k * t_pos > acc_capacity;
    let block = if spill {
        p
    } else {
        (((acc_capacity / t_k).max(t_pos) / t_pos) as u64).max(1)
    };
    let blocks = p.div_ceil(block);

    let chunk_cycles = |cf: usize| -> u64 {
        let mut cycles = 0u64;
        for fold in 0..folds {
            let last = fold + 1 == folds;
            let fr = if last {
                k_len - fold * cluster
            } else {
                cluster
            };
            // Stationary weight (re)load, once per (block, fold).
            cycles += blocks * ((cf * fr) as u64).div_ceil(dn_bw).max(1);
            for &(size, count) in &chunks {
                let psums = (cf * size) as u64;
                let mut needed = (fr * size) as u64;
                if spill && fold > 0 {
                    needed += psums;
                }
                let mut step = needed.div_ceil(dn_bw).max(1);
                if last || spill {
                    step = step.max(psums.div_ceil(rn_bw));
                }
                cycles += step * count;
            }
        }
        // Reduction-tree pipeline drain per filter chunk.
        cycles + ceil_log2(cluster as u64) + 1
    };

    let full_chunks = (m / t_k) as u64;
    let mut total = full_chunks * chunk_cycles(t_k);
    if m % t_k > 0 {
        total += chunk_cycles(m % t_k);
    }
    total
}

/// The workload-class label a feature record reports under (the error
/// bounds of the training report are tracked per class).
pub fn class_name(f: &LayerFeatures) -> &'static str {
    match f.engine {
        EngineKind::Systolic => "systolic",
        EngineKind::FlexibleDense => "flexible",
        EngineKind::Sparse => "sparse",
        EngineKind::Pool => "pool",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stonne_core::{gemm_features, AcceleratorConfig, Stonne};
    use stonne_tensor::{Matrix, SeededRng};

    #[test]
    fn expansion_is_finite_and_fixed_length() {
        let mut rng = SeededRng::new(5);
        let a = Matrix::random(24, 48, &mut rng);
        let b = Matrix::random(48, 12, &mut rng);
        for cfg in [
            AcceleratorConfig::tpu_like(8),
            AcceleratorConfig::maeri_like(64, 16),
            AcceleratorConfig::sigma_like(64, 64),
        ] {
            let f = gemm_features(&cfg, &a, &b);
            let x = expand(&f);
            assert_eq!(x.len(), FEATURE_LEN);
            assert!(x.iter().all(|v| v.is_finite()), "{cfg:?}");
            assert!(prior_cycles(&f) >= 1);
        }
    }

    #[test]
    fn priors_land_within_an_order_of_magnitude_of_the_engine() {
        let mut rng = SeededRng::new(6);
        let a = Matrix::random(32, 64, &mut rng);
        let b = Matrix::random(64, 16, &mut rng);
        for cfg in [
            AcceleratorConfig::tpu_like(8),
            AcceleratorConfig::maeri_like(64, 16),
            AcceleratorConfig::sigma_like(64, 64),
        ] {
            let f = gemm_features(&cfg, &a, &b);
            let prior = prior_cycles(&f) as f64;
            let mut sim = Stonne::new(cfg.clone()).unwrap();
            let (_, stats) = sim.run_gemm("g", &a, &b);
            let exact = stats.cycles as f64;
            let ratio = if prior > exact {
                prior / exact
            } else {
                exact / prior
            };
            assert!(ratio < 10.0, "{}: prior {prior} vs exact {exact}", cfg.name);
        }
    }

    #[test]
    fn feature_names_cover_the_vector() {
        assert_eq!(FEATURE_NAMES.len(), FEATURE_LEN);
    }
}
