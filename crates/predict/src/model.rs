//! The gradient-boosted-stumps model: in-memory form, the
//! `stonne-predict-model/1` JSON artifact, and the [`CyclePredictor`]
//! implementation that plugs it into the accelerator's fast path.
//!
//! Every floating-point parameter is serialized as its IEEE-754 bit
//! pattern (`u64`), never as a decimal float: the artifact is byte-pinned
//! in CI and must not depend on any library's float-formatting choices,
//! and parsing bits back is exact where a decimal round-trip might not
//! be.

use crate::features::{expand, prior_cycles, segment_index, FEATURE_LEN, SEGMENTS};
use crate::math::{det_exp, det_ln};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};
use stonne_core::predict::{CyclePredictor, LayerFeatures};

/// Schema tag of the model artifact.
pub const MODEL_SCHEMA: &str = "stonne-predict-model/1";

/// One decision stump: `x[feature] <= threshold ? left : right`
/// (shrinkage already folded into the leaves).
///
/// Stumps are segment-scoped: each only applies to samples of its
/// (class, prior-kind) segment — see
/// [`SEGMENTS`]. Depth-1 trees cannot
/// condition on the one-hots themselves, so without the scope a large
/// correction learned for one engine regime would bleed into
/// predictions whose prior is already exact.
#[derive(Debug, Clone, PartialEq)]
pub struct Stump {
    /// Scoping segment (index into `0..SEGMENTS`) this stump applies to.
    pub segment: usize,
    /// Index into the expanded feature vector.
    pub feature: usize,
    /// Split threshold.
    pub threshold: f64,
    /// Leaf value added to the log-residual when `x[feature] <= threshold`.
    pub left: f64,
    /// Leaf value otherwise.
    pub right: f64,
}

/// A trained cycle predictor: a log-residual correction on top of the
/// analytical priors of [`crate::features::prior_cycles`].
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Seed of the training campaign that produced this model.
    pub seed: u64,
    /// Sample count of the training campaign.
    pub samples: u64,
    /// Boosting rounds requested.
    pub rounds: u64,
    /// Shrinkage (learning rate) in percent.
    pub shrinkage_pct: u64,
    /// Per-segment constant log-residual (mean of the training targets
    /// of each stump-scoping segment, indexed like
    /// [`segment_index`]).
    pub base: [f64; SEGMENTS],
    /// The boosted stumps, in training order.
    pub stumps: Vec<Stump>,
}

/// Serialized form: floats as bit patterns, plus the schema tag.
#[derive(Serialize, Deserialize)]
struct StumpRepr {
    segment: u64,
    feature: u64,
    threshold_bits: u64,
    left_bits: u64,
    right_bits: u64,
}

#[derive(Serialize, Deserialize)]
struct ModelRepr {
    schema: String,
    seed: u64,
    samples: u64,
    rounds: u64,
    shrinkage_pct: u64,
    feature_len: u64,
    base_bits: Vec<u64>,
    stumps: Vec<StumpRepr>,
}

impl Model {
    /// The learned log-residual for an expanded feature vector: the
    /// segment's base offset plus its segment-scoped stumps.
    pub fn ln_residual(&self, x: &[f64; FEATURE_LEN]) -> f64 {
        let segment = segment_index(x);
        let mut r = self.base[segment];
        for s in self.stumps.iter().filter(|s| s.segment == segment) {
            r += if x[s.feature] <= s.threshold {
                s.left
            } else {
                s.right
            };
        }
        r
    }

    /// Predicted cycles from an already-expanded vector and its prior
    /// (the trainer's evaluation path; [`CyclePredictor`] goes through
    /// feature expansion first).
    pub fn predict_from(&self, x: &[f64; FEATURE_LEN], prior: u64) -> u64 {
        let ln_cycles = det_ln(prior.max(1) as f64) + self.ln_residual(x);
        let cycles = det_exp(ln_cycles).round();
        if cycles.is_finite() && cycles >= 1.0 {
            cycles as u64
        } else {
            1
        }
    }

    /// Serializes to the pretty-printed `stonne-predict-model/1` JSON
    /// artifact. Deterministic: equal models produce equal bytes on
    /// every platform.
    pub fn to_json(&self) -> String {
        let repr = ModelRepr {
            schema: MODEL_SCHEMA.to_owned(),
            seed: self.seed,
            samples: self.samples,
            rounds: self.rounds,
            shrinkage_pct: self.shrinkage_pct,
            feature_len: FEATURE_LEN as u64,
            base_bits: self.base.iter().map(|b| b.to_bits()).collect(),
            stumps: self
                .stumps
                .iter()
                .map(|s| StumpRepr {
                    segment: s.segment as u64,
                    feature: s.feature as u64,
                    threshold_bits: s.threshold.to_bits(),
                    left_bits: s.left.to_bits(),
                    right_bits: s.right.to_bits(),
                })
                .collect(),
        };
        let mut s = serde_json::to_string_pretty(&repr).expect("model serializes");
        s.push('\n');
        s
    }

    /// Parses a model artifact, rejecting unknown schemas and feature
    /// layouts.
    ///
    /// # Errors
    ///
    /// Returns a description when the JSON is malformed, the schema tag
    /// is not [`MODEL_SCHEMA`], the feature length disagrees with this
    /// build, or a stump indexes out of range.
    pub fn from_json(json: &str) -> Result<Model, String> {
        let repr: ModelRepr =
            serde_json::from_str(json).map_err(|e| format!("malformed model artifact: {e}"))?;
        if repr.schema != MODEL_SCHEMA {
            return Err(format!(
                "unsupported model schema {:?} (expected {MODEL_SCHEMA:?})",
                repr.schema
            ));
        }
        if repr.feature_len != FEATURE_LEN as u64 {
            return Err(format!(
                "model expects {} features, this build extracts {FEATURE_LEN}",
                repr.feature_len
            ));
        }
        if repr.base_bits.len() != SEGMENTS {
            return Err(format!(
                "model has {} segment bases, this build knows {SEGMENTS} segments",
                repr.base_bits.len()
            ));
        }
        let mut base = [0.0; SEGMENTS];
        for (b, bits) in base.iter_mut().zip(&repr.base_bits) {
            *b = f64::from_bits(*bits);
        }
        let stumps = repr
            .stumps
            .iter()
            .map(|s| {
                if s.feature >= FEATURE_LEN as u64 {
                    return Err(format!("stump feature index {} out of range", s.feature));
                }
                if s.segment >= SEGMENTS as u64 {
                    return Err(format!("stump segment index {} out of range", s.segment));
                }
                Ok(Stump {
                    segment: s.segment as usize,
                    feature: s.feature as usize,
                    threshold: f64::from_bits(s.threshold_bits),
                    left: f64::from_bits(s.left_bits),
                    right: f64::from_bits(s.right_bits),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Model {
            seed: repr.seed,
            samples: repr.samples,
            rounds: repr.rounds,
            shrinkage_pct: repr.shrinkage_pct,
            base,
            stumps,
        })
    }

    /// The model trained by the committed campaign and shipped in-repo
    /// (`results/PREDICT_model.json`, like `results/BENCH_baseline.json`)
    /// — what `--fidelity fast` runs.
    ///
    /// # Panics
    ///
    /// Panics if the committed artifact is out of sync with this build's
    /// feature schema — CI retrains and byte-diffs it, so a panic here
    /// means the artifact was not re-blessed after a predictor change.
    pub fn committed() -> Arc<Model> {
        static COMMITTED: OnceLock<Arc<Model>> = OnceLock::new();
        COMMITTED
            .get_or_init(|| {
                let json = include_str!("../../../results/PREDICT_model.json");
                Arc::new(Model::from_json(json).expect("committed predictor model parses"))
            })
            .clone()
    }
}

impl CyclePredictor for Model {
    fn predict_cycles(&self, features: &LayerFeatures) -> u64 {
        self.predict_from(&expand(features), prior_cycles(features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> Model {
        Model {
            seed: 7,
            samples: 2,
            rounds: 2,
            shrinkage_pct: 30,
            base: {
                let mut b = [0.0; SEGMENTS];
                b[0] = 0.125;
                b
            },
            stumps: vec![
                Stump {
                    segment: 0,
                    feature: 10,
                    threshold: 3.5,
                    left: -0.25,
                    right: 0.0625,
                },
                Stump {
                    segment: 0,
                    feature: 17,
                    threshold: 0.5,
                    left: 0.5,
                    right: -0.03125,
                },
                // Scoped to another segment: must not affect segment 0.
                Stump {
                    segment: 2,
                    feature: 10,
                    threshold: 0.0,
                    left: 100.0,
                    right: 100.0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_bit_exactly() {
        let m = sample_model();
        let json = m.to_json();
        let back = Model::from_json(&json).unwrap();
        assert_eq!(m, back);
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn from_json_rejects_bad_artifacts() {
        let mut m = sample_model();
        let wrong_schema = m.to_json().replace(MODEL_SCHEMA, "stonne-predict-model/9");
        assert!(Model::from_json(&wrong_schema).is_err());
        m.stumps[0].feature = FEATURE_LEN; // out of range
        assert!(Model::from_json(&m.to_json()).is_err());
        let mut m = sample_model();
        m.stumps[0].segment = SEGMENTS; // out of range
        assert!(Model::from_json(&m.to_json()).is_err());
        assert!(Model::from_json("not json").is_err());
        let wrong_len = sample_model().to_json().replace(
            &format!("\"feature_len\": {FEATURE_LEN}"),
            "\"feature_len\": 2",
        );
        assert!(Model::from_json(&wrong_len).is_err());
    }

    #[test]
    fn prediction_applies_the_stump_path() {
        let m = sample_model();
        let mut x = [0.0; FEATURE_LEN];
        x[FEATURE_LEN - 1] = 1.0; // prior-mirrored half of class 0 = segment 0
        x[10] = 5.0; // right leaf of stump 0
        x[17] = 0.25; // left leaf of stump 1
        let expected = 0.125 + 0.0625 + 0.5;
        assert!((m.ln_residual(&x) - expected).abs() < 1e-15);
        // Prediction is exp(ln(prior) + residual) rounded, never 0.
        let p = m.predict_from(&x, 100);
        assert_eq!(p, (100.0_f64 * expected.exp()).round() as u64);
        assert_eq!(m.predict_from(&x, 0), 2, "prior clamps to 1 cycle");
    }
}
