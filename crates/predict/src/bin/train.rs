//! Trains the cycle predictor and writes the model + error-report
//! artifacts — the command behind the CI `predict` job and
//! `tools/offline-check.sh predict`.
//!
//! ```text
//! train [--samples N] [--seed S] [--rounds R]
//!       [--out PATH] [--report PATH]
//! ```
//!
//! Defaults are the committed campaign (`TrainConfig::committed()`), so
//! a bare `cargo run -p stonne-predict --bin train` reproduces
//! `results/PREDICT_model.json` and `results/PREDICT_report.json`
//! byte-for-byte. Exits non-zero when any workload class misses its
//! held-out error bound, which is what gates merges.

use stonne_predict::{train, TrainConfig};

fn usage() -> ! {
    eprintln!(
        "usage: train [--samples N] [--seed S] [--rounds R] \
         [--out PATH] [--report PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = TrainConfig::committed();
    let mut out = String::from("results/PREDICT_model.json");
    let mut report_out = String::from("results/PREDICT_report.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| usage_msg(name));
        match arg.as_str() {
            "--samples" => cfg.samples = parse(&value("--samples")),
            "--seed" => cfg.seed = parse(&value("--seed")),
            "--rounds" => cfg.rounds = parse(&value("--rounds")),
            "--out" => out = value("--out"),
            "--report" => report_out = value("--report"),
            _ => usage(),
        }
    }

    let (model, report) = train(&cfg);
    std::fs::write(&out, model.to_json()).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    // The report is written canonically (wall time zeroed) so re-runs
    // byte-diff clean without any jq postprocessing.
    std::fs::write(&report_out, report.canonical_json())
        .unwrap_or_else(|e| panic!("writing {report_out}: {e}"));

    println!(
        "trained {} stumps on {} samples ({} held out), wrote {out} and {report_out}",
        model.stumps.len(),
        report.train_count,
        report.holdout_count
    );
    for c in &report.classes {
        println!(
            "  {:<10} n={:<3} median {:>5}cpct  p90 {:>5}cpct  max {:>6}cpct  bound {}cpct  {}",
            c.name,
            c.count,
            c.median_err_cpct,
            c.p90_err_cpct,
            c.max_err_cpct,
            c.bound_cpct,
            if c.pass { "ok" } else { "FAIL" }
        );
    }
    if !report.pass {
        eprintln!("error: a workload class missed its held-out error bound");
        std::process::exit(1);
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: cannot parse {s:?}");
        std::process::exit(2);
    })
}

fn usage_msg(name: &str) -> ! {
    eprintln!("error: {name} needs a value");
    usage()
}
