//! Bit-reproducible `ln`/`exp`.
//!
//! The predictor regresses *log*-cycles, and its training campaign and
//! error report are byte-diffed across platforms in CI (x86-64 vs
//! aarch64). `f64::ln`/`f64::exp` route to the platform libm, whose
//! last-bit rounding differs between implementations — enough to flip
//! a stump threshold and produce a different model on a different host.
//! These replacements use only IEEE-754 `+ - * /` (correctly rounded on
//! every conforming platform, and not subject to FMA contraction at the
//! default `codegen-units`/opt settings Rust guarantees for explicit
//! operations), so the same input bits give the same output bits
//! everywhere.
//!
//! Accuracy is within a few ULP of libm over the predictor's working
//! range (`ln` on [1, 2^63], `exp` on [-50, 50]) — plenty for a model
//! whose error bound is percent-scale — and it is *consistency* across
//! platforms, not agreement with libm, that the determinism contract
//! needs.

/// ln(2) split into a high part exact in 32 bits and the residual, so
/// `k·LN2` subtracts exactly for moderate `k` (classic Cody–Waite).
/// The literals keep the full decimal expansions of the intended bit
/// patterns (they are the musl constants); truncating them would hide
/// which exact values the split must reproduce.
#[allow(clippy::excessive_precision)]
const LN2_HI: f64 = 0.693_147_180_369_123_816_49;
#[allow(clippy::excessive_precision)]
const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;
/// √2, the mantissa-range pivot for `det_ln`.
const SQRT2: f64 = std::f64::consts::SQRT_2;

/// Deterministic natural logarithm.
///
/// Returns NaN for negative inputs, negative infinity at 0, and the
/// input itself for NaN/+∞ — mirroring `f64::ln`.
pub fn det_ln(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    // Normalize subnormals so the exponent extraction below is exact.
    let (x, subnormal_shift) = if x < f64::MIN_POSITIVE {
        (x * f64::from_bits(0x4330_0000_0000_0000), -52i64) // 2^52
    } else {
        (x, 0)
    };
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023 + subnormal_shift;
    // Mantissa in [1, 2).
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    // Re-center to [√2/2, √2) so |z| stays ≤ √2−1 ≈ 0.1716 below.
    if m > SQRT2 {
        m *= 0.5;
        e += 1;
    }
    // ln(m) = 2·atanh(z) with z = (m−1)/(m+1); |z| ≤ 0.172 so the odd
    // series converges a digit per term pair — 13 terms reach 1e-19.
    let z = (m - 1.0) / (m + 1.0);
    let z2 = z * z;
    let mut series = 0.0;
    let mut zpow = 1.0; // z^(2i)
    let mut denom = 1.0;
    for _ in 0..13 {
        series += zpow / denom;
        zpow *= z2;
        denom += 2.0;
    }
    let ln_m = 2.0 * z * series;
    let k = e as f64;
    k * LN2_HI + (k * LN2_LO + ln_m)
}

/// Deterministic natural exponential.
///
/// Saturates to +∞ / 0 outside the finite range, mirroring `f64::exp`.
pub fn det_exp(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x > 709.8 {
        return f64::INFINITY;
    }
    if x < -745.2 {
        return 0.0;
    }
    // Range-reduce: x = k·ln2 + r with |r| ≤ ln2/2.
    let k = (x * std::f64::consts::LOG2_E).round();
    let r = (x - k * LN2_HI) - k * LN2_LO;
    // exp(r) by Taylor; |r| ≤ 0.347 so 17 terms overshoot double
    // precision. Terms are accumulated smallest-last-free order: a plain
    // ascending sum is fully determined by IEEE rounding either way.
    let mut sum = 1.0;
    let mut term = 1.0;
    for i in 1..18 {
        term = term * r / i as f64;
        sum += term;
    }
    scalb(sum, k as i64)
}

/// `x · 2^k` via exponent arithmetic (two steps to survive the
/// subnormal/overflow edges without rounding twice in the common case).
fn scalb(x: f64, k: i64) -> f64 {
    let pow2 = |k: i64| f64::from_bits(((k + 1023) as u64) << 52);
    if (-1022..=1023).contains(&k) {
        return x * pow2(k);
    }
    let half = k / 2;
    x * pow2(half) * pow2(k - half)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_tracks_libm_over_the_working_range() {
        let mut x = 1e-3;
        while x < 1e19 {
            let got = det_ln(x);
            let want = x.ln();
            assert!(
                (got - want).abs() <= want.abs().max(1.0) * 1e-14,
                "ln({x}): {got} vs {want}"
            );
            x *= 1.7;
        }
    }

    #[test]
    fn exp_tracks_libm_over_the_working_range() {
        let mut x = -50.0;
        while x < 50.0 {
            let got = det_exp(x);
            let want = x.exp();
            assert!(
                (got - want).abs() <= want.abs() * 1e-14,
                "exp({x}): {got} vs {want}"
            );
            x += 0.37;
        }
    }

    #[test]
    fn exp_inverts_ln() {
        for c in [1u64, 7, 123, 45_678, 9_999_999, u64::from(u32::MAX)] {
            let roundtrip = det_exp(det_ln(c as f64));
            assert!(
                (roundtrip - c as f64).abs() / c as f64 <= 1e-13,
                "{c} -> {roundtrip}"
            );
        }
    }

    #[test]
    fn edges_mirror_libm() {
        assert_eq!(det_ln(0.0), f64::NEG_INFINITY);
        assert!(det_ln(-1.0).is_nan());
        assert_eq!(det_ln(f64::INFINITY), f64::INFINITY);
        assert_eq!(det_exp(1000.0), f64::INFINITY);
        assert_eq!(det_exp(-1000.0), 0.0);
        assert!(det_exp(f64::NAN).is_nan());
        // Subnormal inputs still work.
        let tiny = f64::from_bits(1);
        assert!(det_ln(tiny).is_finite());
        assert!((det_ln(tiny) - tiny.ln()).abs() < 1e-9);
    }
}
