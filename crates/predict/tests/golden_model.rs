//! Golden byte-pins for the committed predictor artifacts, plus the
//! speed leg of the predictor contract.
//!
//! The committed model (`results/PREDICT_model.json`) and its error
//! report must be exactly what the committed campaign produces on this
//! build — re-bless intentionally changed artifacts with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p stonne-predict --test golden_model
//! ```

use std::path::PathBuf;
use std::time::Instant;

use stonne_core::predict::{CyclePredictor, LayerFeatures};
use stonne_core::{AcceleratorConfig, Stonne};
use stonne_predict::{train, Model, TrainConfig};
use stonne_tensor::{Matrix, SeededRng};

fn results_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(name)
}

fn check_golden(name: &str, rendered: &str) {
    let path = results_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(&path, rendered).unwrap_or_else(|e| panic!("writing {path:?}: {e}"));
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "committed artifact {path:?} unreadable ({e}); bless it with \
             UPDATE_GOLDEN=1 cargo test -p stonne-predict --test golden_model"
        )
    });
    assert!(
        committed == rendered,
        "{name} drifted from the committed campaign's output; if the \
         predictor change is intentional, re-bless with UPDATE_GOLDEN=1 \
         and review the diff"
    );
}

/// Retrains the committed campaign and byte-diffs both artifacts against
/// the files shipped in-repo. This is the merge gate's local mirror: a
/// feature, prior, or campaign change that forgets to re-bless the
/// artifacts fails here before CI sees it.
#[test]
fn committed_artifacts_match_a_fresh_committed_campaign() {
    let (model, report) = train(&TrainConfig::committed());
    assert!(
        report.pass,
        "committed campaign misses its own error bounds"
    );
    check_golden("PREDICT_model.json", &model.to_json());
    check_golden("PREDICT_report.json", &report.canonical_json());
    // The in-memory committed model is the same artifact.
    assert_eq!(
        Model::committed().to_json(),
        model.to_json(),
        "Model::committed() is out of sync with results/PREDICT_model.json"
    );
}

/// The speed leg of the contract: prediction must be at least 100×
/// faster than the uncached cycle-level engine on a perf-basket-sized
/// workload.
///
/// The predictor replaces only the cycle walk — both fidelities still
/// produce real layer outputs — so the contract is measured on the
/// stats path: feature extraction plus prediction against the engine's
/// full simulation of the same layer. The real gap is orders of
/// magnitude larger than 100× (a feature expansion and a few hundred
/// stump lookups vs a per-cycle walk), so the line is safe against
/// timer noise.
#[test]
fn prediction_is_100x_faster_than_the_uncached_engine() {
    let mut rng = SeededRng::new(5);
    let a = Matrix::random(192, 256, &mut rng);
    let b = Matrix::random(256, 128, &mut rng);
    let cfg = AcceleratorConfig::maeri_like(64, 16);

    let mut exact = Stonne::new(cfg.clone()).unwrap();
    let t = Instant::now();
    let (_, stats) = exact.run_gemm("speed", &a, &b);
    let exact_time = t.elapsed();
    assert!(stats.engine_invocations > 0);

    // Average over many predictions (warm model) for a stable per-call
    // figure; `sum` keeps the loop from being optimized away.
    let model = Model::committed();
    const REPS: u32 = 256;
    let t = Instant::now();
    let mut sum = 0u64;
    for _ in 0..REPS {
        let f = LayerFeatures::systolic(&cfg, a.rows(), b.cols(), a.cols());
        sum += model.predict_cycles(&f);
    }
    let fast_time = t.elapsed() / REPS;
    assert!(sum > 0);

    assert!(
        exact_time >= fast_time * 100,
        "predictor speedup below 100x: exact {exact_time:?}, fast {fast_time:?}"
    );
}
