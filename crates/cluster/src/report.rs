//! Cluster reports: latency distributions (p50/p95/p99, per class),
//! throughput-vs-SLA curves, and per-instance utilization/contention.
//!
//! Everything here is integer arithmetic over cycle counts (percentiles
//! are nearest-rank, ratios are parts-per-million), so a report is a
//! pure function of the simulation records and renders to identical
//! bytes on every run — the property the determinism oracle and the
//! golden fixture pin.

use crate::sim::{InstanceUsage, RequestRecord};
use crate::spec::ClassSpec;
use serde::{Deserialize, Serialize};
use stonne::core::SimStats;

/// Summary of a latency sample (cycles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Sample size.
    pub count: usize,
    /// Integer mean.
    pub mean: u64,
    /// Median (nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
    /// Maximum.
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes a latency sample (order irrelevant; empty → zeros).
    pub fn of(latencies: &[u64]) -> Self {
        if latencies.is_empty() {
            return Self::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let rank = |q: u64| {
            // Nearest-rank: smallest index covering q% of the sample.
            let k = (q * sorted.len() as u64).div_ceil(100).max(1) as usize;
            sorted[k - 1]
        };
        Self {
            count: sorted.len(),
            mean: sorted.iter().sum::<u64>() / sorted.len() as u64,
            p50: rank(50),
            p95: rank(95),
            p99: rank(99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Latency/SLA outcome of one tenant class in one scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassReport {
    /// Class label.
    pub name: String,
    /// Scheduling priority.
    pub priority: u8,
    /// The class SLA in cycles (0 = none).
    pub sla_cycles: u64,
    /// Latency distribution of the class's requests.
    pub latency: LatencySummary,
    /// Requests that met the SLA (= all, when no SLA is set).
    pub sla_met: usize,
    /// SLA attainment in parts-per-million of the class's requests.
    pub sla_attainment_ppm: u64,
}

/// Per-instance outcome of one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceReport {
    /// Instance index.
    pub index: usize,
    /// Instance label (`arch:ms:bw`).
    pub arch: String,
    /// Requests served.
    pub requests: u64,
    /// Batches executed.
    pub batches: u64,
    /// Cycles occupied (compute + DRAM wait).
    pub busy_cycles: u64,
    /// Occupancy over the scenario makespan, parts-per-million.
    pub utilization_ppm: u64,
    /// Elements moved over the shared DRAM.
    pub dram_elements: u64,
    /// Channel cycles its transfers occupied.
    pub dram_transfer_cycles: u64,
    /// Cycles it waited behind other instances' traffic.
    pub dram_wait_cycles: u64,
    /// Aggregate engine statistics over every request it served, with
    /// `dram_contention_cycles` carrying the arbiter wait.
    pub stats: SimStats,
}

/// One simulated arrival rate: a point on the throughput-vs-SLA curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Offered arrival rate (requests per million cycles).
    pub rate_rpmc: f64,
    /// Requests simulated.
    pub requests: usize,
    /// Cycle the last request finished.
    pub makespan_cycles: u64,
    /// Achieved throughput in milli-requests per million cycles
    /// (`requests × 10⁹ / makespan`).
    pub throughput_milli_rpmc: u64,
    /// Latency distribution over every request.
    pub latency: LatencySummary,
    /// Per-class breakdown, in class order.
    pub classes: Vec<ClassReport>,
    /// Per-instance breakdown, in instance order.
    pub instances: Vec<InstanceReport>,
}

/// The full report of a cluster run: one scenario per requested rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Request label (possibly empty).
    pub name: String,
    /// Workload seed.
    pub seed: u64,
    /// Arbitration policy name.
    pub policy: String,
    /// Batching window.
    pub batch: usize,
    /// One entry per arrival rate, in request order — the
    /// throughput-vs-SLA curve.
    pub scenarios: Vec<ScenarioReport>,
}

impl ClusterReport {
    /// Renders the report as pretty JSON (byte-stable across runs).
    ///
    /// # Panics
    ///
    /// Never panics in practice (all fields are serializable).
    pub fn render(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// Assembles one scenario's report from its simulation outcome.
pub fn scenario_report(
    rate: f64,
    records: &[RequestRecord],
    usage: &[InstanceUsage],
    classes: &[ClassSpec],
    instance_labels: &[String],
    per_instance_stats: Vec<SimStats>,
) -> ScenarioReport {
    let makespan = records.iter().map(|r| r.finish).max().unwrap_or(0);
    let latencies: Vec<u64> = records.iter().map(|r| r.latency).collect();
    let class_reports = classes
        .iter()
        .enumerate()
        .map(|(c, spec)| {
            let sample: Vec<u64> = records
                .iter()
                .filter(|r| r.class == c)
                .map(|r| r.latency)
                .collect();
            let met = if spec.sla_cycles == 0 {
                sample.len()
            } else {
                sample.iter().filter(|&&l| l <= spec.sla_cycles).count()
            };
            ClassReport {
                name: spec.name.clone(),
                priority: spec.priority,
                sla_cycles: spec.sla_cycles,
                latency: LatencySummary::of(&sample),
                sla_met: met,
                sla_attainment_ppm: if sample.is_empty() {
                    1_000_000
                } else {
                    met as u64 * 1_000_000 / sample.len() as u64
                },
            }
        })
        .collect();
    let instances = usage
        .iter()
        .enumerate()
        .zip(per_instance_stats)
        .map(|((i, u), stats)| InstanceReport {
            index: i,
            arch: instance_labels[i].clone(),
            requests: u.served,
            batches: u.batches,
            busy_cycles: u.busy_cycles,
            utilization_ppm: (u.busy_cycles * 1_000_000)
                .checked_div(makespan)
                .unwrap_or(0),
            dram_elements: u.dram.elements,
            dram_transfer_cycles: u.dram.transfer_cycles,
            dram_wait_cycles: u.dram.wait_cycles,
            stats,
        })
        .collect();
    ScenarioReport {
        rate_rpmc: rate,
        requests: records.len(),
        makespan_cycles: makespan,
        throughput_milli_rpmc: (records.len() as u64 * 1_000_000_000)
            .checked_div(makespan)
            .unwrap_or(0),
        latency: LatencySummary::of(&latencies),
        classes: class_reports,
        instances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let sample: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::of(&sample);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean, 50);
        let tiny = LatencySummary::of(&[7]);
        assert_eq!((tiny.p50, tiny.p99, tiny.max), (7, 7, 7));
        assert_eq!(LatencySummary::of(&[]), LatencySummary::default());
    }

    /// Nearest-rank edge case: with a single sample every percentile is
    /// that sample — `(q * 1).div_ceil(100).max(1)` must resolve to
    /// rank 1 for all of p50/p95/p99, never rank 0 or out of bounds.
    #[test]
    fn single_sample_collapses_every_percentile() {
        let s = LatencySummary::of(&[42]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42);
        assert_eq!((s.p50, s.p95, s.p99), (42, 42, 42));
        assert_eq!(s.max, 42);
        // Two samples: p50 is the lower, the tail percentiles the upper.
        let s = LatencySummary::of(&[10, 20]);
        assert_eq!((s.p50, s.p95, s.p99, s.max), (10, 20, 20, 20));
    }

    #[test]
    fn sla_attainment_counts_met_requests() {
        let classes = vec![ClassSpec {
            name: "svc".into(),
            weight: 1.0,
            priority: 0,
            sla_cycles: 100,
        }];
        let records: Vec<RequestRecord> = [(50u64, 0usize), (150, 1), (100, 2), (75, 3)]
            .iter()
            .map(|&(latency, id)| RequestRecord {
                id,
                class: 0,
                model: 0,
                instance: 0,
                arrival: 0,
                start: 0,
                finish: latency,
                latency,
                queue_cycles: 0,
                contention_cycles: 0,
            })
            .collect();
        let report = scenario_report(1.0, &records, &[], &classes, &[], Vec::new());
        assert_eq!(report.classes[0].sla_met, 3);
        assert_eq!(report.classes[0].sla_attainment_ppm, 750_000);
        assert_eq!(report.makespan_cycles, 150);
    }
}
