//! Cluster scenario specifications: instances, models, tenant classes,
//! the shared-DRAM override, and request validation.

use serde::{Deserialize, Serialize};
use stonne::core::AcceleratorConfig;
use stonne::dram::DramConfig;
use stonne::models::{ModelId, ModelScale};

/// Hard bound on accelerator instances per cluster.
pub const MAX_INSTANCES: usize = 16;
/// Hard bound on models per cluster request.
pub const MAX_MODELS: usize = 8;
/// Hard bound on tenant classes.
pub const MAX_CLASSES: usize = 8;
/// Hard bound on generated requests per scenario.
pub const MAX_REQUESTS: usize = 20_000;
/// Hard bound on arrival rates (scenarios) per request.
pub const MAX_RATES: usize = 16;
/// Hard bound on the batching window.
pub const MAX_BATCH: usize = 64;

/// Builds a validated accelerator configuration from the serving-layer
/// triple `(arch, ms, bw)` — the shared grammar of sweep grids and
/// cluster instances. `ms`/`bw` of 0 select the preset defaults
/// (256/128); `tpu` requires a square `ms` and ignores `bw`.
///
/// # Errors
///
/// Returns a message when the preset is unknown, a TPU `ms` is not a
/// perfect square, or the composed configuration fails validation.
pub fn config_from(arch: &str, ms: usize, bw: usize) -> Result<AcceleratorConfig, String> {
    let ms = if ms == 0 { 256 } else { ms };
    let bw = if bw == 0 { 128 } else { bw };
    let cfg = match arch {
        "tpu" => {
            let dim = (ms as f64).sqrt().round() as usize;
            if dim * dim != ms {
                return Err(format!("arch tpu: ms {ms} is not a perfect square"));
            }
            AcceleratorConfig::tpu_like(dim)
        }
        "maeri" => AcceleratorConfig::maeri_like(ms, bw),
        "sigma" => AcceleratorConfig::sigma_like(ms, bw),
        other => return Err(format!("unknown arch `{other}` (tpu|maeri|sigma)")),
    };
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

/// Parses a zoo model name.
///
/// # Errors
///
/// Returns a message naming the unknown model.
pub fn parse_model(name: &str) -> Result<ModelId, String> {
    Ok(match name {
        "mobilenet" => ModelId::MobileNetV1,
        "squeezenet" => ModelId::SqueezeNet,
        "alexnet" => ModelId::AlexNet,
        "resnet50" => ModelId::ResNet50,
        "vgg16" => ModelId::Vgg16,
        "ssd" => ModelId::SsdMobileNet,
        "bert" => ModelId::Bert,
        other => return Err(format!("unknown model `{other}`")),
    })
}

/// Parses a scale name (empty → `tiny`).
///
/// # Errors
///
/// Returns a message naming the unknown scale.
pub fn parse_scale(name: &str) -> Result<ModelScale, String> {
    Ok(match name {
        "" | "tiny" => ModelScale::Tiny,
        "reduced" => ModelScale::Reduced,
        "standard" => ModelScale::Standard,
        other => return Err(format!("unknown scale `{other}` (tiny|reduced|standard)")),
    })
}

/// One accelerator instance of the cluster (heterogeneous configs
/// allowed: a cluster can mix `tpu`, `maeri` and `sigma` instances of
/// different sizes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// Architecture preset: `tpu`, `maeri` or `sigma`.
    pub arch: String,
    /// Multiplier switches (0 → preset default, 256).
    #[serde(default)]
    pub ms: usize,
    /// GB bandwidth in elements/cycle (0 → preset default, 128; ignored
    /// by `tpu`).
    #[serde(default)]
    pub bw: usize,
}

impl InstanceSpec {
    /// The validated accelerator configuration of this instance.
    ///
    /// # Errors
    ///
    /// See [`config_from`].
    pub fn config(&self) -> Result<AcceleratorConfig, String> {
        config_from(&self.arch, self.ms, self.bw)
    }

    /// Human-readable label, e.g. `maeri:64:32`.
    pub fn label(&self) -> String {
        format!(
            "{}:{}:{}",
            self.arch,
            if self.ms == 0 { 256 } else { self.ms },
            if self.bw == 0 { 128 } else { self.bw }
        )
    }
}

/// One model requests may ask for.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelRef {
    /// Model name (see [`parse_model`]).
    pub name: String,
    /// Input scale: `tiny`, `reduced` or `standard` (empty → `tiny`).
    #[serde(default)]
    pub scale: String,
}

/// One tenant / priority class of the request mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassSpec {
    /// Class label (echoed in per-class latency reports).
    pub name: String,
    /// Relative share of arriving requests (normalized over all
    /// classes; 0 → 1.0, so an omitted weight means an equal share).
    #[serde(default)]
    pub weight: f64,
    /// Scheduling priority (higher preempts queue order; also the
    /// request priority the `priority` DRAM arbiter sees).
    #[serde(default)]
    pub priority: u8,
    /// Latency SLA in cycles (0 → no SLA; attainment reports 100%).
    #[serde(default)]
    pub sla_cycles: u64,
}

impl ClassSpec {
    /// The sampling weight with the omitted-field zero resolved to an
    /// equal share.
    pub fn effective_weight(&self) -> f64 {
        if self.weight == 0.0 {
            1.0
        } else {
            self.weight
        }
    }
}

impl Default for ClassSpec {
    fn default() -> Self {
        Self {
            name: "default".to_owned(),
            weight: 1.0,
            priority: 0,
            sla_cycles: 0,
        }
    }
}

/// Overrides for the shared off-chip memory system. Zeros select the
/// corresponding [`DramConfig::hbm2_dual`] default; tightening these
/// (one channel, a few GB/s) is how contention studies force visible
/// arbiter wait cycles.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DramSpec {
    /// Shared channels (0 → 2).
    #[serde(default)]
    pub channels: usize,
    /// Peak bandwidth per channel in GB/s (0 → 256).
    #[serde(default)]
    pub bandwidth_gbps: f64,
    /// Fixed access latency in cycles (0 → 100).
    #[serde(default)]
    pub latency_cycles: u64,
}

impl DramSpec {
    /// Resolves the override into a full [`DramConfig`].
    pub fn config(&self) -> DramConfig {
        let base = DramConfig::hbm2_dual();
        DramConfig {
            channels: if self.channels == 0 {
                base.channels
            } else {
                self.channels
            },
            bandwidth_gbps_per_channel: if self.bandwidth_gbps <= 0.0 {
                base.bandwidth_gbps_per_channel
            } else {
                self.bandwidth_gbps
            },
            latency_cycles: if self.latency_cycles == 0 {
                base.latency_cycles
            } else {
                self.latency_cycles
            },
            ..base
        }
    }
}

/// A full cluster scenario request: the machine (instances + shared
/// DRAM), the tenant mix (models + classes), and the workload knobs
/// (request count, arrival rates, batching window, seed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterRequest {
    /// Optional human-readable label echoed in the report.
    #[serde(default)]
    pub name: String,
    /// Accelerator instances (1–16, heterogeneous allowed).
    pub instances: Vec<InstanceSpec>,
    /// Models requests draw from uniformly (1–8).
    pub models: Vec<ModelRef>,
    /// Tenant classes (empty → one `default` class).
    #[serde(default)]
    pub classes: Vec<ClassSpec>,
    /// Requests generated per scenario (0 → 64).
    #[serde(default)]
    pub requests: usize,
    /// Poisson arrival rates in requests per million cycles; each rate
    /// is simulated as its own scenario, which is what produces the
    /// throughput-vs-SLA curve (empty → `[1.0]`).
    #[serde(default)]
    pub rates: Vec<f64>,
    /// Batching window: up to this many queued same-model requests run
    /// as one batch (0 → 1 = no batching).
    #[serde(default)]
    pub batch: usize,
    /// DRAM arbitration policy: `round-robin` (default) or `priority`.
    #[serde(default)]
    pub policy: String,
    /// Workload seed; every scenario derives deterministically from it.
    #[serde(default)]
    pub seed: u64,
    /// Weight sparsity override in `[0, 1)` (absent → each model's own
    /// published default).
    #[serde(default)]
    pub sparsity: Option<f64>,
    /// Shared-memory override (absent → the paper's dual-HBM2 setup).
    #[serde(default)]
    pub dram: Option<DramSpec>,
}

impl ClusterRequest {
    /// The effective class list (the single default class when none
    /// were given), with omitted weights resolved.
    pub fn effective_classes(&self) -> Vec<ClassSpec> {
        if self.classes.is_empty() {
            vec![ClassSpec::default()]
        } else {
            self.classes
                .iter()
                .map(|c| ClassSpec {
                    weight: c.effective_weight(),
                    ..c.clone()
                })
                .collect()
        }
    }

    /// The effective request count (0 → 64).
    pub fn effective_requests(&self) -> usize {
        if self.requests == 0 {
            64
        } else {
            self.requests
        }
    }

    /// The effective batching window (0 → 1 = no batching).
    pub fn effective_batch(&self) -> usize {
        if self.batch == 0 {
            1
        } else {
            self.batch
        }
    }

    /// The effective rate list (`[1.0]` when none were given).
    pub fn effective_rates(&self) -> Vec<f64> {
        if self.rates.is_empty() {
            vec![1.0]
        } else {
            self.rates.clone()
        }
    }

    /// Validates every axis of the request.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated bound or
    /// unparsable name.
    pub fn validate(&self) -> Result<(), String> {
        if self.instances.is_empty() || self.instances.len() > MAX_INSTANCES {
            return Err(format!("instances must be 1..={MAX_INSTANCES}"));
        }
        for spec in &self.instances {
            spec.config()?;
        }
        if self.models.is_empty() || self.models.len() > MAX_MODELS {
            return Err(format!("models must be 1..={MAX_MODELS}"));
        }
        for model in &self.models {
            parse_model(&model.name)?;
            parse_scale(&model.scale)?;
        }
        if self.classes.len() > MAX_CLASSES {
            return Err(format!("at most {MAX_CLASSES} classes"));
        }
        for class in &self.classes {
            if !class.weight.is_finite() || class.weight < 0.0 {
                return Err(format!(
                    "class `{}` weight must be positive (or 0 for the default)",
                    class.name
                ));
            }
        }
        if self.effective_requests() > MAX_REQUESTS {
            return Err(format!("requests must be 1..={MAX_REQUESTS}"));
        }
        if self.rates.len() > MAX_RATES {
            return Err(format!("at most {MAX_RATES} rates"));
        }
        for &rate in &self.rates {
            if !rate.is_finite() || rate <= 0.0 {
                return Err(format!("rate {rate} must be positive and finite"));
            }
        }
        if self.effective_batch() > MAX_BATCH {
            return Err(format!("batch must be 1..={MAX_BATCH}"));
        }
        stonne::dram::arbiter::ArbiterPolicy::parse(&self.policy)?;
        if let Some(s) = self.sparsity {
            if !(0.0..1.0).contains(&s) {
                return Err(format!("sparsity {s} outside [0, 1)"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> ClusterRequest {
        serde_json::from_str(
            r#"{
                "instances": [{"arch":"maeri","ms":64,"bw":32},{"arch":"tpu","ms":16}],
                "models": [{"name":"alexnet"},{"name":"squeezenet","scale":"tiny"}],
                "classes": [
                    {"name":"interactive","weight":1.0,"priority":2,"sla_cycles":400000},
                    {"name":"batch","weight":3.0}
                ],
                "requests": 16,
                "rates": [0.5, 2.0],
                "batch": 2,
                "policy": "priority",
                "seed": 7
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn a_full_request_validates_and_roundtrips() {
        let r = request();
        r.validate().unwrap();
        let text = serde_json::to_string(&r).unwrap();
        let back: ClusterRequest = serde_json::from_str(&text).unwrap();
        back.validate().unwrap();
        assert_eq!(back.instances[0].label(), "maeri:64:32");
        assert_eq!(back.instances[1].label(), "tpu:16:128");
        assert_eq!(back.classes[1].priority, 0, "priority defaults to 0");
    }

    #[test]
    fn defaults_fill_in() {
        let min: ClusterRequest =
            serde_json::from_str(r#"{"instances":[{"arch":"sigma"}],"models":[{"name":"bert"}]}"#)
                .unwrap();
        min.validate().unwrap();
        assert_eq!(min.effective_requests(), 64);
        assert_eq!(min.effective_batch(), 1);
        assert_eq!(min.effective_rates(), vec![1.0]);
        let classes = min.effective_classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].name, "default");
        assert!(min.dram.is_none());
    }

    #[test]
    fn bounds_are_enforced() {
        let mut r = request();
        r.instances.clear();
        assert!(r.validate().is_err());
        let mut r = request();
        r.models[0].name = "lenet".into();
        assert!(r.validate().is_err());
        let mut r = request();
        r.classes[0].weight = -1.0;
        assert!(r.validate().is_err());
        let mut r = request();
        r.requests = MAX_REQUESTS + 1;
        assert!(r.validate().is_err());
        let mut r = request();
        r.rates = vec![-1.0];
        assert!(r.validate().is_err());
        let mut r = request();
        r.batch = MAX_BATCH + 1;
        assert!(r.validate().is_err());
        let mut r = request();
        r.batch = 0;
        r.validate().unwrap();
        assert_eq!(r.effective_batch(), 1, "0 means no batching");
        let mut r = request();
        r.classes[0].weight = 0.0;
        r.validate().unwrap();
        assert_eq!(
            r.effective_classes()[0].weight,
            1.0,
            "0 weight resolves to an equal share"
        );
        let mut r = request();
        r.policy = "lottery".into();
        assert!(r.validate().is_err());
        let mut r = request();
        r.sparsity = Some(1.0);
        assert!(r.validate().is_err());
        let mut r = request();
        r.instances[1].ms = 15; // non-square TPU
        assert!(r.validate().is_err());
    }

    #[test]
    fn dram_spec_resolves_zeros_to_defaults() {
        let spec = DramSpec {
            channels: 1,
            bandwidth_gbps: 0.0,
            latency_cycles: 50,
        };
        let cfg = spec.config();
        assert_eq!(cfg.channels, 1);
        assert_eq!(cfg.bandwidth_gbps_per_channel, 256.0);
        assert_eq!(cfg.latency_cycles, 50);
        let default = DramSpec::default().config();
        assert_eq!(default, stonne::dram::DramConfig::hbm2_dual());
    }
}
