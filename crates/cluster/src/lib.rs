//! `stonne-cluster`: multi-accelerator, multi-tenant serving simulation.
//!
//! The paper's simulator models exactly one accelerator per run. This
//! crate turns that single-instance engine into a datacenter-inference
//! study: N heterogeneous accelerator instances (any mix of the `tpu`,
//! `maeri` and `sigma` presets) serve a seeded Poisson stream of
//! inference requests over the model zoo, sharing the off-chip memory
//! system through the contention-aware arbiter of
//! [`stonne::dram::arbiter`].
//!
//! A run has two phases:
//!
//! 1. **Profile** ([`profile`]): every (instance, model) pair runs once
//!    through the cycle-level simulator — serially or fanned across the
//!    `stonne-nn` worker pool, bitwise-equal either way — yielding a
//!    per-layer cycle/DRAM-traffic profile.
//! 2. **Replay** ([`sim`]): a single-threaded, integer virtual-time
//!    event loop dispatches generated requests ([`workload`]) across the
//!    instances, forms batches, and arbitrates every layer's DRAM
//!    transfer. No wall-clock, no threads, no floats in the hot state —
//!    the same request always produces the same report bytes.
//!
//! Reports ([`report`]) carry latency distributions (p50/p95/p99, per
//! tenant class), SLA attainment, throughput per offered rate, and
//! per-instance utilization plus DRAM bandwidth/contention accounting
//! (surfaced in each instance's [`stonne::core::SimStats`] as
//! `dram_contention_cycles`).
//!
//! # Quick start
//!
//! ```no_run
//! use stonne_cluster::{run_cluster, ExecMode};
//! use stonne::core::SimCache;
//!
//! let request = serde_json::from_str(r#"{
//!     "instances": [{"arch":"maeri","ms":64,"bw":32},{"arch":"tpu","ms":16}],
//!     "models": [{"name":"alexnet"},{"name":"squeezenet"}],
//!     "classes": [{"name":"interactive","priority":1,"sla_cycles":500000},
//!                 {"name":"batch","weight":3.0}],
//!     "requests": 64, "rates": [0.5, 2.0], "batch": 2,
//!     "policy": "priority", "seed": 7
//! }"#).unwrap();
//! let outcome = run_cluster(&request, &SimCache::new(), ExecMode::Pool).unwrap();
//! println!("{}", outcome.report.render());
//! ```
//!
//! See `docs/CLUSTER.md` for the scenario-file schema, the batching and
//! contention models, and the CLI/HTTP front-ends.

#![warn(missing_docs)]

pub mod profile;
pub mod report;
pub mod sim;
pub mod spec;
pub mod workload;

pub use profile::{build_profiles, ExecMode, LayerProfile, RequestProfile};
pub use report::{ClassReport, ClusterReport, InstanceReport, LatencySummary, ScenarioReport};
pub use sim::{InstanceUsage, RequestRecord};
pub use spec::{
    config_from, parse_model, parse_scale, ClassSpec, ClusterRequest, DramSpec, InstanceSpec,
    ModelRef,
};
pub use workload::{generate_requests, GeneratedRequest};

use stonne::core::{SimCache, SimStats};
use stonne::dram::arbiter::ArbiterPolicy;

/// Everything a cluster run produces: the renderable report plus the raw
/// per-request records of every scenario (what the verify oracle
/// compares across serial/pool executions).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// The aggregated, byte-stable report.
    pub report: ClusterReport,
    /// Per-scenario, per-request records (`per_request[rate][id]`).
    pub per_request: Vec<Vec<RequestRecord>>,
}

/// Derives the workload seed of scenario `index` from the request seed
/// (SplitMix64-style odd-constant mixing keeps the streams disjoint).
fn scenario_seed(seed: u64, index: usize) -> u64 {
    seed.wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs a full cluster scenario: validate, profile every (instance,
/// model) pair through `cache`, then replay one virtual-time scenario
/// per requested arrival rate.
///
/// Determinism contract: the returned outcome is a pure function of
/// `request` — independent of `mode`, of cache warmth, and of thread
/// scheduling.
///
/// # Errors
///
/// Returns the first validation or profiling error.
pub fn run_cluster(
    request: &ClusterRequest,
    cache: &SimCache,
    mode: ExecMode,
) -> Result<ClusterOutcome, String> {
    request.validate()?;
    let classes = request.effective_classes();
    let rates = request.effective_rates();
    let policy = ArbiterPolicy::parse(&request.policy)?;
    let dram = request.dram.unwrap_or_default().config();
    let profiles = build_profiles(request, cache, mode)?;
    let labels: Vec<String> = request.instances.iter().map(InstanceSpec::label).collect();

    let mut scenarios = Vec::with_capacity(rates.len());
    let mut per_request = Vec::with_capacity(rates.len());
    for (k, &rate) in rates.iter().enumerate() {
        let workload = generate_requests(
            request.effective_requests(),
            rate,
            &classes,
            request.models.len(),
            scenario_seed(request.seed, k),
        );
        let (records, usage) = sim::simulate(
            &profiles,
            &workload,
            &classes,
            dram,
            policy,
            request.effective_batch(),
        );
        // Per-instance aggregate stats: every served request contributes
        // its (stripped) profile total; the arbiter wait lands in the
        // new `dram_contention_cycles` field.
        let stats: Vec<SimStats> = usage
            .iter()
            .enumerate()
            .map(|(i, u)| {
                let mut s = SimStats {
                    accelerator: labels[i].clone(),
                    operation: format!("cluster rate {rate}"),
                    ..SimStats::default()
                };
                for r in records.iter().filter(|r| r.instance == i) {
                    s.merge(&profiles[i][r.model].total);
                }
                s.dram_contention_cycles = u.dram.wait_cycles;
                s
            })
            .collect();
        scenarios.push(report::scenario_report(
            rate, &records, &usage, &classes, &labels, stats,
        ));
        per_request.push(records);
    }
    Ok(ClusterOutcome {
        report: ClusterReport {
            name: request.name.clone(),
            seed: request.seed,
            policy: policy.name().to_owned(),
            batch: request.effective_batch(),
            scenarios,
        },
        per_request,
    })
}
