//! Deterministic request-level workload generation: seeded Poisson
//! arrivals over the model mix, with weighted class assignment.

use crate::spec::ClassSpec;
use stonne::tensor::SeededRng;

/// One generated inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratedRequest {
    /// Dense request id (also the arrival tie-break).
    pub id: usize,
    /// Arrival cycle (virtual time).
    pub arrival: u64,
    /// Index into the request's model list.
    pub model: usize,
    /// Index into the effective class list.
    pub class: usize,
}

/// Generates `n` requests with Poisson arrivals at `rate` requests per
/// million cycles: inter-arrival gaps are exponential samples via
/// inverse-CDF on the seeded uniform stream, so the same seed always
/// yields the same trace. Models are drawn uniformly; classes by their
/// relative weights.
pub fn generate_requests(
    n: usize,
    rate: f64,
    classes: &[ClassSpec],
    models: usize,
    seed: u64,
) -> Vec<GeneratedRequest> {
    let mut rng = SeededRng::new(seed);
    let total_weight: f64 = classes.iter().map(|c| c.weight).sum();
    let mean_gap = 1_000_000.0 / rate;
    let mut arrival = 0u64;
    (0..n)
        .map(|id| {
            // 1 - U keeps the sample in (0, 1], so ln() stays finite.
            let u = 1.0 - f64::from(rng.uniform(0.0, 1.0));
            let gap = (-u.ln() * mean_gap).round() as u64;
            arrival += gap.max(1);
            let model = rng.index(models);
            let mut roll = f64::from(rng.uniform(0.0, 1.0)) * total_weight;
            let mut class = 0;
            for (c, spec) in classes.iter().enumerate() {
                class = c;
                roll -= spec.weight;
                if roll < 0.0 {
                    break;
                }
            }
            GeneratedRequest {
                id,
                arrival,
                model,
                class,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes() -> Vec<ClassSpec> {
        vec![
            ClassSpec {
                name: "hot".into(),
                weight: 1.0,
                priority: 1,
                sla_cycles: 0,
            },
            ClassSpec {
                name: "cold".into(),
                weight: 3.0,
                priority: 0,
                sla_cycles: 0,
            },
        ]
    }

    #[test]
    fn same_seed_same_trace() {
        let a = generate_requests(64, 2.0, &classes(), 3, 9);
        let b = generate_requests(64, 2.0, &classes(), 3, 9);
        assert_eq!(a, b);
        let c = generate_requests(64, 2.0, &classes(), 3, 10);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn arrivals_are_strictly_increasing_with_plausible_mean() {
        let reqs = generate_requests(400, 4.0, &classes(), 2, 5);
        for pair in reqs.windows(2) {
            assert!(pair[1].arrival > pair[0].arrival);
        }
        // Mean gap ≈ 1e6/4 = 250k cycles; allow a wide statistical band.
        let mean = reqs.last().unwrap().arrival as f64 / reqs.len() as f64;
        assert!((100_000.0..500_000.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn class_weights_shape_the_mix() {
        let reqs = generate_requests(2000, 1.0, &classes(), 2, 11);
        let hot = reqs.iter().filter(|r| r.class == 0).count();
        let frac = hot as f64 / reqs.len() as f64;
        assert!((0.15..0.35).contains(&frac), "hot fraction {frac} ≉ 0.25");
        assert!(reqs.iter().all(|r| r.model < 2));
    }
}
