//! Phase 2: the virtual-time event loop.
//!
//! A single-threaded discrete-event simulation over integer cycles. All
//! state transitions are pure functions of (profiles, workload, policy),
//! so two runs of the same request — or a serial-profiled and a
//! pool-profiled run — produce identical per-request records byte for
//! byte.
//!
//! Per event bucket (one timestamp) the loop processes, in a fixed
//! order: arrivals (dispatch to the least-loaded instance), layer
//! completions (advance or retire batches), batch formation on idle
//! instances, then one arbitration round in which every instance with a
//! pending layer asks the shared-DRAM arbiter for its transfer window.
//! The grant's wait cycles push the layer's completion out — that is
//! where cross-instance memory contention becomes visible end to end.

use crate::profile::RequestProfile;
use crate::spec::ClassSpec;
use crate::workload::GeneratedRequest;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use stonne::dram::arbiter::{ArbiterPolicy, DramArbiter, InstanceDramCounters};
use stonne::dram::DramConfig;

/// The fully-resolved fate of one request (the per-request cycle counts
/// the determinism oracle compares).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request id (generation order).
    pub id: usize,
    /// Class index.
    pub class: usize,
    /// Model index.
    pub model: usize,
    /// Instance that served it.
    pub instance: usize,
    /// Arrival cycle.
    pub arrival: u64,
    /// Cycle its batch started executing.
    pub start: u64,
    /// Cycle its batch finished.
    pub finish: u64,
    /// End-to-end latency (`finish - arrival`).
    pub latency: u64,
    /// Cycles spent queued before execution (`start - arrival`).
    pub queue_cycles: u64,
    /// Shared-DRAM wait cycles its batch absorbed.
    pub contention_cycles: u64,
}

/// Per-instance accounting of one simulated scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceUsage {
    /// Requests served.
    pub served: u64,
    /// Batches executed.
    pub batches: u64,
    /// Cycles the instance was occupied (compute + DRAM wait).
    pub busy_cycles: u64,
    /// The arbiter's bandwidth/contention counters for this instance.
    pub dram: InstanceDramCounters,
}

/// A queued request (the subset of state the scheduler needs).
#[derive(Debug, Clone, Copy)]
struct Queued {
    id: usize,
    model: usize,
    class: usize,
    arrival: u64,
    priority: u8,
}

/// An executing batch on one instance.
#[derive(Debug, Clone)]
struct ActiveBatch {
    members: Vec<Queued>,
    model: usize,
    priority: u8,
    start: u64,
    next_layer: usize,
    contention: u64,
    /// Set when the next layer still needs its DRAM grant.
    needs_issue: bool,
}

struct Instance {
    queue: Vec<Queued>,
    active: Option<ActiveBatch>,
    /// Estimated backlog in profile cycles (dispatch heuristic).
    backlog: u64,
    usage: InstanceUsage,
}

/// Runs one scenario: `workload` over `profiles[instance][model]`
/// behind a shared arbiter. Returns the per-request records (id order)
/// and per-instance usage.
pub fn simulate(
    profiles: &[Vec<RequestProfile>],
    workload: &[GeneratedRequest],
    classes: &[ClassSpec],
    dram: DramConfig,
    policy: ArbiterPolicy,
    batch_window: usize,
) -> (Vec<RequestRecord>, Vec<InstanceUsage>) {
    let n_instances = profiles.len();
    let mut arbiter = DramArbiter::new(dram, policy, n_instances);
    let mut instances: Vec<Instance> = (0..n_instances)
        .map(|_| Instance {
            queue: Vec::new(),
            active: None,
            backlog: 0,
            usage: InstanceUsage {
                served: 0,
                batches: 0,
                busy_cycles: 0,
                dram: InstanceDramCounters::default(),
            },
        })
        .collect();
    let mut records: Vec<Option<RequestRecord>> = vec![None; workload.len()];

    // Events: (time, kind, seq, payload). kind 0 = arrival (payload =
    // request index), kind 1 = layer done (payload = instance). Tuple
    // order fixes the processing order inside a timestamp bucket.
    let mut heap: BinaryHeap<Reverse<(u64, u8, u64, usize)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (k, request) in workload.iter().enumerate() {
        heap.push(Reverse((request.arrival, 0, seq, k)));
        seq += 1;
    }

    while let Some(&Reverse((t, _, _, _))) = heap.peek() {
        // Drain the whole bucket for this timestamp.
        while let Some(&Reverse((time, kind, _, payload))) = heap.peek() {
            if time != t {
                break;
            }
            heap.pop();
            match kind {
                0 => {
                    let request = &workload[payload];
                    let queued = Queued {
                        id: request.id,
                        model: request.model,
                        class: request.class,
                        arrival: request.arrival,
                        priority: classes[request.class].priority,
                    };
                    // Least-loaded dispatch: backlog plus this request's
                    // own cost on that instance; ties to the lowest index.
                    let target = (0..n_instances)
                        .min_by_key(|&i| {
                            (instances[i].backlog + profiles[i][request.model].cycles, i)
                        })
                        .expect("at least one instance");
                    let inst = &mut instances[target];
                    inst.backlog += profiles[target][request.model].cycles;
                    // Queue order: priority first, then arrival, then id.
                    let at = inst
                        .queue
                        .iter()
                        .position(|q| {
                            (Reverse(q.priority), q.arrival, q.id)
                                > (Reverse(queued.priority), queued.arrival, queued.id)
                        })
                        .unwrap_or(inst.queue.len());
                    inst.queue.insert(at, queued);
                }
                _ => {
                    let i = payload;
                    let inst = &mut instances[i];
                    let active = inst.active.as_mut().expect("layer done on active batch");
                    active.next_layer += 1;
                    if active.next_layer == profiles[i][active.model].layers.len() {
                        let batch = inst.active.take().expect("checked above");
                        inst.usage.batches += 1;
                        for member in &batch.members {
                            inst.usage.served += 1;
                            inst.backlog = inst
                                .backlog
                                .saturating_sub(profiles[i][member.model].cycles);
                            records[member.id] = Some(RequestRecord {
                                id: member.id,
                                class: member.class,
                                model: member.model,
                                instance: i,
                                arrival: member.arrival,
                                start: batch.start,
                                finish: t,
                                latency: t - member.arrival,
                                queue_cycles: batch.start - member.arrival,
                                contention_cycles: batch.contention,
                            });
                        }
                    } else {
                        active.needs_issue = true;
                    }
                }
            }
        }

        // Batch formation on idle instances: head of queue plus up to
        // `batch_window - 1` same-model requests, in queue order.
        for inst in instances.iter_mut() {
            if inst.active.is_some() || inst.queue.is_empty() {
                continue;
            }
            let head = inst.queue.remove(0);
            let mut members = vec![head];
            let mut k = 0;
            while members.len() < batch_window && k < inst.queue.len() {
                if inst.queue[k].model == head.model {
                    members.push(inst.queue.remove(k));
                } else {
                    k += 1;
                }
            }
            inst.active = Some(ActiveBatch {
                model: head.model,
                priority: head.priority,
                start: t,
                next_layer: 0,
                contention: 0,
                needs_issue: true,
                members,
            });
        }

        // One arbitration round: every instance with a pending layer
        // requests its transfer; the policy fixes the grant order.
        let mut intents: Vec<(usize, u8)> = instances
            .iter()
            .enumerate()
            .filter_map(|(i, inst)| {
                inst.active
                    .as_ref()
                    .filter(|a| a.needs_issue)
                    .map(|a| (i, a.priority))
            })
            .collect();
        arbiter.order(&mut intents);
        for &(i, _) in &intents {
            let inst = &mut instances[i];
            let active = inst.active.as_mut().expect("intent from active batch");
            active.needs_issue = false;
            let layer = profiles[i][active.model].layers[active.next_layer];
            let m = active.members.len() as u64;
            // Batch cost model: the fill phase (weight loads) happens
            // once; steady/drain repeat per batched request. DRAM
            // traffic scales with the batch (an approximation — weights
            // are a fraction of it, but profiles do not split traffic
            // by operand).
            let batch_cycles = layer.cycles + (m - 1) * (layer.cycles - layer.fill_cycles);
            let grant = arbiter.acquire(i, t, layer.dram_elements * m);
            active.contention += grant.wait;
            let busy = (grant.wait + batch_cycles).max(1);
            inst.usage.busy_cycles += busy;
            heap.push(Reverse((t + busy, 1, seq, i)));
            seq += 1;
        }
    }

    for (i, inst) in instances.iter_mut().enumerate() {
        inst.usage.dram = arbiter.instance_counters()[i];
    }
    (
        records
            .into_iter()
            .map(|r| r.expect("every request completes"))
            .collect(),
        instances.into_iter().map(|inst| inst.usage).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::LayerProfile;

    /// Synthetic profiles: no engines involved, so these tests pin the
    /// event-loop semantics exactly.
    fn flat_profile(cycles_per_layer: u64, layers: usize, dram: u64, fill: u64) -> RequestProfile {
        let layer = LayerProfile {
            cycles: cycles_per_layer,
            dram_elements: dram,
            fill_cycles: fill,
        };
        RequestProfile {
            layers: vec![layer; layers],
            cycles: cycles_per_layer * layers as u64,
            total: Default::default(),
        }
    }

    fn one_class() -> Vec<ClassSpec> {
        vec![ClassSpec::default()]
    }

    fn narrow_dram() -> DramConfig {
        DramConfig {
            channels: 1,
            bandwidth_gbps_per_channel: 1.0,
            capacity_mib_per_channel: 1,
            latency_cycles: 0,
            clock_ghz: 1.0,
            element_bytes: 1,
        }
    }

    fn request(id: usize, arrival: u64, model: usize, class: usize) -> GeneratedRequest {
        GeneratedRequest {
            id,
            arrival,
            model,
            class,
        }
    }

    #[test]
    fn a_lone_request_takes_its_profile_cycles() {
        let profiles = vec![vec![flat_profile(100, 3, 0, 10)]];
        let workload = vec![request(0, 5, 0, 0)];
        let (records, usage) = simulate(
            &profiles,
            &workload,
            &one_class(),
            DramConfig::hbm2_dual(),
            ArbiterPolicy::RoundRobin,
            1,
        );
        assert_eq!(records[0].latency, 300);
        assert_eq!(records[0].queue_cycles, 0);
        assert_eq!(records[0].contention_cycles, 0);
        assert_eq!(usage[0].served, 1);
        assert_eq!(usage[0].busy_cycles, 300);
    }

    #[test]
    fn contention_on_a_narrow_channel_is_charged() {
        // Two instances, each 1 layer of 10 cycles moving 40 elements
        // over a 1-element/cycle single channel: the second grant waits.
        let profiles = vec![
            vec![flat_profile(10, 1, 40, 0)],
            vec![flat_profile(10, 1, 40, 0)],
        ];
        let workload = vec![request(0, 0, 0, 0), request(1, 0, 0, 0)];
        let (records, usage) = simulate(
            &profiles,
            &workload,
            &one_class(),
            narrow_dram(),
            ArbiterPolicy::RoundRobin,
            1,
        );
        let waits: Vec<u64> = records.iter().map(|r| r.contention_cycles).collect();
        assert_eq!(waits.iter().filter(|&&w| w == 0).count(), 1);
        assert_eq!(waits.iter().filter(|&&w| w == 40).count(), 1);
        assert_eq!(
            usage.iter().map(|u| u.dram.wait_cycles).sum::<u64>(),
            40,
            "arbiter counters agree with records"
        );
    }

    #[test]
    fn priority_class_jumps_the_queue() {
        // One instance busy with a long batch; two requests queue behind
        // it: a low-priority early arrival and a high-priority late one.
        let profiles = vec![vec![flat_profile(1000, 1, 0, 0)]];
        let classes = vec![
            ClassSpec {
                name: "lo".into(),
                weight: 1.0,
                priority: 0,
                sla_cycles: 0,
            },
            ClassSpec {
                name: "hi".into(),
                weight: 1.0,
                priority: 5,
                sla_cycles: 0,
            },
        ];
        let workload = vec![
            request(0, 0, 0, 0),
            request(1, 10, 0, 0),
            request(2, 20, 0, 1),
        ];
        let (records, _) = simulate(
            &profiles,
            &workload,
            &classes,
            DramConfig::hbm2_dual(),
            ArbiterPolicy::Priority,
            1,
        );
        assert!(
            records[2].start < records[1].start,
            "high priority served before the earlier low-priority request"
        );
    }

    #[test]
    fn batching_amortizes_the_fill_phase() {
        // Two same-model requests arriving together, window 2: one batch
        // of 100 + (100 - 40) = 160 cycles instead of two × 100.
        let profiles = vec![vec![flat_profile(100, 1, 0, 40)]];
        let workload = vec![request(0, 0, 0, 0), request(1, 0, 0, 0)];
        let (batched, usage) = simulate(
            &profiles,
            &workload,
            &one_class(),
            DramConfig::hbm2_dual(),
            ArbiterPolicy::RoundRobin,
            2,
        );
        assert_eq!(usage[0].batches, 1);
        assert_eq!(batched[1].finish, 160);
        let (unbatched, _) = simulate(
            &profiles,
            &workload,
            &one_class(),
            DramConfig::hbm2_dual(),
            ArbiterPolicy::RoundRobin,
            1,
        );
        assert!(unbatched[1].finish > batched[1].finish);
    }

    #[test]
    fn dispatch_prefers_the_cheaper_instance() {
        // Instance 1 runs the model 10× faster; both idle — request
        // lands on 1 despite the lowest-index tie-break.
        let profiles = vec![
            vec![flat_profile(1000, 1, 0, 0)],
            vec![flat_profile(100, 1, 0, 0)],
        ];
        let workload = vec![request(0, 0, 0, 0)];
        let (records, _) = simulate(
            &profiles,
            &workload,
            &one_class(),
            DramConfig::hbm2_dual(),
            ArbiterPolicy::RoundRobin,
            1,
        );
        assert_eq!(records[0].instance, 1);
    }

    #[test]
    fn the_loop_is_deterministic() {
        let profiles = vec![
            vec![flat_profile(70, 3, 50, 10), flat_profile(130, 2, 80, 20)],
            vec![flat_profile(90, 3, 50, 10), flat_profile(110, 2, 80, 20)],
        ];
        let workload: Vec<GeneratedRequest> = (0..40)
            .map(|k| request(k, (k as u64) * 37 % 500, k % 2, k % 2))
            .collect();
        let classes = vec![
            ClassSpec::default(),
            ClassSpec {
                name: "hi".into(),
                weight: 1.0,
                priority: 3,
                sla_cycles: 0,
            },
        ];
        let a = simulate(
            &profiles,
            &workload,
            &classes,
            narrow_dram(),
            ArbiterPolicy::Priority,
            4,
        );
        let b = simulate(
            &profiles,
            &workload,
            &classes,
            narrow_dram(),
            ArbiterPolicy::Priority,
            4,
        );
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.0.len(), 40, "every request completed");
    }
}
