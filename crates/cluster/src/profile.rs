//! Phase 1 of a cluster run: profile every (instance, model) pair once
//! with the cycle-level simulator.
//!
//! The event loop (phase 2) never invokes the engines; it replays these
//! profiles. That split is what makes cluster runs cheap (each unique
//! pair simulates once, then thousands of requests replay it) and
//! bitwise-reproducible: the profiles are a pure function of the request
//! — cache hits, store warmth, and serial-vs-pool execution cannot
//! change a single byte of them (the wave-parallel runner is bitwise
//! equal to serial, and the volatile cache counters are stripped).

use crate::spec::{parse_model, parse_scale, ClusterRequest};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use stonne::core::{NaturalOrder, SimCache, SimContext, SimStats};
use stonne::models::zoo;
use stonne::nn::params::{generate_input, ModelParams};
use stonne::nn::runner::{run_model_simulated_with, RunOptions};

/// How phase 1 executes its (instance, model) profiling runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One run after another on the calling thread.
    Serial,
    /// All runs fan out across the `stonne-nn` worker pool, each run
    /// itself using wave-parallel layer execution. Results are bitwise
    /// identical to [`ExecMode::Serial`].
    Pool,
}

/// One offloaded layer of a profiled inference, reduced to what the
/// event loop needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Cycles the layer occupies its instance.
    pub cycles: u64,
    /// Elements the layer moves over the shared DRAM (reads + writes).
    pub dram_elements: u64,
    /// Fill-phase cycles (weight/operand loading); amortized across a
    /// batch, since a batch loads weights once.
    pub fill_cycles: u64,
}

/// The full profile of one model on one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestProfile {
    /// Per-layer timeline, in execution order.
    pub layers: Vec<LayerProfile>,
    /// Total inference cycles (sum of layer cycles).
    pub cycles: u64,
    /// Aggregate engine statistics with the cache-volatile counters
    /// (`sim_cache_*`, `engine_invocations`) zeroed.
    pub total: SimStats,
}

/// Zeroes the counters that depend on cache warmth rather than on the
/// simulated work itself.
fn strip_volatile(stats: &mut SimStats) {
    stats.sim_cache_hits = 0;
    stats.sim_cache_misses = 0;
    stats.sim_cache_inserts = 0;
    stats.engine_invocations = 0;
    stats.tile_cache_hits = 0;
    stats.tile_cache_misses = 0;
    stats.tile_cache_assembled = 0;
}

/// Profiles one (instance, model) pair.
fn profile_one(
    request: &ClusterRequest,
    instance: usize,
    model_index: usize,
    cache: &SimCache,
    context: &SimContext,
    parallel: bool,
) -> Result<RequestProfile, String> {
    let spec = &request.instances[instance];
    let mut cfg = spec.config()?;
    // Profile with the cluster's shared-DRAM model enabled: layer cycles
    // then include each transfer's *uncontended* cost (the engine cache
    // is DRAM-agnostic, so this shares entries with plain sweep runs),
    // and the per-layer dram_reads/dram_writes counters populate. The
    // event loop charges only the additional arbitration wait on top.
    cfg.dram = request.dram.unwrap_or_default().config();
    cfg.model_dram = true;
    let model_ref = &request.models[model_index];
    let id = parse_model(&model_ref.name)?;
    let scale = parse_scale(&model_ref.scale)?;
    let model = zoo::build(id, scale);
    let sparsity = request.sparsity.unwrap_or_else(|| model.weight_sparsity());
    let params = ModelParams::generate_with_sparsity(&model, request.seed, sparsity);
    let input = generate_input(&model, request.seed ^ 1);
    let mut options = RunOptions::new()
        .with_context(context.clone())
        .with_cache(cache.clone());
    if parallel {
        options = options.parallel();
    }
    let run = run_model_simulated_with(
        &model,
        &params,
        &input,
        cfg,
        Arc::new(NaturalOrder),
        options,
    )
    .map_err(|e| e.to_string())?;
    let layers: Vec<LayerProfile> = run
        .layers
        .iter()
        .map(|l| LayerProfile {
            cycles: l.stats.cycles,
            dram_elements: l.stats.counters.dram_reads + l.stats.counters.dram_writes,
            fill_cycles: l.stats.breakdown.fill_cycles.min(l.stats.cycles),
        })
        .collect();
    let mut total = run.total;
    strip_volatile(&mut total);
    Ok(RequestProfile {
        cycles: layers.iter().map(|l| l.cycles).sum(),
        layers,
        total,
    })
}

/// Profiles every (instance, model) pair of `request`, returning
/// `profiles[instance][model]`.
///
/// # Errors
///
/// Returns the first configuration/parse error (none after
/// [`ClusterRequest::validate`]) or a worker-pool failure.
pub fn build_profiles(
    request: &ClusterRequest,
    cache: &SimCache,
    mode: ExecMode,
) -> Result<Vec<Vec<RequestProfile>>, String> {
    let instances = request.instances.len();
    let models = request.models.len();
    // One tile-record context for the whole profiling phase: every
    // (instance, model) pair reuses per-tile timing records across runs
    // instead of rebuilding scratch state per pair. Records replay exact
    // stats, and `strip_volatile` drops the hit/miss bookkeeping, so the
    // profiles stay a pure function of the request.
    let context = SimContext::new();
    let flat: Vec<RequestProfile> = match mode {
        ExecMode::Serial => {
            let mut out = Vec::with_capacity(instances * models);
            for i in 0..instances {
                for m in 0..models {
                    out.push(profile_one(request, i, m, cache, &context, false)?);
                }
            }
            out
        }
        ExecMode::Pool => {
            let tasks: Vec<_> = (0..instances * models)
                .map(|k| {
                    let request = request.clone();
                    let cache = cache.clone();
                    let context = context.clone();
                    move || profile_one(&request, k / models, k % models, &cache, &context, true)
                })
                .collect();
            stonne::nn::run_parallel(tasks)
                .map_err(|e| e.to_string())?
                .into_iter()
                .collect::<Result<Vec<_>, String>>()?
        }
    };
    let mut flat = flat.into_iter();
    Ok((0..instances)
        .map(|_| {
            (0..models)
                .map(|_| flat.next().expect("sized above"))
                .collect()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{InstanceSpec, ModelRef};

    fn tiny_request() -> ClusterRequest {
        ClusterRequest {
            name: String::new(),
            instances: vec![
                InstanceSpec {
                    arch: "maeri".into(),
                    ms: 64,
                    bw: 32,
                },
                InstanceSpec {
                    arch: "tpu".into(),
                    ms: 16,
                    bw: 0,
                },
            ],
            models: vec![
                ModelRef {
                    name: "alexnet".into(),
                    scale: "tiny".into(),
                },
                ModelRef {
                    name: "squeezenet".into(),
                    scale: String::new(),
                },
            ],
            classes: Vec::new(),
            requests: 8,
            rates: Vec::new(),
            batch: 1,
            policy: String::new(),
            seed: 7,
            sparsity: None,
            dram: None,
        }
    }

    #[test]
    fn serial_and_pool_profiles_are_bitwise_equal() {
        let request = tiny_request();
        let serial = build_profiles(&request, &SimCache::new(), ExecMode::Serial).unwrap();
        let pool = build_profiles(&request, &SimCache::new(), ExecMode::Pool).unwrap();
        assert_eq!(serial, pool);
        assert_eq!(serial.len(), 2);
        assert_eq!(serial[0].len(), 2);
        for row in &serial {
            for profile in row {
                assert!(profile.cycles > 0);
                assert!(!profile.layers.is_empty());
                assert_eq!(
                    profile.cycles,
                    profile.layers.iter().map(|l| l.cycles).sum::<u64>()
                );
                assert_eq!(profile.total.engine_invocations, 0, "volatile stripped");
                assert!(profile.layers.iter().any(|l| l.dram_elements > 0));
            }
        }
        // Heterogeneity is real: the two instances disagree on cost.
        assert_ne!(serial[0][0].cycles, serial[1][0].cycles);
    }

    #[test]
    fn profiles_are_cache_warmth_invariant() {
        let request = tiny_request();
        let shared = SimCache::new();
        let cold = build_profiles(&request, &shared, ExecMode::Serial).unwrap();
        let warm = build_profiles(&request, &shared, ExecMode::Serial).unwrap();
        assert_eq!(cold, warm);
    }
}
