//! End-to-end cluster gates: bitwise determinism (two runs, and serial
//! vs worker-pool execution), visible DRAM-arbiter contention, and a
//! committed golden fixture of the fixed-seed acceptance scenario.
//!
//! Re-bless after an intentional timing change with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p stonne-cluster --test cluster_scenario
//! ```

use std::fs;
use std::path::PathBuf;
use stonne::core::SimCache;
use stonne_cluster::{run_cluster, ClusterRequest, ExecMode};

/// The acceptance scenario: two heterogeneous instances, two zoo
/// models, two priority classes, Poisson arrivals at two rates, batching
/// window 2, priority DRAM arbitration, and a deliberately narrow shared
/// memory system (one channel at 8 GB/s) so arbitration wait is visible.
fn scenario() -> ClusterRequest {
    serde_json::from_str(
        r#"{
            "name": "acceptance",
            "instances": [
                {"arch": "maeri", "ms": 64, "bw": 32},
                {"arch": "tpu", "ms": 16}
            ],
            "models": [
                {"name": "alexnet", "scale": "tiny"},
                {"name": "squeezenet", "scale": "tiny"}
            ],
            "classes": [
                {"name": "interactive", "weight": 1.0, "priority": 2, "sla_cycles": 3000000},
                {"name": "batch", "weight": 3.0}
            ],
            "requests": 24,
            "rates": [0.5, 2.0],
            "batch": 2,
            "policy": "priority",
            "seed": 7,
            "dram": {"channels": 1, "bandwidth_gbps": 8.0}
        }"#,
    )
    .expect("scenario parses")
}

#[test]
fn reports_are_bitwise_deterministic_across_runs_and_exec_modes() {
    let request = scenario();
    let serial = run_cluster(&request, &SimCache::new(), ExecMode::Serial).unwrap();
    let pool_a = run_cluster(&request, &SimCache::new(), ExecMode::Pool).unwrap();
    let pool_b = run_cluster(&request, &SimCache::new(), ExecMode::Pool).unwrap();

    assert_eq!(
        pool_a.report.render(),
        pool_b.report.render(),
        "same seed + config must render identical bytes"
    );
    assert_eq!(
        serial.report.render(),
        pool_a.report.render(),
        "serial and worker-pool execution must agree byte-for-byte"
    );
    // Per-request agreement, not just aggregates: every generated request
    // finishes on the same cycle either way.
    assert_eq!(serial.per_request, pool_a.per_request);
    for records in &serial.per_request {
        assert_eq!(records.len(), 24);
        for r in records {
            assert!(r.finish > r.arrival);
            assert_eq!(r.latency, r.finish - r.arrival);
        }
    }
}

#[test]
fn arbiter_contention_is_visible_in_per_instance_stats() {
    let request = scenario();
    let outcome = run_cluster(&request, &SimCache::new(), ExecMode::Pool).unwrap();
    // The high-rate scenario on a single narrow channel must show wait.
    let busy = outcome.report.scenarios.last().unwrap();
    let total_wait: u64 = busy.instances.iter().map(|i| i.dram_wait_cycles).sum();
    assert!(total_wait > 0, "no contention on a 1-channel 8 GB/s DRAM");
    for instance in busy.instances.iter() {
        assert_eq!(
            instance.stats.dram_contention_cycles, instance.dram_wait_cycles,
            "SimStats must surface the arbiter wait"
        );
        assert!(
            instance.dram_elements > 0,
            "served layers move DRAM traffic"
        );
        assert!(
            instance.requests > 0,
            "dispatch starved instance {}",
            instance.index
        );
    }
    // Both priority classes got traffic, and the high-priority class's
    // median latency does not exceed the low-priority one's under the
    // priority policy.
    let [hot, cold] = &busy.classes[..] else {
        panic!("expected two classes");
    };
    assert!(hot.latency.count > 0 && cold.latency.count > 0);
    assert!(hot.priority > cold.priority);
    assert!(
        hot.latency.p50 <= cold.latency.p50,
        "priority class p50 {} > default p50 {}",
        hot.latency.p50,
        cold.latency.p50
    );
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("cluster_scenario.json")
}

#[test]
fn acceptance_scenario_matches_the_golden_fixture() {
    let rendered = run_cluster(&scenario(), &SimCache::new(), ExecMode::Pool)
        .unwrap()
        .report
        .render();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &rendered).unwrap();
        eprintln!("blessed {path:?}");
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {path:?} ({e}); bless with UPDATE_GOLDEN=1")
    });
    assert_eq!(
        rendered, golden,
        "cluster report drifted from {path:?}; re-bless with UPDATE_GOLDEN=1 if intentional"
    );
}
