//! Golden end-to-end check of the tracing pipeline: a traced systolic
//! GEMM must export valid Chrome-trace JSON whose Controller span cycles
//! sum exactly to the reported `total_cycles`, and the counter file must
//! round-trip through the parser consistently with counter merging.

use stonne_core::{
    chrome_trace_json, counter_file, parse_counter_file, trace, AcceleratorConfig, Component,
    Stonne,
};
use stonne_tensor::{Matrix, SeededRng};

#[test]
fn traced_systolic_gemm_exports_consistent_chrome_trace() {
    let mut rng = SeededRng::new(42);
    let a = Matrix::random(24, 32, &mut rng);
    let b = Matrix::random(32, 24, &mut rng);
    let mut sim = Stonne::new(AcceleratorConfig::tpu_like(16)).unwrap();

    trace::start(trace::DEFAULT_CAPACITY);
    let (_, stats) = sim.run_gemm("golden", &a, &b);
    let captured = trace::finish().expect("tracing was started");

    assert!(captured.dropped() == 0, "ring must not wrap for this size");
    // The Controller track tiles the whole run: fill + stream + drain per
    // tile, back to back. Its span sum IS the cycle count.
    assert_eq!(captured.span_cycles(Component::Controller), stats.cycles);
    assert_eq!(stats.breakdown.total(), stats.cycles);

    let json = chrome_trace_json(&captured);
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("export is valid JSON");
    let events = parsed["traceEvents"].as_array().expect("traceEvents array");

    // Re-derive the Controller span sum from the *exported* JSON.
    let ctrl_tid = Component::Controller.track_id();
    let exported_sum: u64 = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("X") && e["tid"].as_u64() == Some(ctrl_tid))
        .map(|e| e["dur"].as_u64().unwrap())
        .sum();
    assert_eq!(exported_sum, stats.cycles);

    // Every component track is named in the metadata.
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e["name"].as_str() == Some("thread_name"))
        .filter_map(|e| e["args"]["name"].as_str())
        .collect();
    for component in Component::ALL {
        assert!(names.contains(&component.label()), "{:?}", component);
    }
}

#[test]
fn disabled_tracing_changes_no_statistics() {
    let mut rng = SeededRng::new(43);
    let a = Matrix::random(16, 16, &mut rng);
    let b = Matrix::random(16, 16, &mut rng);
    let cfg = AcceleratorConfig::maeri_like(64, 16);

    let mut plain = Stonne::new(cfg.clone()).unwrap();
    let (_, untraced) = plain.run_gemm("g", &a, &b);

    trace::start(1024);
    let mut traced = Stonne::new(cfg).unwrap();
    let (_, with_trace) = traced.run_gemm("g", &a, &b);
    let t = trace::finish().unwrap();

    assert!(!t.events().is_empty());
    assert_eq!(untraced.cycles, with_trace.cycles);
    assert_eq!(untraced.counters, with_trace.counters);
}

#[test]
fn counter_file_roundtrip_matches_counter_merge() {
    let mut rng = SeededRng::new(44);
    let a = Matrix::random(8, 16, &mut rng);
    let b = Matrix::random(16, 8, &mut rng);
    let mut sim = Stonne::new(AcceleratorConfig::sigma_like(64, 64)).unwrap();
    sim.run_gemm("g1", &a, &b);
    sim.run_gemm("g2", &a, &b);

    // Parse each per-op counter file and sum the parsed values; the sums
    // must equal the counter file of the merged stats (AddAssign path).
    let mut summed: std::collections::BTreeMap<String, u64> = Default::default();
    for stats in sim.history() {
        for (name, value) in parse_counter_file(&counter_file(stats)) {
            *summed.entry(name).or_insert(0) += value;
        }
    }
    let aggregate = sim.aggregate_stats();
    for (name, value) in parse_counter_file(&counter_file(&aggregate)) {
        assert_eq!(summed.get(&name), Some(&value), "{name}");
    }
}
