//! Property-based tests over the cycle-level engines: conservation laws
//! and monotonicity properties every valid simulation must satisfy.

use proptest::prelude::*;
use stonne_core::{AcceleratorConfig, NaturalOrder, Stonne};
use stonne_tensor::{CsrMatrix, Matrix, SeededRng};

fn operands(m: usize, n: usize, k: usize, seed: u64) -> (Matrix, Matrix) {
    let mut rng = SeededRng::new(seed);
    (
        Matrix::random(m, k, &mut rng),
        Matrix::random(k, n, &mut rng),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Busy multiplier-cycles can never exceed the array-cycles product.
    #[test]
    fn busy_cycles_bounded_by_capacity(
        m in 1usize..24, n in 1usize..24, k in 1usize..48, seed in 0u64..400
    ) {
        let (a, b) = operands(m, n, k, seed);
        for cfg in [
            AcceleratorConfig::tpu_like(8),
            AcceleratorConfig::maeri_like(64, 16),
            AcceleratorConfig::sigma_like(64, 64),
        ] {
            let mut sim = Stonne::new(cfg).unwrap();
            let (_, stats) = sim.run_gemm("p", &a, &b);
            prop_assert!(
                stats.ms_busy_cycles <= stats.cycles * stats.ms_size as u64,
                "busy {} > {} x {}",
                stats.ms_busy_cycles, stats.cycles, stats.ms_size
            );
            prop_assert!(stats.ms_utilization() <= 1.0 + 1e-12);
        }
    }

    /// The dense engines execute exactly M·N·K multiplications; the GB
    /// must be read at least once per unique operand element.
    #[test]
    fn dense_op_and_traffic_conservation(
        m in 1usize..16, n in 1usize..16, k in 1usize..32, seed in 0u64..400
    ) {
        let (a, b) = operands(m, n, k, seed);
        let mut sim = Stonne::new(AcceleratorConfig::maeri_like(64, 16)).unwrap();
        let (_, stats) = sim.run_gemm("p", &a, &b);
        prop_assert_eq!(stats.counters.multiplications, (m * n * k) as u64);
        prop_assert!(stats.counters.gb_reads >= (m * k).max(k * n) as u64);
        prop_assert_eq!(stats.counters.gb_writes, (m * n) as u64);
    }

    /// A larger problem never takes fewer cycles on rigid hardware.
    /// (Flexible engines re-tile per shape, so their cycle counts are
    /// only monotone per mapping — covered by the fixed-tile property
    /// below.)
    #[test]
    fn cycles_monotone_in_inner_dimension_on_rigid_arrays(
        m in 1usize..12, n in 1usize..12, k in 2usize..32, seed in 0u64..400
    ) {
        let (a_big, b_big) = operands(m, n, k, seed);
        let (a_small, b_small) = operands(m, n, k - 1, seed);
        let cfg = AcceleratorConfig::tpu_like(4);
        let mut sim = Stonne::new(cfg.clone()).unwrap();
        let (_, big) = sim.run_gemm("p", &a_big, &b_big);
        let mut sim = Stonne::new(cfg).unwrap();
        let (_, small) = sim.run_gemm("p", &a_small, &b_small);
        prop_assert!(
            big.cycles >= small.cycles,
            "K={k} ({}) < K={} ({})",
            big.cycles, k - 1, small.cycles
        );
    }

    /// Sparse-engine multiplications equal nnz·N exactly (no zero work),
    /// and stall accounting stays inside the total.
    #[test]
    fn sparse_conservation(
        m in 1usize..20, n in 1usize..10, k in 1usize..48,
        sparsity in 0.0f64..0.95, seed in 0u64..400
    ) {
        let mut rng = SeededRng::new(seed);
        let mut a = Matrix::random(m, k, &mut rng);
        stonne_tensor::prune_matrix_to_sparsity(&mut a, sparsity);
        let b = Matrix::random(k, n, &mut rng);
        let csr = CsrMatrix::from_dense(&a);
        let mut sim = Stonne::new(AcceleratorConfig::sigma_like(32, 16)).unwrap();
        let run = sim.run_spmm_scheduled("p", &csr, &b, &NaturalOrder);
        let s = &run.stats;
        prop_assert_eq!(s.counters.multiplications, (csr.nnz() * n) as u64);
        prop_assert!(s.bandwidth_stall_cycles <= s.cycles);
        prop_assert!(s.compute_cycles <= s.cycles);
        // Packing never over-fills the array.
        for it in &run.iterations {
            prop_assert!(it.ms_occupied <= 32);
            prop_assert!(it.distinct_k <= it.ms_occupied);
        }
    }

    /// Halving the bandwidth never speeds up a fixed mapping.
    #[test]
    fn bandwidth_monotonicity_under_fixed_tile(
        m in 2usize..12, n in 2usize..16, k in 2usize..48, seed in 0u64..400
    ) {
        use stonne_core::{LayerDims, Tile};
        let (a, b) = operands(m, n, k, seed);
        let layer = LayerDims::from_gemm(m, n, k);
        let tile = Tile::auto(&layer, 64);
        let mut prev = 0u64;
        for bw in [64usize, 16, 4] {
            let mut sim = Stonne::new(AcceleratorConfig::maeri_like(64, bw)).unwrap();
            let (_, stats) = sim.run_gemm_tiled("p", &a, &b, &tile);
            prop_assert!(stats.cycles >= prev, "bw {bw}: {} < {prev}", stats.cycles);
            prev = stats.cycles;
        }
    }

    /// Auto tiles always validate and never exceed the array.
    #[test]
    fn auto_tiles_always_fit(
        r in 1usize..6, s in 1usize..6, c in 1usize..64, kf in 1usize..64,
        xp in 1usize..20, yp in 1usize..20, ms_pow in 3u32..9, bw in 1usize..128
    ) {
        use stonne_core::{LayerDims, Tile};
        let ms = 1usize << ms_pow;
        let layer = LayerDims { r, s, c, k: kf, g: 1, n: 1, xp, yp, stride: 1 };
        for tile in [Tile::auto(&layer, ms), Tile::auto_bw(&layer, ms, bw)] {
            prop_assert!(tile.validate(&layer, ms).is_ok(), "{tile:?} on ms={ms}");
            prop_assert!(tile.ms_used() <= ms);
        }
    }

    /// The STONNE API rejects mismatched operands but never panics.
    #[test]
    fn api_is_total_on_mismatches(ma in 1usize..6, ka in 1usize..6, kb in 1usize..6, nb in 1usize..6) {
        use stonne_core::{Instruction, OpConfig, OperandData, StonneMachine};
        let mut rng = SeededRng::new(1);
        let a = Matrix::random(ma, ka, &mut rng);
        let b = Matrix::random(kb, nb, &mut rng);
        let mut machine = StonneMachine::new();
        machine
            .execute(Instruction::CreateInstance(AcceleratorConfig::maeri_like(32, 8)))
            .unwrap();
        machine.execute(Instruction::Configure(OpConfig::Dmm)).unwrap();
        machine
            .execute(Instruction::ConfigureData(OperandData::Matrices { a, b }))
            .unwrap();
        let result = machine.execute(Instruction::RunOperation { name: "p".into() });
        if ka == kb {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err());
        }
    }
}
