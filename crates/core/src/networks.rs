//! On-chip network models: distribution, multiplier and reduction tiers.
//!
//! Each tier follows the paper's taxonomy (Section IV-A). The models are
//! cycle-cost + activity-accounting components the engines compose: a
//! distribution network turns "deliver `u` unique values to `d`
//! multipliers" into injection cycles (bounded by the GB read bandwidth)
//! plus switch/wire activity; a reduction network turns "reduce these
//! cluster sizes" into adder operations and pipeline latency.

use crate::config::{DnKind, MnKind, RnKind};
use crate::stats::ActivityCounters;
use serde::{Deserialize, Serialize};

/// Ceiling log2 for sizing tree depths (`ceil_log2(1) == 0`).
pub(crate) fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Distribution network instance over `ms_size` leaves with a given
/// injection bandwidth (elements/cycle from the Global Buffer read ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributionNetwork {
    kind: DnKind,
    ms_size: usize,
    bandwidth: usize,
}

impl DistributionNetwork {
    /// Creates a distribution network model.
    ///
    /// # Panics
    ///
    /// Panics if `ms_size` or `bandwidth` is zero.
    pub fn new(kind: DnKind, ms_size: usize, bandwidth: usize) -> Self {
        assert!(ms_size > 0 && bandwidth > 0);
        Self {
            kind,
            ms_size,
            bandwidth,
        }
    }

    /// Network kind.
    pub fn kind(&self) -> DnKind {
        self.kind
    }

    /// Injection bandwidth in elements/cycle.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    /// Tree/Benes depth in switch levels.
    pub fn depth(&self) -> u32 {
        match self.kind {
            DnKind::Tree => ceil_log2(self.ms_size),
            // Benes: 2·log2(N)+1 levels of 2x2 switches.
            DnKind::Benes => 2 * ceil_log2(self.ms_size) + 1,
            DnKind::PointToPoint => 1,
        }
    }

    /// Cycles to deliver `unique` distinct values (any multicast fan-out is
    /// single-cycle in all three topologies, so only the unique-value count
    /// meets the bandwidth bound).
    pub fn delivery_cycles(&self, unique: usize) -> u64 {
        (unique as u64).div_ceil(self.bandwidth as u64)
    }

    /// Records the activity of delivering `unique` values to `dests`
    /// multipliers: injections, switch traversals and wire hops.
    ///
    /// Wire accounting uses the Steiner-subtree approximation: a multicast
    /// of one value to `d` leaves crosses about `depth + d` edges in a
    /// binary tree; Benes traffic crosses each of its `2·log2(N)+1` levels
    /// once per destination; point-to-point crosses one dedicated link per
    /// destination.
    pub fn account(&self, counters: &mut ActivityCounters, unique: usize, dests: usize) {
        counters.dn_injections += unique as u64;
        match self.kind {
            DnKind::Tree => {
                counters.dn_switch_traversals += (unique as u64) * self.depth() as u64;
                counters.dn_wire_hops += unique as u64 * self.depth() as u64 + dests as u64;
            }
            DnKind::Benes => {
                counters.dn_switch_traversals += dests as u64 * self.depth() as u64;
                counters.dn_wire_hops += dests as u64 * (self.depth() as u64 + 1);
            }
            DnKind::PointToPoint => {
                counters.dn_switch_traversals += 0;
                counters.dn_wire_hops += dests as u64;
            }
        }
    }
}

/// Multiplier-network model: the array of multiplier switches plus the
/// optional forwarding links of the linear topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiplierNetwork {
    kind: MnKind,
    ms_size: usize,
}

impl MultiplierNetwork {
    /// Creates a multiplier network model.
    pub fn new(kind: MnKind, ms_size: usize) -> Self {
        Self { kind, ms_size }
    }

    /// Network kind.
    pub fn kind(&self) -> MnKind {
        self.kind
    }

    /// Whether neighbouring multipliers can forward operands/psums.
    pub fn supports_forwarding(&self) -> bool {
        self.kind == MnKind::Linear
    }

    /// Records `mults` multiplications plus `forwards` neighbour-link
    /// transfers (forwards are only legal on the linear topology).
    ///
    /// # Panics
    ///
    /// Panics when forwarding is requested on a disabled MN.
    pub fn account(&self, counters: &mut ActivityCounters, mults: u64, forwards: u64) {
        if forwards > 0 {
            assert!(
                self.supports_forwarding(),
                "disabled multiplier network has no forwarding links"
            );
        }
        counters.multiplications += mults;
        counters.mn_forwards += forwards;
    }
}

/// Outcome of reducing a set of clusters through a reduction network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReduceOutcome {
    /// Adder operations performed.
    pub adder_ops: u64,
    /// Pipeline latency in cycles from last multiply to first output.
    pub latency: u64,
    /// Additional cycles when the RN serializes (linear reduction).
    pub serial_cycles: u64,
}

/// Reduction-network model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionNetwork {
    kind: RnKind,
    ms_size: usize,
    bandwidth: usize,
}

impl ReductionNetwork {
    /// Creates a reduction network model.
    ///
    /// # Panics
    ///
    /// Panics if `ms_size` or `bandwidth` is zero.
    pub fn new(kind: RnKind, ms_size: usize, bandwidth: usize) -> Self {
        assert!(ms_size > 0 && bandwidth > 0);
        Self {
            kind,
            ms_size,
            bandwidth,
        }
    }

    /// Network kind.
    pub fn kind(&self) -> RnKind {
        self.kind
    }

    /// Collection bandwidth (elements/cycle into the GB).
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    /// Whether the network holds an accumulation buffer at its output
    /// (psums from consecutive folds accumulate without GB round-trips).
    pub fn has_accumulators(&self) -> bool {
        matches!(self.kind, RnKind::ArtAcc | RnKind::Linear)
    }

    /// Whether arbitrary simultaneous cluster sizes are supported
    /// (tree-shaped RNs); the linear RN reduces one cluster per lane
    /// serially.
    pub fn supports_clusters(&self) -> bool {
        !matches!(self.kind, RnKind::Linear)
    }

    /// Pipeline depth in adder levels.
    pub fn depth(&self) -> u32 {
        match self.kind {
            RnKind::Linear => 1,
            _ => ceil_log2(self.ms_size),
        }
    }

    /// Cost of reducing the given simultaneous cluster sizes (one set per
    /// compute step). Tree RNs (ART/FAN) reduce all clusters in parallel
    /// with `ceil(log2(max))` latency and full pipelining; the linear RN
    /// accumulates each cluster serially.
    pub fn reduce(&self, cluster_sizes: &[usize]) -> ReduceOutcome {
        let adder_ops: u64 = cluster_sizes
            .iter()
            .map(|&s| s.saturating_sub(1) as u64)
            .sum();
        match self.kind {
            RnKind::Linear => {
                let max = cluster_sizes.iter().copied().max().unwrap_or(0) as u64;
                ReduceOutcome {
                    adder_ops,
                    latency: 1,
                    serial_cycles: max.saturating_sub(1),
                }
            }
            _ => {
                let max = cluster_sizes.iter().copied().max().unwrap_or(0);
                ReduceOutcome {
                    adder_ops,
                    latency: ceil_log2(max.max(1)) as u64,
                    serial_cycles: 0,
                }
            }
        }
    }

    /// [`ReductionNetwork::reduce`] for `count` clusters of one uniform
    /// `size` — the shape every steady-state engine step produces — in
    /// O(1) without materializing the size slice. Equivalent to
    /// `self.reduce(&vec![size; count])`.
    pub fn reduce_uniform(&self, size: usize, count: usize) -> ReduceOutcome {
        let adder_ops = size.saturating_sub(1) as u64 * count as u64;
        let max = if count == 0 { 0 } else { size };
        match self.kind {
            RnKind::Linear => ReduceOutcome {
                adder_ops,
                latency: 1,
                serial_cycles: (max as u64).saturating_sub(1),
            },
            _ => ReduceOutcome {
                adder_ops,
                latency: ceil_log2(max.max(1)) as u64,
                serial_cycles: 0,
            },
        }
    }

    /// Cycles to collect `outputs` reduced values into the GB.
    pub fn collection_cycles(&self, outputs: usize) -> u64 {
        (outputs as u64).div_ceil(self.bandwidth as u64)
    }

    /// Records collection + accumulation activity.
    pub fn account(&self, counters: &mut ActivityCounters, outcome: ReduceOutcome, outputs: u64) {
        counters.rn_adder_ops += outcome.adder_ops;
        counters.rn_collections += outputs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(256), 8);
    }

    #[test]
    fn tree_depth_is_log2() {
        let dn = DistributionNetwork::new(DnKind::Tree, 64, 16);
        assert_eq!(dn.depth(), 6);
    }

    #[test]
    fn benes_depth_matches_paper_formula() {
        // Paper: 2·log(N)+1 levels.
        let dn = DistributionNetwork::new(DnKind::Benes, 128, 128);
        assert_eq!(dn.depth(), 2 * 7 + 1);
    }

    #[test]
    fn delivery_is_bandwidth_bound() {
        let dn = DistributionNetwork::new(DnKind::Tree, 128, 4);
        assert_eq!(dn.delivery_cycles(15), 4);
        assert_eq!(dn.delivery_cycles(16), 4);
        assert_eq!(dn.delivery_cycles(17), 5);
        assert_eq!(dn.delivery_cycles(0), 0);
    }

    #[test]
    fn account_counts_unique_injections() {
        let dn = DistributionNetwork::new(DnKind::Tree, 16, 4);
        let mut c = ActivityCounters::default();
        dn.account(&mut c, 5, 12);
        assert_eq!(c.dn_injections, 5);
        assert!(c.dn_wire_hops > 0);
        assert!(c.dn_switch_traversals > 0);
    }

    #[test]
    fn tree_rn_reduces_in_log_latency() {
        let rn = ReductionNetwork::new(RnKind::Fan, 128, 128);
        let out = rn.reduce(&[32, 32, 64]);
        assert_eq!(out.adder_ops, 31 + 31 + 63);
        assert_eq!(out.latency, 6);
        assert_eq!(out.serial_cycles, 0);
    }

    #[test]
    fn reduce_uniform_matches_naive_reduce() {
        for kind in [RnKind::Art, RnKind::ArtAcc, RnKind::Fan, RnKind::Linear] {
            let rn = ReductionNetwork::new(kind, 128, 16);
            for size in [0, 1, 2, 3, 7, 16, 128] {
                for count in [0, 1, 2, 5, 64] {
                    assert_eq!(
                        rn.reduce_uniform(size, count),
                        rn.reduce(&vec![size; count]),
                        "{kind:?} size {size} count {count}"
                    );
                }
            }
        }
    }

    #[test]
    fn linear_rn_serializes() {
        let rn = ReductionNetwork::new(RnKind::Linear, 256, 16);
        let out = rn.reduce(&[16, 16]);
        assert_eq!(out.serial_cycles, 15);
        assert!(!rn.supports_clusters());
        assert!(rn.has_accumulators());
    }

    #[test]
    fn art_acc_has_accumulators_plain_art_does_not() {
        assert!(ReductionNetwork::new(RnKind::ArtAcc, 64, 8).has_accumulators());
        assert!(!ReductionNetwork::new(RnKind::Art, 64, 8).has_accumulators());
        assert!(!ReductionNetwork::new(RnKind::Fan, 64, 8).has_accumulators());
    }

    #[test]
    fn collection_is_bandwidth_bound() {
        let rn = ReductionNetwork::new(RnKind::Art, 64, 4);
        assert_eq!(rn.collection_cycles(9), 3);
    }

    #[test]
    #[should_panic(expected = "no forwarding links")]
    fn disabled_mn_rejects_forwards() {
        let mn = MultiplierNetwork::new(MnKind::Disabled, 64);
        let mut c = ActivityCounters::default();
        mn.account(&mut c, 1, 1);
    }

    #[test]
    fn linear_mn_counts_forwards() {
        let mn = MultiplierNetwork::new(MnKind::Linear, 64);
        let mut c = ActivityCounters::default();
        mn.account(&mut c, 10, 5);
        assert_eq!(c.multiplications, 10);
        assert_eq!(c.mn_forwards, 5);
    }
}
