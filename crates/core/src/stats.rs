//! Simulation statistics: per-component activity counters and the
//! summary/counter-file output of the paper's Output Module.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Per-component activity counters.
///
/// These are the "activity counts for each component of the architecture
/// (e.g., multiplier, wire, adder, …)" the paper's counter file records;
/// the energy model turns them into consumed energy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityCounters {
    /// Multiplications performed by multiplier switches.
    pub multiplications: u64,
    /// Additions performed by reduction-network adders.
    pub rn_adder_ops: u64,
    /// Accumulator-buffer updates (ART+ACC / output-stationary registers).
    pub accumulator_updates: u64,
    /// Elements injected into the distribution network.
    pub dn_injections: u64,
    /// Switch traversals inside the distribution network.
    pub dn_switch_traversals: u64,
    /// Wire-segment hops inside the distribution network.
    pub dn_wire_hops: u64,
    /// Operand forwards over multiplier-network links.
    pub mn_forwards: u64,
    /// Elements collected from the reduction network into the GB.
    pub rn_collections: u64,
    /// Global-buffer element reads.
    pub gb_reads: u64,
    /// Global-buffer element writes.
    pub gb_writes: u64,
    /// FIFO push operations across all queues.
    pub fifo_pushes: u64,
    /// FIFO pop operations across all queues.
    pub fifo_pops: u64,
    /// Elements read from DRAM.
    pub dram_reads: u64,
    /// Elements written to DRAM.
    pub dram_writes: u64,
    /// Lookups of sparse metadata (bitmap words / CSR indices).
    pub metadata_reads: u64,
}

impl AddAssign for ActivityCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.multiplications += rhs.multiplications;
        self.rn_adder_ops += rhs.rn_adder_ops;
        self.accumulator_updates += rhs.accumulator_updates;
        self.dn_injections += rhs.dn_injections;
        self.dn_switch_traversals += rhs.dn_switch_traversals;
        self.dn_wire_hops += rhs.dn_wire_hops;
        self.mn_forwards += rhs.mn_forwards;
        self.rn_collections += rhs.rn_collections;
        self.gb_reads += rhs.gb_reads;
        self.gb_writes += rhs.gb_writes;
        self.fifo_pushes += rhs.fifo_pushes;
        self.fifo_pops += rhs.fifo_pops;
        self.dram_reads += rhs.dram_reads;
        self.dram_writes += rhs.dram_writes;
        self.metadata_reads += rhs.metadata_reads;
    }
}

impl ActivityCounters {
    /// Total arithmetic operations (multiplies + adds).
    pub fn total_ops(&self) -> u64 {
        self.multiplications + self.rn_adder_ops + self.accumulator_updates
    }

    /// Total memory accesses (GB + DRAM element transfers).
    pub fn total_memory_accesses(&self) -> u64 {
        self.gb_reads + self.gb_writes + self.dram_reads + self.dram_writes
    }
}

/// Per-phase cycle accounting: where the cycles of an operation went.
///
/// The six buckets partition `SimStats::cycles` exactly —
/// [`CycleBreakdown::total`] equals the operation's `cycles` for every
/// engine (tested). Fill/steady/drain follow the classic dataflow
/// pipeline phases; the three stall buckets split wait cycles by cause so
/// a bottleneck (memory vs distribution bandwidth vs reduction) is
/// readable straight off the summary JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Cycles spent loading operands/weights before compute can start
    /// (array fill, tile weight loads, sparse operand loads).
    pub fill_cycles: u64,
    /// Cycles in which the multiplier substrate advanced at full rate.
    pub steady_cycles: u64,
    /// Cycles flushing the pipeline / collecting the last partial sums.
    pub drain_cycles: u64,
    /// Stall cycles exposed by DRAM past double buffering.
    pub dram_stall_cycles: u64,
    /// Stall cycles from distribution/FIFO backpressure (delivery slower
    /// than one operand set per cycle).
    pub fifo_stall_cycles: u64,
    /// Stall cycles waiting on reduction/collection bandwidth.
    pub reduction_stall_cycles: u64,
}

impl CycleBreakdown {
    /// Sum of all six buckets; equals the operation's total cycles.
    pub fn total(&self) -> u64 {
        self.fill_cycles
            + self.steady_cycles
            + self.drain_cycles
            + self.dram_stall_cycles
            + self.fifo_stall_cycles
            + self.reduction_stall_cycles
    }

    /// Multiplies every bucket by `k` (layer-dedup scaling).
    pub fn scale(&mut self, k: u64) {
        self.fill_cycles *= k;
        self.steady_cycles *= k;
        self.drain_cycles *= k;
        self.dram_stall_cycles *= k;
        self.fifo_stall_cycles *= k;
        self.reduction_stall_cycles *= k;
    }
}

impl AddAssign for CycleBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.fill_cycles += rhs.fill_cycles;
        self.steady_cycles += rhs.steady_cycles;
        self.drain_cycles += rhs.drain_cycles;
        self.dram_stall_cycles += rhs.dram_stall_cycles;
        self.fifo_stall_cycles += rhs.fifo_stall_cycles;
        self.reduction_stall_cycles += rhs.reduction_stall_cycles;
    }
}

/// Result statistics of one simulated operation (one layer / GEMM).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Name of the accelerator configuration that ran the operation.
    pub accelerator: String,
    /// Name of the simulated operation (layer name or op kind).
    pub operation: String,
    /// Total clock cycles.
    pub cycles: u64,
    /// Cycles in which at least one multiplier was busy.
    pub compute_cycles: u64,
    /// Cycles stalled on distribution/collection bandwidth.
    pub bandwidth_stall_cycles: u64,
    /// Cycles stalled on DRAM (exposed past double buffering).
    pub dram_stall_cycles: u64,
    /// Busy multiplier-cycles (Σ over cycles of busy multipliers).
    pub ms_busy_cycles: u64,
    /// Configured multiplier count.
    pub ms_size: usize,
    /// Number of mapping iterations the controller issued.
    pub iterations: u64,
    /// Activity counters for the energy model.
    pub counters: ActivityCounters,
    /// Per-phase cycle accounting (buckets sum to `cycles`). Defaults so
    /// summaries written before this field existed still parse.
    #[serde(default)]
    pub breakdown: CycleBreakdown,
    /// Simulation-cache hits: operations whose cycle-level outcome was
    /// replayed from the layer cache instead of re-simulated.
    #[serde(default)]
    pub sim_cache_hits: u64,
    /// Simulation-cache misses: operations the engine had to simulate
    /// while caching was enabled.
    #[serde(default)]
    pub sim_cache_misses: u64,
    /// Entries this operation inserted into the simulation cache.
    #[serde(default)]
    pub sim_cache_inserts: u64,
    /// Cycle-level engine invocations actually performed (0 for a cache
    /// hit, 1 for a simulated operation; sums under [`SimStats::merge`]).
    #[serde(default)]
    pub engine_invocations: u64,
    /// Cycles spent waiting for a shared-DRAM channel behind other
    /// accelerator instances (charged by the cluster arbiter; 0 for
    /// single-instance runs). Defaults so older summaries still parse.
    #[serde(default)]
    pub dram_contention_cycles: u64,
    /// Tile-cache hits: per-tile timing records replayed from the
    /// tile-grain cache ([`crate::SimContext`]) instead of re-derived.
    #[serde(default)]
    pub tile_cache_hits: u64,
    /// Tile-cache misses: per-tile timing records the engine had to
    /// derive while tile caching was enabled.
    #[serde(default)]
    pub tile_cache_misses: u64,
    /// Tiles whose timing was assembled from a memoized record (hits and
    /// misses both feed assembly; this counts the tiles, the other two
    /// count the distinct records).
    #[serde(default)]
    pub tile_cache_assembled: u64,
}

impl SimStats {
    /// Average multiplier utilization in `[0, 1]`
    /// (busy MS-cycles over `ms_size × cycles`).
    pub fn ms_utilization(&self) -> f64 {
        if self.cycles == 0 || self.ms_size == 0 {
            return 0.0;
        }
        self.ms_busy_cycles as f64 / (self.cycles as f64 * self.ms_size as f64)
    }

    /// Merges another operation's stats into this one (used to aggregate a
    /// full-model run: cycles add, counters add).
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles += other.cycles;
        self.compute_cycles += other.compute_cycles;
        self.bandwidth_stall_cycles += other.bandwidth_stall_cycles;
        self.dram_stall_cycles += other.dram_stall_cycles;
        self.ms_busy_cycles += other.ms_busy_cycles;
        self.iterations += other.iterations;
        self.counters += other.counters;
        self.breakdown += other.breakdown;
        self.sim_cache_hits += other.sim_cache_hits;
        self.sim_cache_misses += other.sim_cache_misses;
        self.sim_cache_inserts += other.sim_cache_inserts;
        self.engine_invocations += other.engine_invocations;
        self.dram_contention_cycles += other.dram_contention_cycles;
        self.tile_cache_hits += other.tile_cache_hits;
        self.tile_cache_misses += other.tile_cache_misses;
        self.tile_cache_assembled += other.tile_cache_assembled;
        if self.ms_size == 0 {
            self.ms_size = other.ms_size;
        }
        if self.accelerator.is_empty() {
            self.accelerator = other.accelerator.clone();
        }
    }

    /// Scales the whole record by an integer factor (used when a model
    /// contains `count` layers of identical shape and only one was
    /// simulated).
    pub fn scaled(&self, count: u64) -> SimStats {
        let mut s = self.clone();
        s.cycles *= count;
        s.compute_cycles *= count;
        s.bandwidth_stall_cycles *= count;
        s.dram_stall_cycles *= count;
        s.ms_busy_cycles *= count;
        s.iterations *= count;
        s.breakdown.scale(count);
        s.sim_cache_hits *= count;
        s.sim_cache_misses *= count;
        s.sim_cache_inserts *= count;
        s.engine_invocations *= count;
        s.dram_contention_cycles *= count;
        s.tile_cache_hits *= count;
        s.tile_cache_misses *= count;
        s.tile_cache_assembled *= count;
        let c = &mut s.counters;
        let k = count;
        c.multiplications *= k;
        c.rn_adder_ops *= k;
        c.accumulator_updates *= k;
        c.dn_injections *= k;
        c.dn_switch_traversals *= k;
        c.dn_wire_hops *= k;
        c.mn_forwards *= k;
        c.rn_collections *= k;
        c.gb_reads *= k;
        c.gb_writes *= k;
        c.fifo_pushes *= k;
        c.fifo_pops *= k;
        c.dram_reads *= k;
        c.dram_writes *= k;
        c.metadata_reads *= k;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimStats {
        SimStats {
            accelerator: "test".into(),
            operation: "gemm".into(),
            cycles: 100,
            compute_cycles: 80,
            bandwidth_stall_cycles: 20,
            dram_stall_cycles: 0,
            ms_busy_cycles: 400,
            ms_size: 8,
            iterations: 2,
            counters: ActivityCounters {
                multiplications: 320,
                rn_adder_ops: 280,
                gb_reads: 100,
                gb_writes: 40,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn utilization_is_busy_fraction() {
        let s = sample();
        assert!((s.ms_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_of_empty_run_is_zero() {
        assert_eq!(SimStats::default().ms_utilization(), 0.0);
    }

    #[test]
    fn merge_adds_cycles_and_counters() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.cycles, 200);
        assert_eq!(a.counters.multiplications, 640);
        assert_eq!(a.iterations, 4);
    }

    #[test]
    fn scaled_multiplies_everything() {
        let s = sample().scaled(3);
        assert_eq!(s.cycles, 300);
        assert_eq!(s.counters.gb_writes, 120);
        assert_eq!(s.ms_busy_cycles, 1200);
        // Utilization is invariant under scaling.
        assert!((s.ms_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counters_totals() {
        let c = sample().counters;
        assert_eq!(c.total_ops(), 600);
        assert_eq!(c.total_memory_accesses(), 140);
    }
}
