//! Disk-persistent, content-addressed layer-result store.
//!
//! [`crate::SimCache`] memoizes engine outcomes in memory, so repeated
//! layer shapes inside one process simulate once — but the cache dies
//! with the process, and every figure/fuzz/bench/serve run starts cold.
//! [`DiskStore`] extends the same memoization across processes and
//! restarts: entries are serialized to one JSON file each under
//!
//! ```text
//! <root>/<code-fingerprint>/<digest-of-canonical-key>.json
//! ```
//!
//! The filename is a 128-bit content digest of the canonical cache-key
//! text (the `CacheKey` the in-memory cache already
//! uses: config string + per-engine geometry/pattern signatures), and
//! the file also records the full key text so a digest collision is
//! detected on load and treated as a miss rather than replayed.
//!
//! **Invalidation is by namespace, not by deletion.** The fingerprint
//! directory name encodes the package version plus a build-time hash of
//! every simulation source file (see `crates/core/build.rs`), so a code
//! change — even an uncommitted one-line edit to an engine — reads and
//! writes a fresh directory and can never replay stale cycle counts.
//! Old fingerprint directories are inert and can be deleted freely.
//!
//! **Robustness.** A corrupt or truncated entry file (killed process,
//! full disk, manual tampering) is treated as a miss: it is counted,
//! logged to stderr, deleted best-effort, and overwritten by the next
//! insert of that key. A bounded store (`with_max_entries`) evicts the
//! oldest entries (by file modification time) once the cap is exceeded.
//!
//! Attach a store to a cache with [`crate::SimCache::backed_by`]; the
//! sweep server (`crates/serve`) wires one under every job and reports
//! the per-job [`StoreCounters`] in its job status.

use crate::cache::{CacheEntry, CacheKey};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Returns the code-version fingerprint of this build: the package
/// version plus a hash over every simulation source file (this crate,
/// the tensor substrate and the DRAM model), computed at compile time by
/// `crates/core/build.rs`. Two binaries share a fingerprint exactly when
/// their simulation sources are identical, which is the condition under
/// which replaying each other's stored results is sound.
pub fn code_fingerprint() -> &'static str {
    env!("STONNE_CODE_FINGERPRINT")
}

/// Snapshot of a store handle's activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreCounters {
    /// Entries successfully loaded from disk.
    pub hits: u64,
    /// Lookups that found no usable entry on disk.
    pub misses: u64,
    /// Entries written to disk.
    pub writes: u64,
    /// Entries evicted to respect the `max_entries` bound.
    pub evictions: u64,
    /// Corrupt/truncated/colliding entry files encountered (each is also
    /// counted as a miss).
    pub corrupt: u64,
}

/// Interior atomic cells behind a [`StoreCounters`] snapshot.
#[derive(Debug, Default)]
struct CounterCells {
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
}

impl CounterCells {
    fn snapshot(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }
}

/// State shared by every clone of one opened store (the clones differ
/// only in which counter cells they charge).
#[derive(Debug)]
struct StoreInner {
    /// `<root>/<fingerprint>` — the directory entries live in.
    dir: PathBuf,
    fingerprint: String,
    /// Approximate number of entry files (maintained, not re-scanned).
    entries: AtomicUsize,
}

/// Process-wide sequence for unique temporary-file names (shared by the
/// store and the checkpoint writer so concurrent writers into one
/// directory never collide).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `text` to `path` atomically: the bytes land in a uniquely
/// named `tmp-*.part` file inside `dir` (same filesystem, so the rename
/// is atomic) and are renamed into place only when complete. A killed
/// process can leave a stale `.part` file behind but never a
/// half-written entry under the final name. Shared by [`DiskStore`] and
/// [`crate::checkpoint::Checkpoint::save`].
pub(crate) fn atomic_write_text(dir: &Path, path: &Path, text: &str) -> io::Result<()> {
    let tmp = dir.join(format!(
        "tmp-{}-{}.part",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if let Err(e) = fs::write(&tmp, text) {
        fs::remove_file(&tmp).ok();
        return Err(e);
    }
    if let Err(e) = fs::rename(&tmp, path) {
        fs::remove_file(&tmp).ok();
        return Err(e);
    }
    Ok(())
}

/// The serialized form of one auxiliary blob file (see
/// [`DiskStore::save_blob`]).
#[derive(Serialize, Deserialize)]
struct StoredBlob {
    /// Full key text, checked on load to rule out digest collisions.
    key: String,
    /// The opaque payload.
    text: String,
}

/// The serialized form of one entry file.
#[derive(Serialize, Deserialize)]
struct StoredEntry {
    /// Full canonical key text, checked on load to rule out digest
    /// collisions (and handy when inspecting the store by hand).
    key: String,
    /// The memoized engine outcome.
    entry: CacheEntry,
}

/// A handle to a disk-persistent, content-addressed result store.
///
/// Cloning (and [`DiskStore::scoped`]) shares the underlying directory
/// and entry bookkeeping; `scoped` additionally gives the clone fresh
/// counters that still roll up into the parent's, so a server can report
/// both per-job and whole-process store activity.
///
/// ```
/// use stonne_core::{AcceleratorConfig, DiskStore, SimCache, Stonne};
/// use stonne_tensor::{Matrix, SeededRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let root = std::env::temp_dir().join(format!("stonne-store-doc-{}", std::process::id()));
/// # std::fs::remove_dir_all(&root).ok();
/// let store = DiskStore::open(&root)?;
/// let cache = SimCache::new().backed_by(store.clone());
/// let mut sim = Stonne::new(AcceleratorConfig::tpu_like(4))?.with_cache(cache);
/// let mut rng = SeededRng::new(1);
/// let (a, b) = (Matrix::random(4, 8, &mut rng), Matrix::random(8, 4, &mut rng));
/// sim.run_gemm("g", &a, &b);
/// assert_eq!(store.counters().writes, 1); // persisted for the next process
/// # std::fs::remove_dir_all(&root).ok();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DiskStore {
    inner: Arc<StoreInner>,
    counters: Arc<CounterCells>,
    /// Parent counters this handle also charges (see [`DiskStore::scoped`]).
    parent: Option<Arc<CounterCells>>,
    /// Entry-count bound; `None` means unbounded.
    max_entries: Option<usize>,
}

impl DiskStore {
    /// Opens (creating if needed) the store rooted at `root`, namespaced
    /// under this build's [`code_fingerprint`].
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the directory cannot be created or read.
    pub fn open(root: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_versioned(root, code_fingerprint())
    }

    /// Opens the store under an explicit fingerprint namespace instead of
    /// this build's own — useful in tests and for tooling that inspects
    /// foreign namespaces. Entries written by a different fingerprint are
    /// invisible to this handle by construction.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the directory cannot be created or read.
    pub fn open_versioned(root: impl AsRef<Path>, fingerprint: &str) -> io::Result<Self> {
        let safe: String = fingerprint
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let dir = root.as_ref().join(&safe);
        fs::create_dir_all(&dir)?;
        let entries = fs::read_dir(&dir)?
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".json"))
            .count();
        Ok(Self {
            inner: Arc::new(StoreInner {
                dir,
                fingerprint: safe,
                entries: AtomicUsize::new(entries),
            }),
            counters: Arc::new(CounterCells::default()),
            parent: None,
            max_entries: None,
        })
    }

    /// Bounds the store to at most `n` entries; inserts beyond the bound
    /// evict the oldest entries (by file modification time). The bound is
    /// carried by this handle and its [`DiskStore::scoped`] children.
    #[must_use]
    pub fn with_max_entries(mut self, n: usize) -> Self {
        self.max_entries = Some(n.max(1));
        self
    }

    /// A handle onto the same store with fresh counters that also roll up
    /// into this handle's — the sweep server gives each job a scoped
    /// handle so job status can report per-job store activity while the
    /// root handle keeps the process-wide totals.
    #[must_use]
    pub fn scoped(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
            counters: Arc::new(CounterCells::default()),
            parent: Some(Arc::clone(&self.counters)),
            max_entries: self.max_entries,
        }
    }

    /// This handle's counter snapshot (scoped handles count only their
    /// own activity; parents accumulate all their children's).
    pub fn counters(&self) -> StoreCounters {
        self.counters.snapshot()
    }

    /// The fingerprint namespace this handle reads and writes.
    pub fn fingerprint(&self) -> &str {
        &self.inner.fingerprint
    }

    /// The directory entries live in (`<root>/<fingerprint>`).
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Number of entries currently on disk (maintained approximately;
    /// exact when nothing else mutates the directory).
    pub fn len(&self) -> usize {
        self.inner.entries.load(Ordering::Relaxed)
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn bump(&self, f: impl Fn(&CounterCells) -> &AtomicU64) {
        f(&self.counters).fetch_add(1, Ordering::Relaxed);
        if let Some(parent) = &self.parent {
            f(parent).fetch_add(1, Ordering::Relaxed);
        }
    }

    fn entry_path(&self, canonical: &str) -> PathBuf {
        self.inner
            .dir
            .join(format!("{}.json", digest128(canonical)))
    }

    /// Loads the entry stored under `key`, if a valid one exists.
    /// Corrupt, truncated or digest-colliding files count as misses (and
    /// as `corrupt`), are logged, and are removed so the next insert
    /// overwrites them cleanly.
    pub(crate) fn load(&self, key: &CacheKey) -> Option<CacheEntry> {
        let canonical = key.canonical();
        let path = self.entry_path(&canonical);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.bump(|c| &c.misses);
                return None;
            }
            Err(e) => {
                self.bump(|c| &c.misses);
                self.bump(|c| &c.corrupt);
                eprintln!("stonne-store: unreadable entry {}: {e}", path.display());
                return None;
            }
        };
        let stored: StoredEntry = match serde_json::from_str(&text) {
            Ok(stored) => stored,
            Err(e) => {
                self.bump(|c| &c.misses);
                self.bump(|c| &c.corrupt);
                eprintln!(
                    "stonne-store: corrupt entry {} ({e:?}); treating as a miss",
                    path.display()
                );
                if fs::remove_file(&path).is_ok() {
                    self.inner.entries.fetch_sub(1, Ordering::Relaxed);
                }
                return None;
            }
        };
        if stored.key != canonical {
            // A 128-bit digest collision — astronomically unlikely, but
            // replaying the wrong entry would be silently wrong forever.
            self.bump(|c| &c.misses);
            self.bump(|c| &c.corrupt);
            eprintln!(
                "stonne-store: digest collision at {}; treating as a miss",
                path.display()
            );
            return None;
        }
        self.bump(|c| &c.hits);
        Some(stored.entry)
    }

    /// Persists `entry` under `key`, atomically (write-then-rename) so a
    /// killed process can never leave a half-written entry in place.
    pub(crate) fn save(&self, key: &CacheKey, entry: &CacheEntry) {
        let canonical = key.canonical();
        let path = self.entry_path(&canonical);
        let stored = StoredEntry {
            key: canonical,
            entry: entry.clone(),
        };
        let Ok(text) = serde_json::to_string(&stored) else {
            return;
        };
        let existed = path.exists();
        if let Err(e) = atomic_write_text(&self.inner.dir, &path, &text) {
            eprintln!("stonne-store: failed to persist {} ({e})", path.display());
            return;
        }
        self.bump(|c| &c.writes);
        if !existed {
            self.inner.entries.fetch_add(1, Ordering::Relaxed);
        }
        self.enforce_bound();
    }

    /// Persists an auxiliary, content-addressed blob next to (but
    /// outside) the cache-entry namespace: the file lands under
    /// `<dir>/<kind>/<digest-of-key>.json` with the full key stored
    /// inside, so digest collisions degrade to misses exactly like
    /// cache entries. Blobs do not count toward `len()` and are never
    /// evicted — the sweep server uses this channel for per-point job
    /// checkpoints (see `crates/serve`). Returns whether the write
    /// landed (failures are logged, not fatal, matching `save`).
    pub fn save_blob(&self, kind: &str, key: &str, text: &str) -> bool {
        let dir = self.inner.dir.join(kind);
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("stonne-store: cannot create {} ({e})", dir.display());
            return false;
        }
        let path = dir.join(format!("{}.json", digest128(key)));
        let stored = StoredBlob {
            key: key.to_owned(),
            text: text.to_owned(),
        };
        let Ok(json) = serde_json::to_string(&stored) else {
            return false;
        };
        if let Err(e) = atomic_write_text(&dir, &path, &json) {
            eprintln!("stonne-store: failed to persist {} ({e})", path.display());
            return false;
        }
        true
    }

    /// Loads the blob stored under `(kind, key)`, if a valid one
    /// exists. Corrupt or colliding files are removed best-effort and
    /// treated as absent.
    pub fn load_blob(&self, kind: &str, key: &str) -> Option<String> {
        let path = self
            .inner
            .dir
            .join(kind)
            .join(format!("{}.json", digest128(key)));
        let text = fs::read_to_string(&path).ok()?;
        let stored: StoredBlob = match serde_json::from_str(&text) {
            Ok(stored) => stored,
            Err(e) => {
                eprintln!(
                    "stonne-store: corrupt blob {} ({e:?}); treating as absent",
                    path.display()
                );
                fs::remove_file(&path).ok();
                return None;
            }
        };
        (stored.key == key).then_some(stored.text)
    }

    /// Evicts oldest entries (by modification time) while over the bound.
    fn enforce_bound(&self) {
        let Some(max) = self.max_entries else { return };
        while self.inner.entries.load(Ordering::Relaxed) > max {
            let Some(oldest) = self.oldest_entry() else {
                return;
            };
            if fs::remove_file(&oldest).is_ok() {
                self.inner.entries.fetch_sub(1, Ordering::Relaxed);
                self.bump(|c| &c.evictions);
            } else {
                return; // racing remover; give up rather than spin
            }
        }
    }

    /// The eviction victim: smallest mtime, ties broken by path so that
    /// entries written within one filesystem-timestamp tick still evict
    /// in a deterministic order.
    fn oldest_entry(&self) -> Option<PathBuf> {
        let entries = fs::read_dir(&self.inner.dir).ok()?;
        entries
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".json"))
            .filter_map(|e| {
                let modified = e.metadata().ok()?.modified().ok()?;
                Some((modified, e.path()))
            })
            .min_by(|(am, ap), (bm, bp)| am.cmp(bm).then_with(|| ap.cmp(bp)))
            .map(|(_, path)| path)
    }
}

/// 128-bit content digest of the canonical key text, rendered as 32 hex
/// characters: two independent 64-bit FNV-1a passes over the same bytes
/// with different offset bases. Collisions are additionally guarded by
/// the full key text stored inside every entry file. Also used to
/// derive cache signatures for checkpoints and the per-point result
/// keys of the sweep server.
pub(crate) fn digest128(s: &str) -> String {
    format!(
        "{:016x}{:016x}",
        fnv1a(0xcbf2_9ce4_8422_2325, s.as_bytes()),
        fnv1a(0x6c62_272e_07bb_0142, s.as_bytes())
    )
}

/// 64-bit digest of a canonical key text (the first half of
/// [`digest128`]). Used where a numeric digest is needed, e.g. the
/// predictor's feature hashing and its deterministic train/holdout
/// split.
pub(crate) fn digest64(s: &str) -> u64 {
    fnv1a(0xcbf2_9ce4_8422_2325, s.as_bytes())
}

/// FNV-1a over `bytes` from an explicit offset basis.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheKey;
    use crate::config::AcceleratorConfig;
    use crate::stats::SimStats;

    fn tmp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("stonne-store-test-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&root).ok();
        root
    }

    fn key(m: usize) -> CacheKey {
        CacheKey::systolic(&AcceleratorConfig::tpu_like(4), m, 8, 16)
    }

    fn entry(cycles: u64) -> CacheEntry {
        let stats = SimStats {
            operation: "op".into(),
            cycles,
            ..SimStats::default()
        };
        CacheEntry::new("op", &stats, &[], false)
    }

    #[test]
    fn roundtrips_an_entry_across_handles() {
        let root = tmp_root("roundtrip");
        let store = DiskStore::open(&root).unwrap();
        store.save(&key(3), &entry(123));
        assert_eq!(store.len(), 1);
        // A separately opened handle (a "restarted process") sees it.
        let reopened = DiskStore::open(&root).unwrap();
        let loaded = reopened.load(&key(3)).expect("persisted entry");
        assert_eq!(loaded.stats_for("op").cycles, 123);
        assert_eq!(reopened.counters().hits, 1);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_entry_counts_a_miss() {
        let root = tmp_root("miss");
        let store = DiskStore::open(&root).unwrap();
        assert!(store.load(&key(1)).is_none());
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.corrupt), (0, 1, 0));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn truncated_entry_is_a_logged_miss_then_overwritten() {
        let root = tmp_root("truncated");
        let store = DiskStore::open(&root).unwrap();
        store.save(&key(5), &entry(777));
        // Truncate the single entry file mid-JSON (a killed writer on a
        // non-atomic filesystem, a full disk, manual tampering …).
        let file = fs::read_dir(store.dir())
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.file_name().to_string_lossy().ends_with(".json"))
            .unwrap()
            .path();
        let full = fs::read_to_string(&file).unwrap();
        fs::write(&file, &full[..full.len() / 2]).unwrap();

        assert!(store.load(&key(5)).is_none(), "corrupt entry must miss");
        let c = store.counters();
        assert_eq!((c.misses, c.corrupt), (1, 1));
        assert!(!file.exists(), "corrupt entry is removed");

        // The next insert overwrites it cleanly and it loads again.
        store.save(&key(5), &entry(777));
        assert_eq!(store.load(&key(5)).unwrap().stats_for("x").cycles, 777);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn different_fingerprints_do_not_share_entries() {
        let root = tmp_root("fingerprint");
        let old = DiskStore::open_versioned(&root, "v0-old").unwrap();
        old.save(&key(2), &entry(9));
        let new = DiskStore::open_versioned(&root, "v0-new").unwrap();
        assert!(new.load(&key(2)).is_none(), "new code must not replay old");
        assert!(old.load(&key(2)).is_some());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn bounded_store_evicts_oldest() {
        let root = tmp_root("evict");
        let store = DiskStore::open(&root).unwrap().with_max_entries(2);
        for m in 0..3 {
            store.save(&key(m), &entry(m as u64));
            // Distinct mtimes even on coarse-granularity filesystems.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.counters().evictions, 1);
        assert!(store.load(&key(0)).is_none(), "oldest entry evicted");
        assert!(store.load(&key(2)).is_some());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn equal_mtime_eviction_is_deterministic_by_path() {
        let root = tmp_root("evict-tie");
        let store = DiskStore::open(&root).unwrap();
        for m in 0..3 {
            store.save(&key(m), &entry(m as u64));
        }
        // Force all entries into one timestamp tick — the situation a
        // coarse-granularity filesystem produces on its own.
        let stamp = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_000_000);
        let mut paths: Vec<PathBuf> = fs::read_dir(store.dir())
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.to_string_lossy().ends_with(".json"))
            .collect();
        for path in &paths {
            let file = fs::File::options().write(true).open(path).unwrap();
            file.set_modified(stamp).unwrap();
        }
        paths.sort();
        // Bound at 2 and insert a (newer) fourth entry: two of the three
        // tied entries must go, and with the path tie-break it is exactly
        // the two lexicographically smallest.
        let bounded = DiskStore::open(&root).unwrap().with_max_entries(2);
        bounded.save(&key(9), &entry(9));
        let survivors: Vec<PathBuf> = fs::read_dir(bounded.dir())
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.to_string_lossy().ends_with(".json"))
            .collect();
        assert_eq!(survivors.len(), 2);
        assert_eq!(bounded.counters().evictions, 2);
        assert!(
            survivors.contains(&paths[2]),
            "largest tied path survives, kept {survivors:?} of {paths:?}"
        );
        assert!(!survivors.contains(&paths[0]) && !survivors.contains(&paths[1]));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn scoped_counters_roll_up_into_the_parent() {
        let root = tmp_root("scoped");
        let store = DiskStore::open(&root).unwrap();
        let job = store.scoped();
        job.save(&key(7), &entry(1));
        assert!(job.load(&key(7)).is_some());
        assert_eq!((job.counters().hits, job.counters().writes), (1, 1));
        assert_eq!((store.counters().hits, store.counters().writes), (1, 1));
        // A sibling scope starts from zero.
        let other = store.scoped();
        assert_eq!(other.counters(), StoreCounters::default());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn blobs_roundtrip_outside_the_entry_namespace() {
        let root = tmp_root("blob");
        let store = DiskStore::open(&root).unwrap();
        assert!(store.save_blob("points", "point-key", "{\"cycles\":7}"));
        assert_eq!(
            store.load_blob("points", "point-key").as_deref(),
            Some("{\"cycles\":7}")
        );
        assert_eq!(store.load_blob("points", "other-key"), None);
        // Blobs are invisible to entry bookkeeping and eviction.
        assert_eq!(store.len(), 0);
        let reopened = DiskStore::open(&root).unwrap();
        assert_eq!(reopened.len(), 0);
        assert_eq!(
            reopened.load_blob("points", "point-key").as_deref(),
            Some("{\"cycles\":7}")
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_blob_is_absent_and_healed() {
        let root = tmp_root("blob-corrupt");
        let store = DiskStore::open(&root).unwrap();
        store.save_blob("points", "k", "payload");
        let file = fs::read_dir(store.dir().join("points"))
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.file_name().to_string_lossy().ends_with(".json"))
            .unwrap()
            .path();
        let full = fs::read_to_string(&file).unwrap();
        fs::write(&file, &full[..full.len() / 2]).unwrap();
        assert_eq!(store.load_blob("points", "k"), None);
        assert!(!file.exists(), "corrupt blob removed");
        store.save_blob("points", "k", "payload");
        assert_eq!(store.load_blob("points", "k").as_deref(), Some("payload"));
        fs::remove_dir_all(&root).ok();
    }

    /// Concurrent `scoped()` handles hammering a bounded store must
    /// never panic or lose the bound: eviction races (a victim already
    /// removed by a sibling) back off rather than spin, and all
    /// counters still roll up into the parent.
    #[test]
    fn bounded_store_survives_racing_scoped_handles() {
        let root = tmp_root("evict-race");
        let store = DiskStore::open(&root).unwrap().with_max_entries(4);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let scoped = store.scoped();
                scope.spawn(move || {
                    for m in 0..12 {
                        scoped.save(&key(t * 100 + m), &entry(m as u64));
                        // Interleave loads so evicted-underneath reads
                        // exercise the miss path concurrently.
                        scoped.load(&key(t * 100 + m));
                    }
                });
            }
        });
        // The maintained count and the directory agree, and the bound
        // holds once the dust settles.
        let on_disk = fs::read_dir(store.dir())
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".json"))
            .count();
        assert_eq!(store.len(), on_disk);
        assert!(on_disk <= 4, "bound violated: {on_disk} entries");
        let c = store.counters();
        assert_eq!(c.writes, 48, "every save rolled up");
        assert!(c.evictions >= 44, "evictions rolled up: {c:?}");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn fingerprint_is_nonempty_and_path_safe() {
        let fp = code_fingerprint();
        assert!(fp.starts_with('v'), "fingerprint {fp:?}");
        assert!(fp
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_')));
    }
}
