//! Cycle-level tracing: component-scoped spans recorded into per-thread
//! ring buffers, with zero overhead when tracing is disabled.
//!
//! The paper's Output Module reports end-of-run totals only; this module
//! adds the *where did the cycles go* view. Engines annotate the phases of
//! a simulation (tile fill, steady streaming, pipeline drain, DRAM fetch)
//! through a [`Probe`], and the resulting [`Trace`] renders to a
//! Chrome-trace / Perfetto JSON timeline via
//! [`chrome_trace_json`](crate::output::chrome_trace_json).
//!
//! # Design
//!
//! - **Per-thread collection.** The simulator runs one operation per
//!   thread (bench harnesses fan out across threads), so the collector
//!   lives in a thread-local. No locks, no cross-thread contention.
//! - **Zero overhead when off.** [`Probe::new`] caches a single boolean
//!   read of the thread-local enable flag; every recording method
//!   early-returns on that cached flag without formatting, allocating, or
//!   touching the collector. Engines construct probes unconditionally.
//! - **Bounded memory.** Spans land in a ring buffer of configurable
//!   capacity; once full, the oldest spans are overwritten and counted in
//!   [`Trace::dropped`], so tracing a huge model cannot exhaust memory.
//! - **Multi-operation timelines.** Engine cycle counts are local to one
//!   operation. The accelerator controller calls [`advance`] after each
//!   operation so the next operation's spans start where the previous
//!   ones ended, producing one continuous timeline per thread.
//!
//! # Example
//!
//! ```
//! use stonne_core::trace;
//!
//! trace::start(1024);
//! let probe = trace::Probe::new(trace::Component::Controller);
//! probe.span("fill", 0, 2);
//! probe.span("stream", 2, 10);
//! let t = trace::finish().expect("tracing was on");
//! assert_eq!(t.events().len(), 2);
//! assert_eq!(t.span_cycles(trace::Component::Controller), 10);
//! ```

use std::borrow::Cow;
use std::cell::{Cell, RefCell};

/// Default ring-buffer capacity (events) used by [`start`] callers that
/// have no better number: large enough for full-model runs at reduced
/// scale, bounded at ~48 bytes/event.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// The architectural component a span belongs to.
///
/// Mirrors the building blocks of the paper's Fig. 3b; each variant maps
/// to its own named track in the Chrome-trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Tile/iteration control flow (mapper + configuration unit view).
    Controller,
    /// Distribution network: operand delivery from the Global Buffer.
    DistributionNetwork,
    /// Multiplier network: the compute substrate itself.
    MultiplierNetwork,
    /// Reduction network: adder tree / collection bandwidth.
    ReductionNetwork,
    /// Global Buffer port activity.
    GlobalBuffer,
    /// Off-chip DRAM channel activity exposed past double buffering.
    Dram,
}

impl Component {
    /// All components, in Chrome-trace track order.
    pub const ALL: [Component; 6] = [
        Component::Controller,
        Component::DistributionNetwork,
        Component::MultiplierNetwork,
        Component::ReductionNetwork,
        Component::GlobalBuffer,
        Component::Dram,
    ];

    /// Human-readable track name.
    pub fn label(&self) -> &'static str {
        match self {
            Component::Controller => "Controller",
            Component::DistributionNetwork => "Distribution Network",
            Component::MultiplierNetwork => "Multiplier Network",
            Component::ReductionNetwork => "Reduction Network",
            Component::GlobalBuffer => "Global Buffer",
            Component::Dram => "DRAM",
        }
    }

    /// Stable Chrome-trace `tid` for this component's track.
    pub fn track_id(&self) -> u64 {
        match self {
            Component::Controller => 0,
            Component::DistributionNetwork => 1,
            Component::MultiplierNetwork => 2,
            Component::ReductionNetwork => 3,
            Component::GlobalBuffer => 4,
            Component::Dram => 5,
        }
    }
}

/// One recorded span: `[start, end)` in absolute cycles on this thread's
/// timeline. Instant events are spans with `start == end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which architectural track the span belongs to.
    pub component: Component,
    /// Phase name shown in the timeline (e.g. `"fill"`, `"stream"`).
    pub name: Cow<'static, str>,
    /// First cycle of the span (absolute, thread timeline).
    pub start: u64,
    /// One past the last cycle of the span.
    pub end: u64,
}

impl TraceEvent {
    /// Span length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// A completed recording: everything [`finish`] drains from the
/// thread-local collector.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// Recorded spans in chronological (record) order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of spans overwritten because the ring buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Sum of span lengths recorded for one component.
    pub fn span_cycles(&self, component: Component) -> u64 {
        self.events
            .iter()
            .filter(|e| e.component == component)
            .map(TraceEvent::cycles)
            .sum()
    }

    /// Merges another trace (e.g. from a worker thread) into this one.
    pub fn merge(&mut self, other: Trace) {
        self.events.extend(other.events);
        self.dropped += other.dropped;
    }
}

struct Collector {
    ring: Vec<TraceEvent>,
    capacity: usize,
    /// Next write position once the ring has wrapped.
    head: usize,
    dropped: u64,
    /// Cycle offset added to all recorded spans (advanced between ops).
    base: u64,
}

impl Collector {
    fn new(capacity: usize) -> Self {
        Collector {
            ring: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
            base: 0,
        }
    }

    fn record(&mut self, event: TraceEvent) {
        if self.ring.len() < self.capacity {
            self.ring.push(event);
        } else {
            self.ring[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn into_trace(mut self) -> Trace {
        // Restore chronological order after ring wrap-around.
        self.ring.rotate_left(self.head);
        Trace {
            events: self.ring,
            dropped: self.dropped,
        }
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Starts recording on the current thread with the given ring capacity
/// (events). Any previous unfinished recording on this thread is discarded.
pub fn start(capacity: usize) {
    COLLECTOR.with(|c| *c.borrow_mut() = Some(Collector::new(capacity)));
    ACTIVE.with(|a| a.set(true));
}

/// Stops recording on the current thread and returns the collected trace,
/// or `None` if tracing was never started.
pub fn finish() -> Option<Trace> {
    ACTIVE.with(|a| a.set(false));
    COLLECTOR
        .with(|c| c.borrow_mut().take())
        .map(Collector::into_trace)
}

/// Whether the current thread is recording.
pub fn is_active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Runs `f` with recording suspended on this thread: probes constructed
/// inside `f` are inert and [`advance`] is a no-op. The accelerator uses
/// this for exploratory simulations (tile-space search) whose spans would
/// otherwise pollute the timeline.
pub fn suspended<R>(f: impl FnOnce() -> R) -> R {
    let was = ACTIVE.with(|a| a.replace(false));
    let out = f();
    ACTIVE.with(|a| a.set(was));
    out
}

/// Advances the thread's timeline base by `cycles`. The accelerator calls
/// this after each simulated operation so successive operations occupy
/// disjoint cycle ranges in one continuous timeline.
pub fn advance(cycles: u64) {
    if !is_active() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.base += cycles;
        }
    });
}

/// A component-scoped recording handle.
///
/// Construction caches the thread's enable flag, so a probe on the
/// traced-off path costs one boolean copy at creation and one branch per
/// recording call — no allocation, no thread-local access.
#[derive(Debug, Clone, Copy)]
pub struct Probe {
    component: Component,
    active: bool,
}

impl Probe {
    /// Creates a probe for `component`, snapshotting the enable flag.
    pub fn new(component: Component) -> Self {
        Probe {
            component,
            active: is_active(),
        }
    }

    /// Whether this probe records anything.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Records the span `[start, end)` (operation-local cycles) under a
    /// static name. No-op when tracing is off.
    pub fn span(&self, name: &'static str, start: u64, end: u64) {
        if self.active {
            self.record(Cow::Borrowed(name), start, end);
        }
    }

    /// Records a span with a dynamically built name. The closure only runs
    /// when tracing is on, keeping the disabled path allocation-free.
    pub fn span_with(&self, name: impl FnOnce() -> String, start: u64, end: u64) {
        if self.active {
            self.record(Cow::Owned(name()), start, end);
        }
    }

    /// Records an instant event at `cycle`. No-op when tracing is off.
    pub fn event(&self, name: &'static str, cycle: u64) {
        if self.active {
            self.record(Cow::Borrowed(name), cycle, cycle);
        }
    }

    fn record(&self, name: Cow<'static, str>, start: u64, end: u64) {
        let component = self.component;
        COLLECTOR.with(|c| {
            if let Some(col) = c.borrow_mut().as_mut() {
                let base = col.base;
                col.record(TraceEvent {
                    component,
                    name,
                    start: base + start,
                    end: base + end.max(start),
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_records_nothing() {
        assert!(finish().is_none());
        let p = Probe::new(Component::Controller);
        assert!(!p.is_active());
        p.span("fill", 0, 10);
        assert!(finish().is_none());
    }

    #[test]
    fn spans_accumulate_and_sum() {
        start(64);
        let p = Probe::new(Component::Controller);
        p.span("fill", 0, 2);
        p.span("stream", 2, 12);
        let q = Probe::new(Component::Dram);
        q.span("fetch", 0, 5);
        let t = finish().expect("active");
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.span_cycles(Component::Controller), 12);
        assert_eq!(t.span_cycles(Component::Dram), 5);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn advance_offsets_later_spans() {
        start(64);
        let p = Probe::new(Component::Controller);
        p.span("op0", 0, 10);
        advance(10);
        p.span("op1", 0, 5);
        let t = finish().expect("active");
        assert_eq!(t.events()[1].start, 10);
        assert_eq!(t.events()[1].end, 15);
    }

    #[test]
    fn ring_drops_oldest_and_keeps_order() {
        start(4);
        let p = Probe::new(Component::Controller);
        for i in 0..6u64 {
            p.span("s", i, i + 1);
        }
        let t = finish().expect("active");
        assert_eq!(t.dropped(), 2);
        let starts: Vec<u64> = t.events().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![2, 3, 4, 5]);
    }

    #[test]
    fn finish_disables_recording() {
        start(16);
        assert!(is_active());
        let _ = finish();
        assert!(!is_active());
        // A probe created after finish is inert.
        let p = Probe::new(Component::GlobalBuffer);
        p.span("late", 0, 1);
        assert!(finish().is_none());
    }

    #[test]
    fn suspended_blocks_probes_and_advance() {
        start(16);
        let p = Probe::new(Component::Controller);
        p.span("before", 0, 1);
        suspended(|| {
            let q = Probe::new(Component::Controller);
            assert!(!q.is_active());
            q.span("hidden", 0, 100);
            advance(100);
        });
        assert!(is_active());
        p.span("after", 1, 2);
        let t = finish().expect("active");
        let names: Vec<&str> = t.events().iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, vec!["before", "after"]);
        assert_eq!(
            t.events()[1].start,
            1,
            "advance inside suspended is a no-op"
        );
    }

    #[test]
    fn zero_capacity_is_clamped() {
        start(0);
        let p = Probe::new(Component::Controller);
        p.span("a", 0, 1);
        p.span("b", 1, 2);
        let t = finish().expect("active");
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.dropped(), 1);
    }
}
