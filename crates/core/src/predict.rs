//! Layer-feature extraction and the [`CyclePredictor`] interface behind
//! the *fast-fidelity* execution mode.
//!
//! A `CyclePredictor` stands in for the cycle-level engines: instead of
//! simulating an operation cycle by cycle, the accelerator extracts a
//! [`LayerFeatures`] record (the same per-layer signature the simulation
//! cache keys on — engine kind, geometry, tile shape, sparsity-pattern
//! stats, DRAM configuration) and asks the predictor for a cycle count.
//! Functional outputs are computed with the reference kernels, DRAM
//! stalls are re-applied outside the prediction exactly as they are
//! outside the cache, and the synthesized [`SimStats`] keep their
//! invariants (the breakdown sums to `cycles`, `engine_invocations` is
//! 0).
//!
//! The trained gradient-boosted-stumps implementation lives in the
//! `stonne-predict` crate; this module only defines the feature schema
//! and the trait so the core crate stays dependency-free. Predictions
//! are *approximations* distilled from the engine — see
//! `docs/PREDICT.md` for the error-bound contract and for when not to
//! trust fast mode.

use crate::cache::CacheKey;
use crate::config::{AcceleratorConfig, ControllerKind, Dataflow, DnKind};
use crate::engine::flexible::DenseOperand;
use crate::engine::sparse::{NaturalOrder, RowSchedule};
use crate::mapping::{LayerDims, Tile};
use crate::networks::ReductionNetwork;
use crate::stats::SimStats;
use stonne_tensor::{CsrMatrix, Matrix, Tensor4};

/// Which engine the configuration would dispatch the operation to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Rigid point-to-point systolic array (TPU-like).
    Systolic,
    /// Flexible dense engine with a configurable tile (MAERI-like).
    FlexibleDense,
    /// Flexible sparse engine over a CSR stationary operand (SIGMA-like).
    Sparse,
    /// The pooling unit.
    Pool,
}

/// Per-layer feature record the predictor scores.
///
/// One record fully describes an engine invocation from the timing
/// model's point of view: it is derived from the same data as the
/// [`SimCache`](crate::cache::SimCache) key for the operation, and
/// `key_digest` *is* the 64-bit digest of that key's canonical
/// signature, so two operations with equal digests are exactly the
/// operations the cache would replay for one another.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerFeatures {
    /// Dispatched engine.
    pub engine: EngineKind,
    /// Configured multiplier count.
    pub ms_size: usize,
    /// Distribution-network bandwidth (elements/cycle).
    pub dn_bandwidth: usize,
    /// Reduction/collection bandwidth (elements/cycle).
    pub rn_bandwidth: usize,
    /// Configured dataflow.
    pub dataflow: Dataflow,
    /// GEMM rows (stationary operand rows; for pool: `n·c` planes).
    pub m: usize,
    /// GEMM columns (streamed operand columns; for pool: outputs per
    /// plane).
    pub n: usize,
    /// GEMM inner dimension (for pool: `window²`).
    pub k: usize,
    /// Exact multiply-accumulate count of the operation (comparison
    /// count for pool).
    pub macs: u64,
    /// Tile cluster size (flexible dense; PE-array edge for systolic).
    pub cluster_size: usize,
    /// Concurrent clusters (flexible dense; PE-array edge for systolic).
    pub num_clusters: usize,
    /// Mapping folds: tile iterations to cover the layer (output tiles
    /// for systolic).
    pub folds: usize,
    /// Simultaneous filters of the tile (`t_k·t_g`; flexible dense only).
    pub t_k: usize,
    /// Simultaneous output positions of the tile (`t_n·t_xp·t_yp`;
    /// flexible dense only).
    pub t_pos: usize,
    /// Output-row length the position walk chunks against (`Y'` of the
    /// layer; flexible dense only).
    pub yp: usize,
    /// Whether the dense operand's address map is the identity (plain
    /// GEMM: every streamed element a unique fetch). Convolution
    /// operands reuse overlapping inputs, which the closed-form prior
    /// cannot replay.
    pub trivial_addrs: bool,
    /// Whether the reduction network holds accumulators at its output
    /// (psums of consecutive folds avoid global-buffer round-trips).
    pub rn_accumulators: bool,
    /// Non-zeros of the stationary CSR operand (sparse only).
    pub nnz: u64,
    /// Smallest per-row non-zero count (sparse only).
    pub row_nnz_min: usize,
    /// Largest per-row non-zero count (sparse only).
    pub row_nnz_max: usize,
    /// Number of all-zero rows (sparse only).
    pub empty_rows: usize,
    /// Closed-form weight-stationary cycle count from the sparse
    /// controller's packing metadata (sparse only; 0 when the mapping
    /// takes a path the metadata mirror does not cover, e.g.
    /// activation-sparsity mode or the input-stationary GEMV path).
    pub sparse_meta_cycles: u64,
    /// Pooling window edge (pool only).
    pub window: usize,
    /// Pooling stride (pool only).
    pub stride: usize,
    /// Whether the run models DRAM (stalls are applied outside the
    /// prediction, mirroring the cache).
    pub model_dram: bool,
    /// Fixed DRAM access latency in cycles.
    pub dram_latency: u64,
    /// Aggregate DRAM bandwidth in elements per accelerator cycle.
    pub dram_elements_per_cycle: f64,
    /// 64-bit digest of the operation's canonical simulation-cache key
    /// signature. Used for deterministic train/holdout splits.
    pub key_digest: u64,
}

impl LayerFeatures {
    fn base(config: &AcceleratorConfig, engine: EngineKind, key: &CacheKey) -> Self {
        Self {
            engine,
            ms_size: config.ms_size,
            dn_bandwidth: config.dn_bandwidth,
            rn_bandwidth: config.rn_bandwidth,
            dataflow: config.dataflow,
            m: 0,
            n: 0,
            k: 0,
            macs: 0,
            cluster_size: 0,
            num_clusters: 0,
            folds: 0,
            t_k: 0,
            t_pos: 0,
            yp: 0,
            trivial_addrs: false,
            rn_accumulators: ReductionNetwork::new(
                config.rn,
                config.ms_size.max(1),
                config.rn_bandwidth.max(1),
            )
            .has_accumulators(),
            nnz: 0,
            row_nnz_min: 0,
            row_nnz_max: 0,
            empty_rows: 0,
            sparse_meta_cycles: 0,
            window: 0,
            stride: 0,
            model_dram: config.model_dram,
            dram_latency: config.dram.latency_cycles,
            dram_elements_per_cycle: config.dram.elements_per_cycle(),
            key_digest: crate::store::digest64(&key.canonical()),
        }
    }

    /// Features of a systolic GEMM `M×K · K×N`.
    pub fn systolic(config: &AcceleratorConfig, m: usize, n: usize, k: usize) -> Self {
        let key = CacheKey::systolic(config, m, n, k);
        let pe = config.pe_dim();
        Self {
            m,
            n,
            k,
            macs: (m * n * k) as u64,
            cluster_size: pe,
            num_clusters: pe,
            folds: m.div_ceil(pe) * n.div_ceil(pe),
            ..Self::base(config, EngineKind::Systolic, &key)
        }
    }

    /// Features of a flexible-dense tiled GEMM over an explicit operand.
    pub fn dense(
        config: &AcceleratorConfig,
        layer: &LayerDims,
        tile: &Tile,
        operand: &DenseOperand,
    ) -> Self {
        let key = CacheKey::dense(config, layer, tile, operand);
        let (m, k, n) = (
            operand.weights.rows(),
            operand.weights.cols(),
            operand.inputs.cols(),
        );
        Self {
            m,
            n,
            k,
            macs: (m * n * k) as u64,
            cluster_size: tile.cluster_size(),
            num_clusters: tile.num_clusters(),
            folds: tile.folds(layer),
            t_k: tile.t_k * tile.t_g,
            t_pos: tile.t_n * tile.t_xp * tile.t_yp,
            yp: layer.yp,
            trivial_addrs: crate::engine::flexible::has_trivial_addrs(operand),
            ..Self::base(config, EngineKind::FlexibleDense, &key)
        }
    }

    /// Features of a sparse `CSR (M×K) × dense (K×N)` multiplication.
    pub fn spmm(
        config: &AcceleratorConfig,
        a: &CsrMatrix,
        b: &Matrix,
        schedule: &dyn RowSchedule,
    ) -> Self {
        let key = CacheKey::spmm(config, a, b, schedule);
        let (mut min, mut max, mut empty) = (usize::MAX, 0usize, 0usize);
        for r in 0..a.rows() {
            let nnz = a.row_nnz(r);
            min = min.min(nnz);
            max = max.max(nnz);
            if nnz == 0 {
                empty += 1;
            }
        }
        Self {
            m: a.rows(),
            n: b.cols(),
            k: a.cols(),
            macs: a.nnz() as u64 * b.cols() as u64,
            nnz: a.nnz() as u64,
            row_nnz_min: if a.rows() == 0 { 0 } else { min },
            row_nnz_max: max,
            empty_rows: empty,
            sparse_meta_cycles: crate::engine::sparse::ws_metadata_cycles(
                config,
                a,
                b.cols(),
                schedule,
            )
            .unwrap_or(0),
            ..Self::base(config, EngineKind::Sparse, &key)
        }
    }

    /// Features of a max-pool layer.
    pub fn pool(config: &AcceleratorConfig, input: &Tensor4, window: usize, stride: usize) -> Self {
        let key = CacheKey::pool(config, input, window, stride);
        let oh = (input.h() - window) / stride + 1;
        let ow = (input.w() - window) / stride + 1;
        let planes = input.n() * input.c();
        Self {
            m: planes,
            n: oh * ow,
            k: window * window,
            macs: (planes * oh * ow * window * window) as u64,
            window,
            stride,
            ..Self::base(config, EngineKind::Pool, &key)
        }
    }
}

/// Features of a dense GEMM as `Stonne::run_gemm` would dispatch it —
/// the trainer-side mirror of the accelerator's fast path, guaranteed to
/// produce the same record (same engine selection, same auto tile, same
/// key digest) for the same configuration and operands.
pub fn gemm_features(config: &AcceleratorConfig, a: &Matrix, b: &Matrix) -> LayerFeatures {
    if config.controller == ControllerKind::Sparse {
        let csr = CsrMatrix::from_dense(a);
        return LayerFeatures::spmm(config, &csr, b, &NaturalOrder);
    }
    if config.dn == DnKind::PointToPoint {
        return LayerFeatures::systolic(config, a.rows(), b.cols(), a.cols());
    }
    let layer = LayerDims::from_gemm(a.rows(), b.cols(), a.cols());
    let tile = Tile::auto_bw(&layer, config.ms_size, config.dn_bandwidth);
    let operand = DenseOperand::from_gemm(a.clone(), b.clone());
    LayerFeatures::dense(config, &layer, &tile, &operand)
}

/// Features of a sparse multiplication with the default (natural) filter
/// schedule, as `Stonne::run_spmm` would dispatch it on a sparse
/// controller.
pub fn spmm_features(config: &AcceleratorConfig, a: &CsrMatrix, b: &Matrix) -> LayerFeatures {
    LayerFeatures::spmm(config, a, b, &NaturalOrder)
}

/// Features of a max-pool layer, as `Stonne::run_maxpool` would extract
/// them.
pub fn pool_features(
    config: &AcceleratorConfig,
    input: &Tensor4,
    window: usize,
    stride: usize,
) -> LayerFeatures {
    LayerFeatures::pool(config, input, window, stride)
}

/// A per-layer cycle predictor the accelerator can run instead of the
/// cycle-level engines (fast fidelity).
///
/// Implementations must be deterministic: equal features must yield
/// equal predictions, on every platform.
///
/// ```
/// use std::sync::Arc;
/// use stonne_core::predict::{CyclePredictor, LayerFeatures};
/// use stonne_core::{AcceleratorConfig, Stonne};
/// use stonne_tensor::{Matrix, SeededRng};
///
/// /// Pretends every operation needs one cycle per 4 MACs.
/// #[derive(Debug)]
/// struct Flat;
/// impl CyclePredictor for Flat {
///     fn predict_cycles(&self, f: &LayerFeatures) -> u64 {
///         f.macs / 4 + 10
///     }
/// }
///
/// let mut rng = SeededRng::new(0);
/// let a = Matrix::random(8, 16, &mut rng);
/// let b = Matrix::random(16, 4, &mut rng);
/// let mut sim = Stonne::new(AcceleratorConfig::maeri_like(64, 16))
///     .unwrap()
///     .with_predictor(Arc::new(Flat));
/// let (out, stats) = sim.run_gemm("fast", &a, &b);
/// assert_eq!((out.rows(), out.cols()), (8, 4));
/// assert_eq!(stats.engine_invocations, 0);
/// assert_eq!(stats.cycles, 8 * 16 * 4 / 4 + 10);
/// ```
pub trait CyclePredictor: Send + Sync + std::fmt::Debug {
    /// Predicted pre-DRAM cycle count for the operation described by
    /// `features`.
    fn predict_cycles(&self, features: &LayerFeatures) -> u64;
}

/// Synthesizes the stats record for a predicted operation: the predicted
/// cycles all land in the steady phase (so the breakdown still sums to
/// `cycles`), the multiplication counter carries the exact MAC count,
/// and `engine_invocations` stays 0. DRAM stalls are layered on by the
/// caller's `record`, exactly as for a cache replay.
pub(crate) fn predicted_stats(
    config: &AcceleratorConfig,
    name: &str,
    predicted_cycles: u64,
    macs: u64,
) -> SimStats {
    let cycles = predicted_cycles.max(1);
    let mut stats = SimStats {
        accelerator: config.name.clone(),
        operation: name.to_owned(),
        cycles,
        compute_cycles: cycles,
        ms_busy_cycles: macs.min(cycles.saturating_mul(config.ms_size as u64)),
        ms_size: config.ms_size,
        iterations: 1,
        ..SimStats::default()
    };
    stats.counters.multiplications = macs;
    stats.breakdown.steady_cycles = cycles;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use stonne_tensor::SeededRng;

    #[test]
    fn gemm_features_follow_the_dispatch_rules() {
        let mut rng = SeededRng::new(1);
        let a = Matrix::random(10, 20, &mut rng);
        let b = Matrix::random(20, 6, &mut rng);
        let f = gemm_features(&AcceleratorConfig::tpu_like(8), &a, &b);
        assert_eq!(f.engine, EngineKind::Systolic);
        assert_eq!((f.m, f.n, f.k), (10, 6, 20));
        assert_eq!(f.macs, 10 * 6 * 20);
        assert_eq!(f.folds, 2); // ceil(10/8) * ceil(6/8)
        let f = gemm_features(&AcceleratorConfig::maeri_like(64, 16), &a, &b);
        assert_eq!(f.engine, EngineKind::FlexibleDense);
        assert!(f.cluster_size > 0 && f.folds > 0);
        let f = gemm_features(&AcceleratorConfig::sigma_like(64, 64), &a, &b);
        assert_eq!(f.engine, EngineKind::Sparse);
        assert_eq!(f.nnz, 200, "random operand is fully dense");
        assert_eq!(f.row_nnz_min, 20);
        assert_eq!(f.row_nnz_max, 20);
        assert_eq!(f.empty_rows, 0);
    }

    #[test]
    fn key_digest_separates_shapes_and_configs() {
        let mut rng = SeededRng::new(2);
        let a = Matrix::random(8, 16, &mut rng);
        let b = Matrix::random(16, 4, &mut rng);
        let c = Matrix::random(16, 5, &mut rng);
        let cfg = AcceleratorConfig::maeri_like(64, 16);
        let f1 = gemm_features(&cfg, &a, &b);
        let f2 = gemm_features(&cfg, &a, &c);
        let f3 = gemm_features(&AcceleratorConfig::maeri_like(128, 32), &a, &b);
        assert_ne!(f1.key_digest, f2.key_digest);
        assert_ne!(f1.key_digest, f3.key_digest);
        // Same shape, same config, fresh values: the digest (like the
        // cache key) depends only on the timing-relevant signature.
        let mut rng2 = SeededRng::new(99);
        let a2 = Matrix::random(8, 16, &mut rng2);
        let b2 = Matrix::random(16, 4, &mut rng2);
        assert_eq!(f1.key_digest, gemm_features(&cfg, &a2, &b2).key_digest);
    }

    #[test]
    fn sparse_features_capture_the_pattern() {
        let mut rng = SeededRng::new(3);
        let mut a = Matrix::random(8, 8, &mut rng);
        for c in 0..8 {
            a.set(3, c, 0.0); // one empty row
        }
        let b = Matrix::random(8, 4, &mut rng);
        let csr = CsrMatrix::from_dense(&a);
        let f = spmm_features(&AcceleratorConfig::sigma_like(64, 64), &csr, &b);
        assert_eq!(f.empty_rows, 1);
        assert_eq!(f.row_nnz_min, 0);
        assert_eq!(f.row_nnz_max, 8);
        assert_eq!(f.nnz, 56);
        assert_eq!(f.macs, 56 * 4);
    }

    #[test]
    fn pool_features_describe_the_windows() {
        let mut rng = SeededRng::new(4);
        let input = Tensor4::random(1, 2, 6, 6, &mut rng);
        let f = pool_features(&AcceleratorConfig::maeri_like(64, 16), &input, 2, 2);
        assert_eq!(f.engine, EngineKind::Pool);
        assert_eq!((f.m, f.n, f.k), (2, 9, 4));
        assert_eq!((f.window, f.stride), (2, 2));
    }

    #[test]
    fn predicted_stats_keep_the_invariants() {
        let cfg = AcceleratorConfig::maeri_like(64, 16);
        let s = predicted_stats(&cfg, "op", 120, 4096);
        assert_eq!(s.cycles, 120);
        assert_eq!(s.breakdown.total(), s.cycles);
        assert_eq!(s.engine_invocations, 0);
        assert_eq!(s.counters.multiplications, 4096);
        assert!(s.ms_utilization() <= 1.0);
        // A degenerate zero prediction is clamped to one cycle.
        assert_eq!(predicted_stats(&cfg, "op", 0, 0).cycles, 1);
    }
}
