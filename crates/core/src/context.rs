//! Reusable execution context: the tile-grain result cache and pooled
//! engine scratch buffers.
//!
//! The layer-grain [`crate::SimCache`] only pays off when a whole layer
//! repeats. Heterogeneous models (ResNet-50's many distinct conv shapes)
//! and dense sweep grids repeat at a finer grain: the *per-tile* timing
//! walk inside each engine invocation is identical across the filter
//! chunks of one layer, across layers that differ only in filter count,
//! and across sweep points that share an architecture. [`SimContext`]
//! memoizes those per-tile timing/counter records under a canonical
//! sub-signature (engine kind + configuration + tile geometry +
//! dataflow/schedule token + operand uniformity class), so the engines
//! consult it before re-deriving a record — and layer results are
//! assembled from the records in the same chunk-ascending merge order the
//! intra-layer parallel path already guarantees, keeping outputs, cycles,
//! breakdowns and traces bitwise-identical to an uncached run.
//!
//! Records are keyed by a 64-bit FNV digest of the canonical key text;
//! the full text is stored alongside each record and compared on every
//! lookup, so a digest collision degrades to a miss (mirroring the
//! [`crate::DiskStore`] collision guard) instead of replaying the wrong
//! timing. A context can be backed by a [`DiskStore`] (blob channel
//! `tiles`, fingerprint-scoped like every store namespace) so warm sweeps
//! and cluster profiling reuse tile records across *processes*, not just
//! within a run.
//!
//! The context also pools the engines' scratch buffers (address
//! workspaces, fold accumulators) so wave-parallel and sweep execution
//! reuse allocations instead of re-growing them per operation — see the
//! "Reuse hierarchy" section of `docs/PERFORMANCE.md`.

use crate::stats::SimStats;
use crate::store::{digest64, DiskStore};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use stonne_tensor::Elem;

/// Schema tag of persisted tile-record blobs; bump on any change to the
/// record layout or key grammar so stale blobs degrade to misses.
pub(crate) const TILE_SCHEMA: &str = "stonne-tile/1";

/// One memoized per-tile timing/counter record: the stat and cycle
/// *deltas* of a single tile-grain unit of work (a filter chunk of the
/// flexible engine, a systolic tile class, a sparse iteration, a pool
/// wave pattern), stored as a mergeable partial exactly like the
/// intra-layer parallel path's per-chunk partials. `stats.cycles` is the
/// tile's duration (start-independent); volatile cache counters inside
/// the record are zero by construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct TileRecord {
    /// The tile's additive stat/cycle contribution.
    pub stats: SimStats,
    /// Auxiliary payload: the sparse engine's distinct-k count of the
    /// iteration (0 for the dense engines).
    pub distinct_k: u64,
}

impl TileRecord {
    /// Wraps a partial-stat record with no auxiliary payload.
    pub fn new(stats: SimStats) -> Self {
        Self {
            stats,
            distinct_k: 0,
        }
    }
}

/// Serialized form of one persisted tile record (the `tiles` blob
/// channel of a [`DiskStore`]). The full key text rides along so digest
/// collisions on disk degrade to misses, exactly like cache entries.
#[derive(Serialize, Deserialize)]
struct StoredTile {
    schema: String,
    key: String,
    record: TileRecord,
}

/// One occupied slot of the tile map: the full canonical key guards
/// against FNV digest collisions (checked on every lookup).
#[derive(Debug)]
struct Slot {
    key: String,
    record: TileRecord,
}

#[derive(Debug)]
struct ContextInner {
    /// Kill switch: a disabled context never stores or replays records
    /// (engines fall back to the plain walk and count nothing).
    enabled: bool,
    tiles: Mutex<HashMap<u64, Slot>>,
    /// Optional persistence: misses consult the store's `tiles` blob
    /// channel, inserts write through to it.
    disk: Mutex<Option<DiskStore>>,
    /// Pooled engine scratch buffers (see [`EngineScratch`]).
    scratch: Mutex<Vec<EngineScratch>>,
    /// Pooled key-construction buffers: engines format tile keys into
    /// these reused strings, so warm lookups allocate nothing.
    keys: Mutex<Vec<String>>,
}

/// Reusable per-worker engine scratch: the hot loops borrow these
/// instead of allocating. Pooled by [`SimContext`] so consecutive
/// operations (and sweep points sharing a context) reuse the grown
/// buffers.
#[derive(Debug, Default)]
pub(crate) struct EngineScratch {
    /// Address workspace of the flexible engine's uniqueness count.
    pub addrs: Vec<u32>,
    /// Per-fold accumulator row of the functional chunk kernel.
    pub acc: Vec<Elem>,
}

/// A shareable execution context: tile-grain result cache plus pooled
/// scratch buffers.
///
/// Cloning is cheap and shares the underlying state, so one context can
/// be threaded through a full-model run, across the worker threads of a
/// sweep server, or across every request of a cluster profile. Every
/// [`crate::Stonne`] carries one (fresh by default); attach a shared one
/// with [`crate::Stonne::with_context`].
///
/// Tile caching is on by default and bitwise-invisible: runs with and
/// without it produce identical outputs, cycles, breakdowns and traces
/// (fuzzed by the `tile_cache_bitwise` oracle). Set the environment
/// variable `STONNE_TILE_CACHE=0` before process start to disable it
/// globally, or construct an explicit [`SimContext::disabled`].
#[derive(Debug, Clone)]
pub struct SimContext {
    inner: Arc<ContextInner>,
}

impl Default for SimContext {
    fn default() -> Self {
        Self::new()
    }
}

impl SimContext {
    /// Creates a fresh context. Tile caching is enabled unless the
    /// process environment sets `STONNE_TILE_CACHE=0`.
    pub fn new() -> Self {
        let enabled = std::env::var("STONNE_TILE_CACHE").map_or(true, |v| v != "0");
        Self::with_enabled(enabled)
    }

    /// Creates a context whose tile cache never stores or replays —
    /// engines run their plain accounting walks (used by the bitwise
    /// oracle and A/B tests).
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> Self {
        Self {
            inner: Arc::new(ContextInner {
                enabled,
                tiles: Mutex::new(HashMap::new()),
                disk: Mutex::new(None),
                scratch: Mutex::new(Vec::new()),
                keys: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Whether tile-grain memoization is active.
    pub fn tile_cache_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Number of memoized tile records (in memory).
    pub fn tile_count(&self) -> usize {
        self.lock_tiles().len()
    }

    /// Backs this context with a disk store: tile records persist to the
    /// store's `tiles` blob channel (fingerprint-scoped, full-key
    /// checked) and lookups that miss in memory consult it. A store
    /// already attached is kept — the first attachment wins, so a
    /// context shared across jobs keeps one coherent persistence target.
    pub fn attach_store(&self, store: &DiskStore) {
        let mut disk = self.inner.disk.lock().unwrap_or_else(|e| e.into_inner());
        if disk.is_none() {
            *disk = Some(store.clone());
        }
    }

    /// Builder form of [`SimContext::attach_store`].
    #[must_use]
    pub fn backed_by(self, store: &DiskStore) -> Self {
        self.attach_store(store);
        self
    }

    fn lock_tiles(&self) -> MutexGuard<'_, HashMap<u64, Slot>> {
        // Records are inserted whole; a poisoned lock cannot expose a
        // partial record, so poisoning is recoverable.
        self.inner.tiles.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up the record stored under `key`, consulting the disk store
    /// on a memory miss. A slot whose full key text differs (64-bit
    /// digest collision) is left in place and reported as a miss.
    pub(crate) fn tile_lookup(&self, key: &str) -> Option<TileRecord> {
        self.tile_lookup_at(digest64(key), key)
    }

    /// [`SimContext::tile_lookup`] with an explicit digest — the seam the
    /// collision unit test drives (real 64-bit collisions are not
    /// constructible on demand).
    pub(crate) fn tile_lookup_at(&self, digest: u64, key: &str) -> Option<TileRecord> {
        if !self.inner.enabled {
            return None;
        }
        if let Some(slot) = self.lock_tiles().get(&digest) {
            if slot.key == key {
                return Some(slot.record.clone());
            }
            // Digest collision: the full-key guard turns it into a miss
            // rather than replaying the wrong tile's timing.
            return None;
        }
        let record = self.tile_load_disk(key)?;
        self.lock_tiles().insert(
            digest,
            Slot {
                key: key.to_owned(),
                record: record.clone(),
            },
        );
        Some(record)
    }

    /// Memoizes `record` under `key` (write-through to the disk store
    /// when one is attached). An existing slot under the same digest is
    /// replaced — interchangeable when the keys match, and the
    /// degrade-to-miss policy when they collide.
    pub(crate) fn tile_insert(&self, key: &str, record: TileRecord) {
        self.tile_insert_at(digest64(key), key, record);
    }

    /// [`SimContext::tile_insert`] with an explicit digest (test seam).
    pub(crate) fn tile_insert_at(&self, digest: u64, key: &str, record: TileRecord) {
        if !self.inner.enabled {
            return;
        }
        self.tile_save_disk(key, &record);
        self.lock_tiles().insert(
            digest,
            Slot {
                key: key.to_owned(),
                record,
            },
        );
    }

    fn tile_load_disk(&self, key: &str) -> Option<TileRecord> {
        let disk = self.inner.disk.lock().unwrap_or_else(|e| e.into_inner());
        let store = disk.as_ref()?;
        let text = store.load_blob("tiles", key)?;
        let stored: StoredTile = serde_json::from_str(&text).ok()?;
        (stored.schema == TILE_SCHEMA && stored.key == key).then_some(stored.record)
    }

    fn tile_save_disk(&self, key: &str, record: &TileRecord) {
        let disk = self.inner.disk.lock().unwrap_or_else(|e| e.into_inner());
        let Some(store) = disk.as_ref() else { return };
        let stored = StoredTile {
            schema: TILE_SCHEMA.to_owned(),
            key: key.to_owned(),
            record: record.clone(),
        };
        if let Ok(text) = serde_json::to_string(&stored) {
            store.save_blob("tiles", key, &text);
        }
    }

    /// Serializes every in-memory tile record as JSON, sorted by full
    /// key so the snapshot is deterministic. Used by the checkpoint
    /// machinery: restoring the snapshot before resuming reproduces the
    /// straight run's tile hit/miss counters exactly, the same way the
    /// [`crate::SimCache`] snapshot travels with a checkpoint.
    pub fn export_tiles_json(&self) -> String {
        let tiles = self.lock_tiles();
        let mut stored: Vec<StoredTile> = tiles
            .values()
            .map(|slot| StoredTile {
                schema: TILE_SCHEMA.to_owned(),
                key: slot.key.clone(),
                record: slot.record.clone(),
            })
            .collect();
        stored.sort_by(|a, b| a.key.cmp(&b.key));
        serde_json::to_string(&stored).expect("tile records serialize")
    }

    /// Restores records from an [`SimContext::export_tiles_json`]
    /// snapshot, returning how many were imported. Records with a stale
    /// schema tag are skipped (they would re-derive as misses anyway).
    ///
    /// # Errors
    ///
    /// Returns the parse error text when `json` is not a snapshot.
    pub fn import_tiles_json(&self, json: &str) -> Result<usize, String> {
        let stored: Vec<StoredTile> = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let mut imported = 0;
        for s in stored {
            if s.schema == TILE_SCHEMA {
                self.tile_insert(&s.key, s.record);
                imported += 1;
            }
        }
        Ok(imported)
    }

    /// Borrows a scratch set from the pool (a fresh one when the pool is
    /// empty). Return it with [`SimContext::put_scratch`] so its grown
    /// buffers serve the next operation.
    pub(crate) fn take_scratch(&self) -> EngineScratch {
        self.inner
            .scratch
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default()
    }

    /// Returns a scratch set to the pool.
    pub(crate) fn put_scratch(&self, scratch: EngineScratch) {
        self.inner
            .scratch
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(scratch);
    }

    /// Borrows a cleared key-construction buffer from the pool. Engines
    /// format tile keys into it (prefix once, then truncate-and-append
    /// per tile class), so a warm invocation's lookups never allocate.
    pub(crate) fn take_key_buf(&self) -> String {
        let mut buf = self
            .inner
            .keys
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        buf.clear();
        buf
    }

    /// Returns a key buffer to the pool (capacity retained).
    pub(crate) fn put_key_buf(&self, buf: String) {
        self.inner
            .keys
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cycles: u64) -> TileRecord {
        TileRecord::new(SimStats {
            cycles,
            ..SimStats::default()
        })
    }

    #[test]
    fn roundtrips_a_record_by_full_key() {
        let ctx = SimContext::new();
        ctx.tile_insert("flex-ws|cfg|w=4", record(11));
        assert_eq!(
            ctx.tile_lookup("flex-ws|cfg|w=4").map(|r| r.stats.cycles),
            Some(11)
        );
        assert!(ctx.tile_lookup("flex-ws|cfg|w=5").is_none());
        assert_eq!(ctx.tile_count(), 1);
    }

    /// Distinct tile keys whose 64-bit FNV digests collide must degrade
    /// to a miss: the slot stores the full key and every lookup checks
    /// it, mirroring the `DiskStore` collision guard. Driven through the
    /// explicit-digest seam because real 64-bit collisions are not
    /// constructible on demand.
    #[test]
    fn fnv_digest_collision_degrades_to_a_miss() {
        let ctx = SimContext::new();
        let digest = 0xdead_beef_u64;
        let key_a = "flex-ws|cfg|tile=(2,2)|w=4";
        let key_b = "flex-os|cfg|tile=(4,1)|w=2"; // distinct geometry/schedule
        ctx.tile_insert_at(digest, key_a, record(7));
        // The colliding key must NOT replay key_a's record.
        assert!(ctx.tile_lookup_at(digest, key_b).is_none());
        // The original key still hits.
        assert_eq!(
            ctx.tile_lookup_at(digest, key_a).map(|r| r.stats.cycles),
            Some(7)
        );
        // Inserting the colliding key replaces the slot; the older key
        // then degrades to a miss too (never a wrong replay).
        ctx.tile_insert_at(digest, key_b, record(9));
        assert!(ctx.tile_lookup_at(digest, key_a).is_none());
        assert_eq!(
            ctx.tile_lookup_at(digest, key_b).map(|r| r.stats.cycles),
            Some(9)
        );
    }

    #[test]
    fn disabled_context_stores_and_replays_nothing() {
        let ctx = SimContext::disabled();
        assert!(!ctx.tile_cache_enabled());
        ctx.tile_insert("k", record(3));
        assert!(ctx.tile_lookup("k").is_none());
        assert_eq!(ctx.tile_count(), 0);
    }

    #[test]
    fn records_persist_through_an_attached_store() {
        let root =
            std::env::temp_dir().join(format!("stonne-context-store-test-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let store = DiskStore::open(&root).unwrap();
        let warm = SimContext::new().backed_by(&store);
        warm.tile_insert("tile|key", record(21));

        // A fresh context on the same store ("restarted process") sees it.
        let cold = SimContext::new().backed_by(&store);
        assert_eq!(
            cold.tile_lookup("tile|key").map(|r| r.stats.cycles),
            Some(21)
        );
        // Promoted into memory on load.
        assert_eq!(cold.tile_count(), 1);
        // A second attachment is ignored (first wins).
        let other = DiskStore::open(
            std::env::temp_dir().join(format!("stonne-context-store-other-{}", std::process::id())),
        )
        .unwrap();
        cold.attach_store(&other);
        assert!(cold.tile_lookup("tile|key").is_some());
        std::fs::remove_dir_all(&root).ok();
        std::fs::remove_dir_all(other.dir().parent().unwrap()).ok();
    }

    #[test]
    fn tile_snapshot_roundtrips_deterministically() {
        let ctx = SimContext::new();
        ctx.tile_insert("b|key", record(2));
        ctx.tile_insert("a|key", record(1));
        let snap = ctx.export_tiles_json();
        assert_eq!(snap, ctx.export_tiles_json(), "deterministic export");
        let fresh = SimContext::new();
        assert_eq!(fresh.import_tiles_json(&snap), Ok(2));
        assert_eq!(fresh.tile_lookup("a|key").map(|r| r.stats.cycles), Some(1));
        assert_eq!(fresh.tile_lookup("b|key").map(|r| r.stats.cycles), Some(2));
        assert!(fresh.import_tiles_json("not json").is_err());
    }

    #[test]
    fn scratch_pool_reuses_buffers() {
        let ctx = SimContext::new();
        let mut s = ctx.take_scratch();
        s.addrs.reserve(1024);
        let cap = s.addrs.capacity();
        ctx.put_scratch(s);
        let s = ctx.take_scratch();
        assert!(s.addrs.capacity() >= cap, "grown buffer is reused");
    }
}
