//! Bounded FIFO with activity accounting, used by the network models.

use std::collections::VecDeque;

/// A bounded FIFO queue that records push/pop activity and peak occupancy,
/// matching the paper's per-FIFO activity counters.
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    pushes: u64,
    pops: u64,
    max_occupancy: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
            pushes: 0,
            pops: 0,
            max_occupancy: 0,
        }
    }

    /// Attempts to enqueue; returns `Err(item)` when full (caller stalls).
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            return Err(item);
        }
        self.items.push_back(item);
        self.pushes += 1;
        self.max_occupancy = self.max_occupancy.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.pops += 1;
        }
        item
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Total pushes performed.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total pops performed.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Peak occupancy observed.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_orders_items() {
        let mut f = Fifo::new(4);
        f.push(1).unwrap();
        f.push(2).unwrap();
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn fifo_rejects_when_full() {
        let mut f = Fifo::new(2);
        f.push('a').unwrap();
        f.push('b').unwrap();
        assert_eq!(f.push('c'), Err('c'));
        assert!(f.is_full());
    }

    #[test]
    fn fifo_tracks_activity() {
        let mut f = Fifo::new(3);
        for i in 0..3 {
            f.push(i).unwrap();
        }
        f.pop();
        f.push(9).unwrap();
        assert_eq!(f.pushes(), 4);
        assert_eq!(f.pops(), 1);
        assert_eq!(f.max_occupancy(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Fifo::<u8>::new(0);
    }
}
