//! The top-level simulated accelerator: dispatches operations onto the
//! engine selected by the configuration's building blocks.

use crate::cache::{CacheEntry, CacheKey, SimCache};
use crate::config::{AcceleratorConfig, ConfigError, ControllerKind, DnKind};
use crate::context::SimContext;
use crate::engine::flexible::{replay_dense, run_dense_ctx, DenseOperand};
use crate::engine::sparse::{
    dispatches_input_stationary, replay_spmm, run_spmm_ctx, NaturalOrder, RowSchedule, SparseRun,
};
use crate::engine::{conv_operand, pool, systolic};
use crate::mapping::{LayerDims, Tile};
use crate::predict::{predicted_stats, CyclePredictor, LayerFeatures};
use crate::stats::SimStats;
use crate::trace::{Component, Probe};
use std::sync::Arc;
use stonne_tensor::{
    col2im_output, gemm_reference, maxpool2d_reference, Conv2dGeom, CsrMatrix, Matrix, Tensor4,
};

/// A simulated DNN inference accelerator instance.
///
/// Created from an [`AcceleratorConfig`], it accepts the coarse-grained
/// operations of the STONNE API (convolution, linear, dense/sparse matrix
/// multiplication, max pooling), runs them cycle-by-cycle on the composed
/// engine, and returns both the functional output and the [`SimStats`].
///
/// ```
/// use stonne_core::{AcceleratorConfig, Stonne};
/// use stonne_tensor::{Matrix, SeededRng};
///
/// # fn main() -> Result<(), stonne_core::ConfigError> {
/// let mut rng = SeededRng::new(0);
/// let a = Matrix::random(8, 16, &mut rng);
/// let b = Matrix::random(16, 4, &mut rng);
/// let mut sim = Stonne::new(AcceleratorConfig::maeri_like(64, 16))?;
/// let (out, stats) = sim.run_gemm("demo", &a, &b);
/// assert_eq!((out.rows(), out.cols()), (8, 4));
/// assert!(stats.cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Stonne {
    config: AcceleratorConfig,
    history: Vec<SimStats>,
    cache: Option<SimCache>,
    predictor: Option<Arc<dyn CyclePredictor>>,
    intra_workers: usize,
    context: SimContext,
}

impl Stonne {
    /// Creates an accelerator instance, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the building blocks are incompatible.
    pub fn new(config: AcceleratorConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Self {
            config,
            history: Vec::new(),
            cache: None,
            predictor: None,
            intra_workers: 1,
            context: SimContext::new(),
        })
    }

    /// Threads a shared [`SimContext`] through the instance: engine
    /// invocations consult its tile-grain record cache and reuse its
    /// pooled scratch buffers. Clone one context across the instances of
    /// a worker (or a whole sweep) so tile records and scratch survive
    /// instance teardown. A fresh instance gets its own context, so this
    /// is an opt-in sharing knob, not a behavior switch — results are
    /// bitwise-identical either way.
    #[must_use]
    pub fn with_context(mut self, context: SimContext) -> Self {
        self.context = context;
        self
    }

    /// The simulation context threaded through engine invocations.
    pub fn context(&self) -> &SimContext {
        &self.context
    }

    /// Fans the flexible dense engine's independent filter chunks across
    /// up to `workers` OS threads. Chunks write disjoint output-row blocks
    /// and their stats merge in chunk order, so results are bitwise
    /// identical to the serial walk — this is a host-side speed knob, not
    /// a simulated-hardware parameter (it does not enter cache keys).
    /// `workers <= 1` keeps the serial path; the knob is also ignored
    /// while a trace is being recorded (the collector is thread-local).
    #[must_use]
    pub fn with_intra_tiles(mut self, workers: usize) -> Self {
        self.intra_workers = workers.max(1);
        self
    }

    /// Attaches a [`SimCache`]: engine invocations whose canonical key is
    /// already memoized are replayed (bitwise-identical stats and output)
    /// instead of re-simulated. The cache is shared — clone one handle
    /// across instances to share results between them.
    #[must_use]
    pub fn with_cache(mut self, cache: SimCache) -> Self {
        // Tile records persist wherever layer entries do: a disk-backed
        // layer cache transparently backs the tile cache too (first store
        // wins if the context is already backed).
        if let Some(store) = cache.disk_store() {
            self.context.attach_store(store);
        }
        self.cache = Some(cache);
        self
    }

    /// Attaches a [`CyclePredictor`] (fast fidelity): engine invocations
    /// are replaced by a learned cycle estimate over the operation's
    /// [`LayerFeatures`]. Functional outputs come from the reference
    /// kernels and DRAM stalls still apply; the stats invariants hold
    /// (breakdown sums to `cycles`, `engine_invocations` is 0) but the
    /// cycle counts are *approximations* — see `docs/PREDICT.md`. The
    /// simulation cache is bypassed entirely: predicted results are
    /// never memoized, so a cache attached alongside stays exact.
    #[must_use]
    pub fn with_predictor(mut self, predictor: Arc<dyn CyclePredictor>) -> Self {
        self.predictor = Some(predictor);
        self
    }

    /// The attached cycle predictor, if any (fast fidelity active).
    pub fn predictor(&self) -> Option<&Arc<dyn CyclePredictor>> {
        self.predictor.as_ref()
    }

    /// The attached simulation cache, if any.
    pub fn sim_cache(&self) -> Option<&SimCache> {
        self.cache.as_ref()
    }

    /// The active configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Statistics of every operation run so far, in order.
    pub fn history(&self) -> &[SimStats] {
        &self.history
    }

    /// Aggregated statistics across the whole history.
    pub fn aggregate_stats(&self) -> SimStats {
        let mut total = SimStats {
            operation: "aggregate".to_owned(),
            ms_size: self.config.ms_size,
            ..SimStats::default()
        };
        for s in &self.history {
            total.merge(s);
        }
        total
    }

    fn record(&mut self, mut stats: SimStats, operand_elems: u64, output_elems: u64) -> SimStats {
        if self.config.model_dram {
            self.apply_dram(&mut stats, operand_elems, output_elems);
        }
        // Shift the trace timeline so the next operation's spans start
        // where this one ended (no-op when tracing is off).
        crate::trace::advance(stats.cycles);
        self.history.push(stats.clone());
        stats
    }

    /// Folds DRAM traffic into the stats: double-buffered prefetch hides
    /// fetches that fit under the compute time; the remainder stalls.
    fn apply_dram(&self, stats: &mut SimStats, operand_elems: u64, output_elems: u64) {
        let per_cycle = self.config.dram.elements_per_cycle();
        // Degenerate DRAM configs report 0 elements/cycle; dividing by that
        // would saturate the cast to u64::MAX. Treat the transfer as free
        // (only latency remains), matching `DramModel::transfer_cycles`.
        let transfer = if operand_elems == 0 || per_cycle <= 0.0 {
            0
        } else {
            (operand_elems as f64 / per_cycle).ceil() as u64
        };
        let fetch_cycles = transfer + self.config.dram.latency_cycles;
        let compute = stats.cycles;
        let stall = fetch_cycles.saturating_sub(compute);
        let dram = Probe::new(Component::Dram);
        dram.span("fetch", 0, fetch_cycles.min(compute));
        if stall > 0 {
            dram.span("stall", compute, compute + stall);
        }
        stats.cycles += stall;
        stats.dram_stall_cycles += stall;
        stats.breakdown.dram_stall_cycles += stall;
        stats.counters.dram_reads += operand_elems;
        stats.counters.dram_writes += output_elems;
    }

    /// Runs the systolic engine through the memoization cache: on a hit
    /// the stats are reused and the output recomputed in the engine's
    /// accumulation order (which equals the reference GEMM's — K is never
    /// tiled and each output accumulates k-ascending from zero).
    fn cached_systolic(&mut self, name: &str, a: &Matrix, b: &Matrix) -> (Matrix, SimStats) {
        if let Some(p) = self.predictor.clone() {
            let f = LayerFeatures::systolic(&self.config, a.rows(), b.cols(), a.cols());
            let stats = predicted_stats(&self.config, name, p.predict_cycles(&f), f.macs);
            return (gemm_reference(a, b), stats);
        }
        let Some(cache) = self.cache.clone() else {
            let (out, mut stats) = systolic::run_gemm_ctx(&self.config, name, a, b, &self.context);
            stats.engine_invocations = 1;
            return (out, stats);
        };
        let key = CacheKey::systolic(&self.config, a.rows(), b.cols(), a.cols());
        if let Some(entry) = cache.get(&key) {
            let stats = entry.stats_for(name);
            Probe::new(Component::Controller).span("cache-hit", 0, stats.cycles);
            return (gemm_reference(a, b), stats);
        }
        let (out, mut stats) = systolic::run_gemm_ctx(&self.config, name, a, b, &self.context);
        stats.engine_invocations = 1;
        stats.sim_cache_misses = 1;
        stats.sim_cache_inserts = 1;
        cache.insert(key, CacheEntry::new(name, &stats, &[], false));
        (out, stats)
    }

    /// Runs the flexible dense engine through the memoization cache.
    fn cached_dense(
        &mut self,
        name: &str,
        layer: &LayerDims,
        tile: &Tile,
        operand: &DenseOperand,
    ) -> (Matrix, SimStats) {
        let workers = self.intra_workers;
        if let Some(p) = self.predictor.clone() {
            let f = LayerFeatures::dense(&self.config, layer, tile, operand);
            let stats = predicted_stats(&self.config, name, p.predict_cycles(&f), f.macs);
            // Replay in the engine's accumulation order, like a cache
            // hit: fast and exact runs stay bitwise-identical.
            return (replay_dense(&self.config, tile, operand), stats);
        }
        let Some(cache) = self.cache.clone() else {
            let (out, mut stats) = run_dense_ctx(
                &self.config,
                name,
                layer,
                tile,
                operand,
                workers,
                &self.context,
            );
            stats.engine_invocations = 1;
            return (out, stats);
        };
        let key = CacheKey::dense(&self.config, layer, tile, operand);
        if let Some(entry) = cache.get(&key) {
            let stats = entry.stats_for(name);
            Probe::new(Component::Controller).span("cache-hit", 0, stats.cycles);
            return (replay_dense(&self.config, tile, operand), stats);
        }
        let (out, mut stats) = run_dense_ctx(
            &self.config,
            name,
            layer,
            tile,
            operand,
            workers,
            &self.context,
        );
        stats.engine_invocations = 1;
        stats.sim_cache_misses = 1;
        stats.sim_cache_inserts = 1;
        cache.insert(key, CacheEntry::new(name, &stats, &[], false));
        (out, stats)
    }

    /// Runs the sparse engine through the memoization cache.
    fn cached_spmm(
        &mut self,
        name: &str,
        a: &CsrMatrix,
        b: &Matrix,
        schedule: &dyn RowSchedule,
    ) -> SparseRun {
        if let Some(p) = self.predictor.clone() {
            let f = LayerFeatures::spmm(&self.config, a, b, schedule);
            let stats = predicted_stats(&self.config, name, p.predict_cycles(&f), f.macs);
            // Mirror the mapper's dataflow choice so the replayed output
            // accumulates in the engine's order (bitwise-identical to an
            // exact run), like a cache hit.
            let is = dispatches_input_stationary(&self.config, a, b.cols(), schedule);
            return SparseRun {
                output: replay_spmm(&self.config, a, b, schedule, is),
                stats,
                iterations: Vec::new(),
                input_stationary: is,
            };
        }
        let Some(cache) = self.cache.clone() else {
            let mut run = run_spmm_ctx(&self.config, name, a, b, schedule, &self.context);
            run.stats.engine_invocations = 1;
            return run;
        };
        let key = CacheKey::spmm(&self.config, a, b, schedule);
        if let Some(entry) = cache.get(&key) {
            let stats = entry.stats_for(name);
            Probe::new(Component::Controller).span("cache-hit", 0, stats.cycles);
            return SparseRun {
                output: replay_spmm(&self.config, a, b, schedule, entry.input_stationary()),
                stats,
                iterations: entry.iterations().to_vec(),
                input_stationary: entry.input_stationary(),
            };
        }
        let mut run = run_spmm_ctx(&self.config, name, a, b, schedule, &self.context);
        run.stats.engine_invocations = 1;
        run.stats.sim_cache_misses = 1;
        run.stats.sim_cache_inserts = 1;
        cache.insert(
            key,
            CacheEntry::new(name, &run.stats, &run.iterations, run.input_stationary),
        );
        run
    }

    /// Runs the pooling engine through the memoization cache (stats depend
    /// only on shape; the output is always the reference max-pool).
    fn cached_maxpool(
        &mut self,
        name: &str,
        input: &Tensor4,
        window: usize,
        stride: usize,
    ) -> (Tensor4, SimStats) {
        if let Some(p) = self.predictor.clone() {
            let f = LayerFeatures::pool(&self.config, input, window, stride);
            // Pool performs comparisons, not MACs; the multiplier
            // counter stays 0 like the engine's.
            let stats = predicted_stats(&self.config, name, p.predict_cycles(&f), 0);
            return (maxpool2d_reference(input, window, stride), stats);
        }
        let Some(cache) = self.cache.clone() else {
            let (out, mut stats) =
                pool::run_maxpool_ctx(&self.config, name, input, window, stride, &self.context);
            stats.engine_invocations = 1;
            return (out, stats);
        };
        let key = CacheKey::pool(&self.config, input, window, stride);
        if let Some(entry) = cache.get(&key) {
            let stats = entry.stats_for(name);
            Probe::new(Component::Controller).span("cache-hit", 0, stats.cycles);
            return (maxpool2d_reference(input, window, stride), stats);
        }
        let (out, mut stats) =
            pool::run_maxpool_ctx(&self.config, name, input, window, stride, &self.context);
        stats.engine_invocations = 1;
        stats.sim_cache_misses = 1;
        stats.sim_cache_inserts = 1;
        cache.insert(key, CacheEntry::new(name, &stats, &[], false));
        (out, stats)
    }

    /// Runs a dense GEMM `C = A (M×K) × B (K×N)`.
    ///
    /// The engine is selected by the configured controller and DN: a
    /// point-to-point dense composition runs systolic; tree/Benes dense
    /// compositions run the flexible engine with an auto-derived tile; a
    /// sparse controller compresses `A` on the fly (exploiting any zeros).
    pub fn run_gemm(&mut self, name: &str, a: &Matrix, b: &Matrix) -> (Matrix, SimStats) {
        self.run_gemm_scheduled(name, a, b, &NaturalOrder)
    }

    /// Runs a dense GEMM with an explicit filter schedule (only effective
    /// on sparse-controller configurations; dense engines map rows
    /// statically).
    pub fn run_gemm_scheduled(
        &mut self,
        name: &str,
        a: &Matrix,
        b: &Matrix,
        schedule: &dyn RowSchedule,
    ) -> (Matrix, SimStats) {
        if self.config.controller == ControllerKind::Sparse {
            let csr = CsrMatrix::from_dense(a);
            let run = self.cached_spmm(name, &csr, b, schedule);
            let operand_elems = (csr.storage_elements() + b.len()) as u64;
            let out_elems = (a.rows() * b.cols()) as u64;
            let stats = self.record(run.stats, operand_elems, out_elems);
            return (run.output, stats);
        }
        let layer = LayerDims::from_gemm(a.rows(), b.cols(), a.cols());
        let tile = Tile::auto_bw(&layer, self.config.ms_size, self.config.dn_bandwidth);
        self.run_gemm_tiled(name, a, b, &tile)
    }

    /// Explores the tile mapping space for a GEMM by *simulating* every
    /// candidate of [`crate::mapping::candidate_tiles`] and returning the
    /// fastest tile with its cycle count — the mRNA-style design-space
    /// exploration the paper positions cycle-level simulation for
    /// (analytical models mis-rank mappings whose delivery conflicts they
    /// cannot see).
    ///
    /// Exploration runs do not enter the instance history.
    ///
    /// # Panics
    ///
    /// Panics if the operands' inner dimensions disagree.
    pub fn search_best_tile(&self, a: &Matrix, b: &Matrix) -> (Tile, u64) {
        assert_eq!(a.cols(), b.rows(), "GEMM inner dimension mismatch");
        let layer = LayerDims::from_gemm(a.rows(), b.cols(), a.cols());
        let mut best: Option<(Tile, u64)> = None;
        // Exploration runs are suspended from the trace timeline: only the
        // mapping the caller ultimately commits to should appear in it.
        crate::trace::suspended(|| {
            for tile in crate::mapping::candidate_tiles(&layer, self.config.ms_size) {
                let mut probe = Stonne {
                    config: self.config.clone(),
                    history: Vec::new(),
                    // Exploration probes bypass the cache: candidate tiles
                    // are evaluated once and must not pollute the store.
                    cache: None,
                    // The predictor carries over: fast-fidelity instances
                    // explore the tile space at predictor speed too.
                    predictor: self.predictor.clone(),
                    intra_workers: self.intra_workers,
                    // Tile records are exploration-safe (keyed on geometry,
                    // not operand values) and candidate tiles share width
                    // classes — sharing the context speeds the search up.
                    context: self.context.clone(),
                };
                let (_, stats) = probe.run_gemm_tiled("tile-search", a, b, &tile);
                if best.as_ref().is_none_or(|(_, c)| stats.cycles < *c) {
                    best = Some((tile, stats.cycles));
                }
            }
        });
        best.expect("candidate_tiles is never empty")
    }

    /// Runs a dense GEMM with an explicit tile (flexible compositions).
    ///
    /// # Panics
    ///
    /// Panics if the tile does not fit the layer/array.
    pub fn run_gemm_tiled(
        &mut self,
        name: &str,
        a: &Matrix,
        b: &Matrix,
        tile: &Tile,
    ) -> (Matrix, SimStats) {
        let operand_elems = (a.len() + b.len()) as u64;
        let out_elems = (a.rows() * b.cols()) as u64;
        match (self.config.controller, self.config.dn) {
            (ControllerKind::Dense, DnKind::PointToPoint) => {
                let (out, stats) = self.cached_systolic(name, a, b);
                let stats = self.record(stats, operand_elems, out_elems);
                (out, stats)
            }
            (ControllerKind::Dense, _) => {
                let layer = LayerDims::from_gemm(a.rows(), b.cols(), a.cols());
                let operand = DenseOperand::from_gemm(a.clone(), b.clone());
                let (out, stats) = self.cached_dense(name, &layer, tile, &operand);
                let stats = self.record(stats, operand_elems, out_elems);
                (out, stats)
            }
            (ControllerKind::Sparse, _) => {
                let csr = CsrMatrix::from_dense(a);
                let run = self.cached_spmm(name, &csr, b, &NaturalOrder);
                let operand_elems = (csr.storage_elements() + b.len()) as u64;
                let stats = self.record(run.stats, operand_elems, out_elems);
                (run.output, stats)
            }
        }
    }

    /// Runs a sparse matrix multiplication `C = A_csr × B` with the
    /// default (natural) filter order.
    pub fn run_spmm(&mut self, name: &str, a: &CsrMatrix, b: &Matrix) -> (Matrix, SimStats) {
        let run = self.run_spmm_scheduled(name, a, b, &NaturalOrder);
        (run.output, run.stats)
    }

    /// Runs a sparse matrix multiplication with an explicit filter
    /// schedule, returning the full [`SparseRun`] (packing info included).
    ///
    /// On dense-controller configurations the operand is densified first
    /// (a dense engine cannot skip zeros).
    pub fn run_spmm_scheduled(
        &mut self,
        name: &str,
        a: &CsrMatrix,
        b: &Matrix,
        schedule: &dyn RowSchedule,
    ) -> SparseRun {
        match self.config.controller {
            ControllerKind::Sparse => {
                let run = self.cached_spmm(name, a, b, schedule);
                let operand_elems = (a.storage_elements() + b.len()) as u64;
                let out_elems = (a.rows() * b.cols()) as u64;
                let stats = self.record(run.stats.clone(), operand_elems, out_elems);
                SparseRun { stats, ..run }
            }
            ControllerKind::Dense => {
                let dense = a.to_dense();
                let (output, stats) = self.run_gemm(name, &dense, b);
                SparseRun {
                    output,
                    stats,
                    iterations: Vec::new(),
                    input_stationary: false,
                }
            }
        }
    }

    /// Runs a (possibly grouped) convolution.
    ///
    /// Each group lowers to a GEMM via im2col; the flexible engine
    /// additionally receives the Global-Buffer address map so overlapping
    /// windows multicast. The optional `tile` pins the mapping; otherwise
    /// the mapper derives one per group.
    ///
    /// # Panics
    ///
    /// Panics if tensor shapes disagree with `geom`.
    pub fn run_conv(
        &mut self,
        name: &str,
        input: &Tensor4,
        weights: &Tensor4,
        geom: &Conv2dGeom,
        tile: Option<Tile>,
    ) -> (Tensor4, SimStats) {
        self.run_conv_scheduled(name, input, weights, geom, tile, &NaturalOrder)
    }

    /// Runs a convolution with an explicit filter schedule (only effective
    /// on sparse-controller configurations).
    ///
    /// # Panics
    ///
    /// Panics if tensor shapes disagree with `geom`.
    pub fn run_conv_scheduled(
        &mut self,
        name: &str,
        input: &Tensor4,
        weights: &Tensor4,
        geom: &Conv2dGeom,
        tile: Option<Tile>,
        schedule: &dyn RowSchedule,
    ) -> (Tensor4, SimStats) {
        // Grouped convolutions on a sparse controller lower to one
        // block-diagonal SpMM: every filter's non-zeros live only on its
        // group's im2col rows, so the variable-cluster machinery maps all
        // groups simultaneously — how SIGMA natively absorbs factorized
        // convolutions.
        if geom.groups > 1 && self.config.controller == ControllerKind::Sparse {
            return self.run_grouped_conv_block_diagonal(name, input, weights, geom, schedule);
        }
        let (oh, ow) = geom.out_hw(input.h(), input.w());
        let mut group_outputs = Vec::with_capacity(geom.groups);
        let mut total: Option<SimStats> = None;
        for g in 0..geom.groups {
            let gname = if geom.groups == 1 {
                name.to_owned()
            } else {
                format!("{name}.g{g}")
            };
            let (out, stats) = self.run_conv_group(&gname, input, weights, geom, g, tile, schedule);
            group_outputs.push(out);
            match &mut total {
                None => total = Some(stats),
                Some(t) => t.merge(&stats),
            }
        }
        let mut stats = total.expect("at least one group");
        stats.operation = name.to_owned();
        // Flexible dense fabrics map several groups' clusters concurrently
        // (the paper's T_G tile dimension); the groups split the array and
        // the delivery bandwidth, overlapping their execution. Rigid
        // point-to-point arrays cannot, and pay the serialization.
        if geom.groups > 1
            && self.config.controller == ControllerKind::Dense
            && self.config.dn != DnKind::PointToPoint
        {
            let group_layer = LayerDims::from_conv(geom, input.h(), input.w(), input.n());
            let per_group = Tile::auto_bw(
                &LayerDims {
                    c: group_layer.c / group_layer.g,
                    k: group_layer.k / group_layer.g,
                    g: 1,
                    ..group_layer
                },
                self.config.ms_size,
                self.config.dn_bandwidth,
            );
            let concurrent =
                (self.config.ms_size / per_group.ms_used().max(1)).clamp(1, geom.groups) as u64;
            stats.cycles = stats.cycles.div_ceil(concurrent);
            stats.compute_cycles = stats.compute_cycles.div_ceil(concurrent);
            stats.bandwidth_stall_cycles = stats.bandwidth_stall_cycles.div_ceil(concurrent);
            // Rescale the breakdown to the overlapped cycle count: floor
            // each auxiliary phase and fold the rounding residue into the
            // steady phase so the breakdown still sums to `cycles` exactly.
            let b = &mut stats.breakdown;
            b.fill_cycles /= concurrent;
            b.drain_cycles /= concurrent;
            b.dram_stall_cycles /= concurrent;
            b.fifo_stall_cycles /= concurrent;
            b.reduction_stall_cycles /= concurrent;
            let others = b.fill_cycles
                + b.drain_cycles
                + b.dram_stall_cycles
                + b.fifo_stall_cycles
                + b.reduction_stall_cycles;
            b.steady_cycles = stats.cycles.saturating_sub(others);
        }
        let out = col2im_output(&group_outputs, geom, input.n(), oh, ow);
        (out, stats)
    }

    /// Lowers a grouped convolution to a single block-diagonal sparse
    /// GEMM and runs it on the sparse engine (all groups mapped at once).
    fn run_grouped_conv_block_diagonal(
        &mut self,
        name: &str,
        input: &Tensor4,
        weights: &Tensor4,
        geom: &Conv2dGeom,
        schedule: &dyn RowSchedule,
    ) -> (Tensor4, SimStats) {
        let (oh, ow) = geom.out_hw(input.h(), input.w());
        let dot = geom.dot_product_len();
        let kpg = geom.out_c_per_group();
        let n_cols = input.n() * oh * ow;

        // Stationary operand: out_c rows over groups·dot columns, each
        // filter's taps in its group's column block.
        let mut bd = Matrix::zeros(geom.out_c, geom.groups * dot);
        // Streaming operand: the stacked per-group im2col matrices.
        let mut inputs = Matrix::zeros(geom.groups * dot, n_cols);
        for g in 0..geom.groups {
            let operand = conv_operand(input, weights, geom, g);
            for kk in 0..kpg {
                for c in 0..dot {
                    bd.set(g * kpg + kk, g * dot + c, operand.weights.get(kk, c));
                }
            }
            for r in 0..dot {
                for col in 0..n_cols {
                    inputs.set(g * dot + r, col, operand.inputs.get(r, col));
                }
            }
        }
        let csr = CsrMatrix::from_dense(&bd);
        let run = self.cached_spmm(name, &csr, &inputs, schedule);
        let out_elems = (geom.out_c * n_cols) as u64;
        let in_elems = (csr.storage_elements() + input.len()) as u64;
        let stats = self.record(run.stats, in_elems, out_elems);

        // Rows are group-major (g·kpg + kk); slice them back per group.
        let group_outputs: Vec<Matrix> = (0..geom.groups)
            .map(|g| {
                let mut m = Matrix::zeros(kpg, n_cols);
                for kk in 0..kpg {
                    for col in 0..n_cols {
                        m.set(kk, col, run.output.get(g * kpg + kk, col));
                    }
                }
                m
            })
            .collect();
        let out = col2im_output(&group_outputs, geom, input.n(), oh, ow);
        (out, stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_conv_group(
        &mut self,
        name: &str,
        input: &Tensor4,
        weights: &Tensor4,
        geom: &Conv2dGeom,
        g: usize,
        tile: Option<Tile>,
        schedule: &dyn RowSchedule,
    ) -> (Matrix, SimStats) {
        let layer = LayerDims::from_conv(geom, input.h(), input.w(), input.n());
        match (self.config.controller, self.config.dn) {
            (ControllerKind::Dense, DnKind::PointToPoint) => {
                let operand = conv_operand(input, weights, geom, g);
                let out_elems = (operand.weights.rows() * operand.inputs.cols()) as u64;
                let in_elems = (operand.weights.len() + operand.inputs.len()) as u64;
                let (out, stats) = self.cached_systolic(name, &operand.weights, &operand.inputs);
                let stats = self.record(stats, in_elems, out_elems);
                (out, stats)
            }
            (ControllerKind::Dense, _) => {
                let operand = conv_operand(input, weights, geom, g);
                // Per-group layer view: the tile maps one group at a time.
                let group_layer = LayerDims {
                    c: layer.c / layer.g,
                    k: layer.k / layer.g,
                    g: 1,
                    ..layer
                };
                let tile = tile.unwrap_or_else(|| {
                    Tile::auto_bw(&group_layer, self.config.ms_size, self.config.dn_bandwidth)
                });
                let out_elems = (operand.weights.rows() * operand.inputs.cols()) as u64;
                let in_elems = (operand.weights.len() + input.len() / geom.groups) as u64;
                let (out, stats) = self.cached_dense(name, &group_layer, &tile, &operand);
                let stats = self.record(stats, in_elems, out_elems);
                (out, stats)
            }
            (ControllerKind::Sparse, _) => {
                let operand = conv_operand(input, weights, geom, g);
                let csr = CsrMatrix::from_dense(&operand.weights);
                let run = self.cached_spmm(name, &csr, &operand.inputs, schedule);
                let out_elems = (csr.rows() * operand.inputs.cols()) as u64;
                let in_elems = (csr.storage_elements() + input.len() / geom.groups) as u64;
                let stats = self.record(run.stats, in_elems, out_elems);
                (run.output, stats)
            }
        }
    }

    /// Runs a fully-connected layer: `output (seq×out) = input (seq×in) ×
    /// weightsᵀ (out×in)`, the STONNE API's `ConfigureLinear`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.cols() != input.cols()`.
    pub fn run_linear(
        &mut self,
        name: &str,
        input: &Matrix,
        weights: &Matrix,
    ) -> (Matrix, SimStats) {
        self.run_linear_scheduled(name, input, weights, &NaturalOrder)
    }

    /// Runs a fully-connected layer with an explicit filter schedule (only
    /// effective on sparse-controller configurations).
    ///
    /// # Panics
    ///
    /// Panics if `weights.cols() != input.cols()`.
    pub fn run_linear_scheduled(
        &mut self,
        name: &str,
        input: &Matrix,
        weights: &Matrix,
        schedule: &dyn RowSchedule,
    ) -> (Matrix, SimStats) {
        assert_eq!(
            weights.cols(),
            input.cols(),
            "linear weight/input feature mismatch"
        );
        // Weights are the stationary MK operand; tokens stream as KN.
        let b = input.transposed();
        let (out, stats) = self.run_gemm_scheduled(name, weights, &b, schedule);
        (out.transposed(), stats)
    }

    /// Runs a max-pool layer (the STONNE API's `ConfigureMaxPool`).
    pub fn run_maxpool(
        &mut self,
        name: &str,
        input: &Tensor4,
        window: usize,
        stride: usize,
    ) -> (Tensor4, SimStats) {
        let (out, stats) = self.cached_maxpool(name, input, window, stride);
        let in_elems = input.len() as u64;
        let out_elems = out.len() as u64;
        let stats = self.record(stats, in_elems, out_elems);
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stonne_tensor::{assert_slices_close, conv2d_reference, gemm_reference, SeededRng};

    fn presets() -> Vec<AcceleratorConfig> {
        vec![
            AcceleratorConfig::tpu_like(8),
            AcceleratorConfig::maeri_like(64, 16),
            AcceleratorConfig::sigma_like(64, 64),
        ]
    }

    #[test]
    fn gemm_matches_reference_on_all_presets() {
        let mut rng = SeededRng::new(1);
        let a = Matrix::random(10, 20, &mut rng);
        let b = Matrix::random(20, 6, &mut rng);
        let reference = gemm_reference(&a, &b);
        for cfg in presets() {
            let name = cfg.name.clone();
            let mut sim = Stonne::new(cfg).unwrap();
            let (out, stats) = sim.run_gemm("gemm", &a, &b);
            assert_slices_close(out.as_slice(), reference.as_slice());
            assert!(stats.cycles > 0, "{name}");
        }
    }

    #[test]
    fn conv_matches_reference_on_all_presets() {
        let geom = Conv2dGeom::new(3, 5, 3, 3, 1, 1, 1);
        let mut rng = SeededRng::new(2);
        let input = Tensor4::random(1, 3, 6, 6, &mut rng);
        let weights = Tensor4::random(5, 3, 3, 3, &mut rng);
        let reference = conv2d_reference(&input, &weights, &geom);
        for cfg in presets() {
            let name = cfg.name.clone();
            let mut sim = Stonne::new(cfg).unwrap();
            let (out, _) = sim.run_conv("conv", &input, &weights, &geom, None);
            assert_slices_close(out.as_slice(), reference.as_slice());
            let _ = name;
        }
    }

    #[test]
    fn grouped_conv_matches_reference() {
        let geom = Conv2dGeom::new(4, 4, 3, 3, 1, 1, 4); // depthwise
        let mut rng = SeededRng::new(3);
        let input = Tensor4::random(1, 4, 5, 5, &mut rng);
        let weights = Tensor4::random(4, 1, 3, 3, &mut rng);
        let reference = conv2d_reference(&input, &weights, &geom);
        for cfg in presets() {
            let mut sim = Stonne::new(cfg).unwrap();
            let (out, stats) = sim.run_conv("dw", &input, &weights, &geom, None);
            assert_slices_close(out.as_slice(), reference.as_slice());
            assert!(stats.cycles > 0);
        }
    }

    #[test]
    fn linear_matches_reference() {
        let mut rng = SeededRng::new(4);
        let input = Matrix::random(3, 12, &mut rng); // seq 3, in 12
        let weights = Matrix::random(7, 12, &mut rng); // out 7
        let expected = gemm_reference(&input, &weights.transposed());
        for cfg in presets() {
            let mut sim = Stonne::new(cfg).unwrap();
            let (out, _) = sim.run_linear("fc", &input, &weights);
            assert_slices_close(out.as_slice(), expected.as_slice());
        }
    }

    #[test]
    fn history_accumulates() {
        let mut rng = SeededRng::new(5);
        let a = Matrix::random(4, 8, &mut rng);
        let b = Matrix::random(8, 4, &mut rng);
        let mut sim = Stonne::new(AcceleratorConfig::maeri_like(32, 8)).unwrap();
        sim.run_gemm("g1", &a, &b);
        sim.run_gemm("g2", &a, &b);
        assert_eq!(sim.history().len(), 2);
        let agg = sim.aggregate_stats();
        assert_eq!(
            agg.cycles,
            sim.history()[0].cycles + sim.history()[1].cycles
        );
    }

    #[test]
    fn sparse_controller_exploits_gemm_zeros() {
        let mut rng = SeededRng::new(6);
        let mut a = Matrix::random(32, 32, &mut rng);
        for r in 0..32 {
            for c in 0..32 {
                if (r + c) % 4 != 0 {
                    a.set(r, c, 0.0); // 75% sparse
                }
            }
        }
        let b = Matrix::random(32, 16, &mut rng);
        let mut sigma = Stonne::new(AcceleratorConfig::sigma_like(64, 64)).unwrap();
        let mut maeri = Stonne::new(AcceleratorConfig::maeri_like(64, 64)).unwrap();
        let (so, ss) = sigma.run_gemm("sp", &a, &b);
        let (mo, ms) = maeri.run_gemm("sp", &a, &b);
        assert_slices_close(so.as_slice(), mo.as_slice());
        assert!(
            ss.counters.multiplications < ms.counters.multiplications / 2,
            "sparse engine must skip zero MACs"
        );
    }

    #[test]
    fn dram_modeling_adds_stalls_when_enabled() {
        let mut rng = SeededRng::new(7);
        let a = Matrix::random(16, 16, &mut rng);
        let b = Matrix::random(16, 16, &mut rng);
        let mut slow_dram = AcceleratorConfig::maeri_like(64, 64).with_dram_modeling(true);
        slow_dram.dram.bandwidth_gbps_per_channel = 0.5;
        slow_dram.dram.channels = 1;
        let mut sim = Stonne::new(slow_dram).unwrap();
        let (_, stats) = sim.run_gemm("g", &a, &b);
        assert!(stats.dram_stall_cycles > 0);
        assert!(stats.counters.dram_reads > 0);
    }

    #[test]
    fn tile_search_never_loses_to_the_auto_tile() {
        let mut rng = SeededRng::new(9);
        let a = Matrix::random(24, 96, &mut rng);
        let b = Matrix::random(96, 48, &mut rng);
        let cfg = AcceleratorConfig::maeri_like(128, 32);
        let sim = Stonne::new(cfg.clone()).unwrap();
        let (best_tile, best_cycles) = sim.search_best_tile(&a, &b);
        let mut auto_sim = Stonne::new(cfg).unwrap();
        let (_, auto_stats) = auto_sim.run_gemm("auto", &a, &b);
        assert!(
            best_cycles <= auto_stats.cycles,
            "search {best_cycles} worse than auto {} ({best_tile:?})",
            auto_stats.cycles
        );
    }

    #[test]
    fn breakdown_sums_to_total_cycles_across_presets() {
        let mut rng = SeededRng::new(11);
        let a = Matrix::random(10, 20, &mut rng);
        let b = Matrix::random(20, 6, &mut rng);
        for cfg in presets() {
            let name = cfg.name.clone();
            let mut sim = Stonne::new(cfg).unwrap();
            let (_, stats) = sim.run_gemm("g", &a, &b);
            assert_eq!(stats.breakdown.total(), stats.cycles, "gemm on {name}");
        }
    }

    #[test]
    fn breakdown_holds_for_grouped_conv_and_pool_and_dram() {
        let geom = Conv2dGeom::new(4, 4, 3, 3, 1, 1, 4); // depthwise
        let mut rng = SeededRng::new(12);
        let input = Tensor4::random(1, 4, 5, 5, &mut rng);
        let weights = Tensor4::random(4, 1, 3, 3, &mut rng);
        for cfg in presets() {
            let name = cfg.name.clone();
            let mut sim = Stonne::new(cfg).unwrap();
            // Grouped conv exercises the concurrent-group cycle division
            // on the flexible dense preset.
            let (_, stats) = sim.run_conv("dw", &input, &weights, &geom, None);
            assert_eq!(stats.breakdown.total(), stats.cycles, "conv on {name}");
            let (_, pstats) = sim.run_maxpool("pool", &input, 2, 2);
            assert_eq!(pstats.breakdown.total(), pstats.cycles, "pool on {name}");
        }
        // DRAM stalls are part of the breakdown too.
        let mut slow = AcceleratorConfig::maeri_like(64, 64).with_dram_modeling(true);
        slow.dram.bandwidth_gbps_per_channel = 0.5;
        slow.dram.channels = 1;
        let mut rng = SeededRng::new(13);
        let a = Matrix::random(16, 16, &mut rng);
        let b = Matrix::random(16, 16, &mut rng);
        let mut sim = Stonne::new(slow).unwrap();
        let (_, stats) = sim.run_gemm("g", &a, &b);
        assert!(stats.breakdown.dram_stall_cycles > 0);
        assert_eq!(stats.breakdown.total(), stats.cycles);
    }

    #[test]
    fn tile_search_does_not_pollute_the_trace() {
        use crate::trace;
        let mut rng = SeededRng::new(14);
        let a = Matrix::random(8, 32, &mut rng);
        let b = Matrix::random(32, 8, &mut rng);
        let sim = Stonne::new(AcceleratorConfig::maeri_like(64, 16)).unwrap();
        trace::start(1024);
        let _ = sim.search_best_tile(&a, &b);
        let t = trace::finish().unwrap();
        assert!(t.events().is_empty(), "exploration must stay off-timeline");
    }

    #[test]
    fn maxpool_runs_on_flexible_preset() {
        let mut rng = SeededRng::new(8);
        let input = Tensor4::random(1, 2, 6, 6, &mut rng);
        let mut sim = Stonne::new(AcceleratorConfig::maeri_like(64, 16)).unwrap();
        let (out, stats) = sim.run_maxpool("pool", &input, 2, 2);
        assert_eq!(out.shape(), (1, 2, 3, 3));
        assert!(stats.cycles > 0);
    }

    /// Zeroes the cache bookkeeping so cached and uncached stats can be
    /// compared field-by-field.
    fn strip_cache_counters(mut s: SimStats) -> SimStats {
        s.sim_cache_hits = 0;
        s.sim_cache_misses = 0;
        s.sim_cache_inserts = 0;
        s.engine_invocations = 0;
        s.tile_cache_hits = 0;
        s.tile_cache_misses = 0;
        s.tile_cache_assembled = 0;
        s
    }

    #[test]
    fn cache_hits_are_bitwise_identical_on_all_presets() {
        let mut rng = SeededRng::new(9);
        let a = Matrix::random(10, 20, &mut rng);
        let b = Matrix::random(20, 6, &mut rng);
        // Same shape and (for the sparse preset) same all-dense pattern,
        // but different values — the cache must still hit and the replayed
        // output must match a fresh simulation bit for bit.
        let a2 = Matrix::random(10, 20, &mut rng);
        let b2 = Matrix::random(20, 6, &mut rng);
        for cfg in presets() {
            let cache = crate::cache::SimCache::new();
            let mut sim = Stonne::new(cfg.clone()).unwrap().with_cache(cache.clone());
            let (_, miss) = sim.run_gemm("g1", &a, &b);
            assert_eq!(miss.sim_cache_misses, 1, "{}", cfg.name);
            assert_eq!(miss.sim_cache_inserts, 1);
            assert_eq!(miss.engine_invocations, 1);
            let (hit_out, hit) = sim.run_gemm("g2", &a2, &b2);
            assert_eq!(hit.sim_cache_hits, 1, "{}", cfg.name);
            assert_eq!(hit.engine_invocations, 0);
            let mut fresh = Stonne::new(cfg.clone()).unwrap();
            let (ref_out, ref_stats) = fresh.run_gemm("g2", &a2, &b2);
            assert_eq!(
                hit_out.as_slice(),
                ref_out.as_slice(),
                "{}: cached output must be bitwise identical",
                cfg.name
            );
            assert_eq!(
                strip_cache_counters(hit),
                strip_cache_counters(ref_stats),
                "{}: cached stats must match a fresh run",
                cfg.name
            );
        }
    }

    #[test]
    fn shared_context_replays_tiles_across_instances() {
        let mut rng = SeededRng::new(31);
        let a = Matrix::random(10, 20, &mut rng);
        let b = Matrix::random(20, 6, &mut rng);
        for cfg in presets() {
            let name = cfg.name.clone();
            let shared = SimContext::new();
            let mut first = Stonne::new(cfg.clone())
                .unwrap()
                .with_context(shared.clone());
            let (out1, s1) = first.run_gemm("g", &a, &b);
            assert!(s1.tile_cache_misses > 0, "{name}: cold run derives records");
            // A brand-new instance sharing the context replays every tile.
            let mut second = Stonne::new(cfg.clone()).unwrap().with_context(shared);
            let (out2, s2) = second.run_gemm("g", &a, &b);
            assert_eq!(s2.tile_cache_misses, 0, "{name}: warm run derives nothing");
            assert!(s2.tile_cache_hits > 0, "{name}");
            assert_eq!(out1.as_slice(), out2.as_slice(), "{name}");
            assert_eq!(
                strip_cache_counters(s1),
                strip_cache_counters(s2),
                "{name}: tile replay is bitwise"
            );
        }
    }

    #[test]
    fn grouped_conv_hits_cache_across_identical_groups() {
        // A depthwise conv on a flexible dense preset runs one engine call
        // per group; base-normalized address hashing lets every group after
        // the first hit the cache.
        let geom = Conv2dGeom::new(4, 4, 3, 3, 1, 1, 4);
        let mut rng = SeededRng::new(10);
        let input = Tensor4::random(1, 4, 5, 5, &mut rng);
        let weights = Tensor4::random(4, 1, 3, 3, &mut rng);
        let reference = conv2d_reference(&input, &weights, &geom);
        let cfg = AcceleratorConfig::maeri_like(64, 16);
        let cache = crate::cache::SimCache::new();
        let mut sim = Stonne::new(cfg).unwrap().with_cache(cache.clone());
        let (out, stats) = sim.run_conv("dw", &input, &weights, &geom, None);
        assert_slices_close(out.as_slice(), reference.as_slice());
        assert_eq!(stats.engine_invocations, 1);
        assert_eq!(stats.sim_cache_hits, 3, "3 of 4 groups replay");
        assert_eq!(cache.len(), 1);
    }

    /// Cycle-per-MAC toy predictor for the fast-fidelity tests.
    #[derive(Debug)]
    struct MacRate(u64);
    impl crate::predict::CyclePredictor for MacRate {
        fn predict_cycles(&self, f: &crate::predict::LayerFeatures) -> u64 {
            f.macs / self.0 + 5
        }
    }

    #[test]
    fn predictor_bypasses_engine_and_cache_on_all_presets() {
        use std::sync::Arc;
        let mut rng = SeededRng::new(21);
        let a = Matrix::random(10, 20, &mut rng);
        let b = Matrix::random(20, 6, &mut rng);
        let reference = gemm_reference(&a, &b);
        for cfg in presets() {
            let name = cfg.name.clone();
            let cache = crate::cache::SimCache::new();
            let mut sim = Stonne::new(cfg)
                .unwrap()
                .with_cache(cache.clone())
                .with_predictor(Arc::new(MacRate(8)));
            let (out, stats) = sim.run_gemm("fast", &a, &b);
            assert_slices_close(out.as_slice(), reference.as_slice());
            assert_eq!(stats.engine_invocations, 0, "{name}");
            assert_eq!(stats.sim_cache_misses + stats.sim_cache_hits, 0, "{name}");
            assert_eq!(cache.len(), 0, "{name}: predicted runs are not memoized");
            assert_eq!(stats.breakdown.total(), stats.cycles, "{name}");
            assert!(stats.cycles > 0, "{name}");
        }
    }

    #[test]
    fn predictor_covers_conv_pool_and_spmm() {
        use std::sync::Arc;
        let geom = Conv2dGeom::new(3, 5, 3, 3, 1, 1, 1);
        let mut rng = SeededRng::new(22);
        let input = Tensor4::random(1, 3, 6, 6, &mut rng);
        let weights = Tensor4::random(5, 3, 3, 3, &mut rng);
        let reference = conv2d_reference(&input, &weights, &geom);
        for cfg in presets() {
            let mut sim = Stonne::new(cfg)
                .unwrap()
                .with_predictor(Arc::new(MacRate(4)));
            let (out, stats) = sim.run_conv("conv", &input, &weights, &geom, None);
            assert_slices_close(out.as_slice(), reference.as_slice());
            assert_eq!(stats.engine_invocations, 0);
            let (pout, pstats) = sim.run_maxpool("pool", &input, 2, 2);
            assert_eq!(pout.shape(), (1, 3, 3, 3));
            assert_eq!(pstats.engine_invocations, 0);
            assert_eq!(pstats.breakdown.total(), pstats.cycles);
        }
        let mut rng = SeededRng::new(23);
        let a = CsrMatrix::from_dense(&Matrix::random(8, 8, &mut rng));
        let b = Matrix::random(8, 4, &mut rng);
        let mut sigma = Stonne::new(AcceleratorConfig::sigma_like(64, 64))
            .unwrap()
            .with_predictor(Arc::new(MacRate(4)));
        let (out, stats) = sigma.run_spmm("spmm", &a, &b);
        assert_slices_close(
            out.as_slice(),
            stonne_tensor::spmm_reference(&a, &b).as_slice(),
        );
        assert_eq!(stats.engine_invocations, 0);
    }

    #[test]
    fn predictor_still_pays_dram_stalls() {
        use std::sync::Arc;
        let mut rng = SeededRng::new(24);
        let a = Matrix::random(16, 16, &mut rng);
        let b = Matrix::random(16, 16, &mut rng);
        let mut slow = AcceleratorConfig::maeri_like(64, 64).with_dram_modeling(true);
        slow.dram.bandwidth_gbps_per_channel = 0.5;
        slow.dram.channels = 1;
        let mut sim = Stonne::new(slow)
            .unwrap()
            .with_predictor(Arc::new(MacRate(64)));
        let (_, stats) = sim.run_gemm("g", &a, &b);
        assert!(
            stats.dram_stall_cycles > 0,
            "DRAM applies outside prediction"
        );
        assert_eq!(stats.breakdown.total(), stats.cycles);
    }

    #[test]
    fn cache_respects_differing_configs_and_shapes() {
        let mut rng = SeededRng::new(11);
        let a = Matrix::random(8, 16, &mut rng);
        let b = Matrix::random(16, 4, &mut rng);
        let cache = crate::cache::SimCache::new();
        let mut small = Stonne::new(AcceleratorConfig::maeri_like(64, 16))
            .unwrap()
            .with_cache(cache.clone());
        let (_, s1) = small.run_gemm("g", &a, &b);
        assert_eq!(s1.sim_cache_misses, 1);
        // Same shape on a different array size must miss.
        let mut big = Stonne::new(AcceleratorConfig::maeri_like(128, 32))
            .unwrap()
            .with_cache(cache.clone());
        let (_, s2) = big.run_gemm("g", &a, &b);
        assert_eq!(s2.sim_cache_misses, 1);
        // A different shape on the original config must miss too.
        let c = Matrix::random(16, 5, &mut rng);
        let (_, s3) = small.run_gemm("g", &a, &c);
        assert_eq!(s3.sim_cache_misses, 1);
        assert_eq!(cache.len(), 3);
    }
}
