//! `stonne-core`: a cycle-level microarchitectural simulation engine for
//! DNN inference accelerators — a Rust reproduction of the STONNE
//! simulator (Muñoz-Martínez et al., IISWC 2021).
//!
//! The engine builds on the paper's observation that most DNN accelerators
//! decompose into three configurable on-chip network tiers — a
//! distribution network (DN), a multiplier network (MN), and a reduction
//! network (RN) — plus a Global Buffer and a memory controller. Selecting
//! one module per tier composes rigid architectures (the TPU's systolic
//! array), flexible dense ones (MAERI), and flexible sparse ones (SIGMA);
//! see [`AcceleratorConfig`] and the presets of Table IV.
//!
//! # Quick start
//!
//! ```
//! use stonne_core::{AcceleratorConfig, Stonne};
//! use stonne_tensor::{Matrix, SeededRng};
//!
//! # fn main() -> Result<(), stonne_core::ConfigError> {
//! let mut rng = SeededRng::new(42);
//! let weights = Matrix::random(16, 64, &mut rng); // MK operand
//! let inputs = Matrix::random(64, 8, &mut rng); // KN operand
//!
//! let mut sim = Stonne::new(AcceleratorConfig::maeri_like(128, 32))?;
//! let (output, stats) = sim.run_gemm("demo_gemm", &weights, &inputs);
//!
//! assert_eq!((output.rows(), output.cols()), (16, 8));
//! println!("cycles: {}", stats.cycles);
//! println!("utilization: {:.1}%", stats.ms_utilization() * 100.0);
//! # Ok(())
//! # }
//! ```
//!
//! # Modules
//!
//! * [`config`] — building-block selection and presets (Table IV).
//! * [`mapping`] — `Layer(R,S,C,K,G,N,X',Y')` and `Tile(T_*)` descriptors
//!   plus the mRNA-style mapper.
//! * [`networks`] — DN/MN/RN cost-and-activity models (Fig. 3b).
//! * [`engine`] — the systolic, flexible and sparse cycle-level engines.
//! * [`accelerator`] — the composed simulator instance ([`Stonne`]).
//! * [`cache`] — the layer-simulation memoization cache ([`SimCache`]).
//! * [`context`] — the tile-grain result cache and pooled engine
//!   scratch threaded through workers ([`SimContext`]).
//! * [`predict`] — per-layer feature extraction and the
//!   [`CyclePredictor`] interface behind the fast-fidelity mode.
//! * [`store`] — the disk-persistent, content-addressed result store
//!   backing the cache across processes ([`DiskStore`]).
//! * [`checkpoint`] — deterministic model-run snapshots at layer
//!   boundaries ([`Checkpoint`], [`StateHash`]) enabling
//!   bitwise-identical resume after a crash.
//! * [`api`] — the coarse-grained STONNE API instruction set (Table III).
//! * [`stats`] / [`output`] — activity counters, JSON summary, counter
//!   file, Chrome-trace timeline export.
//! * [`trace`] — zero-overhead-when-disabled cycle-level span recording.
//! * [`fifo`] — bounded FIFOs with activity accounting.

#![warn(missing_docs)]

pub mod accelerator;
pub mod api;
pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod context;
pub mod engine;
pub mod fifo;
pub mod mapping;
pub mod networks;
pub mod output;
pub mod predict;
pub mod stats;
pub mod store;
pub mod trace;

pub use accelerator::Stonne;
pub use api::{ApiError, Instruction, OpConfig, OpOutput, OperandData, StonneMachine};
pub use cache::SimCache;
pub use checkpoint::{Checkpoint, CheckpointError, StateHash, CHECKPOINT_SCHEMA};
pub use config::{
    AcceleratorConfig, ConfigError, ControllerKind, Dataflow, DnKind, MnKind, RnKind, SparseFormat,
};
pub use context::SimContext;
pub use engine::flexible::{DenseOperand, PAD_ADDR};
pub use engine::sparse::{IterationInfo, NaturalOrder, RowSchedule, SparseRun};
pub use engine::systolic::expected_cycles as systolic_expected_cycles;
pub use mapping::{candidate_tiles, LayerDims, MappingSignals, Tile};
pub use output::{chrome_trace_json, counter_file, parse_counter_file, summary_json};
pub use predict::{
    gemm_features, pool_features, spmm_features, CyclePredictor, EngineKind, LayerFeatures,
};
pub use stats::{ActivityCounters, CycleBreakdown, SimStats};
pub use store::{code_fingerprint, DiskStore, StoreCounters};
pub use trace::{Component, Probe, Trace, TraceEvent};
