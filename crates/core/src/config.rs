//! Accelerator configuration: the building-block selection of Fig. 3.
//!
//! A [`AcceleratorConfig`] picks one module per tier (distribution network,
//! multiplier network, reduction network, memory controller) plus the
//! sizing parameters (multiplier count, bandwidths, Global Buffer size).
//! The presets of Table IV — TPU-like, MAERI-like and SIGMA-like — are
//! provided as constructors.

use serde::{Deserialize, Serialize};
use std::fmt;
use stonne_dram::DramConfig;

/// Distribution-network topology (GB → multipliers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DnKind {
    /// MAERI-style binary distribution tree (unicast/multicast/broadcast).
    Tree,
    /// SIGMA-style Benes non-blocking N×N network.
    Benes,
    /// Point-to-point links feeding a systolic array edge.
    PointToPoint,
}

/// Multiplier-network topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MnKind {
    /// Linear network with forwarding links between neighbours (TPU, MAERI).
    Linear,
    /// No forwarding links; pure GEMM multipliers (SIGMA, SpArch).
    Disabled,
}

/// Reduction-network topology (multipliers → GB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RnKind {
    /// Augmented reduction tree with 3:1 adders and horizontal links (MAERI).
    Art,
    /// ART with an accumulation buffer at the collection point.
    ArtAcc,
    /// Forwarding adder network with 2:1 adders (SIGMA).
    Fan,
    /// Linear (systolic) reduction, as in TPU/Eyeriss/ShiDianNao.
    Linear,
}

/// Memory-controller kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControllerKind {
    /// mRNA-style dense controller with a fixed tile partition.
    Dense,
    /// Sparse GEMM controller (bitmap/CSR operands, variable clusters).
    Sparse,
}

/// Loop-ordering dataflow of the dense controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Weights resident in the array; inputs/psums stream.
    WeightStationary,
    /// Outputs resident; weights and inputs stream (TPU-like OS array).
    OutputStationary,
    /// Inputs resident; weights stream.
    InputStationary,
}

/// Sparse operand encoding accepted by the sparse controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SparseFormat {
    /// Compressed sparse row.
    Csr,
    /// Bitmap + packed non-zero values.
    Bitmap,
}

/// Error returned when a configuration combines incompatible modules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid accelerator configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Complete accelerator description (the `stonne_hw.cfg` of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Human-readable name (reported in the stats output).
    pub name: String,
    /// Number of multiplier switches (processing elements).
    pub ms_size: usize,
    /// Global-buffer read bandwidth in elements/cycle (DN injection rate).
    pub dn_bandwidth: usize,
    /// Global-buffer write bandwidth in elements/cycle (RN collection rate).
    pub rn_bandwidth: usize,
    /// Global-buffer capacity in KiB (108 KiB in the paper's use cases).
    pub gb_size_kib: usize,
    /// Distribution network.
    pub dn: DnKind,
    /// Multiplier network.
    pub mn: MnKind,
    /// Reduction network.
    pub rn: RnKind,
    /// Memory controller.
    pub controller: ControllerKind,
    /// Dense-controller dataflow.
    pub dataflow: Dataflow,
    /// Sparse operand format.
    pub sparse_format: SparseFormat,
    /// Whether the sparse controller also exploits zeros in the streaming
    /// (activation) operand: zero inputs are neither delivered nor
    /// multiplied. SIGMA supports dual-sided sparsity; the paper's
    /// evaluation exercises weight sparsity, so the presets default to
    /// `false`.
    pub exploit_activation_sparsity: bool,
    /// Off-chip memory configuration.
    pub dram: DramConfig,
    /// Whether to model DRAM stalls (the paper's use cases size HBM2 so
    /// double buffering hides them; disable to isolate on-chip behaviour).
    pub model_dram: bool,
}

impl AcceleratorConfig {
    /// TPU-like preset (Table IV): output-stationary systolic array of
    /// `pe_dim × pe_dim` PEs with point-to-point links, linear MN and
    /// linear RN. The TPU requires full bandwidth, so both bandwidths are
    /// set to `2 * pe_dim` (one operand per edge per cycle).
    pub fn tpu_like(pe_dim: usize) -> Self {
        Self {
            name: format!("TPU-like {pe_dim}x{pe_dim}"),
            ms_size: pe_dim * pe_dim,
            dn_bandwidth: 2 * pe_dim,
            rn_bandwidth: pe_dim,
            gb_size_kib: 108,
            dn: DnKind::PointToPoint,
            mn: MnKind::Linear,
            rn: RnKind::Linear,
            controller: ControllerKind::Dense,
            dataflow: Dataflow::OutputStationary,
            sparse_format: SparseFormat::Bitmap,
            exploit_activation_sparsity: false,
            dram: DramConfig::hbm2_dual(),
            model_dram: false,
        }
    }

    /// MAERI-like preset (Table IV): distribution tree + linear MN + ART.
    pub fn maeri_like(ms_size: usize, bandwidth: usize) -> Self {
        Self {
            name: format!("MAERI-like {ms_size}ms"),
            ms_size,
            dn_bandwidth: bandwidth,
            rn_bandwidth: bandwidth,
            gb_size_kib: 108,
            dn: DnKind::Tree,
            mn: MnKind::Linear,
            rn: RnKind::ArtAcc,
            controller: ControllerKind::Dense,
            dataflow: Dataflow::WeightStationary,
            sparse_format: SparseFormat::Bitmap,
            exploit_activation_sparsity: false,
            dram: DramConfig::hbm2_dual(),
            model_dram: false,
        }
    }

    /// SIGMA-like preset (Table IV): Benes + disabled MN + FAN + sparse
    /// controller.
    pub fn sigma_like(ms_size: usize, bandwidth: usize) -> Self {
        Self {
            name: format!("SIGMA-like {ms_size}ms"),
            ms_size,
            dn_bandwidth: bandwidth,
            rn_bandwidth: bandwidth,
            gb_size_kib: 108,
            dn: DnKind::Benes,
            mn: MnKind::Disabled,
            rn: RnKind::Fan,
            controller: ControllerKind::Sparse,
            dataflow: Dataflow::WeightStationary,
            sparse_format: SparseFormat::Bitmap,
            exploit_activation_sparsity: false,
            dram: DramConfig::hbm2_dual(),
            model_dram: false,
        }
    }

    /// Enables DRAM-stall modelling.
    pub fn with_dram_modeling(mut self, on: bool) -> Self {
        self.model_dram = on;
        self
    }

    /// Side length when the MS array is treated as a square systolic array.
    ///
    /// # Panics
    ///
    /// Panics if `ms_size` is not a perfect square (required by the
    /// point-to-point systolic composition).
    pub fn pe_dim(&self) -> usize {
        let dim = (self.ms_size as f64).sqrt().round() as usize;
        assert_eq!(dim * dim, self.ms_size, "systolic array must be square");
        dim
    }

    /// Validates module compatibility (the paper: "the configured memory
    /// controller must always be compatible with the hardware substrate").
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when sizes are zero, the sparse controller
    /// is paired with a forwarding MN or linear RN, or a systolic DN is
    /// paired with a non-dense controller.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.ms_size == 0 {
            return Err(ConfigError("ms_size must be positive".into()));
        }
        if self.dn_bandwidth == 0 || self.rn_bandwidth == 0 {
            return Err(ConfigError("bandwidth must be positive".into()));
        }
        if self.gb_size_kib == 0 {
            return Err(ConfigError("global buffer must be non-empty".into()));
        }
        match self.controller {
            ControllerKind::Sparse => {
                if self.rn == RnKind::Linear {
                    return Err(ConfigError(
                        "sparse controller needs a cluster-capable RN (ART/FAN)".into(),
                    ));
                }
                if self.dn == DnKind::PointToPoint {
                    return Err(ConfigError(
                        "sparse controller needs multicast delivery (tree/Benes)".into(),
                    ));
                }
            }
            ControllerKind::Dense => {
                if self.dn == DnKind::PointToPoint {
                    let dim = (self.ms_size as f64).sqrt().round() as usize;
                    if dim * dim != self.ms_size {
                        return Err(ConfigError(
                            "point-to-point systolic composition needs a square MS array".into(),
                        ));
                    }
                    if self.dataflow != Dataflow::OutputStationary {
                        return Err(ConfigError(
                            "the systolic composition implements the output-stationary dataflow"
                                .into(),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Global-buffer capacity in elements.
    pub fn gb_capacity_elements(&self) -> usize {
        self.gb_size_kib * 1024 / self.dram.element_bytes
    }

    /// Serializes to the simple `key = value` hardware-configuration file
    /// format (the `stonne_hw.cfg` the paper's front-end passes around).
    pub fn to_cfg_string(&self) -> String {
        let mut out = String::new();
        self.write_cfg_string(&mut out);
        out
    }

    /// [`Self::to_cfg_string`] appended to an existing buffer instead of
    /// a fresh `String` — tile-key construction formats the
    /// configuration into pooled buffers on the hot path.
    pub fn write_cfg_string(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "# STONNE hardware configuration\n\
             name = {}\n\
             ms_size = {}\n\
             dn_bandwidth = {}\n\
             rn_bandwidth = {}\n\
             gb_size_kib = {}\n\
             dn = {:?}\n\
             mn = {:?}\n\
             rn = {:?}\n\
             controller = {:?}\n\
             dataflow = {:?}\n\
             sparse_format = {:?}\n\
             exploit_activation_sparsity = {}\n",
            self.name,
            self.ms_size,
            self.dn_bandwidth,
            self.rn_bandwidth,
            self.gb_size_kib,
            self.dn,
            self.mn,
            self.rn,
            self.controller,
            self.dataflow,
            self.sparse_format,
            self.exploit_activation_sparsity,
        );
    }

    /// Parses a `key = value` hardware-configuration string produced by
    /// [`Self::to_cfg_string`] (unknown keys are ignored, missing keys keep
    /// the MAERI-like defaults).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on malformed numeric values or unknown
    /// module names.
    pub fn from_cfg_string(text: &str) -> Result<Self, ConfigError> {
        let mut cfg = AcceleratorConfig::maeri_like(256, 128);
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim();
            let value = value.trim();
            let parse_num = |v: &str| -> Result<usize, ConfigError> {
                v.parse()
                    .map_err(|_| ConfigError(format!("bad number for {key}: {v}")))
            };
            match key {
                "name" => cfg.name = value.to_owned(),
                "ms_size" => cfg.ms_size = parse_num(value)?,
                "dn_bandwidth" => cfg.dn_bandwidth = parse_num(value)?,
                "rn_bandwidth" => cfg.rn_bandwidth = parse_num(value)?,
                "gb_size_kib" => cfg.gb_size_kib = parse_num(value)?,
                "dn" => {
                    cfg.dn = match value {
                        "Tree" => DnKind::Tree,
                        "Benes" => DnKind::Benes,
                        "PointToPoint" => DnKind::PointToPoint,
                        other => return Err(ConfigError(format!("unknown dn {other}"))),
                    }
                }
                "mn" => {
                    cfg.mn = match value {
                        "Linear" => MnKind::Linear,
                        "Disabled" => MnKind::Disabled,
                        other => return Err(ConfigError(format!("unknown mn {other}"))),
                    }
                }
                "rn" => {
                    cfg.rn = match value {
                        "Art" => RnKind::Art,
                        "ArtAcc" => RnKind::ArtAcc,
                        "Fan" => RnKind::Fan,
                        "Linear" => RnKind::Linear,
                        other => return Err(ConfigError(format!("unknown rn {other}"))),
                    }
                }
                "controller" => {
                    cfg.controller = match value {
                        "Dense" => ControllerKind::Dense,
                        "Sparse" => ControllerKind::Sparse,
                        other => return Err(ConfigError(format!("unknown controller {other}"))),
                    }
                }
                "dataflow" => {
                    cfg.dataflow = match value {
                        "WeightStationary" => Dataflow::WeightStationary,
                        "OutputStationary" => Dataflow::OutputStationary,
                        "InputStationary" => Dataflow::InputStationary,
                        other => return Err(ConfigError(format!("unknown dataflow {other}"))),
                    }
                }
                "sparse_format" => {
                    cfg.sparse_format = match value {
                        "Csr" => SparseFormat::Csr,
                        "Bitmap" => SparseFormat::Bitmap,
                        other => return Err(ConfigError(format!("unknown format {other}"))),
                    }
                }
                "exploit_activation_sparsity" => {
                    cfg.exploit_activation_sparsity = value
                        .parse()
                        .map_err(|_| ConfigError(format!("bad bool for {key}: {value}")))?;
                }
                _ => {}
            }
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table4() {
        let tpu = AcceleratorConfig::tpu_like(16);
        assert_eq!(tpu.dn, DnKind::PointToPoint);
        assert_eq!(tpu.mn, MnKind::Linear);
        assert_eq!(tpu.rn, RnKind::Linear);
        assert_eq!(tpu.controller, ControllerKind::Dense);

        let maeri = AcceleratorConfig::maeri_like(256, 128);
        assert_eq!(maeri.dn, DnKind::Tree);
        assert_eq!(maeri.mn, MnKind::Linear);
        assert!(matches!(maeri.rn, RnKind::Art | RnKind::ArtAcc));

        let sigma = AcceleratorConfig::sigma_like(256, 128);
        assert_eq!(sigma.dn, DnKind::Benes);
        assert_eq!(sigma.mn, MnKind::Disabled);
        assert_eq!(sigma.rn, RnKind::Fan);
        assert_eq!(sigma.controller, ControllerKind::Sparse);
    }

    #[test]
    fn presets_validate() {
        AcceleratorConfig::tpu_like(16).validate().unwrap();
        AcceleratorConfig::maeri_like(256, 128).validate().unwrap();
        AcceleratorConfig::sigma_like(128, 128).validate().unwrap();
    }

    #[test]
    fn sparse_with_linear_rn_is_rejected() {
        let mut cfg = AcceleratorConfig::sigma_like(128, 128);
        cfg.rn = RnKind::Linear;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn non_square_systolic_is_rejected() {
        let mut cfg = AcceleratorConfig::tpu_like(16);
        cfg.ms_size = 200;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_bandwidth_is_rejected() {
        let mut cfg = AcceleratorConfig::maeri_like(64, 16);
        cfg.dn_bandwidth = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn cfg_string_roundtrip() {
        let mut cfg = AcceleratorConfig::sigma_like(128, 64);
        cfg.exploit_activation_sparsity = true;
        let parsed = AcceleratorConfig::from_cfg_string(&cfg.to_cfg_string()).unwrap();
        assert!(parsed.exploit_activation_sparsity);
        assert_eq!(parsed.ms_size, 128);
        assert_eq!(parsed.dn_bandwidth, 64);
        assert_eq!(parsed.dn, DnKind::Benes);
        assert_eq!(parsed.controller, ControllerKind::Sparse);
    }

    #[test]
    fn cfg_string_rejects_garbage_module() {
        let err = AcceleratorConfig::from_cfg_string("dn = Hypercube\n");
        assert!(err.is_err());
    }

    #[test]
    fn pe_dim_of_square_array() {
        assert_eq!(AcceleratorConfig::tpu_like(16).pe_dim(), 16);
    }
}
