//! Streaming max-pool engine.
//!
//! The paper notes that pooling maps onto flexible accelerator fabrics
//! without dedicated SIMD modules: windows stream through the multiplier
//! switches (acting as comparators) and the reduction network picks the
//! maximum. The cycle cost is delivery-bound.

use crate::config::AcceleratorConfig;
use crate::context::{SimContext, TileRecord};
use crate::networks::{DistributionNetwork, ReductionNetwork};
use crate::stats::SimStats;
use crate::trace::{Component, Probe};
use stonne_tensor::{maxpool2d_reference, Tensor4};

/// Runs a square-window max-pool on the configured accelerator.
///
/// Returns the pooled tensor and cycle-level statistics.
///
/// # Panics
///
/// Panics if `window` or `stride` is zero, or the window exceeds the
/// input.
pub fn run_maxpool(
    config: &AcceleratorConfig,
    operation: &str,
    input: &Tensor4,
    window: usize,
    stride: usize,
) -> (Tensor4, SimStats) {
    run_maxpool_ctx(config, operation, input, window, stride, &SimContext::new())
}

/// [`run_maxpool`] threaded through a shared [`SimContext`]: the wave
/// loop's whole-invocation timing is one record keyed on (configuration,
/// input shape, window, stride) — every wave streams the same volume, so
/// the record replays the full closed form. The functional max-pool
/// always runs; tracing bypasses the cache.
pub(crate) fn run_maxpool_ctx(
    config: &AcceleratorConfig,
    operation: &str,
    input: &Tensor4,
    window: usize,
    stride: usize,
    sim: &SimContext,
) -> (Tensor4, SimStats) {
    let out = maxpool2d_reference(input, window, stride);
    let mut stats = SimStats {
        accelerator: config.name.clone(),
        operation: operation.to_owned(),
        ms_size: config.ms_size,
        ..SimStats::default()
    };

    if sim.tile_cache_enabled() && !crate::trace::is_active() {
        use std::fmt::Write as _;
        let mut key = sim.take_key_buf();
        let _ = write!(key, "pool|");
        config.write_cfg_string(&mut key);
        let _ = write!(key, "|in={:?}|win={window}|stride={stride}", input.shape());
        let record = if let Some(r) = sim.tile_lookup(&key) {
            stats.tile_cache_hits += 1;
            r
        } else {
            stats.tile_cache_misses += 1;
            let mut local = SimStats::default();
            pool_accounting(config, input, &out, window, &mut local);
            let r = TileRecord::new(local);
            sim.tile_insert(&key, r.clone());
            r
        };
        sim.put_key_buf(key);
        stats.merge(&record.stats);
        stats.tile_cache_assembled += 1;
    } else {
        pool_accounting(config, input, &out, window, &mut stats);
    }
    (out, stats)
}

/// Timing/activity of one max-pool invocation (the wave loop's closed
/// form). Depends only on the output volume, window, and configuration —
/// the record the tile cache replays.
fn pool_accounting(
    config: &AcceleratorConfig,
    _input: &Tensor4,
    out: &Tensor4,
    window: usize,
    stats: &mut SimStats,
) {
    let dn = DistributionNetwork::new(config.dn, config.ms_size, config.dn_bandwidth);
    let rn = ReductionNetwork::new(config.rn, config.ms_size, config.rn_bandwidth);

    let window_elems = window * window;
    let num_windows = out.len() as u64;
    // Each window streams its elements and reduces max in a tree pass;
    // windows are processed `ms_size / window_elems` at a time.
    let windows_per_wave = (config.ms_size / window_elems).max(1) as u64;
    let waves = num_windows.div_ceil(windows_per_wave);
    let per_wave_elems = windows_per_wave as usize * window_elems;
    let ctrl = Probe::new(Component::Controller);
    let rn_probe = Probe::new(Component::ReductionNetwork);
    // Every wave streams the same volume, so the per-wave cost is a
    // constant; charge all waves in one shot instead of looping.
    let deliver = dn.delivery_cycles(per_wave_elems).max(1);
    let collect = rn.collection_cycles(windows_per_wave as usize);
    let step = deliver.max(collect);
    stats.breakdown.steady_cycles += waves;
    stats.breakdown.fifo_stall_cycles += deliver.saturating_sub(1) * waves;
    stats.breakdown.reduction_stall_cycles += (step - deliver) * waves;
    let mut cycles = step * waves;
    ctrl.span("stream", 0, cycles);
    let drain = rn.reduce(&[window_elems]).latency + 1;
    ctrl.span("drain", cycles, cycles + drain);
    rn_probe.span("drain", cycles, cycles + drain);
    stats.breakdown.drain_cycles += drain;
    cycles += drain;

    // Comparator passes count as reduction-adder activity.
    stats.counters.rn_adder_ops += num_windows * (window_elems as u64 - 1);
    stats.counters.gb_reads += num_windows * window_elems as u64;
    stats.counters.gb_writes += num_windows;
    stats.counters.rn_collections += num_windows;
    stats.counters.dn_injections += num_windows * window_elems as u64;
    stats.compute_cycles = waves;
    stats.ms_busy_cycles = num_windows * window_elems as u64;
    stats.iterations = waves;
    stats.cycles = cycles;
}

#[cfg(test)]
mod tests {
    use super::*;
    use stonne_tensor::SeededRng;

    #[test]
    fn pool_is_functionally_exact() {
        let mut rng = SeededRng::new(1);
        let input = Tensor4::random(1, 4, 8, 8, &mut rng);
        let cfg = AcceleratorConfig::maeri_like(64, 16);
        let (out, stats) = run_maxpool(&cfg, "pool", &input, 2, 2);
        assert_eq!(out, maxpool2d_reference(&input, 2, 2));
        assert!(stats.cycles > 0);
    }

    #[test]
    fn pool_cycles_scale_with_volume() {
        let mut rng = SeededRng::new(2);
        let small = Tensor4::random(1, 2, 8, 8, &mut rng);
        let large = Tensor4::random(1, 8, 16, 16, &mut rng);
        let cfg = AcceleratorConfig::maeri_like(64, 16);
        let (_, s1) = run_maxpool(&cfg, "p", &small, 2, 2);
        let (_, s2) = run_maxpool(&cfg, "p", &large, 2, 2);
        assert!(s2.cycles > s1.cycles);
    }

    #[test]
    fn tile_cache_matches_uncached_bitwise() {
        let mut rng = SeededRng::new(4);
        let input = Tensor4::random(1, 3, 8, 8, &mut rng);
        let cfg = AcceleratorConfig::maeri_like(64, 16);
        let (off_out, off) = run_maxpool_ctx(&cfg, "p", &input, 2, 2, &SimContext::disabled());
        let shared = SimContext::new();
        let (on_out, on) = run_maxpool_ctx(&cfg, "p", &input, 2, 2, &shared);
        assert_eq!(off_out, on_out);
        let mut stripped = on.clone();
        stripped.tile_cache_hits = 0;
        stripped.tile_cache_misses = 0;
        stripped.tile_cache_assembled = 0;
        assert_eq!(off, stripped, "only the tile counters may differ");
        assert_eq!((on.tile_cache_misses, on.tile_cache_assembled), (1, 1));
        let (_, warm) = run_maxpool_ctx(&cfg, "p", &input, 2, 2, &shared);
        assert_eq!((warm.tile_cache_hits, warm.tile_cache_misses), (1, 0));
    }

    #[test]
    fn pool_counts_comparisons() {
        let mut rng = SeededRng::new(3);
        let input = Tensor4::random(1, 1, 4, 4, &mut rng);
        let cfg = AcceleratorConfig::maeri_like(64, 64);
        let (out, stats) = run_maxpool(&cfg, "p", &input, 2, 2);
        assert_eq!(stats.counters.rn_adder_ops, out.len() as u64 * 3);
    }
}
